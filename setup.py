"""Shim for legacy editable installs (pip --no-use-pep517) in offline
environments without the `wheel` package; all metadata lives in
pyproject.toml."""

from setuptools import setup

setup()
