"""Failure-injection tests: stale stores, corrupted files, bad inputs.

A production system must fail loudly on malformed inputs and recover
quietly from stale auxiliary state (labels are an *optimization*, never a
correctness dependency)."""

import numpy as np
import pytest

from repro.bitset import EWAHBitset
from repro.core.engine import MIOEngine
from repro.core.labels import LabelStore, PointLabels
from repro.datasets.io import import_csv, load_collection

from conftest import oracle_scores, random_collection


class TestStaleLabels:
    def test_labels_for_wrong_collection_are_ignored(self):
        """A store warmed on one collection must not poison another."""
        first = random_collection(n=20, mean_points=5, seed=131)
        second = random_collection(n=25, mean_points=6, seed=132)
        store = LabelStore()
        MIOEngine(first, label_store=store).query(2.0)
        result = MIOEngine(second, label_store=store).query(2.0)
        # The engine relabels instead of consuming mismatched labels.
        assert result.algorithm == "bigrid"
        assert result.score == max(oracle_scores(second, 2.0))

    def test_labels_with_wrong_point_counts_are_ignored(self):
        collection = random_collection(n=10, mean_points=5, seed=133)
        store = LabelStore()
        bogus = PointLabels([1] * collection.n, r=2.0)  # wrong sizes
        store.put(2, bogus)
        result = MIOEngine(collection, label_store=store).query(2.0)
        assert result.algorithm == "bigrid"
        assert result.score == max(oracle_scores(collection, 2.0))

    def test_same_shape_different_data_still_exact(self):
        """Labels from an identically-shaped but different collection: the
        engine cannot detect this, but safe-mode replay only consults the
        large grid of the *current* collection, so we at least document the
        store-per-collection contract by showing shapes are what's checked."""
        collection = random_collection(n=10, mean_points=5, seed=134)
        store = LabelStore()
        engine = MIOEngine(collection, label_store=store)
        engine.query(2.0)
        assert engine.query(2.0).score == max(oracle_scores(collection, 2.0))


class TestCorruptedFiles:
    def test_corrupted_npz_raises(self, tmp_path):
        path = tmp_path / "broken.npz"
        path.write_bytes(b"this is not a zip archive")
        with pytest.raises(Exception):
            load_collection(path)

    def test_corrupted_label_file_raises_cleanly(self, tmp_path):
        store = LabelStore(tmp_path)
        (tmp_path / "labels_ceil_3.npz").write_bytes(b"garbage")
        with pytest.raises(Exception):
            store.get(3)

    def test_truncated_csv_header_only(self, tmp_path):
        path = tmp_path / "empty.csv"
        path.write_text("oid,x,y\n")
        with pytest.raises(ValueError):
            import_csv(path)  # no objects -> empty collection is rejected

    def test_corrupted_ewah_stream(self):
        with pytest.raises(ValueError):
            EWAHBitset.deserialize(b"1234567")  # not a multiple of 8


class TestHostileInputs:
    def test_nan_coordinates_rejected_at_construction(self):
        from repro.core.objects import ObjectCollection

        with pytest.raises(ValueError, match="finite"):
            ObjectCollection.from_point_arrays(
                [np.array([[0.0, 0.0]]), np.array([[np.nan, 0.0]])]
            )

    def test_infinite_timestamps_rejected_at_construction(self):
        from repro.core.objects import SpatialObject

        with pytest.raises(ValueError, match="finite"):
            SpatialObject(0, np.zeros((2, 2)), np.array([0.0, np.inf]))

    def test_infinite_r_rejected_by_widths(self):
        collection = random_collection(n=4, mean_points=3, seed=135)
        engine = MIOEngine(collection)
        with pytest.raises((ValueError, OverflowError)):
            engine.query(float("inf"))

    def test_huge_coordinates_still_work(self):
        from repro.core.objects import ObjectCollection

        offset = 1e12
        collection = ObjectCollection.from_point_arrays(
            [
                np.array([[offset, offset]]),
                np.array([[offset + 0.5, offset]]),
                np.array([[offset + 100.0, offset]]),
            ]
        )
        result = MIOEngine(collection).query(1.0)
        assert result.score == 1


class TestStaleLabelsParallel:
    def test_parallel_engine_ignores_stale_labels(self):
        from repro.parallel.engine import ParallelMIOEngine

        first = random_collection(n=15, mean_points=5, seed=136)
        second = random_collection(n=20, mean_points=6, seed=137)
        store = LabelStore()
        MIOEngine(first, label_store=store).query(2.0)
        result = ParallelMIOEngine(second, cores=3, label_store=store).query(2.0)
        assert result.algorithm == "bigrid-parallel"  # labels rejected
        assert result.score == max(oracle_scores(second, 2.0))
