"""Failure-injection tests: faults, deadlines, corrupted files, bad inputs.

A production system must fail loudly on malformed inputs, recover quietly
from stale auxiliary state (labels are an *optimization*, never a
correctness dependency), degrade along declared fallback chains, and turn
an expired deadline into a certified anytime answer rather than a crash."""

import os

import numpy as np
import pytest

from repro import faults
from repro.bitset import EWAHBitset
from repro.core.engine import MIOEngine
from repro.core.labels import LabelStore, PointLabels
from repro.datasets.io import import_csv, load_collection
from repro.errors import (
    CorruptDataError,
    InjectedFault,
    QueryTimeout,
)
from repro.faults import FaultInjector, FaultSpec
from repro.parallel.engine import ParallelMIOEngine
from repro.resilience import Deadline, ManualClock

from conftest import oracle_scores, random_collection


class TestStaleLabels:
    def test_labels_for_wrong_collection_are_ignored(self):
        """A store warmed on one collection must not poison another."""
        first = random_collection(n=20, mean_points=5, seed=131)
        second = random_collection(n=25, mean_points=6, seed=132)
        store = LabelStore()
        MIOEngine(first, label_store=store).query(2.0)
        result = MIOEngine(second, label_store=store).query(2.0)
        # The engine relabels instead of consuming mismatched labels.
        assert result.algorithm == "bigrid"
        assert result.score == max(oracle_scores(second, 2.0))

    def test_labels_with_wrong_point_counts_are_ignored(self):
        collection = random_collection(n=10, mean_points=5, seed=133)
        store = LabelStore()
        bogus = PointLabels([1] * collection.n, r=2.0)  # wrong sizes
        store.put(2, bogus)
        result = MIOEngine(collection, label_store=store).query(2.0)
        assert result.algorithm == "bigrid"
        assert result.score == max(oracle_scores(collection, 2.0))

    def test_same_shape_different_data_still_exact(self):
        """Labels from an identically-shaped but different collection: the
        engine cannot detect this, but safe-mode replay only consults the
        large grid of the *current* collection, so we at least document the
        store-per-collection contract by showing shapes are what's checked."""
        collection = random_collection(n=10, mean_points=5, seed=134)
        store = LabelStore()
        engine = MIOEngine(collection, label_store=store)
        engine.query(2.0)
        assert engine.query(2.0).score == max(oracle_scores(collection, 2.0))


class TestCorruptedFiles:
    def test_corrupted_npz_raises(self, tmp_path):
        path = tmp_path / "broken.npz"
        path.write_bytes(b"this is not a zip archive")
        with pytest.raises(CorruptDataError, match="broken.npz"):
            load_collection(path)

    def test_missing_file_stays_file_not_found(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            load_collection(tmp_path / "does_not_exist.npz")

    def test_corrupted_label_file_raises_cleanly(self, tmp_path):
        store = LabelStore(tmp_path)
        (tmp_path / "labels_ceil_3.npz").write_bytes(b"garbage")
        with pytest.raises(CorruptDataError, match="labels_ceil_3.npz"):
            store.get(3)

    def test_truncated_csv_header_only(self, tmp_path):
        path = tmp_path / "empty.csv"
        path.write_text("oid,x,y\n")
        with pytest.raises(ValueError):
            import_csv(path)  # no objects -> empty collection is rejected

    def test_csv_missing_header_names_path(self, tmp_path):
        path = tmp_path / "headless.csv"
        path.write_text("1,2.0,3.0\n")
        with pytest.raises(CorruptDataError, match="headless.csv"):
            import_csv(path)

    def test_csv_bad_row_names_path(self, tmp_path):
        path = tmp_path / "badrow.csv"
        path.write_text("oid,x,y\n0,1.0,2.0\n0,banana,2.0\n")
        with pytest.raises(CorruptDataError, match="badrow.csv"):
            import_csv(path)

    def test_duplicate_oid_rejected(self):
        from repro.core.objects import ObjectCollection, SpatialObject

        objects = [
            SpatialObject(0, np.zeros((1, 2))),
            SpatialObject(0, np.ones((1, 2))),
        ]
        with pytest.raises(CorruptDataError, match="duplicate object id"):
            ObjectCollection(objects)

    def test_corrupted_ewah_stream(self):
        with pytest.raises(ValueError):
            EWAHBitset.deserialize(b"1234567")  # not a multiple of 8


class TestHostileInputs:
    def test_nan_coordinates_rejected_at_construction(self):
        from repro.core.objects import ObjectCollection

        with pytest.raises(ValueError, match="finite"):
            ObjectCollection.from_point_arrays(
                [np.array([[0.0, 0.0]]), np.array([[np.nan, 0.0]])]
            )

    def test_infinite_timestamps_rejected_at_construction(self):
        from repro.core.objects import SpatialObject

        with pytest.raises(ValueError, match="finite"):
            SpatialObject(0, np.zeros((2, 2)), np.array([0.0, np.inf]))

    def test_infinite_r_rejected_by_widths(self):
        collection = random_collection(n=4, mean_points=3, seed=135)
        engine = MIOEngine(collection)
        with pytest.raises((ValueError, OverflowError)):
            engine.query(float("inf"))

    def test_huge_coordinates_still_work(self):
        from repro.core.objects import ObjectCollection

        offset = 1e12
        collection = ObjectCollection.from_point_arrays(
            [
                np.array([[offset, offset]]),
                np.array([[offset + 0.5, offset]]),
                np.array([[offset + 100.0, offset]]),
            ]
        )
        result = MIOEngine(collection).query(1.0)
        assert result.score == 1


class TestStaleLabelsParallel:
    def test_parallel_engine_ignores_stale_labels(self):
        from repro.parallel.engine import ParallelMIOEngine

        first = random_collection(n=15, mean_points=5, seed=136)
        second = random_collection(n=20, mean_points=6, seed=137)
        store = LabelStore()
        MIOEngine(first, label_store=store).query(2.0)
        result = ParallelMIOEngine(
            second, cores=3, label_store=store, mode="simulated"
        ).query(2.0)
        assert result.algorithm == "bigrid-parallel"  # labels rejected
        assert result.score == max(oracle_scores(second, 2.0))


PHASE_POINTS = ("grid_mapping", "lower_bounding", "upper_bounding", "verification")

RAISING_PHASES = ("grid_mapping", "lower_bounding", "upper_bounding")


def _query_with_ticks(engine, r, budget):
    """Run one query under a deterministic tick-driven deadline."""
    deadline = Deadline(float(budget), clock=ManualClock(step=1.0))
    return engine.query(r, deadline=deadline)


def _verification_window_budgets(engine, r, samples=15):
    """Tick budgets bracketing the verification phase of ``engine``.

    Under ``ManualClock(step=1.0)`` every deadline reading is one tick, so a
    run with an unlimited budget measures the total tick count, and a binary
    search finds the smallest budget surviving the raising filter phases.
    Budgets sampled between the two land either in anytime verification or
    in completion -- exactly the region the anytime contract covers.
    """

    def raises_in_filter(budget):
        try:
            _query_with_ticks(engine, r, budget)
        except QueryTimeout as timeout:
            return timeout.phase in RAISING_PHASES
        return False

    total_deadline = Deadline(10.0**9, clock=ManualClock(step=1.0))
    engine.query(r, deadline=total_deadline)
    total_ticks = int(total_deadline.elapsed()) + 2
    low, high = 0, total_ticks
    while low + 1 < high:  # invariant: low raises in a filter phase, high not
        mid = (low + high) // 2
        if raises_in_filter(mid):
            low = mid
        else:
            high = mid
    span = max(1, (total_ticks - high) // max(1, samples - 1))
    budgets = set(range(high, total_ticks + 1, span))
    budgets.add(total_ticks + 10)  # comfortably past expiry: exact answer
    return sorted(budgets)


class TestInjectionPoints:
    """Every named injection point, exercised with both fault kinds."""

    @pytest.mark.parametrize("point", PHASE_POINTS)
    def test_phase_failure_raises_injected_fault(self, point):
        collection = random_collection(n=12, mean_points=5, seed=140)
        engine = MIOEngine(collection)
        with faults.injected(FaultInjector([FaultSpec(point)])):
            with pytest.raises(InjectedFault) as info:
                engine.query(2.0)
        assert info.value.point == point

    @pytest.mark.parametrize("point", PHASE_POINTS)
    def test_phase_latency_preserves_exactness(self, point):
        collection = random_collection(n=12, mean_points=5, seed=140)
        engine = MIOEngine(collection)
        spec = FaultSpec(point, kind="latency", latency=0.0)
        with faults.injected(FaultInjector([spec])) as injector:
            result = engine.query(2.0)
        assert injector.fired[point] >= 1
        assert result.exact
        assert result.score == max(oracle_scores(collection, 2.0))

    def test_io_failure_raises_injected_fault(self, tmp_path):
        from repro.datasets.io import save_collection

        path = tmp_path / "ok.npz"
        save_collection(path, random_collection(n=5, mean_points=3, seed=141))
        with faults.injected(FaultInjector([FaultSpec("io")])):
            with pytest.raises(InjectedFault):
                load_collection(path)

    def test_partition_task_failure_is_injectable(self):
        from repro.errors import PartitionTaskError
        from repro.parallel.executor import SimulatedExecutor

        spec = FaultSpec("partition_task", match=1)
        with faults.injected(FaultInjector([spec])):
            with pytest.raises(PartitionTaskError) as info:
                SimulatedExecutor(2).run([lambda: 0, lambda: 1], [0, 1])
        assert info.value.task_index == 1

    def test_trip_is_noop_without_injector(self):
        assert faults.active() is None
        faults.trip("verification")  # must not raise

    def test_seeded_rate_is_deterministic(self):
        def fired_counts(seed):
            injector = FaultInjector(
                [FaultSpec("verification", kind="latency", rate=0.5)], seed=seed
            )
            with faults.injected(injector):
                for _ in range(40):
                    faults.trip("verification")
            return injector.fired.get("verification", 0)

        assert fired_counts(7) == fired_counts(7)
        assert 0 < fired_counts(7) < 40


class TestDeadlines:
    """Cooperative deadlines: raising filter phases, anytime verification."""

    def test_zero_budget_expires_in_grid_mapping(self):
        collection = random_collection(n=10, mean_points=5, seed=142)
        with pytest.raises(QueryTimeout) as info:
            MIOEngine(collection).query(2.0, timeout_ms=0.0)
        assert info.value.phase == "grid_mapping"
        assert info.value.elapsed >= 0.0

    def test_phases_expire_in_pipeline_order(self):
        """Sweeping the budget under a ManualClock walks expiry through the
        raising phases in order, then lands in anytime verification."""
        collection = random_collection(n=25, mean_points=6, seed=143)
        engine = MIOEngine(collection)
        outcomes = []
        for budget in range(0, 4000, 25):
            deadline = Deadline(float(budget), clock=ManualClock(step=1.0))
            try:
                result = engine.query(2.0, deadline=deadline)
            except QueryTimeout as timeout:
                outcomes.append(timeout.phase)
            else:
                outcomes.append("answered" if result.exact else "anytime")
        order = ["grid_mapping", "lower_bounding", "upper_bounding", "anytime", "answered"]
        seen = [phase for index, phase in enumerate(outcomes) if phase not in outcomes[:index]]
        assert seen == [phase for phase in order if phase in seen]
        assert "anytime" in seen and "answered" in seen

    def test_anytime_score_is_verified_lower_bound(self):
        """Property test: under any deadline the answer is never wrong --
        an exact result matches the oracle, an anytime result is a lower
        bound achieved by its reported winner (Corollary 1)."""
        for seed in range(5):
            collection = random_collection(n=20, mean_points=6, seed=200 + seed)
            oracle = oracle_scores(collection, 2.0)
            engine = MIOEngine(collection)
            anytime_seen = False
            for budget in _verification_window_budgets(engine, 2.0):
                try:
                    result = _query_with_ticks(engine, 2.0, budget)
                except QueryTimeout:
                    continue
                if result.exact:
                    assert result.score == max(oracle)
                else:
                    anytime_seen = True
                    assert result.score <= max(oracle)
                    assert oracle[result.winner] >= result.score
                    assert result.notes["anytime"]
                    assert result.counters["candidates_settled"] <= (
                        result.counters["candidates_total"]
                    )
            assert anytime_seen, f"seed {seed}: no budget hit the anytime path"

    def test_anytime_scores_improve_monotonically(self):
        collection = random_collection(n=25, mean_points=6, seed=144)
        engine = MIOEngine(collection)
        scores = []
        for budget in _verification_window_budgets(engine, 2.0, samples=30):
            try:
                result = _query_with_ticks(engine, 2.0, budget)
            except QueryTimeout:
                continue
            scores.append(result.score)
        assert scores, "no budget produced an answer"
        assert scores == sorted(scores)
        assert scores[-1] == max(oracle_scores(collection, 2.0))

    def test_timed_out_verification_does_not_persist_labels(self):
        collection = random_collection(n=25, mean_points=6, seed=145)
        store = LabelStore()
        engine = MIOEngine(collection, label_store=store)
        import math

        # Probe the window with a store-free engine: a completing probe run
        # would otherwise persist labels and change the tick counts.
        probe = MIOEngine(collection)
        for budget in _verification_window_budgets(probe, 2.0):
            try:
                result = _query_with_ticks(engine, 2.0, budget)
            except QueryTimeout:
                continue
            if not result.exact:
                assert not store.has(math.ceil(2.0))
                return
        pytest.fail("no budget hit the anytime path")

    def test_progressive_deadline_stops_iteration_cleanly(self):
        from repro.progressive import query_progressive

        collection = random_collection(n=20, mean_points=6, seed=146)
        oracle = oracle_scores(collection, 2.0)
        deadline = Deadline(600.0, clock=ManualClock(step=1.0))
        states = list(query_progressive(collection, 2.0, deadline=deadline))
        assert states, "deadline killed the run before any progress"
        assert states[-1].best_score <= max(oracle)

    def test_parallel_engine_honors_deadline(self):
        collection = random_collection(n=15, mean_points=5, seed=147)
        engine = ParallelMIOEngine(collection, cores=3)
        with pytest.raises(QueryTimeout):
            engine.query(2.0, timeout_ms=0.0)


class TestBackendFallback:
    def test_down_backend_degrades_with_note(self):
        collection = random_collection(n=12, mean_points=5, seed=148)
        engine = MIOEngine(collection, backend="ewah")
        spec = FaultSpec("backend", match="ewah")
        with faults.injected(FaultInjector([spec])):
            result = engine.query(2.0)
        assert result.notes["degraded_backend"] == "ewah->plain"
        assert result.exact
        assert result.score == max(oracle_scores(collection, 2.0))

    def test_healthy_backend_leaves_no_note(self):
        collection = random_collection(n=12, mean_points=5, seed=148)
        result = MIOEngine(collection, backend="ewah").query(2.0)
        assert "degraded_backend" not in result.notes

    def test_unknown_backend_rejected(self):
        from repro.bitset import resolve_backend
        from repro.errors import BackendUnavailableError

        with pytest.raises(BackendUnavailableError, match="unknown"):
            resolve_backend("bitmagic")

    def test_fully_down_chain_rejected(self):
        from repro.bitset import resolve_backend
        from repro.errors import BackendUnavailableError

        specs = [FaultSpec("backend", match=name) for name in ("ewah", "plain")]
        with faults.injected(FaultInjector(specs)):
            with pytest.raises(BackendUnavailableError, match="no usable"):
                resolve_backend("ewah")


class TestParallelFaultTolerance:
    def test_single_task_kill_recovers_by_retry(self):
        collection = random_collection(n=15, mean_points=5, seed=149)
        truth = max(oracle_scores(collection, 2.0))
        engine = ParallelMIOEngine(collection, cores=3, retries=1, mode="simulated")
        spec = FaultSpec("partition_task", match=2, max_triggers=1)
        with faults.injected(FaultInjector([spec])) as injector:
            result = engine.query(2.0)
        assert injector.fired["partition_task"] == 1
        assert result.score == truth
        assert "serial_fallback" not in result.counters

    def test_persistent_task_kill_falls_back_to_serial(self):
        collection = random_collection(n=15, mean_points=5, seed=149)
        truth = max(oracle_scores(collection, 2.0))
        engine = ParallelMIOEngine(collection, cores=3, retries=2, mode="simulated")
        spec = FaultSpec("partition_task", match=2)
        with faults.injected(FaultInjector([spec])):
            result = engine.query(2.0)
        assert result.score == truth
        assert result.counters["serial_fallback"] == 1
        assert result.counters["failed_task_index"] == 2
        assert "serial_fallback" in result.notes

    def test_fallback_disabled_propagates_error(self):
        from repro.errors import PartitionTaskError

        collection = random_collection(n=15, mean_points=5, seed=149)
        engine = ParallelMIOEngine(
            collection, cores=3, retries=0, serial_fallback=False, mode="simulated"
        )
        spec = FaultSpec("partition_task", match=2)
        with faults.injected(FaultInjector([spec])):
            with pytest.raises(PartitionTaskError) as info:
                engine.query(2.0)
        assert info.value.task_index == 2

    def test_fault_outcome_deterministic_under_fixed_seed(self):
        collection = random_collection(n=15, mean_points=5, seed=150)

        def run_once():
            engine = ParallelMIOEngine(collection, cores=3, retries=1, mode="simulated")
            injector = FaultInjector(
                [FaultSpec("partition_task", rate=0.3)], seed=99
            )
            with faults.injected(injector):
                result = engine.query(2.0)
            return result.score, result.counters.get("serial_fallback", 0), dict(injector.fired)

        assert run_once() == run_once()
        assert run_once()[0] == max(oracle_scores(collection, 2.0))


def _chaos_seeds():
    seeds = faults.env_seeds(os.environ.get("REPRO_FAULTS"))
    return seeds or [0, 1, 2]


class TestChaos:
    """Randomized faults at every point: the answer is exact, a certified
    anytime bound, or a taxonomy error -- never a foreign exception."""

    @pytest.mark.parametrize("seed", _chaos_seeds())
    def test_chaos_run_never_escapes_taxonomy(self, seed):
        from repro.errors import ReproError

        collection = random_collection(n=15, mean_points=5, seed=151)
        oracle = oracle_scores(collection, 2.0)
        specs = [
            FaultSpec(point, rate=0.15)
            for point in ("grid_mapping", "lower_bounding", "upper_bounding",
                          "verification", "partition_task", "backend")
        ]
        for engine in (
            MIOEngine(collection),
            ParallelMIOEngine(collection, cores=3, retries=1),
        ):
            with faults.injected(FaultInjector(specs, seed=seed)):
                try:
                    result = engine.query(2.0)
                except ReproError:
                    continue
                if result.exact:
                    assert result.score == max(oracle)
                else:
                    assert result.score <= max(oracle)
