"""Cross-module integration tests: whole-workflow behaviours."""

import numpy as np
import pytest

from repro import (
    LabelStore,
    MIOEngine,
    NestedLoopAlgorithm,
    ParallelMIOEngine,
    SimpleGridAlgorithm,
)
from repro.bench import format_series, format_table, run_algorithm
from repro.datasets import load_dataset, sample_collection

from conftest import oracle_scores, random_collection


class TestRSweepBehaviour:
    def test_scores_monotone_in_r(self):
        """A larger threshold can only add interactions (Definition 1)."""
        collection = random_collection(n=30, mean_points=6, seed=101)
        engine = MIOEngine(collection)
        scores = [engine.query(r).score for r in (0.5, 1.0, 2.0, 4.0, 8.0)]
        assert scores == sorted(scores)

    def test_all_algorithms_agree_across_r_sweep(self):
        collection = random_collection(n=25, mean_points=5, seed=102)
        engine = MIOEngine(collection)
        nl = NestedLoopAlgorithm(collection)
        sg = SimpleGridAlgorithm(collection)
        for r in (1.0, 2.0, 3.0, 5.0):
            expected = nl.query(r).score
            assert engine.query(r).score == expected
            assert sg.query(r).score == expected

    def test_grid_cells_shrink_with_r(self):
        collection = random_collection(n=30, mean_points=6, seed=103)
        engine = MIOEngine(collection)
        small_r = engine.query(0.5).counters["small_cells"]
        large_r = engine.query(5.0).counters["small_cells"]
        assert large_r < small_r


class TestLabelWorkflow:
    def test_fine_grained_sweep_with_shared_ceiling(self):
        """The Section III-D scenario: analysts sweep fine-grained r values."""
        collection = random_collection(n=30, mean_points=7, seed=104)
        store = LabelStore()
        engine = MIOEngine(collection, label_store=store)
        sweep = [3.9, 3.2, 3.5, 3.8]  # all ceil to 4
        results = [engine.query(r) for r in sweep]
        assert results[0].algorithm == "bigrid"
        assert all(result.algorithm == "bigrid-label" for result in results[1:])
        for r, result in zip(sweep, results):
            assert result.score == max(oracle_scores(collection, r))


class TestDatasetPipeline:
    def test_registry_dataset_end_to_end(self):
        collection = load_dataset("bird-2", scale=0.08, seed=3)
        truth = oracle_scores(collection, 6.0)
        result = MIOEngine(collection).query(6.0)
        assert result.score == max(truth)

    def test_sampled_dataset_end_to_end(self):
        collection = sample_collection(load_dataset("syn", scale=0.05, seed=3), 0.5, seed=1)
        truth = oracle_scores(collection, 6.0)
        assert MIOEngine(collection).query(6.0).score == max(truth)


class TestBenchHarness:
    @pytest.mark.parametrize("name", ["nl", "nl-kdtree", "sg", "bigrid", "theoretical"])
    def test_run_algorithm(self, name):
        collection = random_collection(n=15, mean_points=5, seed=105)
        record = run_algorithm(name, collection, 2.0, dataset="test")
        assert record.algorithm == name
        assert record.seconds > 0
        assert record.score == max(oracle_scores(collection, 2.0))

    def test_bigrid_label_needs_prior_labels(self):
        collection = random_collection(n=10, mean_points=4, seed=106)
        with pytest.raises(ValueError):
            run_algorithm("bigrid-label", collection, 2.0)
        store = LabelStore()
        with pytest.raises(RuntimeError):
            run_algorithm("bigrid-label", collection, 2.0, label_store=store)
        run_algorithm("bigrid", collection, 2.0, label_store=store)
        record = run_algorithm("bigrid-label", collection, 2.0, label_store=store)
        assert record.algorithm == "bigrid-label"

    def test_unknown_algorithm(self):
        collection = random_collection(n=5, mean_points=3, seed=107)
        with pytest.raises(ValueError):
            run_algorithm("quantum", collection, 1.0)

    def test_memory_kib(self):
        collection = random_collection(n=10, mean_points=4, seed=108)
        record = run_algorithm("bigrid", collection, 2.0)
        assert record.memory_kib == pytest.approx(record.memory_bytes / 1024.0)


class TestReporting:
    def test_format_table(self):
        text = format_table(["a", "b"], [[1, 2.5], ["x", 0.001]], title="T")
        assert "T" in text
        assert "a" in text and "b" in text
        assert "0.0010" in text

    def test_format_series(self):
        text = format_series("r", [1, 2], {"nl": [0.5, 0.25], "bigrid": [0.1, 0.05]})
        lines = text.splitlines()
        assert lines[0].split("|")[0].strip() == "r"
        assert len(lines) == 4  # header, separator, two rows

    def test_format_series_handles_short_columns(self):
        text = format_series("x", [1, 2, 3], {"s": [9]})
        assert "-" in text.splitlines()[-1]


class TestSerialParallelConsistency:
    def test_serial_and_parallel_and_labels_all_agree(self):
        collection = random_collection(n=30, mean_points=6, seed=109)
        r = 2.0
        store = LabelStore()
        serial = MIOEngine(collection, label_store=store).query(r)
        labeled = MIOEngine(collection, label_store=store).query(r)
        parallel = ParallelMIOEngine(collection, cores=4, label_store=store).query(r)
        assert serial.score == labeled.score == parallel.score

    def test_backends_agree_everywhere(self):
        collection = random_collection(n=20, mean_points=5, seed=110)
        for r in (1.0, 3.0):
            assert (
                MIOEngine(collection, backend="ewah").query(r).score
                == MIOEngine(collection, backend="plain").query(r).score
            )


class TestDegenerateInputs:
    def test_single_pair_collection(self):
        from repro.core.objects import ObjectCollection

        collection = ObjectCollection.from_point_arrays(
            [np.array([[0.0, 0.0]]), np.array([[0.5, 0.0]])]
        )
        assert MIOEngine(collection).query(1.0).score == 1
        assert MIOEngine(collection).query(0.1).score == 0

    def test_all_objects_identical(self):
        from repro.core.objects import ObjectCollection

        points = np.array([[1.0, 1.0], [2.0, 2.0]])
        collection = ObjectCollection.from_point_arrays([points.copy() for _ in range(6)])
        result = MIOEngine(collection).query(0.5)
        assert result.score == 5

    def test_collinear_objects_on_cell_boundaries(self):
        from repro.core.objects import ObjectCollection

        # Points placed exactly on multiples of the large cell width.
        collection = ObjectCollection.from_point_arrays(
            [np.array([[float(4 * i), 0.0]]) for i in range(6)]
        )
        truth = oracle_scores(collection, 4.0)
        assert MIOEngine(collection).query(4.0).score == max(truth)
