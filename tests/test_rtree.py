"""Unit tests for the STR-packed R-tree and the MBR-filtered NL baseline."""

import numpy as np
import pytest

from repro.baselines.rtree_nl import RTreeNestedLoop
from repro.spatial.rtree import RTree, _gap_squared

from conftest import oracle_scores, random_collection


def random_boxes(count, dimension=2, seed=0, extent=100.0):
    rng = np.random.default_rng(seed)
    lows = rng.uniform(0, extent, size=(count, dimension))
    sizes = rng.uniform(0, extent / 10, size=(count, dimension))
    return [(lows[i], lows[i] + sizes[i]) for i in range(count)]


class TestConstruction:
    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            RTree([])

    def test_rejects_tiny_fanout(self):
        with pytest.raises(ValueError):
            RTree(random_boxes(4), max_entries=1)

    def test_rejects_inverted_boxes(self):
        with pytest.raises(ValueError):
            RTree([(np.array([1.0, 1.0]), np.array([0.0, 0.0]))])

    @pytest.mark.parametrize("count", [1, 7, 8, 9, 64, 300])
    def test_invariants_hold(self, count):
        tree = RTree(random_boxes(count, seed=count))
        tree.validate()
        assert tree.size == count

    def test_3d(self):
        tree = RTree(random_boxes(50, dimension=3, seed=5))
        tree.validate()
        assert tree.dimension == 3

    def test_height_grows_logarithmically(self):
        small = RTree(random_boxes(8, seed=1))
        large = RTree(random_boxes(512, seed=1))
        assert small.height == 1
        assert 2 <= large.height <= 4

    def test_memory_positive(self):
        assert RTree(random_boxes(20)).memory_bytes() > 0


class TestQueries:
    @pytest.mark.parametrize("r", [0.0, 2.0, 15.0])
    def test_query_within_matches_brute_force(self, r):
        boxes = random_boxes(150, seed=3)
        tree = RTree(boxes)
        rng = np.random.default_rng(4)
        for _ in range(20):
            lo = rng.uniform(0, 100, size=2)
            hi = lo + rng.uniform(0, 10, size=2)
            expected = {
                i
                for i, (blo, bhi) in enumerate(boxes)
                if _gap_squared(blo, bhi, lo, hi) <= r * r
            }
            assert set(tree.query_within(lo, hi, r)) == expected

    def test_count_within(self):
        boxes = [(np.zeros(2), np.ones(2)), (np.full(2, 50.0), np.full(2, 51.0))]
        tree = RTree(boxes)
        assert tree.count_within(np.zeros(2), np.ones(2)) == 1
        assert tree.count_within(np.zeros(2), np.ones(2), r=100.0) == 2

    def test_every_box_finds_itself(self):
        boxes = random_boxes(64, seed=6)
        tree = RTree(boxes)
        for i, (lo, hi) in enumerate(boxes):
            assert i in set(tree.query_within(lo, hi))


class TestRTreeNestedLoop:
    @pytest.mark.parametrize("r", [1.0, 2.5, 5.0])
    def test_scores_match_oracle(self, r):
        collection = random_collection(n=30, mean_points=6, seed=141)
        assert RTreeNestedLoop(collection).scores(r) == oracle_scores(collection, r)

    def test_query_metadata(self):
        collection = random_collection(n=20, mean_points=5, seed=142)
        result = RTreeNestedLoop(collection).query(2.0)
        assert result.algorithm == "nl-rtree"
        assert 0 < result.counters["candidate_pairs"] <= result.counters["total_pairs"]
        assert result.memory_bytes > 0

    def test_filter_rate_bounds(self):
        collection = random_collection(n=20, mean_points=5, seed=143)
        rate = RTreeNestedLoop(collection).filter_rate(1.0)
        assert 0.0 <= rate <= 1.0

    def test_filter_prunes_compact_scattered_objects(self):
        from repro.core.objects import ObjectCollection

        rng = np.random.default_rng(144)
        centers = rng.uniform(0, 5000.0, size=(30, 2))
        collection = ObjectCollection.from_point_arrays(
            center + rng.normal(0, 1.0, size=(4, 2)) for center in centers
        )
        rate = RTreeNestedLoop(collection).filter_rate(1.0)
        assert rate > 0.9  # compact far-apart objects: MBRs prune nearly all

    def test_invalid_r(self):
        collection = random_collection(n=5, mean_points=3, seed=145)
        with pytest.raises(ValueError):
            RTreeNestedLoop(collection).scores(0.0)
