"""Unit tests for the small-grid (Definition 2)."""

from repro.bitset import EWAHBitset
from repro.grid.small_grid import SmallGrid


def make_grid():
    return SmallGrid(width=1.0, dimension=2, bitset_cls=EWAHBitset)


class TestAddPoint:
    def test_fresh_cell_reports_one(self):
        grid = make_grid()
        reached, first = grid.add_point(3, (0, 0))
        assert (reached, first) == (1, 3)
        assert grid.cell((0, 0)).bitset.get(3)

    def test_duplicate_same_object_is_noop(self):
        grid = make_grid()
        grid.add_point(1, (0, 0))
        reached, first = grid.add_point(1, (0, 0))
        assert reached is None
        assert first == 1
        assert grid.cell((0, 0)).distinct_objects == 1

    def test_second_object_reports_two_and_first_oid(self):
        grid = make_grid()
        grid.add_point(0, (0, 0))
        reached, first = grid.add_point(4, (0, 0))
        assert (reached, first) == (2, 0)
        cell = grid.cell((0, 0))
        assert cell.distinct_objects == 2
        assert list(cell.bitset.iter_set_bits()) == [0, 4]

    def test_third_object_reports_three(self):
        grid = make_grid()
        grid.add_point(0, (0, 0))
        grid.add_point(1, (0, 0))
        reached, _first = grid.add_point(2, (0, 0))
        assert reached == 3

    def test_cells_created_on_demand_only(self):
        grid = make_grid()
        grid.add_point(0, (5, 5))
        assert len(grid) == 1
        assert grid.cell((0, 0)) is None

    def test_interleaved_cells_track_last_oid_per_cell(self):
        grid = make_grid()
        grid.add_point(0, (0, 0))
        grid.add_point(0, (1, 0))
        grid.add_point(0, (0, 0))  # back to the first cell, same object
        assert grid.cell((0, 0)).distinct_objects == 1
        grid.add_point(1, (0, 0))
        assert grid.cell((0, 0)).distinct_objects == 2


class TestMemory:
    def test_memory_grows_with_cells(self):
        grid = make_grid()
        empty = grid.memory_bytes()
        grid.add_point(0, (0, 0))
        one = grid.memory_bytes()
        grid.add_point(0, (9, 9))
        two = grid.memory_bytes()
        assert empty == 0 < one < two
