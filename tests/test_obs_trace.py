"""The span tracer: nesting, timing, overrides, and the no-op path."""

import pytest

from repro.obs.trace import (
    NULL_TRACER,
    NullTracer,
    Span,
    Tracer,
    ensure_tracer,
    phase_durations,
)


class SteppingClock:
    """A deterministic monotonic clock advancing a fixed step per read."""

    def __init__(self, step=1.0):
        self.now = 0.0
        self.step = step

    def __call__(self):
        reading = self.now
        self.now += self.step
        return reading


class TestSpanNesting:
    def test_children_attach_to_the_open_span(self):
        tracer = Tracer()
        with tracer.span("query") as root:
            with tracer.span("grid_mapping"):
                pass
            with tracer.span("verification") as verify:
                with tracer.span("candidate"):
                    pass
        assert [child.name for child in root.children] == [
            "grid_mapping", "verification",
        ]
        assert [child.name for child in verify.children] == ["candidate"]
        assert tracer.roots == [root]
        assert tracer.root is root
        assert tracer.current is None

    def test_sibling_roots(self):
        tracer = Tracer()
        with tracer.span("first"):
            pass
        with tracer.span("second"):
            pass
        assert [span.name for span in tracer.roots] == ["first", "second"]
        assert tracer.root.name == "second"

    def test_current_tracks_the_stack(self):
        tracer = Tracer()
        assert tracer.current is None
        with tracer.span("outer") as outer:
            assert tracer.current is outer
            with tracer.span("inner") as inner:
                assert tracer.current is inner
            assert tracer.current is outer
        assert tracer.current is None

    def test_walk_is_depth_first(self):
        tracer = Tracer()
        with tracer.span("a"):
            with tracer.span("b"):
                with tracer.span("c"):
                    pass
            with tracer.span("d"):
                pass
        assert [span.name for span in tracer.root.walk()] == ["a", "b", "c", "d"]


class TestSpanTiming:
    def test_durations_are_monotone_with_the_clock(self):
        clock = SteppingClock(step=1.0)
        tracer = Tracer(clock=clock)
        with tracer.span("outer") as outer:
            with tracer.span("inner") as inner:
                pass
        # Each enter/exit reads the clock once: inner spans 1 tick,
        # the outer span covers all four reads (3 ticks).
        assert inner.duration == pytest.approx(1.0)
        assert outer.duration == pytest.approx(3.0)
        assert outer.duration >= inner.duration
        assert outer.started <= inner.started

    def test_unfinished_span_reports_zero(self):
        tracer = Tracer()
        span = tracer.span("never-entered")
        assert span.duration == 0.0
        assert not span.finished

    def test_set_duration_overrides_the_measurement(self):
        clock = SteppingClock(step=1.0)
        tracer = Tracer(clock=clock)
        with tracer.span("simulated") as span:
            pass
        span.set_duration(42.5)
        assert span.duration == 42.5
        assert span.finished

    def test_record_attaches_known_duration_work(self):
        tracer = Tracer()
        with tracer.span("query") as root:
            span = tracer.record("grid_mapping", 0.25, cells=7)
        assert span in root.children
        assert span.duration == 0.25
        assert span.attributes == {"cells": 7}


class TestSpanAttributes:
    def test_attributes_via_constructor_and_setters(self):
        tracer = Tracer()
        with tracer.span("query", r=4.0) as span:
            span.set_attribute("winner", 3)
            span.set_attributes(score=9, exact=True)
        assert span.attributes == {"r": 4.0, "winner": 3, "score": 9, "exact": True}

    def test_exception_records_error_and_propagates(self):
        tracer = Tracer()
        with pytest.raises(ValueError):
            with tracer.span("outer"):
                with tracer.span("inner"):
                    raise ValueError("boom")
        outer, inner = tracer.root, tracer.root.children[0]
        assert inner.attributes["error"] == "ValueError"
        assert outer.attributes["error"] == "ValueError"
        # The stack unwound fully: new spans become roots again.
        assert tracer.current is None

    def test_to_dict_round_trip_shape(self):
        tracer = Tracer()
        with tracer.span("query", r=2.0):
            with tracer.span("grid_mapping"):
                pass
        payload = tracer.root.to_dict()
        assert payload["name"] == "query"
        assert payload["attributes"] == {"r": 2.0}
        assert [child["name"] for child in payload["children"]] == ["grid_mapping"]
        assert payload["duration_seconds"] >= 0.0


class TestPhaseDurations:
    def test_reads_direct_phase_children_only(self):
        tracer = Tracer()
        with tracer.span("query") as root:
            with tracer.span("grid_mapping") as span:
                pass
            span.set_duration(0.5)
            with tracer.span("verification") as span:
                # Nested non-phase spans are not counted.
                tracer.record("core-0", 10.0)
            span.set_duration(0.25)
            tracer.record("not-a-phase", 99.0)
        phases = phase_durations(root)
        assert phases == {"grid_mapping": 0.5, "verification": 0.25}

    def test_repeated_phases_accumulate(self):
        tracer = Tracer()
        with tracer.span("query") as root:
            tracer.record("label_input", 0.1)
            tracer.record("label_input", 0.2)
        assert phase_durations(root)["label_input"] == pytest.approx(0.3)


class TestNullTracer:
    def test_ensure_tracer_maps_none_to_the_null_singleton(self):
        assert ensure_tracer(None) is NULL_TRACER
        tracer = Tracer()
        assert ensure_tracer(tracer) is tracer

    def test_null_tracer_records_nothing(self):
        tracer = NullTracer()
        with tracer.span("query", r=1.0) as span:
            span.set_attribute("x", 1)
            span.set_attributes(y=2)
            span.set_duration(5.0)
            inner = tracer.record("phase", 1.0)
        assert span is inner  # one shared no-op span instance
        assert not tracer.enabled
        assert tracer.roots == []
        assert tracer.root is None
        assert span.duration == 0.0
        assert span.attributes == {}
