"""Unit tests for cross-set closest point pair computation."""

import numpy as np
import pytest
from scipy.spatial.distance import cdist

from repro.spatial.closest_pair import (
    closest_pair_distance,
    closest_pair_distance_with_tree,
)
from repro.spatial.kdtree import KDTree


class TestClosestPair:
    @pytest.mark.parametrize("sizes", [(1, 1), (5, 300), (300, 5), (200, 200)])
    def test_matches_brute_force(self, sizes):
        rng = np.random.default_rng(sum(sizes))
        a = rng.uniform(0, 100, size=(sizes[0], 3))
        b = rng.uniform(0, 100, size=(sizes[1], 3))
        expected = float(np.min(cdist(a, b)))
        assert closest_pair_distance(a, b) == pytest.approx(expected, abs=1e-9)

    def test_empty_sets(self):
        assert closest_pair_distance(np.empty((0, 2)), np.ones((2, 2))) == np.inf
        assert closest_pair_distance(np.ones((2, 2)), np.empty((0, 2))) == np.inf

    def test_touching_sets(self):
        shared = np.array([[1.0, 1.0]])
        a = np.vstack([shared, np.array([[50.0, 50.0]])])
        b = np.vstack([np.array([[30.0, 10.0]]), shared])
        assert closest_pair_distance(a, b) == 0.0

    def test_with_prebuilt_tree(self):
        rng = np.random.default_rng(9)
        a = rng.uniform(0, 50, size=(40, 2))
        b = rng.uniform(0, 50, size=(200, 2))
        tree = KDTree(b)
        expected = float(np.min(cdist(a, b)))
        assert closest_pair_distance_with_tree(a, tree) == pytest.approx(expected, abs=1e-9)

    def test_zero_distance_early_exit(self):
        b = np.array([[0.0, 0.0], [9.0, 9.0]])
        a = np.vstack([np.array([[0.0, 0.0]]), np.full((500, 2), 100.0)])
        assert closest_pair_distance_with_tree(a, KDTree(b)) == 0.0
