"""Unit tests for grid key computation and the two width guarantees."""

import math

import numpy as np
import pytest

from repro.grid import keys as grid_keys


class TestWidths:
    def test_small_cell_width_3d(self):
        width = grid_keys.small_cell_width(6.0, 3)
        assert width == pytest.approx(6.0 / math.sqrt(3))
        assert width < 6.0 / math.sqrt(3)  # guard shrinks, never grows

    def test_small_cell_width_2d(self):
        assert grid_keys.small_cell_width(6.0, 2) == pytest.approx(6.0 / math.sqrt(2))

    def test_small_cell_width_validation(self):
        with pytest.raises(ValueError):
            grid_keys.small_cell_width(0.0, 2)
        with pytest.raises(ValueError):
            grid_keys.small_cell_width(1.0, 4)

    def test_large_cell_width_is_ceiling(self):
        assert grid_keys.large_cell_width(4.0) == pytest.approx(4.0)
        assert grid_keys.large_cell_width(4.2) == pytest.approx(5.0)
        assert grid_keys.large_cell_width(0.3) == pytest.approx(1.0)
        # The guard widens, never narrows.
        assert grid_keys.large_cell_width(4.0) > 4.0

    def test_large_cell_width_validation(self):
        with pytest.raises(ValueError):
            grid_keys.large_cell_width(-1.0)
        with pytest.raises(ValueError):
            grid_keys.large_cell_width(float("inf"))
        with pytest.raises(ValueError):
            grid_keys.large_cell_width(float("nan"))

    def test_same_ceiling_same_large_grid(self):
        # The property Section III-D's label reuse relies on.
        assert grid_keys.large_cell_width(4.1) == grid_keys.large_cell_width(4.9)


class TestKeys:
    def test_compute_keys(self):
        points = np.array([[0.5, 0.5], [1.5, 0.5], [-0.5, 0.5]])
        assert grid_keys.compute_keys(points, 1.0) == [(0, 0), (1, 0), (-1, 0)]

    def test_point_key_matches_compute_keys(self):
        points = np.array([[3.7, -2.2, 9.9]])
        assert grid_keys.point_key(points[0], 2.5) == grid_keys.compute_keys(points, 2.5)[0]

    def test_boundary_is_half_open(self):
        points = np.array([[1.0, 0.0], [0.999999, 0.0]])
        computed = grid_keys.compute_keys(points, 1.0)
        assert computed[0] == (1, 0)
        assert computed[1] == (0, 0)


class TestAdjacency:
    def test_offsets_2d(self):
        assert len(grid_keys.neighbor_offsets(2)) == 8
        assert len(grid_keys.neighbor_offsets(2, include_center=True)) == 9

    def test_offsets_3d(self):
        assert len(grid_keys.neighbor_offsets(3)) == 26
        assert len(grid_keys.neighbor_offsets(3, include_center=True)) == 27

    def test_adjacent_keys(self):
        neighbors = set(grid_keys.adjacent_keys((0, 0)))
        assert (0, 0) not in neighbors
        assert (1, 1) in neighbors
        assert (-1, 0) in neighbors
        assert len(neighbors) == 8

    def test_cell_and_adjacent_starts_with_cell(self):
        sequence = list(grid_keys.cell_and_adjacent_keys((2, 3)))
        assert sequence[0] == (2, 3)
        assert len(sequence) == 9


class TestGuarantees:
    """The two geometric facts Lemmas 1 and 2 rest on."""

    @pytest.mark.parametrize("dimension", [2, 3])
    def test_same_small_cell_implies_within_r(self, dimension):
        rng = np.random.default_rng(42)
        r = 3.7
        width = grid_keys.small_cell_width(r, dimension)
        points = rng.uniform(-50, 50, size=(400, dimension))
        cells = {}
        for point, key in zip(points, grid_keys.compute_keys(points, width)):
            cells.setdefault(key, []).append(point)
        for members in cells.values():
            for i in range(len(members)):
                for j in range(i + 1, len(members)):
                    assert np.linalg.norm(members[i] - members[j]) <= r + 1e-9

    @pytest.mark.parametrize("dimension", [2, 3])
    @pytest.mark.parametrize("r", [1.0, 2.5, 4.0])
    def test_within_r_implies_adjacent_large_cell(self, dimension, r):
        rng = np.random.default_rng(7)
        width = grid_keys.large_cell_width(r)
        for _ in range(300):
            p = rng.uniform(-20, 20, size=dimension)
            direction = rng.normal(size=dimension)
            direction /= np.linalg.norm(direction)
            q = p + direction * rng.uniform(0, r)
            key_p = grid_keys.point_key(p, width)
            key_q = grid_keys.point_key(q, width)
            assert all(abs(a - b) <= 1 for a, b in zip(key_p, key_q))
