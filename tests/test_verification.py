"""Unit tests for best-first verification (Algorithm 6 / Corollary 1)."""

import pytest

from repro.core.lower_bound import compute_lower_bounds
from repro.core.query import PhaseStats
from repro.core.upper_bound import compute_upper_bounds
from repro.core.verification import verify_candidates
from repro.grid.bigrid import BIGrid

from conftest import oracle_scores, random_collection


def pipeline(collection, r):
    bigrid = BIGrid.build(collection, r=r)
    lower = compute_lower_bounds(bigrid)
    upper = compute_upper_bounds(bigrid, tau_max_low=lower.tau_max)
    return bigrid, upper.candidates


class TestExactness:
    def test_winner_matches_oracle(self):
        collection = random_collection(n=40, mean_points=6, seed=41)
        for r in (1.0, 2.0, 4.0):
            bigrid, candidates = pipeline(collection, r)
            result = verify_candidates(bigrid, candidates, r)
            truth = oracle_scores(collection, r)
            winner, score = result.ranking[0]
            assert score == max(truth)
            assert truth[winner] == score

    def test_all_candidate_scores_exact_when_forced(self):
        """With no pruning threshold, every verified score equals the oracle."""
        collection = random_collection(n=20, mean_points=5, seed=42)
        r = 2.0
        bigrid = BIGrid.build(collection, r=r)
        candidates = compute_upper_bounds(bigrid, tau_max_low=0).candidates
        # k = n disables early termination: every object is ranked.
        result = verify_candidates(bigrid, candidates, r, k=collection.n)
        truth = oracle_scores(collection, r)
        assert len(result.ranking) == collection.n
        for oid, score in result.ranking:
            assert score == truth[oid]


class TestEarlyTermination:
    def test_early_termination_happens_on_skewed_data(self):
        collection = random_collection(n=60, mean_points=6, seed=43)
        r = 2.0
        bigrid, candidates = pipeline(collection, r)
        stats = PhaseStats()
        result = verify_candidates(bigrid, candidates, r, stats=stats)
        # With any pruning at all, fewer objects are verified than exist.
        assert result.verified <= len(candidates)
        assert stats.counters["verified_objects"] == result.verified

    def test_first_candidate_always_verified(self):
        collection = random_collection(n=10, mean_points=4, seed=44)
        bigrid, candidates = pipeline(collection, 2.0)
        result = verify_candidates(bigrid, candidates, 2.0)
        assert result.verified >= 1


class TestTopK:
    def test_topk_matches_oracle(self):
        collection = random_collection(n=30, mean_points=6, seed=45)
        r = 2.0
        truth = sorted(oracle_scores(collection, r), reverse=True)
        bigrid = BIGrid.build(collection, r=r)
        lower = compute_lower_bounds(bigrid)
        for k in (1, 3, 7):
            threshold = sorted(lower.values, reverse=True)[k - 1] if k <= collection.n else 0
            candidates = compute_upper_bounds(bigrid, tau_max_low=threshold).candidates
            result = verify_candidates(bigrid, candidates, r, k=k)
            assert [score for _, score in result.ranking] == truth[:k]

    def test_ranking_sorted_desc_with_oid_ties(self):
        collection = random_collection(n=20, mean_points=5, seed=46)
        bigrid, candidates = pipeline(collection, 2.0)
        result = verify_candidates(bigrid, candidates, 2.0, k=5)
        scores = [score for _, score in result.ranking]
        assert scores == sorted(scores, reverse=True)

    def test_invalid_k(self):
        collection = random_collection(n=5, mean_points=3, seed=47)
        bigrid, candidates = pipeline(collection, 2.0)
        with pytest.raises(ValueError):
            verify_candidates(bigrid, candidates, 2.0, k=0)


class TestCounters:
    def test_distance_rows_counted(self):
        collection = random_collection(n=20, mean_points=6, seed=48)
        bigrid, candidates = pipeline(collection, 2.0)
        stats = PhaseStats()
        verify_candidates(bigrid, candidates, 2.0, stats=stats)
        assert stats.counters["distance_rows"] >= 0
        assert stats.counters["posting_checks"] >= 0
