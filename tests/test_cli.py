"""Tests for the command-line interface."""

import json

import numpy as np
import pytest

from repro.cli import main
from repro.datasets import save_collection
from repro.datasets.trajectories import make_trajectories

from conftest import random_collection


@pytest.fixture
def dataset_file(tmp_path):
    path = tmp_path / "data.npz"
    save_collection(path, random_collection(n=25, mean_points=5, seed=121))
    return str(path)


@pytest.fixture
def temporal_file(tmp_path):
    path = tmp_path / "temporal.npz"
    save_collection(path, make_trajectories(n=20, points_per_trajectory=8, seed=3))
    return str(path)


class TestGenerate:
    def test_generate_writes_file(self, tmp_path, capsys):
        out = tmp_path / "gen.npz"
        code = main(["generate", "bird-2", "--scale", "0.05", "-o", str(out)])
        assert code == 0
        assert out.exists()
        assert "wrote" in capsys.readouterr().out

    def test_unknown_dataset_rejected(self, tmp_path):
        with pytest.raises(SystemExit):
            main(["generate", "mars", "-o", str(tmp_path / "x.npz")])


class TestStats:
    def test_stats_prints_table(self, dataset_file, capsys):
        assert main(["stats", dataset_file]) == 0
        out = capsys.readouterr().out
        assert "statistic" in out
        assert "nm" in out


class TestQuery:
    def test_basic_query(self, dataset_file, capsys):
        assert main(["query", dataset_file, "-r", "2.0"]) == 0
        out = capsys.readouterr().out
        assert "winner" in out and "bigrid" in out

    def test_topk_query(self, dataset_file, capsys):
        assert main(["query", dataset_file, "-r", "2.0", "--topk", "3"]) == 0
        out = capsys.readouterr().out
        assert "#1:" in out and "#3:" in out

    def test_temporal_query(self, temporal_file, capsys):
        assert main(["query", temporal_file, "-r", "3.0", "--delta", "2.0"]) == 0
        assert "bigrid-temporal" in capsys.readouterr().out

    def test_temporal_topk_conflict(self, temporal_file, capsys):
        code = main(["query", temporal_file, "-r", "3.0", "--delta", "2.0", "--topk", "3"])
        assert code == 2
        assert "not supported" in capsys.readouterr().err

    def test_sampled_query(self, dataset_file, capsys):
        assert main(["query", dataset_file, "-r", "2.0", "--sample", "0.5"]) == 0

    def test_plain_backend(self, dataset_file):
        assert main(["query", dataset_file, "-r", "2.0", "--backend", "plain"]) == 0


class TestCompare:
    def test_compare_agreement(self, dataset_file, capsys):
        assert main(["compare", dataset_file, "-r", "2.0"]) == 0
        out = capsys.readouterr().out
        for name in ("nl", "sg", "bigrid"):
            assert name in out

    def test_compare_subset(self, dataset_file, capsys):
        code = main(
            ["compare", dataset_file, "-r", "2.0", "--algorithms", "bigrid", "nl-kdtree"]
        )
        assert code == 0
        assert "nl-kdtree" in capsys.readouterr().out


class TestModuleEntry:
    def test_python_dash_m(self, dataset_file):
        import subprocess
        import sys

        proc = subprocess.run(
            [sys.executable, "-m", "repro", "stats", dataset_file],
            capture_output=True,
            text=True,
        )
        assert proc.returncode == 0
        assert "statistic" in proc.stdout


class TestFailureModes:
    """The error taxonomy maps to distinct exit codes; anytime answers are
    flagged; REPRO_FAULTS arms the injector for one process."""

    def test_timeout_exit_code(self, dataset_file, capsys):
        code = main(["query", dataset_file, "-r", "2.0", "--timeout-ms", "0.0001"])
        assert code == 13
        err = capsys.readouterr().err
        assert "QueryTimeout" in err and "grid_mapping" in err

    def test_corrupt_data_exit_code(self, tmp_path, capsys):
        path = tmp_path / "mangled.npz"
        path.write_bytes(b"not an archive at all")
        code = main(["query", str(path), "-r", "2.0"])
        assert code == 12
        assert "CorruptDataError" in capsys.readouterr().err

    def test_invalid_query_exit_code(self, dataset_file, capsys):
        code = main(["query", dataset_file, "-r", "-3.0"])
        assert code == 11
        assert "InvalidQueryError" in capsys.readouterr().err

    def test_env_injected_fault_exit_code(self, dataset_file, capsys, monkeypatch):
        monkeypatch.setenv("REPRO_FAULTS", "grid_mapping:fail")
        code = main(["query", dataset_file, "-r", "2.0"])
        assert code == 16
        assert "InjectedFault" in capsys.readouterr().err

    def test_anytime_answer_is_marked_inexact(self, dataset_file, capsys, monkeypatch):
        # Injected latency burns the whole budget before verification, so
        # the deadline expires there and the CLI reports an anytime answer.
        monkeypatch.setenv("REPRO_FAULTS", "verification:latency:1:400")
        code = main(["query", dataset_file, "-r", "2.0", "--timeout-ms", "200"])
        assert code == 0
        out = capsys.readouterr().out
        assert "inexact (deadline)" in out
        assert "anytime" in out

    def test_parallel_task_kill_falls_back_to_serial(
        self, dataset_file, capsys, monkeypatch
    ):
        monkeypatch.setenv("REPRO_FAULTS", "shard_task:fail:1:0")
        code = main(
            ["query", dataset_file, "-r", "2.0", "--cores", "2", "--retries", "0"]
        )
        assert code == 0
        assert "serial_fallback" in capsys.readouterr().out

    def test_faults_env_uninstalled_after_main(self, dataset_file, monkeypatch):
        from repro import faults

        monkeypatch.setenv("REPRO_FAULTS", "io:latency:1:0")
        assert main(["query", dataset_file, "-r", "2.0"]) == 0
        assert faults.active() is None


class TestBatch:
    @pytest.fixture
    def workload_file(self, tmp_path, dataset_file):
        # The dataset path is relative: it must resolve against the
        # workload file's own directory, keeping the pair relocatable.
        path = tmp_path / "workload.json"
        path.write_text(json.dumps({
            "dataset": "data.npz",
            "queries": [4.9, 4.1, {"r": 4.5, "k": 3}],
        }))
        return str(path)

    def test_batch_table_output(self, workload_file, capsys):
        code = main(["batch", workload_file])
        assert code == 0
        out = capsys.readouterr().out
        assert "bigrid-label" in out
        assert "session   :" in out and "3 queries" in out

    def test_batch_stats_json(self, workload_file, capsys):
        code = main(["batch", workload_file, "--stats"])
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert [entry["r"] for entry in payload["results"]] == [4.9, 4.1, 4.5]
        algorithms = [entry["algorithm"] for entry in payload["results"]]
        assert algorithms == ["bigrid", "bigrid-label", "bigrid-label"]
        assert len(payload["results"][2]["topk"]) == 3
        assert payload["session"]["label_hits"] == 2
        assert all(entry["exact"] for entry in payload["results"])

    def test_batch_timeout_marks_single_request(self, tmp_path, dataset_file, capsys):
        path = tmp_path / "timeout.json"
        path.write_text(json.dumps({
            "dataset": "data.npz",
            "queries": [4.9, {"r": 4.5, "timeout_ms": 0.0001}],
        }))
        code = main(["batch", str(path), "--stats"])
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        doomed = payload["results"][1]
        assert not doomed["exact"] and doomed["winner"] == -1
        assert payload["results"][0]["exact"]
        assert payload["session"]["timeouts"] == 1

    def test_batch_backend_override(self, workload_file, capsys):
        code = main(["batch", workload_file, "--backend", "roaring"])
        assert code == 0
        assert "roaring" in capsys.readouterr().out

    @pytest.mark.parametrize("body", [
        "not json at all",
        '["just", "a", "list"]',
        '{"queries": [1.0]}',
        '{"dataset": "data.npz", "queries": []}',
    ])
    def test_malformed_workload_exit_code(self, tmp_path, capsys, body):
        # Malformed workload *content* is the caller's bug: exit 11
        # (InvalidQueryError), never a raw traceback.  Only an unreadable
        # file (below) is corrupt-data territory.
        path = tmp_path / "bad.json"
        path.write_text(body)
        code = main(["batch", str(path)])
        assert code == 11
        assert "InvalidQueryError" in capsys.readouterr().err

    def test_missing_workload_exit_code(self, tmp_path, capsys):
        code = main(["batch", str(tmp_path / "absent.json")])
        assert code == 12

    def test_invalid_request_exit_code(self, tmp_path, dataset_file, capsys):
        path = tmp_path / "bad_request.json"
        path.write_text(json.dumps({
            "dataset": "data.npz", "queries": [{"r": -1.0}],
        }))
        code = main(["batch", str(path)])
        assert code == 11
        assert "InvalidQueryError" in capsys.readouterr().err

    def test_non_numeric_request_field_exit_code(self, tmp_path, dataset_file, capsys):
        # A junk value inside an otherwise well-formed workload must come
        # out as InvalidQueryError too, not as a float() traceback.
        path = tmp_path / "junk_field.json"
        path.write_text(json.dumps({
            "dataset": "data.npz", "queries": [{"r": "abc"}],
        }))
        code = main(["batch", str(path)])
        assert code == 11
        err = capsys.readouterr().err
        assert "InvalidQueryError" in err and "Traceback" not in err
