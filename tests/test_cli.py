"""Tests for the command-line interface."""

import numpy as np
import pytest

from repro.cli import main
from repro.datasets import save_collection
from repro.datasets.trajectories import make_trajectories

from conftest import random_collection


@pytest.fixture
def dataset_file(tmp_path):
    path = tmp_path / "data.npz"
    save_collection(path, random_collection(n=25, mean_points=5, seed=121))
    return str(path)


@pytest.fixture
def temporal_file(tmp_path):
    path = tmp_path / "temporal.npz"
    save_collection(path, make_trajectories(n=20, points_per_trajectory=8, seed=3))
    return str(path)


class TestGenerate:
    def test_generate_writes_file(self, tmp_path, capsys):
        out = tmp_path / "gen.npz"
        code = main(["generate", "bird-2", "--scale", "0.05", "-o", str(out)])
        assert code == 0
        assert out.exists()
        assert "wrote" in capsys.readouterr().out

    def test_unknown_dataset_rejected(self, tmp_path):
        with pytest.raises(SystemExit):
            main(["generate", "mars", "-o", str(tmp_path / "x.npz")])


class TestStats:
    def test_stats_prints_table(self, dataset_file, capsys):
        assert main(["stats", dataset_file]) == 0
        out = capsys.readouterr().out
        assert "statistic" in out
        assert "nm" in out


class TestQuery:
    def test_basic_query(self, dataset_file, capsys):
        assert main(["query", dataset_file, "-r", "2.0"]) == 0
        out = capsys.readouterr().out
        assert "winner" in out and "bigrid" in out

    def test_topk_query(self, dataset_file, capsys):
        assert main(["query", dataset_file, "-r", "2.0", "--topk", "3"]) == 0
        out = capsys.readouterr().out
        assert "#1:" in out and "#3:" in out

    def test_temporal_query(self, temporal_file, capsys):
        assert main(["query", temporal_file, "-r", "3.0", "--delta", "2.0"]) == 0
        assert "bigrid-temporal" in capsys.readouterr().out

    def test_temporal_topk_conflict(self, temporal_file, capsys):
        code = main(["query", temporal_file, "-r", "3.0", "--delta", "2.0", "--topk", "3"])
        assert code == 2
        assert "not supported" in capsys.readouterr().err

    def test_sampled_query(self, dataset_file, capsys):
        assert main(["query", dataset_file, "-r", "2.0", "--sample", "0.5"]) == 0

    def test_plain_backend(self, dataset_file):
        assert main(["query", dataset_file, "-r", "2.0", "--backend", "plain"]) == 0


class TestCompare:
    def test_compare_agreement(self, dataset_file, capsys):
        assert main(["compare", dataset_file, "-r", "2.0"]) == 0
        out = capsys.readouterr().out
        for name in ("nl", "sg", "bigrid"):
            assert name in out

    def test_compare_subset(self, dataset_file, capsys):
        code = main(
            ["compare", dataset_file, "-r", "2.0", "--algorithms", "bigrid", "nl-kdtree"]
        )
        assert code == 0
        assert "nl-kdtree" in capsys.readouterr().out


class TestModuleEntry:
    def test_python_dash_m(self, dataset_file):
        import subprocess
        import sys

        proc = subprocess.run(
            [sys.executable, "-m", "repro", "stats", dataset_file],
            capture_output=True,
            text=True,
        )
        assert proc.returncode == 0
        assert "statistic" in proc.stdout


class TestFailureModes:
    """The error taxonomy maps to distinct exit codes; anytime answers are
    flagged; REPRO_FAULTS arms the injector for one process."""

    def test_timeout_exit_code(self, dataset_file, capsys):
        code = main(["query", dataset_file, "-r", "2.0", "--timeout-ms", "0.0001"])
        assert code == 13
        err = capsys.readouterr().err
        assert "QueryTimeout" in err and "grid_mapping" in err

    def test_corrupt_data_exit_code(self, tmp_path, capsys):
        path = tmp_path / "mangled.npz"
        path.write_bytes(b"not an archive at all")
        code = main(["query", str(path), "-r", "2.0"])
        assert code == 12
        assert "CorruptDataError" in capsys.readouterr().err

    def test_invalid_query_exit_code(self, dataset_file, capsys):
        code = main(["query", dataset_file, "-r", "-3.0"])
        assert code == 11
        assert "InvalidQueryError" in capsys.readouterr().err

    def test_env_injected_fault_exit_code(self, dataset_file, capsys, monkeypatch):
        monkeypatch.setenv("REPRO_FAULTS", "grid_mapping:fail")
        code = main(["query", dataset_file, "-r", "2.0"])
        assert code == 16
        assert "InjectedFault" in capsys.readouterr().err

    def test_anytime_answer_is_marked_inexact(self, dataset_file, capsys, monkeypatch):
        # Injected latency burns the whole budget before verification, so
        # the deadline expires there and the CLI reports an anytime answer.
        monkeypatch.setenv("REPRO_FAULTS", "verification:latency:1:400")
        code = main(["query", dataset_file, "-r", "2.0", "--timeout-ms", "200"])
        assert code == 0
        out = capsys.readouterr().out
        assert "inexact (deadline)" in out
        assert "anytime" in out

    def test_parallel_task_kill_falls_back_to_serial(
        self, dataset_file, capsys, monkeypatch
    ):
        monkeypatch.setenv("REPRO_FAULTS", "partition_task:fail:1:0:2")
        code = main(
            ["query", dataset_file, "-r", "2.0", "--cores", "2", "--retries", "0"]
        )
        assert code == 0
        assert "serial_fallback" in capsys.readouterr().out

    def test_faults_env_uninstalled_after_main(self, dataset_file, monkeypatch):
        from repro import faults

        monkeypatch.setenv("REPRO_FAULTS", "io:latency:1:0")
        assert main(["query", dataset_file, "-r", "2.0"]) == 0
        assert faults.active() is None
