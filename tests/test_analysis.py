"""Tests for the interaction-analysis layer."""

import numpy as np
import pytest
from scipy.spatial.distance import cdist

from repro.analysis import (
    all_scores,
    interacting_partners,
    interaction_graph,
    score_histogram,
)
from repro.core.engine import MIOEngine

from conftest import oracle_scores, random_collection


def oracle_partners(collection, r, oid):
    partners = []
    for other in range(collection.n):
        if other == oid:
            continue
        if np.min(cdist(collection[oid].points, collection[other].points)) <= r:
            partners.append(other)
    return partners


class TestAllScores:
    @pytest.mark.parametrize("r", [1.0, 2.5, 5.0])
    def test_matches_oracle(self, r):
        collection = random_collection(n=30, mean_points=6, seed=161)
        assert all_scores(collection, r) == oracle_scores(collection, r)

    def test_max_matches_engine(self):
        collection = random_collection(n=25, mean_points=5, seed=162)
        scores = all_scores(collection, 2.0)
        assert max(scores) == MIOEngine(collection).query(2.0).score

    def test_plain_backend(self):
        collection = random_collection(n=15, mean_points=4, seed=163)
        assert all_scores(collection, 2.0, backend="plain") == oracle_scores(
            collection, 2.0
        )


class TestPartners:
    @pytest.mark.parametrize("oid", [0, 7, 19])
    def test_matches_oracle(self, oid):
        collection = random_collection(n=20, mean_points=5, seed=164)
        assert interacting_partners(collection, 2.0, oid) == oracle_partners(
            collection, 2.0, oid
        )

    def test_symmetry(self):
        collection = random_collection(n=15, mean_points=4, seed=165)
        for oid in range(collection.n):
            for partner in interacting_partners(collection, 2.0, oid):
                assert oid in interacting_partners(collection, 2.0, partner)

    def test_invalid_oid(self):
        collection = random_collection(n=5, mean_points=3, seed=166)
        with pytest.raises(ValueError):
            interacting_partners(collection, 1.0, 99)


class TestInteractionGraph:
    def test_edges_match_oracle(self):
        collection = random_collection(n=20, mean_points=5, seed=167)
        graph = interaction_graph(collection, 2.0)
        assert graph.number_of_nodes() == collection.n
        for i in range(collection.n):
            expected = set(oracle_partners(collection, 2.0, i))
            assert set(graph.neighbors(i)) == expected

    def test_degrees_are_scores(self):
        collection = random_collection(n=20, mean_points=5, seed=168)
        graph = interaction_graph(collection, 2.0)
        truth = oracle_scores(collection, 2.0)
        assert [graph.degree(i) for i in range(collection.n)] == truth

    def test_max_degree_node_is_mio_answer_score(self):
        collection = random_collection(n=25, mean_points=5, seed=169)
        graph = interaction_graph(collection, 2.0)
        best = max(dict(graph.degree()).values())
        assert best == MIOEngine(collection).query(2.0).score

    def test_node_attributes(self):
        collection = random_collection(n=8, mean_points=4, seed=170)
        graph = interaction_graph(collection, 1.0)
        assert graph.nodes[0]["num_points"] == collection[0].num_points


class TestScoreHistogram:
    def test_counts(self):
        assert score_histogram([0, 1, 1, 3]) == {0: 1, 1: 2, 3: 1}

    def test_sorted_keys(self):
        histogram = score_histogram([5, 2, 2, 9])
        assert list(histogram.keys()) == sorted(histogram.keys())
