"""Differential conformance harness for the compute-kernel layer.

The kernel contract (:mod:`repro.kernels.base`, ``docs/kernels.md``) says
backends are interchangeable *bit-for-bit*: identical cell keys, identical
index structures, identical bound values and candidate sets, identical
scores, identical work counters and memory accounting.  This suite holds
the ``numpy`` backend to the ``python`` reference oracle on every
operation and end to end through every engine, across dimensions, bitset
backends, and traced/untraced pipelines.  Kernel-name resolution policy
(``auto``, the env kill switch, quiet degradation) is covered at the end.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.engine import MIOEngine
from repro.core.objects import ObjectCollection
from repro.core.query import PhaseStats
from repro.errors import InvalidQueryError
from repro.kernels import (
    DISABLE_ENV,
    KERNEL_NAMES,
    PYTHON_KERNEL,
    KernelBackend,
    numpy_kernel_available,
    resolve_kernel,
)
from repro.obs.trace import Tracer
from repro.parallel.engine import ParallelMIOEngine
from repro.progressive import query_progressive
from repro.session import QuerySession

from conftest import random_collection
from test_properties import collections, radii

needs_numpy = pytest.mark.skipif(
    not numpy_kernel_available(), reason="numpy kernel unavailable here"
)

BITSET_BACKENDS = ("ewah", "plain", "roaring")


def numpy_kernel():
    from repro.kernels.numpy_backend import NUMPY_KERNEL

    return NUMPY_KERNEL


# ----------------------------------------------------------------------
# Structural equality helpers
# ----------------------------------------------------------------------


def assert_small_grids_equal(a, b):
    assert a.width == b.width
    assert set(a.cells) == set(b.cells)
    for key, cell_a in a.cells.items():
        cell_b = b.cells[key]
        assert cell_a.bitset.to_int() == cell_b.bitset.to_int(), key
        assert cell_a.distinct_objects == cell_b.distinct_objects
        assert cell_a.first_oid == cell_b.first_oid
        assert cell_a.last_oid == cell_b.last_oid


def assert_large_grids_equal(a, b):
    assert a.width == b.width
    assert set(a.cells) == set(b.cells)
    for key, cell_a in a.cells.items():
        cell_b = b.cells[key]
        assert cell_a.bitset.to_int() == cell_b.bitset.to_int(), key
        assert list(cell_a.postings) == list(cell_b.postings)
        for oid, posting in cell_a.postings.items():
            assert list(posting) == list(cell_b.postings[oid])
        assert cell_a.last_oid == cell_b.last_oid


def assert_bigrids_equal(a, b):
    """Bit-exact index equality: the grid-mapping half of the contract."""
    assert a.r == b.r
    assert a.mapped_points == b.mapped_points
    assert a.key_lists == b.key_lists
    assert a.object_groups == b.object_groups
    assert_small_grids_equal(a.small_grid, b.small_grid)
    assert_large_grids_equal(a.large_grid, b.large_grid)
    assert a.memory_bytes() == b.memory_bytes()


def assert_results_equal(a, b):
    """End-to-end result equality, ignoring only wall-clock fields.

    ``verification_path`` and ``lower_bound_path`` are the two notes that
    legitimately name the backend that ran (they are informational, never
    answer-affecting), so they are excluded from the notes comparison.
    """
    _PATH_NOTES = ("verification_path", "lower_bound_path")
    assert a.algorithm == b.algorithm
    assert a.r == b.r
    assert (a.winner, a.score) == (b.winner, b.score)
    assert a.topk == b.topk
    assert a.counters == b.counters
    assert a.memory_bytes == b.memory_bytes
    assert a.exact == b.exact
    notes_a = {k: v for k, v in a.notes.items() if k not in _PATH_NOTES}
    notes_b = {k: v for k, v in b.notes.items() if k not in _PATH_NOTES}
    assert notes_a == notes_b


# ----------------------------------------------------------------------
# Operation-level conformance
# ----------------------------------------------------------------------


@needs_numpy
class TestOperationConformance:
    @pytest.mark.parametrize("dimension", [2, 3])
    @pytest.mark.parametrize("width", [0.7, 1.0, 4.0])
    def test_cell_keys_match(self, dimension, width):
        rng = np.random.default_rng(dimension)
        points = rng.uniform(-40.0, 40.0, size=(200, dimension))
        assert numpy_kernel().cell_keys(points, width) == PYTHON_KERNEL.cell_keys(
            points, width
        )

    def test_cell_keys_negative_and_boundary_coordinates(self):
        points = np.array([[-3.0, -0.5], [0.0, 0.0], [2.0, -2.0], [1.999, 2.001]])
        assert numpy_kernel().cell_keys(points, 1.0) == PYTHON_KERNEL.cell_keys(
            points, 1.0
        )

    @pytest.mark.parametrize("backend", BITSET_BACKENDS)
    @pytest.mark.parametrize("dimension", [2, 3])
    @pytest.mark.parametrize("r", [0.8, 2.5, 6.0])
    def test_build_bigrid_bit_exact(self, backend, dimension, r):
        collection = random_collection(
            n=30, mean_points=6, dimension=dimension, seed=dimension * 7
        )
        ref = PYTHON_KERNEL.build_bigrid(collection, r, backend=backend)
        got = numpy_kernel().build_bigrid(collection, r, backend=backend)
        assert_bigrids_equal(ref, got)

    @pytest.mark.parametrize("r", [0.8, 3.0])
    def test_lower_bounds_bit_exact(self, r):
        collection = random_collection(n=35, mean_points=7, seed=5)
        ref_grid = PYTHON_KERNEL.build_bigrid(collection, r)
        got_grid = numpy_kernel().build_bigrid(collection, r)
        ref_stats, got_stats = PhaseStats("lower"), PhaseStats("lower")
        ref = PYTHON_KERNEL.lower_bounds(ref_grid, keep_bitsets=True, stats=ref_stats)
        got = numpy_kernel().lower_bounds(got_grid, keep_bitsets=True, stats=got_stats)
        assert ref.values == got.values
        assert ref.tau_max == got.tau_max
        assert ref_stats.counters == got_stats.counters
        assert [
            0 if bits is None else bits.to_int() for bits in ref.bitsets
        ] == [0 if bits is None else bits.to_int() for bits in got.bitsets]

    @pytest.mark.parametrize("r", [0.8, 3.0])
    def test_upper_bounds_bit_exact(self, r):
        collection = random_collection(n=35, mean_points=7, seed=9)
        ref_grid = PYTHON_KERNEL.build_bigrid(collection, r)
        got_grid = numpy_kernel().build_bigrid(collection, r)
        tau = PYTHON_KERNEL.lower_bounds(ref_grid).tau_max
        ref_stats, got_stats = PhaseStats("upper"), PhaseStats("upper")
        ref = PYTHON_KERNEL.upper_bounds(ref_grid, tau, stats=ref_stats)
        got = numpy_kernel().upper_bounds(got_grid, tau, stats=got_stats)
        assert ref.candidates == got.candidates
        assert ref_stats.counters == got_stats.counters
        # The sealed adjacency unions must agree cell by cell.
        for key, cell in ref_grid.large_grid.cells.items():
            assert cell.adj_int == got_grid.large_grid.cells[key].adj_int, key
        assert ref_grid.large_grid.adj_computed == got_grid.large_grid.adj_computed

    def test_any_within_boundary_is_inclusive(self):
        point = np.zeros(2)
        exact = np.array([[3.0, 4.0]])  # distance exactly 5
        for kernel in (PYTHON_KERNEL, numpy_kernel()):
            assert kernel.any_within(exact, point, 25.0)
            assert not kernel.any_within(exact, point, 25.0 - 1e-9)

    @pytest.mark.parametrize("rows", [1, 255, 256, 257, 513, 1000])
    def test_any_within_matches_across_chunk_sizes(self, rows):
        # 256 is the numpy backend's early-exit chunk size; straddle it.
        rng = np.random.default_rng(rows)
        candidates = rng.uniform(-10.0, 10.0, size=(rows, 3))
        point = rng.uniform(-10.0, 10.0, size=3)
        for r_squared in (0.5, 20.0, 1e6):
            assert numpy_kernel().any_within(
                candidates, point, r_squared
            ) == PYTHON_KERNEL.any_within(candidates, point, r_squared)

    def test_any_within_hit_only_in_last_chunk(self):
        candidates = np.full((600, 2), 50.0)
        candidates[-1] = (0.1, 0.1)
        point = np.zeros(2)
        assert numpy_kernel().any_within(candidates, point, 1.0)
        assert not numpy_kernel().any_within(candidates[:-1], point, 1.0)


# ----------------------------------------------------------------------
# verify_candidates: the best-first verification op
# ----------------------------------------------------------------------


class RecordingCandidates(list):
    """A candidate list that records its dequeue order.

    Best-first verification consumes candidates lazily and stops on the
    early-termination threshold (or the deadline), so the sequence of
    dequeued oids *is* the visit order — including the final peeked-but-
    unscored candidate that triggered early exit.  Recording it makes the
    early-exit order a first-class differential observable instead of an
    inference from ``verified_objects``.
    """

    def __init__(self, items):
        super().__init__(items)
        self.visited = []

    def __iter__(self):
        for item in super().__iter__():
            self.visited.append(item[1])
            yield item


def run_verify(kernel, collection, r, backend="ewah", k=1, seed_bitsets=False,
               deadline=None, candidates=None):
    """Run the full filter pipeline with ``kernel`` and verify the survivors.

    Returns ``(result, stats, visited_oids)``.  ``candidates`` overrides the
    upper-bounding output (for hand-built degenerate candidate sets);
    ``seed_bitsets`` exercises the with-label seeding path by feeding the
    lower-bounding union bitsets into verification.
    """
    grid = kernel.build_bigrid(collection, r, backend=backend)
    lower = kernel.lower_bounds(grid, keep_bitsets=seed_bitsets)
    if candidates is None:
        candidates = kernel.upper_bounds(grid, lower.tau_max).candidates
    recorder = RecordingCandidates(candidates)
    stats = PhaseStats("verification")
    initial = (lambda oid: lower.bitsets[oid]) if seed_bitsets else None
    result = kernel.verify_candidates(
        grid, recorder, r, k=k, initial_bitsets=initial, stats=stats,
        deadline=deadline,
    )
    return result, stats, recorder.visited


def assert_verifications_equal(ref, got):
    ref_result, ref_stats, ref_visited = ref
    got_result, got_stats, got_visited = got
    assert ref_result.ranking == got_result.ranking
    assert ref_result.verified == got_result.verified
    assert ref_result.early_terminated == got_result.early_terminated
    assert ref_result.timed_out == got_result.timed_out
    assert ref_stats.counters == got_stats.counters
    assert ref_visited == got_visited
    assert ref_result.path == "reference"
    assert got_result.path.startswith("numpy-")


@needs_numpy
class TestVerifyCandidatesConformance:
    @pytest.mark.parametrize("backend", BITSET_BACKENDS)
    @pytest.mark.parametrize("dimension", [2, 3])
    @pytest.mark.parametrize("r", [0.9, 2.5, 6.0])
    def test_verify_candidates_bit_exact(self, backend, dimension, r):
        collection = random_collection(
            n=40, mean_points=8, dimension=dimension, seed=11 * dimension
        )
        ref = run_verify(PYTHON_KERNEL, collection, r, backend=backend)
        got = run_verify(numpy_kernel(), collection, r, backend=backend)
        assert_verifications_equal(ref, got)

    @pytest.mark.parametrize("k", [1, 3, 10])
    def test_topk_thresholds_match(self, k):
        collection = random_collection(n=45, mean_points=8, seed=41)
        ref = run_verify(PYTHON_KERNEL, collection, 3.0, k=k)
        got = run_verify(numpy_kernel(), collection, 3.0, k=k)
        assert_verifications_equal(ref, got)

    @pytest.mark.parametrize("r", [1.2, 4.0])
    def test_seeded_bitsets_match(self, r):
        # The with-label mode seeds b(o_i) with the lower-bounding union;
        # seeded candidates skip distance work, shrinking the counters —
        # identically on both backends.
        collection = random_collection(n=40, mean_points=8, seed=43)
        ref = run_verify(PYTHON_KERNEL, collection, r, seed_bitsets=True)
        got = run_verify(numpy_kernel(), collection, r, seed_bitsets=True)
        assert_verifications_equal(ref, got)

    @pytest.mark.parametrize("budget", [0.0, 1.0, 3.0, 7.0, 15.0, 40.0])
    def test_deadline_expiry_parity(self, budget):
        # A step clock expires the deadline after exactly ``budget`` reads.
        # Both backends must poll the deadline at the same points (one read
        # per dequeued candidate, one per visited point group), so every
        # budget must cut verification at the same candidate and produce
        # the same settled prefix.
        from repro.resilience import Deadline, ManualClock

        collection = random_collection(n=40, mean_points=8, seed=47)
        ref = run_verify(
            PYTHON_KERNEL, collection, 4.0,
            deadline=Deadline(budget, clock=ManualClock(step=1.0)),
        )
        got = run_verify(
            numpy_kernel(), collection, 4.0,
            deadline=Deadline(budget, clock=ManualClock(step=1.0)),
        )
        assert_verifications_equal(ref, got)

    def test_some_budget_times_out_mid_run(self):
        # Guard the parametrization above against vacuity: the smallest
        # budget must actually fire, and a huge one must not.
        from repro.resilience import Deadline, ManualClock

        collection = random_collection(n=40, mean_points=8, seed=47)
        cut, _, _ = run_verify(
            numpy_kernel(), collection, 4.0,
            deadline=Deadline(0.0, clock=ManualClock(step=1.0)),
        )
        assert cut.timed_out and cut.verified == 0
        full, _, _ = run_verify(
            numpy_kernel(), collection, 4.0,
            deadline=Deadline(1e9, clock=ManualClock(step=1.0)),
        )
        assert not full.timed_out and full.verified > 0

    def test_empty_candidates(self):
        collection = random_collection(n=20, mean_points=5, seed=53)
        ref = run_verify(PYTHON_KERNEL, collection, 2.0, candidates=[])
        got = run_verify(numpy_kernel(), collection, 2.0, candidates=[])
        assert_verifications_equal(ref, got)
        assert ref[0].ranking == []
        assert ref[0].verified == 0

    def test_single_object_collection(self):
        collection = ObjectCollection.from_point_arrays(
            [np.array([[0.0, 0.0], [1.0, 1.0], [0.5, 0.25]])]
        )
        ref = run_verify(PYTHON_KERNEL, collection, 2.0, candidates=[(0, 0)])
        got = run_verify(numpy_kernel(), collection, 2.0, candidates=[(0, 0)])
        assert_verifications_equal(ref, got)
        assert ref[0].ranking == [(0, 0)]

    def test_duplicate_coordinates(self):
        # Objects stacked on identical points: every pair interacts, all
        # postings collapse onto few cells, and scores tie everywhere.
        stack = np.array([[1.0, 1.0], [1.0, 1.0], [2.5, 2.5]])
        collection = ObjectCollection.from_point_arrays([stack.copy() for _ in range(6)])
        ref = run_verify(PYTHON_KERNEL, collection, 1.5)
        got = run_verify(numpy_kernel(), collection, 1.5)
        assert_verifications_equal(ref, got)

    def test_all_tied_upper_bounds(self):
        # Hand-built candidate list where every upper bound ties at n-1:
        # no early exit is possible until the very last dequeue, so the
        # whole collection is verified in oid order on both backends.
        collection = random_collection(n=25, mean_points=6, seed=59)
        tied = [(collection.n - 1, oid) for oid in range(collection.n)]
        ref = run_verify(PYTHON_KERNEL, collection, 2.0, candidates=list(tied))
        got = run_verify(numpy_kernel(), collection, 2.0, candidates=list(tied))
        assert_verifications_equal(ref, got)
        assert ref[2] == [oid for _, oid in tied]

    @given(collection=collections(), r=radii, k=st.integers(min_value=1, max_value=4))
    @settings(max_examples=25, deadline=None)
    def test_hypothesis_verify_parity(self, collection, r, k):
        ref = run_verify(PYTHON_KERNEL, collection, r, k=k)
        got = run_verify(numpy_kernel(), collection, r, k=k)
        assert_verifications_equal(ref, got)


# ----------------------------------------------------------------------
# End-to-end conformance through every engine
# ----------------------------------------------------------------------


@needs_numpy
class TestEngineConformance:
    @pytest.mark.parametrize("backend", BITSET_BACKENDS)
    @pytest.mark.parametrize("dimension", [2, 3])
    def test_query_and_topk_match(self, backend, dimension):
        collection = random_collection(
            n=40, mean_points=8, dimension=dimension, seed=21
        )
        for r in (0.9, 2.5, 6.0):
            ref_engine = MIOEngine(collection, backend=backend, kernel="python")
            got_engine = MIOEngine(collection, backend=backend, kernel="numpy")
            assert_results_equal(ref_engine.query(r), got_engine.query(r))
            assert_results_equal(
                ref_engine.query_topk(r, 5), got_engine.query_topk(r, 5)
            )

    def test_parallel_engine_matches(self):
        collection = random_collection(n=40, mean_points=8, seed=23)
        for r in (1.2, 4.0):
            ref = ParallelMIOEngine(collection, cores=2, kernel="python").query(r)
            got = ParallelMIOEngine(collection, cores=2, kernel="numpy").query(r)
            assert_results_equal(ref, got)

    def test_progressive_state_sequences_match(self):
        collection = random_collection(n=35, mean_points=7, seed=27)
        for r in (1.0, 3.5):
            ref = list(query_progressive(collection, r, kernel="python"))
            got = list(query_progressive(collection, r, kernel="numpy"))
            assert ref == got

    def test_session_label_path_matches(self):
        # Second same-ceiling query runs bigrid-label; the label replay and
        # its filtered rebuild must agree across kernels too.
        collection = random_collection(n=40, mean_points=8, seed=31)
        ref_session = QuerySession(collection, kernel="python")
        got_session = QuerySession(collection, kernel="numpy")
        for r in (3.0, 2.6, 3.0):
            assert_results_equal(ref_session.query(r), got_session.query(r))

    def test_traced_run_matches_untraced(self):
        collection = random_collection(n=30, mean_points=6, seed=33)
        plain = MIOEngine(collection, kernel="numpy").query(2.0)
        traced = MIOEngine(collection, kernel="numpy", tracer=Tracer()).query(2.0)
        assert_results_equal(plain, traced)

    @given(collection=collections(), r=radii)
    @settings(max_examples=25, deadline=None)
    def test_hypothesis_query_parity_2d(self, collection, r):
        ref = MIOEngine(collection, kernel="python").query(r)
        got = MIOEngine(collection, kernel="numpy").query(r)
        assert_results_equal(ref, got)

    @given(collection=collections(dimension=3, max_objects=8), r=radii)
    @settings(max_examples=15, deadline=None)
    def test_hypothesis_query_parity_3d(self, collection, r):
        ref = MIOEngine(collection, kernel="python").query(r)
        got = MIOEngine(collection, kernel="numpy").query(r)
        assert_results_equal(ref, got)


# ----------------------------------------------------------------------
# Kernel-name resolution policy
# ----------------------------------------------------------------------


class TestKernelResolution:
    def test_names_registry(self):
        assert KERNEL_NAMES == ("python", "numpy", "auto")

    def test_python_and_none_resolve_to_reference(self):
        assert resolve_kernel("python") is PYTHON_KERNEL
        assert resolve_kernel(None) is PYTHON_KERNEL

    def test_instance_passes_through(self):
        assert resolve_kernel(PYTHON_KERNEL) is PYTHON_KERNEL
        custom = KernelBackend()
        assert resolve_kernel(custom) is custom

    def test_unknown_name_raises(self):
        with pytest.raises(InvalidQueryError, match="unknown kernel"):
            resolve_kernel("cuda")
        with pytest.raises(InvalidQueryError):
            MIOEngine(random_collection(n=3, mean_points=2), kernel="cuda")

    @needs_numpy
    def test_auto_prefers_numpy(self):
        assert resolve_kernel("auto").name == "numpy"
        assert resolve_kernel("numpy").name == "numpy"

    def test_env_kill_switch_pins_python(self, monkeypatch):
        monkeypatch.setenv(DISABLE_ENV, "1")
        assert not numpy_kernel_available()
        assert resolve_kernel("auto") is PYTHON_KERNEL
        assert resolve_kernel("numpy") is PYTHON_KERNEL

    def test_explicit_numpy_degradation_is_noted(self, monkeypatch):
        monkeypatch.setenv(DISABLE_ENV, "1")
        collection = random_collection(n=10, mean_points=4, seed=1)
        result = MIOEngine(collection, kernel="numpy").query(1.5)
        assert result.notes.get("degraded_kernel") == "numpy->python"
        # "auto" falling back is policy, not degradation: no note.
        auto = MIOEngine(collection, kernel="auto").query(1.5)
        assert "degraded_kernel" not in auto.notes

    def test_python_runs_identically_under_kill_switch(self, monkeypatch):
        collection = random_collection(n=15, mean_points=5, seed=2)
        baseline = MIOEngine(collection, kernel="python").query(2.0)
        monkeypatch.setenv(DISABLE_ENV, "1")
        pinned = MIOEngine(collection, kernel="python").query(2.0)
        assert_results_equal(baseline, pinned)
