"""Concurrent regression tests for the shared cache tiers and session.

Satellite: the three cross-query cache tiers (LabelStore, LargeKeyCache,
LowerBoundCache) are hammered from many threads and must neither corrupt
state nor change answers.  The closing tests drive one shared
QuerySession -- the service's deployment shape -- from a thread pool and
check every answer against a serial reference.
"""

import threading
from concurrent.futures import ThreadPoolExecutor

import numpy as np

from repro.bitset.plain import PlainBitset
from repro.core.engine import MIOEngine
from repro.core.labels import LabelStore, PointLabels
from repro.core.lower_bound import LowerBoundCache, LowerBoundResult
from repro.grid.cache import LargeKeyCache
from repro.grid.keys import compute_keys, large_cell_width
from repro.session import QuerySession

from conftest import random_collection

WORKERS = 8


def hammer(worker, rounds=50):
    """Run ``worker(thread_index, round_index)`` from WORKERS threads."""
    errors = []

    def loop(index):
        try:
            for round_index in range(rounds):
                worker(index, round_index)
        except Exception as exc:  # noqa: BLE001 -- surfaced via the list
            errors.append(exc)

    threads = [threading.Thread(target=loop, args=(i,)) for i in range(WORKERS)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(timeout=60.0)
    assert errors == [], f"worker raised: {errors[:3]}"


class TestLargeKeyCacheConcurrency:
    def test_concurrent_providers_agree_with_direct_computation(self):
        collection = random_collection(10, 6, seed=31)
        cache = LargeKeyCache()
        ceilings = [3, 4, 5]
        expected = {
            (ceil_r, oid): compute_keys(
                collection[oid].points, large_cell_width(float(ceil_r))
            )
            for ceil_r in ceilings
            for oid in range(collection.n)
        }

        def worker(index, round_index):
            ceil_r = ceilings[round_index % len(ceilings)]
            provide = cache.provider(collection, ceil_r)
            oid = (index + round_index) % collection.n
            indices = np.arange(collection[oid].num_points)
            assert provide(oid, indices) == expected[(ceil_r, oid)]

        hammer(worker)
        # Every (ceiling, oid) pair is cached; accounting stayed coherent
        # under contention (concurrent same-key misses may double-count,
        # but hits + misses covers every lookup).
        assert len(cache) == len(expected)
        assert cache.hits + cache.misses == WORKERS * 50

    def test_concurrent_clear_is_safe(self):
        collection = random_collection(6, 5, seed=37)
        cache = LargeKeyCache()

        def worker(index, round_index):
            if index == 0 and round_index % 10 == 0:
                cache.clear()
            provide = cache.provider(collection, 4)
            oid = round_index % collection.n
            provide(oid, np.arange(collection[oid].num_points))

        hammer(worker)


class TestLowerBoundCacheConcurrency:
    @staticmethod
    def _result(slot):
        bitset = PlainBitset()
        for member in range(slot, slot + 10):
            bitset.set(member)
        return LowerBoundResult(
            values=[slot] * 4, tau_max=slot, bitsets=[bitset, None]
        )

    def test_concurrent_get_put_preserves_entries(self):
        cache = LowerBoundCache(max_entries=4)
        for slot in range(4):
            cache.put(float(slot), self._result(slot))

        def worker(index, round_index):
            r = float(round_index % 4)
            hit = cache.get(r, PlainBitset)
            if hit is not None:
                slot = int(r)
                assert hit.tau_max == slot
                assert hit.values == [slot] * 4
                assert list(hit.bitsets[0].iter_set_bits()) == list(
                    range(slot, slot + 10)
                )
                assert hit.bitsets[1] is None

        hammer(worker)

    def test_concurrent_put_respects_capacity(self):
        cache = LowerBoundCache(max_entries=3)

        def worker(index, round_index):
            cache.put(float(index * 100 + round_index), self._result(index))
            cache.get(float(round_index % 7), PlainBitset)

        hammer(worker)
        assert len(cache) <= 3


class TestLabelStoreConcurrency:
    def test_concurrent_put_get_roundtrips(self):
        collection = random_collection(8, 5, seed=41)
        store = LabelStore()

        def worker(index, round_index):
            ceil_r = 3 + round_index % 4
            if not store.has(ceil_r):
                store.put(
                    ceil_r, PointLabels.for_collection(collection, float(ceil_r))
                )
            fetched = store.get(ceil_r)
            if fetched is not None:
                assert fetched.r == float(ceil_r)
                assert len(fetched.arrays) == collection.n

        hammer(worker)
        assert set(store.ceilings()) <= {3, 4, 5, 6}
        assert store.hits > 0
        assert store.hits + store.misses == WORKERS * 50


class TestSharedSessionConcurrency:
    def test_concurrent_queries_match_serial_reference(self):
        collection = random_collection(30, 5, seed=23)
        thresholds = [3.5, 4.0, 4.5, 4.9, 5.2]
        reference = {r: MIOEngine(collection).query(r) for r in thresholds}
        session = QuerySession(collection)

        def run(args):
            _, r = args
            return r, session.query(r)

        jobs = [(i, thresholds[i % len(thresholds)]) for i in range(40)]
        with ThreadPoolExecutor(max_workers=WORKERS) as pool:
            for r, result in pool.map(run, jobs):
                assert result.exact
                assert result.score == reference[r].score
        stats = session.stats()
        assert stats["queries"] == 40

    def test_concurrent_topk_and_query_mix(self):
        collection = random_collection(25, 5, seed=29)
        session = QuerySession(collection)
        expected = MIOEngine(collection).query_topk(4.5, 3)

        def worker(index, round_index):
            if index % 2 == 0:
                result = session.topk(4.5, 3)
                assert [s for _, s in result.topk] == [s for _, s in expected.topk]
            else:
                result = session.query(4.5)
                assert result.score == expected.score

        hammer(worker, rounds=10)
