"""Property-based tests (hypothesis) for the core invariants.

These cover the claims the paper proves:

* EWAH is semantically identical to an uncompressed bitset under every
  operation (footnote 3's "orthogonal to any compressed bitset");
* Lemma 1 / Lemma 2: lower(o) <= tau(o) <= upper(o) for random data;
* the engine's answer equals brute force for arbitrary collections and
  thresholds (Definition 1);
* grid width guarantees hold for arbitrary coordinates, including
  negatives;
* label reuse stays exact.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bitset import EWAHBitset, PlainBitset
from repro.core.engine import MIOEngine
from repro.core.labels import LabelStore
from repro.core.lower_bound import compute_lower_bounds
from repro.core.objects import ObjectCollection
from repro.core.upper_bound import compute_upper_bounds
from repro.grid.bigrid import BIGrid
from repro.grid.keys import large_cell_width, point_key, small_cell_width

from conftest import oracle_scores

# ----------------------------------------------------------------------
# Strategies
# ----------------------------------------------------------------------

bit_indices = st.sets(st.integers(min_value=0, max_value=1500), max_size=60)


@st.composite
def collections(draw, max_objects=12, max_points=6, dimension=2):
    n = draw(st.integers(min_value=2, max_value=max_objects))
    coordinate = st.floats(
        min_value=-30.0, max_value=30.0, allow_nan=False, allow_infinity=False
    )
    arrays = []
    for _ in range(n):
        count = draw(st.integers(min_value=1, max_value=max_points))
        flat = draw(
            st.lists(coordinate, min_size=count * dimension, max_size=count * dimension)
        )
        arrays.append(np.array(flat, dtype=np.float64).reshape(count, dimension))
    return ObjectCollection.from_point_arrays(arrays)


radii = st.floats(min_value=0.1, max_value=15.0, allow_nan=False, allow_infinity=False)


# ----------------------------------------------------------------------
# Bitset laws
# ----------------------------------------------------------------------


@given(bit_indices, bit_indices)
def test_ewah_matches_plain_semantics(xs, ys):
    ewah_x, ewah_y = EWAHBitset.from_indices(xs), EWAHBitset.from_indices(ys)
    plain_x, plain_y = PlainBitset.from_indices(xs), PlainBitset.from_indices(ys)
    assert (ewah_x | ewah_y).to_int() == (plain_x | plain_y).to_int()
    assert (ewah_x & ewah_y).to_int() == (plain_x & plain_y).to_int()
    assert (ewah_x - ewah_y).to_int() == (plain_x - plain_y).to_int()
    assert (ewah_x ^ ewah_y).to_int() == (plain_x ^ plain_y).to_int()


@given(bit_indices)
def test_ewah_round_trips(xs):
    bitset = EWAHBitset.from_indices(xs)
    assert list(bitset.iter_set_bits()) == sorted(xs)
    assert bitset.cardinality() == len(xs)
    assert EWAHBitset.from_int(bitset.to_int()) == bitset
    assert EWAHBitset.deserialize(bitset.serialize()) == bitset


@given(bit_indices, bit_indices)
def test_ewah_or_cardinality_is_union_size(xs, ys):
    union = EWAHBitset.from_indices(xs) | EWAHBitset.from_indices(ys)
    assert union.cardinality() == len(xs | ys)


@given(bit_indices, st.integers(min_value=0, max_value=2000))
def test_ewah_set_arbitrary_position(xs, extra):
    bitset = EWAHBitset.from_indices(xs)
    bitset.set(extra)
    assert list(bitset.iter_set_bits()) == sorted(xs | {extra})


@given(bit_indices)
def test_ewah_never_larger_than_plain_plus_markers(xs):
    """Compression overhead is bounded: at most one marker per dirty word."""
    ewah = EWAHBitset.from_indices(xs)
    plain = PlainBitset.from_indices(xs)
    assert ewah.size_in_bytes() <= 2 * max(plain.size_in_bytes(), 8)


# ----------------------------------------------------------------------
# Grid guarantees
# ----------------------------------------------------------------------

finite_coord = st.floats(min_value=-1e4, max_value=1e4, allow_nan=False)


@given(
    st.lists(finite_coord, min_size=3, max_size=3),
    st.lists(st.floats(min_value=-1.0, max_value=1.0), min_size=3, max_size=3),
    radii,
)
def test_same_small_cell_within_r(origin, direction, r):
    width = small_cell_width(r, 3)
    p = np.array(origin)
    q = p + np.array(direction) * (width / 2.01)
    if point_key(p, width) == point_key(q, width):
        assert np.linalg.norm(p - q) <= r + 1e-6


@given(
    st.lists(finite_coord, min_size=3, max_size=3),
    st.lists(st.floats(min_value=-1.0, max_value=1.0), min_size=3, max_size=3),
    radii,
)
def test_within_r_means_adjacent_large_cells(origin, offset, r):
    width = large_cell_width(r)
    p = np.array(origin)
    q = p + np.array(offset) * (r / np.sqrt(3.0))
    assert np.linalg.norm(p - q) <= r + 1e-9
    key_p, key_q = point_key(p, width), point_key(q, width)
    assert all(abs(a - b) <= 1 for a, b in zip(key_p, key_q))


# ----------------------------------------------------------------------
# Engine vs oracle
# ----------------------------------------------------------------------


@settings(max_examples=25, deadline=None)
@given(collections(), radii)
def test_engine_matches_oracle(collection, r):
    truth = oracle_scores(collection, r)
    result = MIOEngine(collection).query(r)
    assert result.score == max(truth)
    assert truth[result.winner] == result.score


@settings(max_examples=15, deadline=None)
@given(collections(dimension=3), radii)
def test_engine_matches_oracle_3d(collection, r):
    truth = oracle_scores(collection, r)
    assert MIOEngine(collection).query(r).score == max(truth)


@settings(max_examples=20, deadline=None)
@given(collections(), radii)
def test_bounds_sandwich_truth(collection, r):
    bigrid = BIGrid.build(collection, r=r)
    lower = compute_lower_bounds(bigrid)
    upper = compute_upper_bounds(bigrid, tau_max_low=0)
    truth = oracle_scores(collection, r)
    for oid in range(collection.n):
        assert lower.values[oid] <= truth[oid] <= upper.values[oid]


@settings(max_examples=15, deadline=None)
@given(collections(), radii, st.integers(min_value=1, max_value=5))
def test_topk_matches_oracle(collection, r, k):
    truth = sorted(oracle_scores(collection, r), reverse=True)
    result = MIOEngine(collection).query_topk(r, k)
    assert [score for _, score in result.topk] == truth[: min(k, collection.n)]


@settings(max_examples=15, deadline=None)
@given(collections(), radii)
def test_label_replay_is_exact(collection, r):
    store = LabelStore()
    engine = MIOEngine(collection, label_store=store)
    first = engine.query(r)
    second = engine.query(r)
    assert second.algorithm == "bigrid-label"
    assert second.score == first.score


@settings(max_examples=10, deadline=None)
@given(collections(), st.floats(min_value=1.05, max_value=1.95, allow_nan=False))
def test_same_ceiling_label_reuse_safe_mode(collection, r_prime):
    """Labels from r=2.0 reused at any r' with ceil(r') == 2 stay exact."""
    store = LabelStore()
    engine = MIOEngine(collection, label_store=store, label_reuse="safe")
    engine.query(2.0)
    truth = oracle_scores(collection, r_prime)
    result = engine.query(r_prime)
    assert result.algorithm == "bigrid-label"
    assert result.score == max(truth)


# ----------------------------------------------------------------------
# Temporal, parallel, backend, and segmentation properties
# ----------------------------------------------------------------------


@st.composite
def temporal_collections(draw, max_objects=8, max_points=4):
    n = draw(st.integers(min_value=2, max_value=max_objects))
    coordinate = st.floats(min_value=-20.0, max_value=20.0, allow_nan=False)
    timestamp = st.floats(min_value=0.0, max_value=10.0, allow_nan=False)
    arrays = []
    times = []
    for _ in range(n):
        count = draw(st.integers(min_value=1, max_value=max_points))
        flat = draw(st.lists(coordinate, min_size=count * 2, max_size=count * 2))
        arrays.append(np.array(flat, dtype=np.float64).reshape(count, 2))
        times.append(
            np.array(draw(st.lists(timestamp, min_size=count, max_size=count)))
        )
    return ObjectCollection.from_point_arrays(arrays, times)


@settings(max_examples=15, deadline=None)
@given(temporal_collections(), radii, st.floats(min_value=0.0, max_value=5.0, allow_nan=False))
def test_temporal_engine_matches_oracle(collection, r, delta):
    from repro.core.temporal import TemporalMIOEngine

    from conftest import oracle_temporal_scores

    truth = oracle_temporal_scores(collection, r, delta)
    result = TemporalMIOEngine(collection).query(r, delta)
    assert result.score == max(truth)
    assert truth[result.winner] == result.score


@settings(max_examples=12, deadline=None)
@given(collections(), radii, st.integers(min_value=1, max_value=6))
def test_parallel_engine_matches_oracle(collection, r, cores):
    from repro.parallel.engine import ParallelMIOEngine

    truth = oracle_scores(collection, r)
    result = ParallelMIOEngine(collection, cores=cores).query(r)
    assert result.score == max(truth)
    assert truth[result.winner] == result.score


@settings(max_examples=10, deadline=None)
@given(collections(), radii)
def test_roaring_backend_matches_oracle(collection, r):
    truth = oracle_scores(collection, r)
    assert MIOEngine(collection, backend="roaring").query(r).score == max(truth)


@settings(max_examples=30, deadline=None)
@given(
    st.integers(min_value=1, max_value=400),
    st.integers(min_value=2, max_value=60),
)
def test_segmentation_partitions_track(track_length, segment_length):
    from repro.datasets.segmentation import split_trajectory

    points = np.arange(track_length * 2, dtype=np.float64).reshape(track_length, 2)
    segments = split_trajectory(points, segment_length=segment_length)
    rebuilt = np.vstack([segment_points for segment_points, _ in segments])
    # Segments partition the track exactly, in order.
    assert np.array_equal(rebuilt, points)
    # Balanced: no segment more than twice the target (and none empty).
    for segment_points, _times in segments:
        assert 1 <= len(segment_points) <= 2 * segment_length


# ----------------------------------------------------------------------
# Spatial index properties (kd-tree, R-tree)
# ----------------------------------------------------------------------


point_arrays = st.lists(
    st.lists(
        st.floats(min_value=-100.0, max_value=100.0, allow_nan=False),
        min_size=2,
        max_size=2,
    ),
    min_size=1,
    max_size=60,
)


@settings(max_examples=40, deadline=None)
@given(point_arrays, st.lists(st.floats(min_value=-100.0, max_value=100.0, allow_nan=False), min_size=2, max_size=2), radii)
def test_kdtree_nearest_matches_brute_force(rows, query, r):
    from repro.spatial.kdtree import KDTree

    points = np.array(rows, dtype=np.float64)
    query = np.array(query, dtype=np.float64)
    tree = KDTree(points)
    brute = float(np.min(np.linalg.norm(points - query, axis=1)))
    assert abs(tree.nearest(query) - brute) < 1e-9
    assert tree.any_within(query, r) == (brute <= r)


@settings(max_examples=25, deadline=None)
@given(point_arrays, radii)
def test_rtree_query_matches_brute_force(rows, r):
    from repro.spatial.rtree import RTree, _gap_squared

    points = np.array(rows, dtype=np.float64)
    boxes = [(point, point + 1.0) for point in points]
    tree = RTree(boxes)
    tree.validate()
    lo, hi = np.array([-5.0, -5.0]), np.array([5.0, 5.0])
    expected = {
        index
        for index, (blo, bhi) in enumerate(boxes)
        if _gap_squared(blo, bhi, lo, hi) <= r * r
    }
    assert set(tree.query_within(lo, hi, r)) == expected


# ----------------------------------------------------------------------
# Metamorphic properties
#
# Definition 1 is purely relational: tau depends only on pairwise
# distances, so rigid translations leave every score unchanged and
# uniform scalings leave them unchanged when r scales along.  The
# transforms below are chosen to commute *exactly* with IEEE-754
# arithmetic -- integer coordinates and translations (exact below 2^53)
# and power-of-two scale factors -- so the full ranking must match
# bit-for-bit, not just approximately.  Full rankings (query_topk with
# k = n) are compared instead of winners because tie-breaks among
# equal-score objects may legitimately resolve differently once grid
# keys move.
# ----------------------------------------------------------------------


@st.composite
def integer_collections(draw, max_objects=10, max_points=5, dimension=2):
    n = draw(st.integers(min_value=2, max_value=max_objects))
    coordinate = st.integers(min_value=-30, max_value=30)
    arrays = []
    for _ in range(n):
        count = draw(st.integers(min_value=1, max_value=max_points))
        flat = draw(
            st.lists(coordinate, min_size=count * dimension, max_size=count * dimension)
        )
        arrays.append(np.array(flat, dtype=np.float64).reshape(count, dimension))
    return ObjectCollection.from_point_arrays(arrays)


def full_ranking(collection, r):
    return dict(MIOEngine(collection).query_topk(r, collection.n).topk)


def translated(collection, offset):
    return ObjectCollection.from_point_arrays(
        [collection[oid].points + offset for oid in range(collection.n)]
    )


@settings(max_examples=30, deadline=None)
@given(
    collection=integer_collections(),
    r=radii,
    shift=st.tuples(
        st.integers(min_value=-1000, max_value=1000),
        st.integers(min_value=-1000, max_value=1000),
    ),
)
def test_integer_translation_preserves_all_scores(collection, r, shift):
    moved = translated(collection, np.array(shift, dtype=np.float64))
    assert full_ranking(moved, r) == full_ranking(collection, r)


@settings(max_examples=30, deadline=None)
@given(
    collection=integer_collections(),
    r=radii,
    log2_factor=st.integers(min_value=-3, max_value=4),
)
def test_power_of_two_scaling_preserves_all_scores(collection, r, log2_factor):
    factor = 2.0 ** log2_factor
    scaled = ObjectCollection.from_point_arrays(
        [collection[oid].points * factor for oid in range(collection.n)]
    )
    assert full_ranking(scaled, r * factor) == full_ranking(collection, r)


def _interactors(collection, oid, r):
    """Objects within distance r of object oid, by exact squared distance."""
    r_squared = r * r
    result = set()
    for other in range(collection.n):
        if other == oid:
            continue
        diff = collection[oid].points[:, None, :] - collection[other].points[None, :, :]
        if np.einsum("ijk,ijk->ij", diff, diff).min() <= r_squared:
            result.add(other)
    return result


@settings(max_examples=25, deadline=None)
@given(collection=collections(max_objects=8, max_points=4), r=radii, data=st.data())
def test_duplicating_an_object_increments_its_interactors(collection, r, data):
    target = data.draw(
        st.integers(min_value=0, max_value=collection.n - 1), label="target"
    )
    base = full_ranking(collection, r)
    interactors = _interactors(collection, target, r)

    arrays = [collection[oid].points for oid in range(collection.n)]
    duplicated = ObjectCollection.from_point_arrays(
        arrays + [arrays[target].copy()]
    )
    after = full_ranking(duplicated, r)

    # The copy interacts with the original (distance 0) and inherits all
    # of its interactions; everyone who interacted with the target gains
    # exactly the copy; everyone else is untouched.
    assert after[collection.n] == base[target] + 1
    for oid in range(collection.n):
        expected_gain = 1 if (oid == target or oid in interactors) else 0
        assert after[oid] == base[oid] + expected_gain, oid
