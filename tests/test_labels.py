"""Tests for the labeling scheme and its reuse across queries (Sec. III-D)."""

import math

import numpy as np
import pytest

from repro.core.engine import MIOEngine
from repro.core.labels import ALL_BITS, LabelStore, PointLabels

from conftest import oracle_scores, random_collection


class TestPointLabels:
    def test_initialized_to_all_ones(self):
        labels = PointLabels([3, 2], r=4.0)
        assert all(np.all(arr == ALL_BITS) for arr in labels.arrays)
        assert labels.total_points() == 5
        assert labels.size_in_bytes() == 5

    def test_masks_follow_definition_4(self):
        labels = PointLabels([4], r=4.0)
        labels.mark_grid_useless(0, [0])      # 0**
        labels.mark_upper_skippable(0, [1])   # 10*
        labels.mark_verify_skippable(0, [2])  # 1*0
        assert labels.grid_mask(0).tolist() == [False, True, True, True]
        assert labels.upper_mask(0).tolist() == [False, False, True, True]
        assert labels.verify_mask(0).tolist() == [False, True, False, True]

    def test_count_cleared(self):
        labels = PointLabels([5], r=4.0)
        labels.mark_grid_useless(0, [0, 1])
        labels.mark_verify_skippable(0, [4])
        cleared = labels.count_cleared()
        assert cleared == {"grid": 2, "upper": 0, "verify": 1}


class TestLabelStore:
    def test_memory_store_round_trip(self):
        store = LabelStore()
        labels = PointLabels([2, 3], r=4.5)
        labels.mark_grid_useless(0, [1])
        store.put(5, labels)
        assert store.has(5)
        loaded = store.get(5)
        assert loaded.r == 4.5
        assert loaded.grid_mask(0).tolist() == [True, False]

    def test_disk_store_round_trip(self, tmp_path):
        store = LabelStore(tmp_path)
        labels = PointLabels([2, 3], r=3.7)
        labels.mark_upper_skippable(1, [0, 2])
        store.put(4, labels)
        # A brand-new store instance must read from disk.
        fresh = LabelStore(tmp_path)
        assert fresh.has(4)
        loaded = fresh.get(4)
        assert loaded.r == 3.7
        assert loaded.upper_mask(1).tolist() == [False, True, False]

    def test_get_missing_returns_none(self, tmp_path):
        assert LabelStore(tmp_path).get(9) is None
        assert LabelStore().get(9) is None

    def test_clear(self, tmp_path):
        store = LabelStore(tmp_path)
        store.put(4, PointLabels([1], r=4.0))
        store.clear()
        assert not store.has(4)
        assert not list(tmp_path.glob("*.npz"))

    def test_ceilings_lists_memory_and_disk(self, tmp_path):
        store = LabelStore(tmp_path)
        store.put(4, PointLabels([1], r=4.0))
        store.put(7, PointLabels([1], r=6.5))
        # A fresh instance sees only the on-disk archives.
        assert LabelStore(tmp_path).ceilings() == [4, 7]
        # Foreign files that merely match the glob are skipped, not parsed.
        (tmp_path / "labels_ceil_junk.npz").write_bytes(b"junk")
        assert LabelStore(tmp_path).ceilings() == [4, 7]
        assert LabelStore().ceilings() == []

    def test_corrupt_archive_raises_taxonomy_error(self, tmp_path):
        from repro.errors import CorruptDataError

        store = LabelStore(tmp_path)
        (tmp_path / "labels_ceil_3.npz").write_bytes(b"not an archive")
        with pytest.raises(CorruptDataError):
            store.get(3)


class TestEngineLabelReuse:
    def test_first_query_labels_second_reuses(self, clustered_collection):
        store = LabelStore()
        engine = MIOEngine(clustered_collection, label_store=store)
        r = 2.3
        first = engine.query(r)
        second = engine.query(r)
        assert first.algorithm == "bigrid"
        assert second.algorithm == "bigrid-label"
        assert second.score == first.score
        assert "label_output" in first.phases
        assert "label_input" in second.phases

    def test_with_label_run_is_exact_for_same_r(self):
        for seed in (51, 52, 53):
            collection = random_collection(n=30, mean_points=7, seed=seed)
            store = LabelStore()
            engine = MIOEngine(collection, label_store=store)
            r = 2.0
            truth = max(oracle_scores(collection, r))
            engine.query(r)
            assert engine.query(r).score == truth

    def test_same_ceiling_reuse_safe_mode_is_exact(self):
        for seed in (54, 55):
            collection = random_collection(n=30, mean_points=7, seed=seed)
            store = LabelStore()
            engine = MIOEngine(collection, label_store=store, label_reuse="safe")
            engine.query(2.8)  # produces labels for ceil = 3
            for r_prime in (2.2, 2.5, 3.0):
                assert math.ceil(r_prime) == 3
                truth = max(oracle_scores(collection, r_prime))
                result = engine.query(r_prime)
                assert result.algorithm == "bigrid-label"
                assert result.score == truth

    def test_with_label_skips_work(self):
        collection = random_collection(n=40, mean_points=10, seed=56)
        store = LabelStore()
        engine = MIOEngine(collection, label_store=store)
        r = 2.0
        first = engine.query(r)
        second = engine.query(r)
        # The labeled run maps no more points and processes no more groups.
        assert second.counters["mapped_points"] <= first.counters["mapped_points"]
        assert (
            second.counters["upper_groups_processed"]
            <= first.counters["upper_groups_processed"]
        )

    def test_labels_pruning_reduces_memory(self):
        # Isolated objects' points get label 0** and vanish from the index.
        collection = random_collection(
            n=20, mean_points=6, seed=57, extent=4000.0, clustered=False
        )
        store = LabelStore()
        engine = MIOEngine(collection, label_store=store)
        first = engine.query(1.0)
        second = engine.query(1.0)
        assert second.counters["mapped_points"] < first.counters["mapped_points"]
        assert second.memory_bytes < first.memory_bytes

    def test_different_ceiling_triggers_fresh_labeling(self, clustered_collection):
        store = LabelStore()
        engine = MIOEngine(clustered_collection, label_store=store)
        engine.query(2.5)  # ceil 3
        result = engine.query(3.5)  # ceil 4: no labels yet
        assert result.algorithm == "bigrid"
        assert store.has(3) and store.has(4)

    def test_paper_mode_same_r_still_exact(self):
        collection = random_collection(n=25, mean_points=6, seed=58)
        store = LabelStore()
        engine = MIOEngine(collection, label_store=store, label_reuse="paper")
        r = 2.0
        truth = max(oracle_scores(collection, r))
        engine.query(r)
        assert engine.query(r).score == truth

    def test_topk_with_labels_is_exact(self):
        collection = random_collection(n=30, mean_points=6, seed=59)
        store = LabelStore()
        engine = MIOEngine(collection, label_store=store)
        r = 2.0
        engine.query(r)
        truth = sorted(oracle_scores(collection, r), reverse=True)[:4]
        result = engine.query_topk(r, 4)
        assert result.algorithm == "bigrid-label"
        assert [score for _, score in result.topk] == truth

    def test_disk_label_store_with_engine(self, tmp_path):
        collection = random_collection(n=20, mean_points=5, seed=60)
        r = 2.0
        truth = max(oracle_scores(collection, r))
        first_engine = MIOEngine(collection, label_store=LabelStore(tmp_path))
        first_engine.query(r)
        # Fresh engine + fresh store: labels come purely from disk.
        second_engine = MIOEngine(collection, label_store=LabelStore(tmp_path))
        result = second_engine.query(r)
        assert result.algorithm == "bigrid-label"
        assert result.score == truth


class TestLabeling3PaperModeCounterexample:
    """A constructed instance where the paper's Labeling-3 reuse under-counts.

    Layout (2-D, label query r = 2.0, reuse query r' = 1.5, both ceil to 2):

    * o_0 has three points: q0 and q1 interact with o_1/o_2 at distance 1.7
      (inside r, outside r'), and q interacts with both at distance 1.4
      (inside r').
    * During the labeling run, q0/q1 confirm o_1/o_2 first, so when q's
      turn comes every nearby object is already confirmed and q is labeled
      "skippable in verification" (Labeling-3).
    * At r' the 1.7-pairs vanish, so the skipped q was o_0's only source of
      confirmations: paper-mode reuse scores o_0 as 0 although its true
      score is 2 -- and the reported MIO answer is wrong.

    The default safe mode withholds Labeling-3 for r' != r and stays exact.
    This is the deviation documented in DESIGN.md section 3.
    """

    @staticmethod
    def _collection():
        import numpy as np
        from repro.core.objects import ObjectCollection

        o0 = np.array([[0.5, 0.5], [0.5, 20.5], [40.5, 0.5]])      # q0, q1, q
        o1 = np.array([[2.2, 0.5], [41.9, 0.5]])                   # p0, p
        o2 = np.array([[2.2, 20.5], [40.5, 1.9]])                  # p1, p2
        return ObjectCollection.from_point_arrays([o0, o1, o2])

    def test_truth(self):
        collection = self._collection()
        assert oracle_scores(collection, 2.0) == [2, 2, 2]
        assert oracle_scores(collection, 1.5) == [2, 1, 1]

    def test_paper_mode_under_counts(self):
        collection = self._collection()
        store = LabelStore()
        engine = MIOEngine(collection, label_store=store, label_reuse="paper")
        label_run = engine.query(2.0)
        assert label_run.score == 2
        reused = engine.query(1.5)
        assert reused.algorithm == "bigrid-label"
        # The paper-mode answer misses o_0's interactions: max score 1,
        # while the true answer is o_0 with score 2.
        assert reused.score == 1
        assert reused.winner != 0

    def test_safe_mode_stays_exact(self):
        collection = self._collection()
        store = LabelStore()
        engine = MIOEngine(collection, label_store=store, label_reuse="safe")
        engine.query(2.0)
        reused = engine.query(1.5)
        assert reused.algorithm == "bigrid-label"
        assert reused.score == 2
        assert reused.winner == 0
