"""Decision-parity suite: every plan the planner can emit is answer-neutral.

The planner's whole contract is "speed only, never answers": each of the
five plan knobs rides an existing bit-exactness guarantee (the table in
``repro/planner/plan.py``), so *any* knob assignment forced through the
production wiring must reproduce the serial reference engine bit for
bit.  :class:`~repro.planner.FixedPlanner` is the instrument -- it pins
an arbitrary plan while exercising exactly the code paths the adaptive
planner drives -- and hypothesis sweeps the (dataset, query, knobs)
space on top of the pinned golden fixtures borrowed from
``tests/test_golden_answers.py``.

Serial-vs-serial comparisons are **fully structural** (algorithm,
winner, score, top-k, every work counter, memory accounting, exactness);
cross-mode comparisons (sharded / serial-degenerated) compare the answer
fields the sharded conformance suite already holds counter-exact
elsewhere.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.engine import MIOEngine
from repro.kernels import numpy_kernel_available
from repro.parallel.engine import ParallelMIOEngine
from repro.planner import AdaptivePlanner, FixedPlanner, Plan
from repro.session import QuerySession

from conftest import random_collection
from test_golden_answers import (
    SESSION_LABEL_GOLDEN,
    VERIFY_HEAVY_GOLDEN,
    _VERIFY_COUNTER_KEYS,
)
from test_properties import collections, radii

KERNELS = ("python", "numpy") if numpy_kernel_available() else ("python",)
BITSET_BACKENDS = ("ewah", "plain", "roaring")
LB_CHOICES = ("auto", "seq", "vectorized")
GRID_CHOICES = ("auto", "cached", "fresh")

#: Every serial knob assignment the planner could emit on this host.
SERIAL_PLANS = [
    Plan(kernel=kernel, lb_dispatch=lb, grid_keys=grid)
    for kernel in KERNELS
    for lb in (LB_CHOICES if kernel == "numpy" else ("auto",))
    for grid in GRID_CHOICES
]

#: Sharded assignments: shard counts off, at, and above the worker count.
SHARDED_PLANS = [
    Plan(kernel=kernel, mode="sharded", shards=shards)
    for kernel in KERNELS
    for shards in (1, 2, 3, 5)
]


@pytest.fixture(autouse=True)
def inline_executor(monkeypatch):
    """Deterministic inline shard execution: fast and fork-free."""
    monkeypatch.setenv("REPRO_SHARD_INLINE", "1")


@pytest.fixture(scope="module")
def heavy_collection():
    return random_collection(n=40, mean_points=8, seed=77)


#: Result notes the planner legitimately adds or that name the backend
#: that ran; everything else must match structurally.
_NONSTRUCTURAL_NOTES = (
    "plan",
    "planner",
    "plan_reason",
    "degraded_kernel",
    "verification_path",
    "lower_bound_path",
)


def assert_serial_parity(planned, reference):
    """Full structural equality for serial-vs-serial comparisons."""
    assert planned.algorithm == reference.algorithm
    assert planned.r == reference.r
    assert (planned.winner, planned.score) == (reference.winner, reference.score)
    assert planned.topk == reference.topk
    assert planned.counters == reference.counters
    assert planned.memory_bytes == reference.memory_bytes
    assert planned.exact == reference.exact
    planned_notes = {
        k: v for k, v in planned.notes.items() if k not in _NONSTRUCTURAL_NOTES
    }
    reference_notes = {
        k: v for k, v in reference.notes.items() if k not in _NONSTRUCTURAL_NOTES
    }
    assert planned_notes == reference_notes


def assert_answer_parity(planned, reference):
    """Answer equality for cross-mode (serial vs sharded) comparisons."""
    assert (planned.winner, planned.score) == (reference.winner, reference.score)
    assert planned.topk == reference.topk
    assert planned.exact and reference.exact


# ----------------------------------------------------------------------
# Pinned golden answers under forced plans
# ----------------------------------------------------------------------


class TestGoldenUnderForcedPlans:
    @pytest.mark.parametrize("plan", SERIAL_PLANS, ids=Plan.describe)
    @pytest.mark.parametrize("r", sorted(VERIFY_HEAVY_GOLDEN))
    def test_serial_plans_keep_the_verify_heavy_golden(
        self, heavy_collection, r, plan
    ):
        result = MIOEngine(
            heavy_collection, planner=FixedPlanner(plan)
        ).query(r)
        winner, score, *counters = VERIFY_HEAVY_GOLDEN[r]
        assert result.exact
        assert (result.winner, result.score) == (winner, score)
        assert [result.counters[key] for key in _VERIFY_COUNTER_KEYS] == counters
        assert result.notes["plan"] == plan.describe()

    @pytest.mark.parametrize("plan", SHARDED_PLANS, ids=Plan.describe)
    @pytest.mark.parametrize("r", sorted(VERIFY_HEAVY_GOLDEN))
    def test_sharded_plans_keep_the_verify_heavy_answers(
        self, heavy_collection, r, plan
    ):
        engine = ParallelMIOEngine(
            heavy_collection, cores=2, planner=FixedPlanner(plan)
        )
        result = engine.query(r)
        winner, score, *_ = VERIFY_HEAVY_GOLDEN[r]
        assert result.exact
        assert (result.winner, result.score) == (winner, score)

    @pytest.mark.parametrize("backend", BITSET_BACKENDS)
    def test_adaptive_session_keeps_the_label_sequence_golden(
        self, heavy_collection, backend
    ):
        # The adaptive planner may re-pick kernel / dispatch / grid-key
        # policy per query; the pinned answers *and* work counters of
        # the with-label session sequence must be untouched by any of it.
        session = QuerySession(
            heavy_collection, backend=backend, planner="adaptive"
        )
        for r, algorithm, golden in SESSION_LABEL_GOLDEN:
            result = session.query(r)
            winner, score, *counters = golden
            assert result.algorithm == algorithm, r
            assert result.exact
            assert (result.winner, result.score) == (winner, score), r
            assert [
                result.counters[key] for key in _VERIFY_COUNTER_KEYS
            ] == counters, r


# ----------------------------------------------------------------------
# Structural parity against the untouched static path
# ----------------------------------------------------------------------


class TestStructuralParity:
    @pytest.mark.parametrize("plan", SERIAL_PLANS, ids=Plan.describe)
    def test_forced_serial_plan_matches_static_reference(
        self, heavy_collection, plan
    ):
        for r in (5.0, 8.0):
            reference = MIOEngine(heavy_collection).query(r)
            planned = MIOEngine(
                heavy_collection, planner=FixedPlanner(plan)
            ).query(r)
            assert_serial_parity(planned, reference)

    @pytest.mark.parametrize("plan", SERIAL_PLANS, ids=Plan.describe)
    def test_forced_plan_matches_static_topk(self, heavy_collection, plan):
        reference = MIOEngine(heavy_collection).query_topk(8.0, 5)
        planned = MIOEngine(
            heavy_collection, planner=FixedPlanner(plan)
        ).query_topk(8.0, 5)
        assert_serial_parity(planned, reference)

    @pytest.mark.parametrize("plan", SHARDED_PLANS, ids=Plan.describe)
    def test_forced_sharded_plan_matches_serial_answers(
        self, heavy_collection, plan
    ):
        reference = MIOEngine(heavy_collection).query(8.0)
        engine = ParallelMIOEngine(
            heavy_collection, cores=2, planner=FixedPlanner(plan)
        )
        assert_answer_parity(engine.query(8.0), reference)

    def test_serial_degenerated_plan_matches_serial_answers(
        self, heavy_collection
    ):
        # A planner may pull a sharded-mode engine back to the serial
        # pipeline; the answer must not notice.
        reference = MIOEngine(heavy_collection).query(8.0)
        engine = ParallelMIOEngine(
            heavy_collection, cores=2,
            planner=FixedPlanner(Plan(mode="serial")),
        )
        result = engine.query(8.0)
        assert result.algorithm == "bigrid"
        assert_answer_parity(result, reference)

    @pytest.mark.parametrize("backend", BITSET_BACKENDS)
    def test_adaptive_session_matches_static_session(
        self, heavy_collection, backend
    ):
        static = QuerySession(heavy_collection, backend=backend)
        adaptive = QuerySession(
            heavy_collection, backend=backend, planner="adaptive"
        )
        # Mixed ceilings, repeats (label replay), and a top-k request.
        for r in (5.0, 8.0, 8.2, 5.0, 11.7):
            assert_serial_parity(adaptive.query(r), static.query(r))
        assert_serial_parity(
            adaptive.query_topk(8.0, 4), static.query_topk(8.0, 4)
        )

    def test_adaptive_batch_matches_static_batch(self, heavy_collection):
        # ceil(r)-grouped batch planning: groups share one decision,
        # answers stay those of the static session, request for request.
        requests = [5.0, 8.0, {"r": 8.2, "k": 3}, 5.0, 12.0, 8.4]
        static = QuerySession(heavy_collection).query_many(requests)
        adaptive = QuerySession(
            heavy_collection, planner="adaptive"
        ).query_many(requests)
        assert len(static) == len(adaptive)
        for planned, reference in zip(adaptive, static):
            assert_serial_parity(planned, reference)

    def test_adaptive_parallel_engine_matches_serial_answers(
        self, heavy_collection
    ):
        reference = MIOEngine(heavy_collection).query(8.0)
        engine = ParallelMIOEngine(
            heavy_collection, cores=2, planner="adaptive"
        )
        assert_answer_parity(engine.query(8.0), reference)

    def test_calibrated_planner_stays_answer_neutral(self, heavy_collection):
        # Drift the model hard (absurd synthetic feedback), then verify
        # whatever it now decides still reproduces the reference.
        planner = AdaptivePlanner()
        for _ in range(16):
            planner.cost_model.observe(
                Plan(kernel="numpy"),
                {"verification": 5.0, "grid_mapping": 4.0},
                {"distance_rows": 1_000, "mapped_points": 1_000},
            )
        reference = MIOEngine(heavy_collection).query(8.0)
        planned = MIOEngine(heavy_collection, planner=planner).query(8.0)
        assert_serial_parity(planned, reference)


# ----------------------------------------------------------------------
# Hypothesis: the (dataset, query, knobs) space
# ----------------------------------------------------------------------

serial_plans = st.sampled_from(SERIAL_PLANS)
sharded_plans = st.sampled_from(SHARDED_PLANS)


class TestHypothesisParity:
    @given(collection=collections(), r=radii, plan=serial_plans)
    @settings(max_examples=40, deadline=None)
    def test_any_serial_plan_matches_the_reference(self, collection, r, plan):
        reference = MIOEngine(collection).query(r)
        planned = MIOEngine(collection, planner=FixedPlanner(plan)).query(r)
        assert_serial_parity(planned, reference)

    @given(
        collection=collections(max_objects=10),
        r=radii,
        plan=sharded_plans,
    )
    @settings(max_examples=15, deadline=None)
    def test_any_sharded_plan_matches_the_reference(self, collection, r, plan):
        reference = MIOEngine(collection).query(r)
        engine = ParallelMIOEngine(
            collection, cores=2, planner=FixedPlanner(plan)
        )
        assert_answer_parity(engine.query(r), reference)

    @given(
        collection=collections(),
        rs=st.lists(radii, min_size=1, max_size=4),
    )
    @settings(max_examples=20, deadline=None)
    def test_adaptive_session_sequences_match_static(self, collection, rs):
        static = QuerySession(collection)
        adaptive = QuerySession(collection, planner="adaptive")
        for r in rs + rs:  # repeats exercise the label-replay path
            assert_serial_parity(adaptive.query(r), static.query(r))
