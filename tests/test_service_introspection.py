"""Service introspection: /statusz, /tracez, /slowlogz, trace-id plumbing.

In-process classes drive :class:`~repro.service.app.ServiceApp` directly
(the ``test_service_app.py`` convention); the HTTP class at the bottom
checks that the ids and endpoints survive a real socket round trip.

Every app is built *after* ``fresh_telemetry`` installs an isolated hub
-- the ServiceApp constructor turns the process hub's dials, so ordering
is what keeps these tests from reconfiguring the real one.
"""

import json

import pytest

from repro.errors import InvalidQueryError, ServiceOverloadedError
from repro.service import MIOServer, ServiceApp, ServiceClient, ServiceConfig, serve
from repro.service.app import sanitize_trace_id

from conftest import random_collection


@pytest.fixture()
def collection():
    return random_collection(25, 5, seed=11)


def make_app(collection, fresh_telemetry, **overrides):
    defaults = dict(port=0, max_inflight=2, max_queue=2)
    defaults.update(overrides)
    return ServiceApp(collection, ServiceConfig(**defaults))


def post(app, path, payload, trace_id=None):
    return app.handle(
        "POST", path, None, json.dumps(payload).encode(), trace_id=trace_id
    )


class TestConfigKnobs:
    @pytest.mark.parametrize("overrides", [
        {"sample_rate": -0.1},
        {"sample_rate": 1.5},
        {"slow_query_ms": -1.0},
    ])
    def test_bad_telemetry_knobs_fail_at_startup(self, overrides):
        with pytest.raises(InvalidQueryError):
            ServiceConfig(**overrides)

    def test_app_turns_the_hub_dials(self, collection, fresh_telemetry):
        make_app(collection, fresh_telemetry, sample_rate=0.5, slow_query_ms=10.0)
        assert fresh_telemetry.sampler.rate == 0.5
        assert fresh_telemetry.slowlog.threshold_ms == 10.0
        assert fresh_telemetry.enabled


class TestTraceIdSanitizer:
    def test_strips_header_unsafe_characters(self):
        assert sanitize_trace_id("my-id-123!@#") == "my-id-123"
        assert sanitize_trace_id("a\r\nX-Evil: 1") == "aX-Evil1"
        assert sanitize_trace_id("ok._-OK") == "ok._-OK"

    def test_truncates_to_64_characters(self):
        assert sanitize_trace_id("x" * 200) == "x" * 64

    def test_nothing_survives_means_none(self):
        assert sanitize_trace_id(None) is None
        assert sanitize_trace_id("") is None
        assert sanitize_trace_id("!!!###") is None


class TestTraceIdPropagation:
    def test_every_success_carries_an_id_in_body_and_header(
        self, collection, fresh_registry, fresh_telemetry
    ):
        app = make_app(collection, fresh_telemetry)
        response = post(app, "/query", {"r": 4.0})
        assert response.status == 200
        assert response.payload["trace_id"].startswith("trace-")
        assert response.headers["X-Trace-Id"] == response.payload["trace_id"]

    def test_inbound_id_is_honored_and_sanitized(
        self, collection, fresh_registry, fresh_telemetry
    ):
        app = make_app(collection, fresh_telemetry)
        response = post(app, "/query", {"r": 4.0}, trace_id="caller-7")
        assert response.payload["trace_id"] == "caller-7"
        response = post(app, "/query", {"r": 4.0}, trace_id="evil\nid!")
        assert response.payload["trace_id"] == "evilid"

    def test_error_envelopes_carry_the_id(
        self, collection, fresh_registry, fresh_telemetry
    ):
        app = make_app(collection, fresh_telemetry)
        response = post(app, "/query", {"r": -1.0}, trace_id="bad-input-1")
        assert response.status == 400
        assert response.payload["error"] == "InvalidQueryError"
        assert response.payload["trace_id"] == "bad-input-1"
        assert response.headers["X-Trace-Id"] == "bad-input-1"

    def test_shed_responses_carry_the_id_next_to_retry_after(
        self, collection, fresh_registry, fresh_telemetry
    ):
        app = make_app(collection, fresh_telemetry, max_inflight=1, max_queue=0)
        app.admission.admit()  # occupy the only slot; queue is zero
        try:
            response = post(app, "/query", {"r": 4.0}, trace_id="shed-me")
        finally:
            app.admission.release()
        assert response.status == 429
        assert response.payload["error"] == "ServiceOverloadedError"
        assert response.payload["trace_id"] == "shed-me"
        assert "Retry-After" in response.headers
        assert response.headers["X-Trace-Id"] == "shed-me"

    def test_not_found_still_correlates(
        self, collection, fresh_registry, fresh_telemetry
    ):
        app = make_app(collection, fresh_telemetry)
        response = app.handle("GET", "/nope", None, None, trace_id="lost-1")
        assert response.status == 404
        assert response.payload["trace_id"] == "lost-1"


class TestIntrospectionEndpoints:
    def test_statusz_is_one_page_of_state(
        self, collection, fresh_registry, fresh_telemetry
    ):
        app = make_app(collection, fresh_telemetry)
        post(app, "/query", {"r": 4.0})
        response = app.handle("GET", "/statusz")
        assert response.status == 200
        page = response.payload
        assert page["ready"] is True
        assert page["uptime_s"] >= 0
        assert page["service"]["served"] == 1
        assert page["telemetry"]["profiles"]["recorded"] >= 1
        assert page["retry_after_hint_s"] > 0

    def test_tracez_serves_sampled_span_trees(
        self, collection, fresh_registry, fresh_telemetry
    ):
        app = make_app(collection, fresh_telemetry, sample_rate=1.0)
        post(app, "/query", {"r": 4.0})
        post(app, "/query", {"r": 4.5})
        page = app.handle("GET", "/tracez").payload
        assert page["count"] == 2 and len(page["traces"]) == 2
        assert page["sampler"]["sampled"] == 2
        for trace in page["traces"]:
            assert trace["root"]["name"] == "query"
            assert trace["root"]["attributes"]["trace_id"] == trace["trace_id"]

    def test_tracez_is_empty_when_sampling_is_off(
        self, collection, fresh_registry, fresh_telemetry
    ):
        app = make_app(collection, fresh_telemetry, sample_rate=0.0)
        post(app, "/query", {"r": 4.0})
        assert app.handle("GET", "/tracez").payload["count"] == 0

    def test_slowlogz_captures_at_a_zero_threshold(
        self, collection, fresh_registry, fresh_telemetry
    ):
        app = make_app(collection, fresh_telemetry, slow_query_ms=0.0)
        post(app, "/query", {"r": 4.0})
        page = app.handle("GET", "/slowlogz").payload
        assert page["threshold_ms"] == 0.0
        assert page["captured"] >= 1 and page["count"] >= 1
        entry = page["entries"][0]
        assert entry["cause"] == "slow"
        assert entry["span_tree"]["name"] == "query"

    def test_slowlogz_captures_degraded_queries_with_synthesized_trees(
        self, collection, fresh_registry, fresh_telemetry
    ):
        app = make_app(collection, fresh_telemetry, slow_query_ms=10_000.0)
        response = post(app, "/query", {"r": 4.0, "timeout_ms": 0})
        assert response.payload["exact"] is False
        page = app.handle("GET", "/slowlogz").payload
        assert page["count"] >= 1
        entry = page["entries"][-1]
        assert "degraded" in entry["cause"]
        assert entry["span_tree"]["attributes"].get("synthesized") is True

    def test_introspection_responses_are_json_serializable(
        self, collection, fresh_registry, fresh_telemetry
    ):
        app = make_app(collection, fresh_telemetry, sample_rate=1.0, slow_query_ms=0.0)
        post(app, "/query", {"r": 4.0})
        for path in ("/statusz", "/tracez", "/slowlogz"):
            response = app.handle("GET", path)
            assert response.status == 200
            json.loads(response.body_bytes())


class TestLatencyEwmaGauge:
    def test_gauge_tracks_the_retry_after_basis(
        self, collection, fresh_registry, fresh_telemetry
    ):
        app = make_app(collection, fresh_telemetry)
        gauge = fresh_registry.get("repro_service_latency_ewma_seconds")
        assert gauge.value() == pytest.approx(0.05)  # the seed value
        post(app, "/query", {"r": 4.0})
        assert gauge.value() == pytest.approx(app._ewma_seconds)
        assert gauge.value() != pytest.approx(0.05)


class TestOverHttp:
    @pytest.fixture()
    def server(self, collection, fresh_registry, fresh_telemetry):
        config = ServiceConfig(
            port=0, max_inflight=2, max_queue=4, sample_rate=1.0, slow_query_ms=0.0
        )
        instance = serve(collection, config)
        yield instance
        instance.shutdown_gracefully()

    @pytest.fixture()
    def client(self, server):
        host, port = server.address
        return ServiceClient(host, port, timeout_s=10.0)

    def test_client_records_the_response_trace_id(self, server, client):
        payload = client.query(4.0)
        assert payload["trace_id"].startswith("trace-")
        assert client.last_trace_id == payload["trace_id"]

    def test_inbound_header_round_trips_through_the_wire(self, server, client):
        status, headers, payload = client._round_trip(
            "POST", "/query", {"r": 4.0}, trace_id="wire-id-1"
        )
        assert status == 200
        assert headers["X-Trace-Id"] == "wire-id-1"
        assert payload["trace_id"] == "wire-id-1"

    def test_errors_carry_the_trace_id_attribute(self, server, client):
        with pytest.raises(InvalidQueryError) as excinfo:
            client.query("junk")
        assert getattr(excinfo.value, "trace_id", "").startswith("trace-")

    def test_introspection_endpoints_over_sockets(self, server, client):
        client.query(4.0)
        status = client.statusz()
        assert status["ready"] is True
        assert status["telemetry"]["sampler"]["rate"] == 1.0
        traces = client.tracez()
        assert traces["count"] >= 1
        slowlog = client.slowlogz()
        assert slowlog["threshold_ms"] == 0.0
        assert slowlog["captured"] >= 1
