"""`repro report`: profile aggregation and bench-floor regression checks.

The committed ``benchmarks/results/BENCH_*.json`` artifacts must pass
their own floors (otherwise CI's smoke gate would be red on a clean
tree), and tampered copies must trip them -- the regression detector is
only trustworthy if both directions are exercised.
"""

import json
from pathlib import Path

import pytest

from repro.cli import main
from repro.errors import CorruptDataError, InvalidQueryError
from repro.obs.telemetry.report import (
    check_bench_artifact,
    check_bench_artifacts,
    compare_to_kernel_artifact,
    load_profiles,
    percentile,
    render_summary,
    summarize,
)

RESULTS = Path(__file__).resolve().parent.parent / "benchmarks" / "results"
ARTIFACTS = sorted(str(p) for p in RESULTS.glob("BENCH_*.json"))

#: A minimal valid provenance stamp for synthetic artifacts.
PROVENANCE = {"cpu_count": 4, "cores": 1, "parallel_mode": "serial", "shards": 0}


def shard_scaling_artifact(**overrides):
    base = {
        "bench": "shard_scaling",
        "speedup": 2.6,
        "floor": 2.0,
        "identical_answers": True,
        "provenance": {
            "cpu_count": 8, "cores": 4, "parallel_mode": "sharded", "shards": 4,
        },
    }
    base.update(overrides)
    return base


def profile_line(
    engine="serial", seconds=0.002, exact=True, sampled=False,
    phases=None, counters=None, notes=None, trace_id="trace-1",
):
    return {
        "trace_id": trace_id, "ts": 100.0, "engine": engine,
        "algorithm": "bigrid", "r": 4.0, "k": 1, "ceil_r": 0, "n": 30,
        "seconds": seconds, "exact": exact, "sampled": sampled,
        "phases": phases if phases is not None else {
            "grid_mapping": seconds / 2, "verification": seconds / 2,
        },
        "counters": counters if counters is not None else {
            "candidates_total": 10, "candidates_settled": 6,
        },
        "notes": notes if notes is not None else {},
        "memory_bytes": 4096,
    }


def write_jsonl(path, records):
    path.write_text("".join(json.dumps(record) + "\n" for record in records))
    return str(path)


class TestPercentile:
    def test_nearest_rank_is_exact(self):
        values = [10.0, 20.0, 30.0, 40.0, 50.0, 60.0, 70.0, 80.0, 90.0, 100.0]
        assert percentile(values, 0.50) == 50.0
        assert percentile(values, 0.90) == 90.0
        assert percentile(values, 0.99) == 100.0
        assert percentile(values, 1.00) == 100.0

    def test_order_insensitive_and_single_element(self):
        assert percentile([30.0, 10.0, 20.0], 0.5) == 20.0
        assert percentile([7.0], 0.99) == 7.0

    def test_empty_sequence_is_an_error(self):
        with pytest.raises(ValueError):
            percentile([], 0.5)


class TestLoadProfiles:
    def test_reads_a_clean_log(self, tmp_path):
        path = write_jsonl(tmp_path / "p.jsonl", [profile_line(), profile_line()])
        profiles, skipped = load_profiles(path)
        assert len(profiles) == 2 and skipped == 0

    def test_malformed_lines_are_counted_not_fatal(self, tmp_path):
        path = tmp_path / "p.jsonl"
        path.write_text(
            json.dumps(profile_line()) + "\n"
            + "{truncated by a crash\n"
            + "\n"                       # blank lines are ignored entirely
            + '"not a dict"\n'
            + json.dumps({"no": "seconds key"}) + "\n"
            + json.dumps(profile_line(trace_id="trace-2")) + "\n"
        )
        profiles, skipped = load_profiles(str(path))
        assert [p["trace_id"] for p in profiles] == ["trace-1", "trace-2"]
        assert skipped == 3


class TestSummarize:
    def test_per_engine_percentiles_funnel_cache_and_paths(self):
        profiles = [
            profile_line(
                seconds=0.001 * (index + 1),
                counters={
                    "candidates_total": 10, "candidates_settled": 5,
                    "lower_cache_hit": 1 if index else 0,
                },
                notes={"verification_path": "numpy-fused",
                       "lower_bound_path": "numpy-seq"},
                sampled=(index == 0),
            )
            for index in range(4)
        ] + [profile_line(engine="session", seconds=0.5, exact=False)]
        summary = summarize(profiles)
        assert summary["profiles"] == 5
        serial = summary["engines"]["serial"]
        assert serial["queries"] == 4
        assert serial["sampled"] == 1 and serial["degraded"] == 0
        assert serial["seconds"]["p50"] == 0.002
        assert serial["seconds"]["p99"] == 0.004
        assert serial["seconds"]["max"] == 0.004
        assert serial["funnel"] == {
            "candidates_total": 40, "candidates_settled": 20, "settle_ratio": 0.5,
        }
        assert serial["cache"]["lower_cache_hit_ratio"] == 0.75
        assert serial["kernel_paths"] == {
            "verification_path": {"numpy-fused": 4},
            "lower_bound_path": {"numpy-seq": 4},
        }
        session = summary["engines"]["session"]
        assert session["degraded"] == 1
        assert session["funnel"]["settle_ratio"] == 0.6

    def test_phase_percentiles_come_from_the_phase_dicts(self):
        profiles = [
            profile_line(phases={"verification": 0.010}),
            profile_line(phases={"verification": 0.030}),
        ]
        phases = summarize(profiles)["engines"]["serial"]["phases"]
        assert phases["verification"]["p50"] == 0.010
        assert phases["verification"]["p99"] == 0.030
        assert phases["verification"]["count"] == 2

    def test_render_mentions_everything_load_bearing(self):
        summary = summarize([profile_line(notes={"verification_path": "numpy-fused"})])
        text = render_summary(summary, skipped=2)
        assert "profiles: 1 (skipped 2 malformed lines)" in text
        assert "engine serial" in text
        assert "end-to-end" in text and "p99=" in text
        assert "verification_path: numpy-fused=1" in text
        assert "funnel: 6/10" in text


class TestBenchFloors:
    def test_committed_artifacts_pass_their_floors(self):
        assert len(ARTIFACTS) == 5, "expected the five committed BENCH artifacts"
        assert check_bench_artifacts(ARTIFACTS) == []

    def test_committed_artifacts_all_carry_provenance(self):
        for path in ARTIFACTS:
            data = json.loads(Path(path).read_text())
            prov = data["provenance"]
            assert set(prov) >= {"cpu_count", "cores", "parallel_mode", "shards"}
            assert prov["cpu_count"] >= 1

    def test_tampered_kernel_phase_speedup_is_flagged(self, tmp_path):
        data = json.loads((RESULTS / "BENCH_kernel_speedup.json").read_text())
        data["workloads"][0]["phase_speedups"]["verification"] = 0.5
        tampered = tmp_path / "BENCH_kernel_speedup.json"
        tampered.write_text(json.dumps(data))
        failures = check_bench_artifact(str(tampered))
        assert any("verification speedup 0.5x" in f for f in failures)

    def test_tampered_headline_speedup_is_flagged(self, tmp_path):
        data = json.loads((RESULTS / "BENCH_kernel_speedup.json").read_text())
        for point in data["workloads"]:
            point["speedup"] = 1.0
        tampered = tmp_path / "k.json"
        tampered.write_text(json.dumps(data))
        failures = check_bench_artifact(str(tampered))
        assert any("headline target" in f for f in failures)
        assert any("s=0.5" in f for f in failures)

    def test_tampered_batch_reuse_is_flagged(self, tmp_path):
        tampered = tmp_path / "b.json"
        tampered.write_text(json.dumps(
            {"bench": "batch_reuse", "speedup": 0.9, "provenance": PROVENANCE}
        ))
        failures = check_bench_artifact(str(tampered))
        assert failures and "batch_reuse" in failures[0]

    def test_missing_provenance_is_flagged(self, tmp_path):
        bare = tmp_path / "b.json"
        bare.write_text(json.dumps({"bench": "batch_reuse", "speedup": 9.0}))
        failures = check_bench_artifact(str(bare))
        assert any("provenance" in f for f in failures)
        partial = tmp_path / "p.json"
        partial.write_text(json.dumps({
            "bench": "batch_reuse", "speedup": 9.0,
            "provenance": {"cpu_count": 4},
        }))
        failures = check_bench_artifact(str(partial))
        assert any("provenance missing cores" in f for f in failures)

    def test_service_p99_and_errors_floors(self, tmp_path):
        base = {
            "deadline_ms": 2000.0,
            "steady": {"p99_ms": 2100.0, "errors": 0},
            "overload": {"p99_ms": 2900.0, "errors": 0},
            "provenance": PROVENANCE,
        }
        clean = tmp_path / "s.json"
        clean.write_text(json.dumps(base))
        assert check_bench_artifact(str(clean)) == []
        base["overload"] = {"p99_ms": 60_000.0, "errors": 3}
        bad = tmp_path / "s_bad.json"
        bad.write_text(json.dumps(base))
        failures = check_bench_artifact(str(bad))
        assert any("hard errors" in f for f in failures)
        assert any("p99" in f for f in failures)

    def test_margin_is_applied_to_every_floor(self, tmp_path):
        # speedup 1.0 fails the 1.2x batch floor at margin 1.0 but passes
        # at the default 0.8 (1.2 * 0.8 = 0.96 <= 1.0).
        artifact = tmp_path / "b.json"
        artifact.write_text(json.dumps(
            {"bench": "batch_reuse", "speedup": 1.0, "provenance": PROVENANCE}
        ))
        assert check_bench_artifact(str(artifact), margin=0.8) == []
        assert check_bench_artifact(str(artifact), margin=1.0) != []

    def test_shard_scaling_floor_and_parity(self, tmp_path):
        clean = tmp_path / "s.json"
        clean.write_text(json.dumps(shard_scaling_artifact()))
        assert check_bench_artifact(str(clean)) == []
        # Diverged answers are flagged regardless of speed.
        bad = tmp_path / "diverged.json"
        bad.write_text(json.dumps(shard_scaling_artifact(identical_answers=False)))
        assert any("diverged" in f for f in check_bench_artifact(str(bad)))
        # A slow run on capable hardware trips the floor...
        slow = tmp_path / "slow.json"
        slow.write_text(json.dumps(shard_scaling_artifact(speedup=1.1)))
        assert any("below" in f for f in check_bench_artifact(str(slow)))
        # ...but the same ratio on a one-core recorder is honestly waived.
        narrow = tmp_path / "narrow.json"
        narrow.write_text(json.dumps(shard_scaling_artifact(
            speedup=0.9,
            provenance={"cpu_count": 1, "cores": 1,
                        "parallel_mode": "sharded", "shards": 1},
        )))
        assert check_bench_artifact(str(narrow)) == []
        # A sharded artifact recorded in the wrong mode is suspect.
        wrong = tmp_path / "wrong.json"
        wrong.write_text(json.dumps(shard_scaling_artifact(
            provenance={"cpu_count": 8, "cores": 4,
                        "parallel_mode": "simulated", "shards": 4},
        )))
        assert any("parallel_mode" in f for f in check_bench_artifact(str(wrong)))

    def test_planner_artifact_floors(self, tmp_path):
        def planner_artifact(**overrides):
            data = {
                "bench": "planner",
                "identical_answers": True,
                "adaptive_vs_best_static": 0.99,
                "adaptive_vs_worst_static": 0.91,
                "ratio_bound": 1.05,
                "static_seconds": {"static-numpy": 4.4, "static-python": 4.0},
                "decisions": ["kernel=python mode=serial shards=1 lb=auto grid=auto"],
                "provenance": PROVENANCE,
            }
            data.update(overrides)
            return data

        clean = tmp_path / "p.json"
        clean.write_text(json.dumps(planner_artifact()))
        assert check_bench_artifact(str(clean)) == []
        # Diverged answers are flagged regardless of speed.
        diverged = tmp_path / "diverged.json"
        diverged.write_text(json.dumps(planner_artifact(identical_answers=False)))
        assert any("diverged" in f for f in check_bench_artifact(str(diverged)))
        # Losing badly to the best static pin trips the bound (margin 0.8
        # widens 1.05 to ~1.31, so 1.5 is well past it).
        slow = tmp_path / "slow.json"
        slow.write_text(json.dumps(planner_artifact(adaptive_vs_best_static=1.5)))
        assert any("best static" in f for f in check_bench_artifact(str(slow)))
        # With several static configs, losing to the WORST one is flagged
        # at a 1.0 bound (the planner made things strictly worse).
        worse = tmp_path / "worse.json"
        worse.write_text(json.dumps(planner_artifact(adaptive_vs_worst_static=1.4)))
        assert any("WORST static" in f for f in check_bench_artifact(str(worse)))
        # An artifact with no recorded decisions measured nothing adaptive.
        empty = tmp_path / "empty.json"
        empty.write_text(json.dumps(planner_artifact(decisions=[])))
        assert any("decisions" in f for f in check_bench_artifact(str(empty)))

    def test_unrecognized_schema_and_unreadable_file_are_failures(self, tmp_path):
        odd = tmp_path / "odd.json"
        odd.write_text(json.dumps({"bench": "mystery"}))
        assert "unrecognized artifact schema" in check_bench_artifact(str(odd))[0]
        assert "unreadable artifact" in check_bench_artifact(
            str(tmp_path / "missing.json")
        )[0]


class TestCompareToArtifact:
    def test_live_p50_within_tolerance_passes(self):
        summary = summarize([profile_line(phases={"verification": 0.001})])
        assert compare_to_kernel_artifact(
            summary, str(RESULTS / "BENCH_kernel_speedup.json")
        ) == []

    def test_pathological_live_slowdown_is_flagged(self):
        summary = summarize([profile_line(phases={"verification": 3600.0})])
        failures = compare_to_kernel_artifact(
            summary, str(RESULTS / "BENCH_kernel_speedup.json"), max_slowdown=25.0
        )
        assert failures and "verification" in failures[0]


class TestReportCli:
    def test_no_inputs_is_an_invalid_query(self, capsys):
        assert main(["report"]) == InvalidQueryError.exit_code
        assert "InvalidQueryError" in capsys.readouterr().err

    def test_empty_profile_log_is_corrupt_data(self, tmp_path, capsys):
        path = tmp_path / "empty.jsonl"
        path.write_text("not json\n")
        assert main(["report", str(path)]) == CorruptDataError.exit_code
        assert "no valid profile lines" in capsys.readouterr().err

    def test_text_and_json_summaries(self, tmp_path, capsys):
        path = write_jsonl(tmp_path / "p.jsonl", [profile_line(), profile_line()])
        assert main(["report", path]) == 0
        assert "engine serial" in capsys.readouterr().out
        assert main(["report", path, "--json"]) == 0
        document = json.loads(capsys.readouterr().out)
        assert document["profiles"] == 2

    def test_check_bench_passes_on_the_committed_artifacts(self, capsys):
        assert main(["report", "--check-bench", *ARTIFACTS]) == 0
        out = capsys.readouterr().out
        assert "all floors hold" in out

    def test_synthetic_regression_exits_nonzero(self, tmp_path, capsys):
        data = json.loads((RESULTS / "BENCH_kernel_speedup.json").read_text())
        data["workloads"][0]["phase_speedups"]["verification"] = 0.5
        tampered = tmp_path / "BENCH_kernel_speedup.json"
        tampered.write_text(json.dumps(data))
        assert main(["report", "--check-bench", str(tampered)]) == 1
        err = capsys.readouterr().err
        assert "REGRESSION: 1 floor(s) violated" in err
        assert "verification" in err

    def test_against_flags_only_pathological_drift(self, tmp_path, capsys):
        artifact = str(RESULTS / "BENCH_kernel_speedup.json")
        fast = write_jsonl(
            tmp_path / "fast.jsonl", [profile_line(phases={"verification": 0.001})]
        )
        assert main(["report", fast, "--against", artifact]) == 0
        capsys.readouterr()
        slow = write_jsonl(
            tmp_path / "slow.jsonl", [profile_line(phases={"verification": 3600.0})]
        )
        assert main(["report", slow, "--against", artifact]) == 1
        assert "REGRESSION" in capsys.readouterr().err
