"""Shared fixtures and oracles for the test-suite.

The ground-truth scorer here is deliberately independent of every library
code path: it uses scipy's cdist over full distance matrices, so engine,
baselines, and index can all be validated against it without circularity.
"""

from __future__ import annotations

import os
from typing import List, Optional

import numpy as np
import pytest
from hypothesis import HealthCheck, settings
from scipy.spatial.distance import cdist

from repro.core.objects import ObjectCollection

# ----------------------------------------------------------------------
# Hypothesis profiles
#
# "dev" (default) keeps the tier-1 run fast; "ci" is the exhaustive,
# seed-fixed configuration the CI property job selects with
# HYPOTHESIS_PROFILE=ci -- 500 examples per test (and the session
# equivalence suites parametrize over every bitset backend, so that is
# 500 examples *per backend*), derandomized so failures reproduce.
# Per-test @settings(...) decorators still override individual fields.
# ----------------------------------------------------------------------

_RELAXED = [HealthCheck.too_slow, HealthCheck.data_too_large, HealthCheck.filter_too_much]

settings.register_profile("dev", max_examples=30, deadline=None,
                          suppress_health_check=_RELAXED)
settings.register_profile("ci", max_examples=500, deadline=None, derandomize=True,
                          suppress_health_check=_RELAXED)
settings.load_profile(os.environ.get("HYPOTHESIS_PROFILE", "dev"))


def oracle_scores(collection: ObjectCollection, r: float) -> List[int]:
    """Brute-force tau(o) for every object via full distance matrices."""
    n = collection.n
    tau = [0] * n
    for i in range(n):
        for j in range(i + 1, n):
            distances = cdist(collection[i].points, collection[j].points)
            if np.min(distances) <= r:
                tau[i] += 1
                tau[j] += 1
    return tau


def oracle_temporal_scores(
    collection: ObjectCollection, r: float, delta: float
) -> List[int]:
    """Brute-force temporal tau(o): both dist <= r and |t - t'| <= delta."""
    n = collection.n
    tau = [0] * n
    for i in range(n):
        for j in range(i + 1, n):
            distances = cdist(collection[i].points, collection[j].points)
            gaps = np.abs(
                collection[i].timestamps[:, None] - collection[j].timestamps[None, :]
            )
            if np.any((distances <= r) & (gaps <= delta)):
                tau[i] += 1
                tau[j] += 1
    return tau


def random_collection(
    n: int,
    mean_points: int,
    dimension: int = 2,
    extent: float = 50.0,
    seed: int = 0,
    clustered: bool = True,
    with_timestamps: bool = False,
) -> ObjectCollection:
    """A small random collection with optional spatial clustering."""
    rng = np.random.default_rng(seed)
    point_arrays = []
    timestamp_arrays: Optional[list] = [] if with_timestamps else None
    centers = rng.uniform(0, extent, size=(max(2, n // 4), dimension))
    for _ in range(n):
        count = int(rng.integers(max(1, mean_points // 2), mean_points * 2))
        if clustered:
            center = centers[rng.integers(len(centers))]
            points = center + rng.normal(0, extent / 15.0, size=(count, dimension))
        else:
            points = rng.uniform(0, extent, size=(count, dimension))
        point_arrays.append(points)
        if timestamp_arrays is not None:
            timestamp_arrays.append(np.sort(rng.uniform(0, 20.0, size=count)))
    return ObjectCollection.from_point_arrays(point_arrays, timestamp_arrays)


@pytest.fixture
def fresh_registry():
    """An isolated metrics registry installed for one test."""
    from repro.obs import metrics as obs_metrics

    registry = obs_metrics.MetricsRegistry()
    previous = obs_metrics.set_registry(registry)
    yield registry
    obs_metrics.set_registry(previous)


@pytest.fixture
def fresh_telemetry():
    """An isolated telemetry hub installed for one test (default dials)."""
    from repro.obs import telemetry as obs_telemetry

    hub = obs_telemetry.Telemetry()
    previous = obs_telemetry.set_telemetry(hub)
    yield hub
    obs_telemetry.set_telemetry(previous)


@pytest.fixture
def small_collection() -> ObjectCollection:
    """Four hand-built 2-D objects with known interactions at r = 1.5.

    Layout: o0 and o1 overlap; o2 touches o1 only at its closest point
    (distance exactly 1.0); o3 is far from everything.
    """
    return ObjectCollection.from_point_arrays(
        [
            np.array([[0.0, 0.0], [1.0, 0.0]]),
            np.array([[1.5, 0.0], [2.5, 0.0]]),
            np.array([[3.5, 0.0], [5.0, 0.0]]),
            np.array([[100.0, 100.0], [101.0, 100.0]]),
        ]
    )


@pytest.fixture
def clustered_collection() -> ObjectCollection:
    return random_collection(n=40, mean_points=8, seed=11)


@pytest.fixture
def clustered_collection_3d() -> ObjectCollection:
    return random_collection(n=30, mean_points=8, dimension=3, seed=13)
