"""Chaos tests: the service under deterministic fault injection.

``REPRO_FAULTS``-style injectors (installed programmatically here, and
via the environment in CI's chaos job) break the execution pipeline at
seeded points while traffic flows.  The contract under fire:

* every response is structured JSON with a taxonomy status -- no raw
  tracebacks, no bare 500s from query failures;
* degraded answers are marked ``exact: false`` with a ``degraded_*``
  note;
* enough consecutive faults trip the circuit breaker, and recovery
  closes it again.
"""

import json

import pytest

from repro import faults
from repro.faults import FaultInjector, FaultSpec, from_env
from repro.service.app import ServiceApp
from repro.service.config import ServiceConfig

from conftest import random_collection


@pytest.fixture()
def collection():
    return random_collection(25, 5, seed=17)


@pytest.fixture()
def injected():
    """Install an injector for one test, always uninstalling after."""

    def install(spec: str):
        injector = from_env(spec)
        faults.install(injector)
        return injector

    yield install
    faults.install(None)


def post_query(app, r=4.0, timeout_ms=None):
    body = {"r": r}
    if timeout_ms is not None:
        body["timeout_ms"] = timeout_ms
    return app.handle("POST", "/query", None, json.dumps(body).encode())


@pytest.mark.parametrize("point", [
    "grid_mapping", "lower_bounding", "upper_bounding", "verification",
])
def test_pipeline_faults_yield_structured_degraded_answers(
    collection, injected, point
):
    app = ServiceApp(collection, ServiceConfig(port=0))
    injected(f"{point}:fail")
    response = post_query(app)
    # The injector is process-global so both chain links fail: the
    # service bottoms out in a marked vacuous answer, never an error.
    assert response.status == 200
    assert response.payload["exact"] is False
    assert any(key.startswith("degraded_") for key in response.payload["notes"])
    assert "Traceback" not in json.dumps(response.payload)


def test_probabilistic_faults_never_produce_raw_errors(collection, injected):
    app = ServiceApp(collection, ServiceConfig(port=0))
    injected("seed=42;lower_bounding:fail:0.4;verification:latency:0.3:50")
    statuses = []
    for index in range(25):
        response = post_query(app, r=4.0 + (index % 3) * 0.3, timeout_ms=500.0)
        statuses.append(response.status)
        body = json.dumps(response.payload)
        assert "Traceback" not in body
        if response.status == 200 and response.payload["exact"] is False:
            assert any(
                key.startswith("degraded_") for key in response.payload["notes"]
            )
    # Query-path faults degrade; they do not surface as server errors.
    assert set(statuses) <= {200}


def test_consecutive_faults_trip_and_recovery_closes_the_breaker(collection):
    app = ServiceApp(
        collection,
        ServiceConfig(port=0, breaker_failures=3, breaker_reset_s=0.01,
                      breaker_max_reset_s=0.02, breaker_jitter=0.0),
    )
    injector = FaultInjector([FaultSpec("lower_bounding")])
    faults.install(injector)
    try:
        for _ in range(3):
            assert post_query(app).status == 200
        assert app.breaker.state == "open"
    finally:
        faults.install(None)
    # The backend heals; after the (tiny) reset interval the half-open
    # probe succeeds and the breaker closes again.
    import time

    time.sleep(0.05)
    response = post_query(app)
    assert response.status == 200
    assert response.payload["exact"] is True
    assert app.breaker.state == "closed"


def test_metrics_stay_exportable_under_chaos(collection, injected):
    from repro.obs.export import validate_prometheus_text

    app = ServiceApp(collection, ServiceConfig(port=0))
    injected("seed=7;verification:fail:0.5")
    for _ in range(10):
        post_query(app)
    metrics = app.handle("GET", "/metrics")
    assert metrics.status == 200
    validate_prometheus_text(metrics.payload)
    assert "repro_service_degraded_total" in metrics.payload


def test_faulty_batch_degrades_as_a_unit_not_an_error(collection, injected):
    app = ServiceApp(collection, ServiceConfig(port=0))
    injected("lower_bounding:fail")
    response = app.handle(
        "POST", "/batch", None,
        json.dumps({"queries": [4.0, 4.5]}).encode(),
    )
    assert response.status == 200
    assert response.payload["count"] == 2
    for result in response.payload["results"]:
        assert result["exact"] is False
        assert any(key.startswith("degraded_") for key in result["notes"])
