"""Unit tests for the object/collection data model."""

import numpy as np
import pytest

from repro.core.objects import ObjectCollection, SpatialObject


class TestSpatialObject:
    def test_basic(self):
        obj = SpatialObject(0, np.array([[1.0, 2.0], [3.0, 4.0]]))
        assert obj.num_points == 2
        assert obj.dimension == 2
        assert len(obj) == 2

    def test_accepts_3d(self):
        obj = SpatialObject(1, np.zeros((3, 3)))
        assert obj.dimension == 3

    def test_rejects_bad_shapes(self):
        with pytest.raises(ValueError):
            SpatialObject(0, np.zeros(3))
        with pytest.raises(ValueError):
            SpatialObject(0, np.zeros((2, 4)))
        with pytest.raises(ValueError):
            SpatialObject(0, np.zeros((0, 2)))

    def test_rejects_misaligned_timestamps(self):
        with pytest.raises(ValueError):
            SpatialObject(0, np.zeros((2, 2)), np.zeros(3))

    def test_bounds(self):
        obj = SpatialObject(0, np.array([[0.0, 5.0], [2.0, 1.0]]))
        low, high = obj.bounds()
        assert low.tolist() == [0.0, 1.0]
        assert high.tolist() == [2.0, 5.0]

    def test_points_are_float64_contiguous(self):
        obj = SpatialObject(0, np.array([[1, 2], [3, 4]], dtype=np.int32))
        assert obj.points.dtype == np.float64
        assert obj.points.flags["C_CONTIGUOUS"]

    def test_repr(self):
        assert "oid=3" in repr(SpatialObject(3, np.zeros((2, 2))))


class TestObjectCollection:
    def test_statistics(self):
        collection = ObjectCollection.from_point_arrays(
            [np.zeros((2, 2)), np.zeros((4, 2))]
        )
        assert collection.n == 2
        assert collection.total_points == 6
        assert collection.mean_points == 3.0
        assert collection.dimension == 2

    def test_requires_nonempty(self):
        with pytest.raises(ValueError):
            ObjectCollection([])

    def test_requires_uniform_dimension(self):
        with pytest.raises(ValueError):
            ObjectCollection.from_point_arrays([np.zeros((2, 2)), np.zeros((2, 3))])

    def test_requires_contiguous_ids(self):
        objects = [SpatialObject(0, np.zeros((1, 2))), SpatialObject(5, np.zeros((1, 2)))]
        with pytest.raises(ValueError):
            ObjectCollection(objects)

    def test_subset_renumbers(self):
        collection = ObjectCollection.from_point_arrays(
            [np.full((1, 2), float(i)) for i in range(5)]
        )
        subset = collection.subset([1, 4])
        assert subset.n == 2
        assert subset[0].oid == 0
        assert subset[0].points[0, 0] == 1.0
        assert subset[1].points[0, 0] == 4.0

    def test_subset_keeps_timestamps(self):
        collection = ObjectCollection.from_point_arrays(
            [np.zeros((2, 2)), np.ones((2, 2))],
            [np.array([0.0, 1.0]), np.array([2.0, 3.0])],
        )
        subset = collection.subset([1])
        assert subset.has_timestamps()
        assert subset[0].timestamps.tolist() == [2.0, 3.0]

    def test_has_timestamps(self):
        with_ts = ObjectCollection.from_point_arrays([np.zeros((1, 2))], [np.zeros(1)])
        without = ObjectCollection.from_point_arrays([np.zeros((1, 2))])
        assert with_ts.has_timestamps()
        assert not without.has_timestamps()

    def test_bounds(self):
        collection = ObjectCollection.from_point_arrays(
            [np.array([[0.0, 0.0]]), np.array([[5.0, -2.0]])]
        )
        low, high = collection.bounds()
        assert low.tolist() == [0.0, -2.0]
        assert high.tolist() == [5.0, 0.0]

    def test_memory_bytes(self):
        collection = ObjectCollection.from_point_arrays([np.zeros((4, 2))])
        assert collection.memory_bytes() == 4 * 2 * 8

    def test_iteration_and_indexing(self):
        collection = ObjectCollection.from_point_arrays([np.zeros((1, 2))] * 3)
        assert [obj.oid for obj in collection] == [0, 1, 2]
        assert collection[2].oid == 2
        assert len(collection) == 3

    def test_repr(self):
        collection = ObjectCollection.from_point_arrays([np.zeros((2, 2))])
        assert "n=1" in repr(collection)
