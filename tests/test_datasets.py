"""Tests for the dataset generators, registry, sampling, stats, and I/O."""

import numpy as np
import pytest

from repro.baselines.nested_loop import brute_force_scores
from repro.datasets import (
    DATASET_NAMES,
    dataset_table,
    default_r_values,
    describe,
    load_collection,
    load_dataset,
    make_neurons,
    make_powerlaw,
    make_trajectories,
    sample_collection,
    save_collection,
    score_distribution_alpha,
)
from repro.datasets.io import export_csv, import_csv
from repro.datasets.stats import interaction_density
from repro.datasets.trajectories import zipf_partition


class TestNeurons:
    def test_shapes(self):
        collection = make_neurons(n=8, mean_points=40, seed=1)
        assert collection.n == 8
        assert collection.dimension == 3
        assert 20 <= collection.mean_points <= 60

    def test_deterministic(self):
        a = make_neurons(n=4, mean_points=20, seed=5)
        b = make_neurons(n=4, mean_points=20, seed=5)
        for obj_a, obj_b in zip(a, b):
            assert np.array_equal(obj_a.points, obj_b.points)

    def test_different_seeds_differ(self):
        a = make_neurons(n=4, mean_points=20, seed=1)
        b = make_neurons(n=4, mean_points=20, seed=2)
        assert not np.array_equal(a[0].points, b[0].points)

    def test_arbors_are_connected_walks(self):
        """Consecutive growth keeps points near the arbor, not scattered."""
        collection = make_neurons(n=3, mean_points=60, extent=100.0, step=2.0, seed=3)
        for obj in collection:
            low, high = obj.bounds()
            # An arbor of ~60 steps of length 2 cannot span the full extent
            # many times over; it stays a local structure.
            assert np.max(high - low) < 150.0

    def test_validation(self):
        with pytest.raises(ValueError):
            make_neurons(n=0, mean_points=10)
        with pytest.raises(ValueError):
            make_neurons(n=3, mean_points=1)


class TestTrajectories:
    def test_shapes(self):
        collection = make_trajectories(n=20, points_per_trajectory=15, seed=1)
        assert collection.n == 20
        assert collection.dimension == 2
        assert all(obj.num_points == 15 for obj in collection)

    def test_timestamps_present_by_default(self):
        collection = make_trajectories(n=5, points_per_trajectory=10, seed=1)
        assert collection.has_timestamps()
        assert collection[0].timestamps.tolist() == list(range(10))

    def test_timestamps_can_be_disabled(self):
        collection = make_trajectories(
            n=5, points_per_trajectory=10, with_timestamps=False, seed=1
        )
        assert not collection.has_timestamps()

    def test_leader_follower_structure(self):
        """One flock of followers => a hub trajectory with a high score."""
        collection = make_trajectories(
            n=30, points_per_trajectory=12, n_flocks=2, offset_scale=3.0, seed=4
        )
        scores = brute_force_scores(collection, 6.0)
        # The best object interacts with a sizable share of the flock.
        assert max(scores) >= collection.n // 4

    def test_validation(self):
        with pytest.raises(ValueError):
            make_trajectories(n=0, points_per_trajectory=5)


class TestZipfPartition:
    def test_sums_to_total(self):
        rng = np.random.default_rng(0)
        sizes = zipf_partition(rng, 100, 7, 1.5)
        assert int(sizes.sum()) == 100
        assert all(size >= 1 for size in sizes)

    def test_more_parts_than_total(self):
        rng = np.random.default_rng(0)
        sizes = zipf_partition(rng, 3, 10, 1.5)
        assert int(sizes.sum()) == 3
        assert len(sizes) == 3

    def test_skew_increases_with_exponent(self):
        rng = np.random.default_rng(0)
        flat = zipf_partition(rng, 1000, 10, 0.2)
        skewed = zipf_partition(np.random.default_rng(0), 1000, 10, 2.5)
        assert max(skewed) > max(flat)


class TestPowerlaw:
    def test_shapes(self):
        collection = make_powerlaw(n=40, mean_points=8, seed=1)
        assert collection.n == 40
        assert collection.dimension == 3

    def test_score_distribution_is_skewed(self):
        collection = make_powerlaw(
            n=80, mean_points=6, extent=800.0, n_communities=12, seed=2
        )
        scores = brute_force_scores(collection, 6.0)
        alpha = score_distribution_alpha(scores)
        assert alpha > 0.3  # clearly heavier than uniform
        assert max(scores) > np.median(scores)

    def test_validation(self):
        with pytest.raises(ValueError):
            make_powerlaw(n=0, mean_points=5)


class TestRegistry:
    def test_names(self):
        assert set(DATASET_NAMES) == {"neuron", "neuron-2", "bird", "bird-2", "syn"}

    @pytest.mark.parametrize("name", DATASET_NAMES)
    def test_load_scaled_down(self, name):
        collection = load_dataset(name, scale=0.05)
        assert collection.n >= 2
        assert collection.total_points > 0

    def test_scale_changes_n_not_m(self):
        small = load_dataset("bird-2", scale=0.1)
        large = load_dataset("bird-2", scale=0.2)
        assert large.n > small.n
        assert abs(large.mean_points - small.mean_points) < 10

    def test_unknown_name(self):
        with pytest.raises(ValueError):
            load_dataset("mars")
        with pytest.raises(ValueError):
            default_r_values("mars")

    def test_r_values_match_paper_sweep(self):
        values = default_r_values("neuron")
        assert values[0] == 4.0 and values[-1] == 10.0

    def test_dataset_table_rows(self):
        rows = dataset_table(scale=0.05)
        assert len(rows) == 5
        for row in rows:
            assert row["nm"] == pytest.approx(row["n"] * row["m"], rel=0.1)
            assert row["paper_nm"] == row["paper_n"] * row["paper_m"]


class TestSampling:
    def test_rate_one_returns_same(self, clustered_collection):
        assert sample_collection(clustered_collection, 1.0) is clustered_collection

    def test_sample_size(self, clustered_collection):
        sampled = sample_collection(clustered_collection, 0.5, seed=1)
        assert sampled.n == round(0.5 * clustered_collection.n)

    def test_sample_is_subset(self, clustered_collection):
        sampled = sample_collection(clustered_collection, 0.3, seed=2)
        originals = {obj.points.tobytes() for obj in clustered_collection}
        for obj in sampled:
            assert obj.points.tobytes() in originals

    def test_invalid_rate(self, clustered_collection):
        with pytest.raises(ValueError):
            sample_collection(clustered_collection, 0.0)
        with pytest.raises(ValueError):
            sample_collection(clustered_collection, 1.5)


class TestStats:
    def test_describe(self, clustered_collection):
        stats = describe(clustered_collection)
        assert stats["n"] == clustered_collection.n
        assert stats["nm"] == clustered_collection.total_points
        assert stats["m_min"] <= stats["m"] <= stats["m_max"]

    def test_alpha_flat_distribution_is_small(self):
        assert score_distribution_alpha([5] * 50) == pytest.approx(0.0, abs=1e-9)

    def test_alpha_few_values(self):
        assert score_distribution_alpha([1]) == 0.0
        assert score_distribution_alpha([0, 0, 0]) == 0.0

    def test_interaction_density(self):
        assert interaction_density([1, 1]) == 1.0
        assert interaction_density([0, 0, 0]) == 0.0
        assert interaction_density([5]) == 0.0


class TestIO:
    def test_npz_round_trip(self, tmp_path, clustered_collection):
        path = tmp_path / "data.npz"
        save_collection(path, clustered_collection)
        loaded = load_collection(path)
        assert loaded.n == clustered_collection.n
        for a, b in zip(loaded, clustered_collection):
            assert np.array_equal(a.points, b.points)

    def test_npz_round_trip_with_timestamps(self, tmp_path):
        collection = make_trajectories(n=5, points_per_trajectory=6, seed=1)
        path = tmp_path / "data.npz"
        save_collection(path, collection)
        loaded = load_collection(path)
        assert loaded.has_timestamps()
        assert np.array_equal(loaded[2].timestamps, collection[2].timestamps)

    def test_csv_round_trip(self, tmp_path, clustered_collection):
        path = tmp_path / "data.csv"
        export_csv(path, clustered_collection)
        loaded = import_csv(path)
        assert loaded.n == clustered_collection.n
        for a, b in zip(loaded, clustered_collection):
            assert np.allclose(a.points, b.points)

    def test_csv_round_trip_with_timestamps(self, tmp_path):
        collection = make_trajectories(n=4, points_per_trajectory=5, seed=2)
        path = tmp_path / "data.csv"
        export_csv(path, collection)
        loaded = import_csv(path)
        assert loaded.has_timestamps()
        assert np.allclose(loaded[1].timestamps, collection[1].timestamps)
