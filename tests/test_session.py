"""Tests for :mod:`repro.session`: batched sessions with cross-query reuse.

Covers the session lifecycle (cache warm-up, hit accounting, invalidation
on dynamic mutation), batch planning (ceiling groups, caller-order
results), the differential edge cases the labeling scheme must survive
(coincident points, single-point objects, ceil-collisions, 3-D), and the
stale-label regression the ``dynamic.py`` docstring warns about.
"""

import math

import numpy as np
import pytest

from repro.core.engine import MIOEngine
from repro.core.labels import LabelStore, labels_match_collection
from repro.core.objects import ObjectCollection
from repro.dynamic import DynamicMIO
from repro.errors import InvalidQueryError
from repro.session import QueryRequest, QuerySession, normalize_request as _normalize

from conftest import oracle_scores, random_collection


def expected_answer(collection, r):
    """Oracle max score and the set of admissible winners.

    The engine's winner among tied objects depends on verification order
    (best-first by upper bound), so differential tests accept any argmax;
    *determinism* (session == fresh engine, winner included) is asserted
    separately.
    """
    scores = oracle_scores(collection, r)
    best = max(scores)
    winners = {oid for oid, score in enumerate(scores) if score == best}
    return winners, best


class TestNormalization:
    def test_bare_numbers_and_dicts(self):
        assert _normalize(4).r == 4.0
        assert _normalize(4.5).k == 1
        request = _normalize({"r": 2.5, "k": 3, "timeout_ms": 100})
        assert (request.r, request.k, request.timeout_ms) == (2.5, 3, 100)

    def test_requests_pass_through(self):
        request = QueryRequest(r=1.5, k=2)
        assert _normalize(request) is request

    def test_invalid_r_rejected(self):
        with pytest.raises(InvalidQueryError):
            _normalize(0.0)
        with pytest.raises(InvalidQueryError):
            _normalize(-3)
        with pytest.raises(InvalidQueryError):
            _normalize(float("inf"))

    def test_invalid_k_rejected(self):
        with pytest.raises(InvalidQueryError):
            _normalize({"r": 2.0, "k": 0})

    def test_unknown_dict_field_rejected(self):
        with pytest.raises(InvalidQueryError, match="deadline"):
            _normalize({"r": 2.0, "deadline": 5})

    def test_missing_r_rejected(self):
        with pytest.raises(InvalidQueryError, match='"r"'):
            _normalize({"k": 2})

    def test_non_request_rejected(self):
        with pytest.raises(InvalidQueryError):
            _normalize("4.5")
        with pytest.raises(InvalidQueryError):
            _normalize(True)


class TestSessionBasics:
    def test_query_matches_fresh_engine(self, clustered_collection):
        session = QuerySession(clustered_collection)
        for r in (2.0, 4.5, 4.2, 4.5):
            fresh = MIOEngine(clustered_collection).query(r)
            got = session.query(r)
            assert (got.winner, got.score) == (fresh.winner, fresh.score)

    def test_topk_matches_fresh_engine(self, clustered_collection):
        session = QuerySession(clustered_collection)
        session.query(4.9)  # warm the ceiling
        fresh = MIOEngine(clustered_collection).query_topk(4.2, 5)
        got = session.topk(4.2, 5)
        assert got.topk == fresh.topk
        assert got.algorithm == "bigrid-label"

    def test_bad_source_rejected(self):
        with pytest.raises(InvalidQueryError, match="source"):
            QuerySession([np.zeros((2, 2))])

    def test_bad_cores_rejected(self, small_collection):
        with pytest.raises(InvalidQueryError):
            QuerySession(small_collection, cores=0)

    def test_repr_mentions_queries(self, small_collection):
        session = QuerySession(small_collection)
        session.query(1.5)
        assert "queries=1" in repr(session)

    def test_counters_track_reuse(self, clustered_collection):
        session = QuerySession(clustered_collection)
        session.query_many([4.9, 4.1, 4.9])
        stats = session.stats()
        assert stats["queries"] == 3
        assert stats["batches"] == 1
        assert stats["label_misses"] == 1      # one labeling run
        assert stats["label_hits"] == 2        # two WITH-LABEL runs
        assert stats["lower_cache_hits"] == 1  # repeated exact r = 4.9
        assert stats["grid_key_cache_hits"] > 0
        assert stats["label_ceilings"] == 1

    def test_results_annotated_with_session_counters(self, clustered_collection):
        session = QuerySession(clustered_collection)
        first, second = session.query_many([4.9, 4.1])
        assert first.counters["session_label_hit"] == 0
        assert second.counters["session_label_hit"] == 1
        assert second.counters["session_points_skipped"] >= 0

    def test_disk_backed_labels_survive_sessions(self, tmp_path, clustered_collection):
        first = QuerySession(clustered_collection, label_dir=tmp_path)
        first.query(4.9)
        second = QuerySession(clustered_collection, label_dir=tmp_path)
        result = second.query(4.1)
        assert result.algorithm == "bigrid-label"

    def test_points_skipped_accounted(self, small_collection):
        # o3 is isolated: after the labeling run its points are 0** and the
        # with-label query maps fewer points.
        session = QuerySession(small_collection)
        session.query(1.5)
        result = session.query(1.2)
        assert result.counters["session_points_skipped"] > 0
        assert session.stats()["points_skipped_by_labels"] > 0


class TestBatchPlanning:
    def test_empty_batch(self, small_collection):
        assert QuerySession(small_collection).query_many([]) == []

    def test_results_in_caller_order(self, clustered_collection):
        session = QuerySession(clustered_collection)
        rs = [8.5, 2.0, 4.9, 4.1, 8.1]
        results = session.query_many(rs)
        assert [result.r for result in results] == rs

    def test_one_labeling_run_per_ceiling(self, clustered_collection):
        session = QuerySession(clustered_collection)
        results = session.query_many([4.1, 4.5, 4.9, 8.1, 8.5])
        by_r = {result.r: result.algorithm for result in results}
        # The largest r of each ceiling group is the labeling run.
        assert by_r[4.9] == "bigrid" and by_r[8.5] == "bigrid"
        assert by_r[4.1] == by_r[4.5] == by_r[8.1] == "bigrid-label"
        assert session.stats()["label_ceilings"] == 2

    def test_mixed_k_batch(self, clustered_collection):
        session = QuerySession(clustered_collection)
        results = session.query_many([4.9, {"r": 4.2, "k": 3}])
        fresh = MIOEngine(clustered_collection).query_topk(4.2, 3)
        assert results[1].topk == fresh.topk

    def test_parallel_session_matches_serial(self, clustered_collection):
        serial = QuerySession(clustered_collection)
        parallel = QuerySession(
            clustered_collection, cores=4, parallel_mode="simulated"
        )
        rs = [4.9, 4.1, 4.3]
        got_serial = serial.query_many(rs)
        got_parallel = parallel.query_many(rs)
        for a, b in zip(got_serial, got_parallel):
            assert (a.winner, a.score) == (b.winner, b.score)
        # The labeling run stays serial; the rest fan out.
        assert parallel.stats()["parallel_queries"] == 2
        assert got_parallel[1].algorithm == "bigrid-label-parallel"

    def test_sharded_session_matches_serial(self, clustered_collection, monkeypatch):
        monkeypatch.setenv("REPRO_SHARD_INLINE", "1")
        serial = QuerySession(clustered_collection)
        sharded = QuerySession(clustered_collection, cores=2, shards=2)
        try:
            rs = [4.9, 4.1, 4.3]
            got_serial = serial.query_many(rs)
            got_sharded = sharded.query_many(rs)
            for a, b in zip(got_serial, got_sharded):
                assert (a.winner, a.score) == (b.winner, b.score)
            # Same routing rule as simulated mode: the labeling run stays
            # serial, later same-ceiling queries fan out -- now as real
            # shard tasks.
            assert sharded.stats()["parallel_queries"] == 2
            assert got_sharded[1].algorithm == "bigrid-sharded"
            assert got_sharded[1].counters["shards"] == 2
            # The shard-plan cache is session-visible and reused across
            # the same-ceiling sweep.
            stats = sharded.stats()
            assert stats["shard_plan_hits"] >= 1
        finally:
            sharded.close()


class TestEdgeCaseDifferentials:
    """Differential tests against the nested-loop oracle (Satellite 2)."""

    def test_coincident_and_duplicate_points(self):
        collection = ObjectCollection.from_point_arrays([
            np.array([[0.0, 0.0], [0.0, 0.0], [1.0, 1.0]]),   # duplicate points
            np.array([[0.0, 0.0]]),                            # coincides with o0
            np.array([[0.0, 0.0], [5.0, 5.0]]),                # coincides too
            np.array([[9.0, 9.0]]),
        ])
        session = QuerySession(collection)
        for r in (0.5, 0.9, 0.7):
            winners, best = expected_answer(collection, r)
            result = session.query(r)
            assert result.score == best and result.winner in winners

    def test_single_point_objects(self):
        rng = np.random.default_rng(3)
        collection = ObjectCollection.from_point_arrays(
            [rng.uniform(0, 6, size=(1, 2)) for _ in range(12)]
        )
        session = QuerySession(collection)
        for r in (1.0, 2.5, 2.1, 2.5):
            winners, best = expected_answer(collection, r)
            result = session.query(r)
            assert result.score == best and result.winner in winners

    def test_ceil_collisions_stay_sound(self):
        """Distinct r sharing one ceiling must all reuse labels soundly."""
        collection = random_collection(n=25, mean_points=6, seed=42)
        session = QuerySession(collection)
        rs = [4.0, 3.01, 3.5, 3.999, 3.01]  # all ceil to 4
        results = session.query_many(rs)
        for r, result in zip(rs, results):
            winners, best = expected_answer(collection, r)
            assert result.score == best and result.winner in winners, f"r={r}"
        assert session.stats()["label_ceilings"] == 1

    def test_paper_mode_ceil_collisions(self):
        """label_reuse="paper" applies Labeling-3 across the bucket."""
        collection = random_collection(n=20, mean_points=5, seed=9)
        session = QuerySession(collection, label_reuse="paper")
        results = session.query_many([4.0, 3.2, 3.9])
        for r, result in zip([4.0, 3.2, 3.9], results):
            assert result.score == max(oracle_scores(collection, r)), f"r={r}"

    def test_3d_collections(self, clustered_collection_3d):
        session = QuerySession(clustered_collection_3d)
        for r in (3.0, 4.9, 4.2, 4.9):
            winners, best = expected_answer(clustered_collection_3d, r)
            result = session.query(r)
            assert result.score == best and result.winner in winners

    def test_integer_r_on_bucket_boundary(self):
        """ceil(4.0) = 4 but ceil(4.0 + eps) = 5: buckets must not blur."""
        collection = random_collection(n=20, mean_points=6, seed=17)
        session = QuerySession(collection)
        results = session.query_many([4.0, 4.000001])
        assert session.stats()["label_ceilings"] == 2
        for r, result in zip([4.0, 4.000001], results):
            assert result.score == max(oracle_scores(collection, r))


class TestDynamicInvalidation:
    """Satellite 3: sessions must invalidate on DynamicMIO mutation."""

    @staticmethod
    def _build():
        """Three same-shaped objects: an isolated one plus a close pair.

        Same shapes are the point: after remove+add the positional label
        arrays still *shape-match* the re-compacted collection, so only
        version tracking can catch the staleness.
        """
        dynamic = DynamicMIO()
        handles = [
            dynamic.add_object(np.array([[50.0, 50.0], [51.0, 50.0]])),  # isolated
            dynamic.add_object(np.array([[0.0, 0.0], [1.0, 0.0]])),
            dynamic.add_object(np.array([[0.5, 0.5], [1.5, 0.5]])),
        ]
        return dynamic, handles

    def test_stale_label_scenario_is_reproduced(self):
        """The raw-engine hazard documented in dynamic.py actually bites."""
        dynamic, handles = self._build()
        old_collection, _ = dynamic.snapshot()
        store = LabelStore()
        MIOEngine(old_collection, label_store=store).query(1.5)
        # Position 0 (the isolated object) was labeled grid-useless.
        labels = store.get(2)
        assert np.all((labels.arrays[0] & 0b100) == 0)

        # Same-shape churn: drop the isolated object, add one that overlaps
        # the close pair.  Shapes coincide, so the shape guard is blind.
        dynamic.remove_object(handles[0])
        dynamic.add_object(np.array([[0.2, 0.2], [1.2, 0.2]]))
        new_collection, _ = dynamic.snapshot()
        assert labels_match_collection(labels, new_collection)

        # Reusing the stale store on the new collection undercounts:
        # position 0 is now a *participating* object whose points the stale
        # 0** labels skip during grid mapping.
        stale = MIOEngine(new_collection, label_store=store).query(1.5)
        truth = max(oracle_scores(new_collection, 1.5))
        assert stale.score < truth

    def test_session_invalidates_and_stays_exact(self):
        dynamic, handles = self._build()
        session = QuerySession(dynamic)
        first = session.query(1.5)
        assert first.score == max(oracle_scores(session.collection, 1.5))
        assert session.stats()["label_ceilings"] == 1

        dynamic.remove_object(handles[0])
        dynamic.add_object(np.array([[0.2, 0.2], [1.2, 0.2]]))
        second = session.query(1.5)
        truth = max(oracle_scores(session.collection, 1.5))
        assert second.score == truth
        assert session.stats()["invalidations"] == 1
        # The winner maps back to a stable handle of the *current* contents.
        assert session.handle_of(second.winner) in dynamic

    def test_every_cache_layer_is_dropped(self):
        dynamic, handles = self._build()
        session = QuerySession(dynamic)
        session.query(1.5)
        assert len(session.key_cache) > 0
        assert len(session.lower_cache) == 1
        dynamic.add_object(np.array([[30.0, 30.0], [31.0, 30.0]]))
        session.query(1.5)
        # Caches were cleared and repopulated for the new snapshot only.
        assert session.stats()["invalidations"] == 1
        assert len(session.lower_cache) == 1
        assert session.label_store.ceilings() == [2]

    def test_mutation_between_batches(self):
        dynamic, handles = self._build()
        session = QuerySession(dynamic)
        cold = session.query_many([1.5, 1.2])
        dynamic.remove_object(handles[2])
        dynamic.add_object(np.array([[100.0, 100.0], [101.0, 100.0]]))
        warm = session.query_many([1.5, 1.2])
        for r, result in zip([1.5, 1.2], warm):
            assert result.score == max(oracle_scores(session.collection, r))

    def test_no_spurious_invalidation_without_mutation(self):
        dynamic, _ = self._build()
        session = QuerySession(dynamic)
        session.query(1.5)
        session.query(1.2)
        session.query_many([1.4])
        assert session.stats()["invalidations"] == 0
        assert session.stats()["label_hits"] == 2
