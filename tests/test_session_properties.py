"""Property suites for :class:`repro.session.QuerySession` (Satellites 1-2).

Two invariants, checked over randomized collections, backends, and
threshold sequences:

1. **Session equivalence** -- ``query_many`` over a warm session returns
   results element-wise identical (winner, score, and top-k included) to
   fresh single-shot :class:`~repro.core.engine.MIOEngine` runs, both on a
   cold session and after a second, fully warm pass.  This is the claim
   that makes every cache tier (labels per ``ceil(r)``, large-grid keys
   per ceiling, lower-bound state per exact ``r``) safe to ship: reuse may
   only change *speed*, never answers.

2. **Oracle differential** -- session scores equal the brute-force
   nested-loop oracle, and the winner is one of the oracle's argmax
   objects.  The generator deliberately produces coincident/duplicate
   points, single-point objects, ceiling-colliding thresholds, and 3-D
   collections, the edge cases Section III-D's labels must survive.

The generator biases thresholds to share one ``ceil(r)`` (so label reuse
actually triggers) and repeats exact values (so the lower-bound cache
actually hits); ``HYPOTHESIS_PROFILE=ci`` raises the example budget to 500
per backend (see ``conftest.py``).
"""

import math

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.engine import MIOEngine
from repro.core.objects import ObjectCollection
from repro.session import QuerySession

from conftest import oracle_scores

BACKENDS = ("ewah", "plain", "roaring")

# A tiny shared value pool makes coincident and duplicate points common
# instead of measure-zero; the continuous alternative keeps coverage broad.
_POOL = (0.0, 0.5, 1.0, 2.5)
_coordinate = st.one_of(
    st.sampled_from(_POOL),
    st.floats(min_value=-6.0, max_value=6.0, allow_nan=False, width=32),
)


@st.composite
def collections(draw):
    """2-D or 3-D collections of 2-8 small, possibly degenerate objects."""
    dimension = draw(st.sampled_from((2, 3)))
    n = draw(st.integers(min_value=2, max_value=8))
    arrays = []
    for _ in range(n):
        count = draw(st.integers(min_value=1, max_value=5))
        points = [
            [draw(_coordinate) for _ in range(dimension)] for _ in range(count)
        ]
        arrays.append(np.array(points, dtype=np.float64))
    return ObjectCollection.from_point_arrays(arrays)


@st.composite
def r_sequences(draw):
    """1-6 thresholds biased toward one shared ceiling, with repeats.

    Most values land in ``(ceiling - 1, ceiling]`` so the batch planner
    forms a real label-reuse group; an occasional stray from another bucket
    checks the buckets stay separate, and repeating an earlier value
    exercises the exact-``r`` lower-bound cache.  Integer thresholds (bucket
    boundaries) are drawn explicitly since floats rarely hit them.
    """
    ceiling = draw(st.integers(min_value=1, max_value=5))
    # ``ceiling - offset`` stays inside the bucket while keeping r >= 0.125:
    # sub-normal thresholds overflow the grid's int64 cell arithmetic, a
    # numeric regime the paper's r ranges never approach.
    offset = st.floats(min_value=0.0, max_value=0.875, allow_nan=False, width=32)
    in_bucket = st.builds(lambda o: float(ceiling) - float(o), offset)
    rs = [draw(in_bucket)]
    for _ in range(draw(st.integers(min_value=0, max_value=5))):
        kind = draw(st.sampled_from(("bucket", "repeat", "stray")))
        if kind == "repeat":
            rs.append(draw(st.sampled_from(rs)))
        elif kind == "stray":
            rs.append(draw(st.floats(
                min_value=0.125, max_value=8.0, allow_nan=False, width=32,
            )))
        else:
            rs.append(draw(in_bucket))
    return rs


def _fingerprint(result):
    return (result.winner, result.score, result.topk, result.exact)


@pytest.mark.parametrize("backend", BACKENDS)
@given(collection=collections(), rs=r_sequences(), k=st.sampled_from((1, 3)))
def test_query_many_matches_fresh_engines(backend, collection, rs, k):
    """Satellite 1: batch reuse is answer-preserving, cold and warm."""
    requests = [{"r": r, "k": k} for r in rs]
    session = QuerySession(collection, backend=backend)
    cold = session.query_many(requests)
    warm = session.query_many(requests)
    for r, cold_result, warm_result in zip(rs, cold, warm):
        fresh_engine = MIOEngine(collection, backend=backend)
        fresh = (
            fresh_engine.query(r) if k == 1 else fresh_engine.query_topk(r, k)
        )
        assert fresh.exact and cold_result.exact and warm_result.exact
        assert _fingerprint(cold_result) == _fingerprint(fresh), f"cold r={r}"
        assert _fingerprint(warm_result) == _fingerprint(fresh), f"warm r={r}"


@pytest.mark.parametrize("backend", BACKENDS)
@given(collection=collections(), rs=r_sequences())
def test_query_many_matches_oracle(backend, collection, rs):
    """Satellite 2: warm sessions agree with the nested-loop ground truth."""
    session = QuerySession(collection, backend=backend)
    for result in session.query_many(rs) + session.query_many(rs):
        scores = oracle_scores(collection, result.r)
        best = max(scores)
        assert result.score == best
        assert scores[result.winner] == best
        assert result.exact


@given(collection=collections(), rs=r_sequences())
def test_paper_mode_equals_hand_threaded_caches(collection, rs):
    """The session adds lifecycle, not semantics, in ``paper`` mode too.

    ``label_reuse="paper"`` applies Labeling-3 across the whole ceiling
    bucket and is *documented* to possibly under-count for ``r' != r``
    (DESIGN.md §3); the under-count's exact shape depends on which points
    verification happened to skip during the labeling run, which the
    lower-bound seeding legitimately changes.  The oracle (and a cache-less
    engine) are therefore not the right references.  The invariant is
    instead: a session behaves exactly like the manual idiom it replaces --
    the store and both caches hand-threaded through bare engine calls in
    the session's own execution order.
    """
    from repro.core.labels import LabelStore
    from repro.core.lower_bound import LowerBoundCache
    from repro.grid.cache import LargeKeyCache

    order = sorted(
        range(len(rs)), key=lambda i: (math.ceil(rs[i]), -rs[i], i)
    )
    store = LabelStore()
    key_cache = LargeKeyCache()
    lower_cache = LowerBoundCache()
    manual = [None] * len(rs)
    for index in order:
        engine = MIOEngine(
            collection, label_store=store, label_reuse="paper",
            key_cache=key_cache, lower_cache=lower_cache,
        )
        manual[index] = engine.query(rs[index])

    session = QuerySession(collection, label_reuse="paper")
    for manual_result, session_result in zip(manual, session.query_many(rs)):
        assert _fingerprint(session_result) == _fingerprint(manual_result)
