"""Unit tests for the deadline and fault-injection primitives."""

import pytest

from repro import faults
from repro.errors import InjectedFault, InvalidQueryError, QueryTimeout
from repro.faults import FaultInjector, FaultSpec, env_seeds, from_env
from repro.resilience import Deadline, ManualClock, checkpoint


class TestManualClock:
    def test_advances_by_step_per_reading(self):
        clock = ManualClock(step=2.0)
        assert clock() == 0.0
        assert clock() == 2.0
        assert clock() == 4.0

    def test_explicit_advance(self):
        clock = ManualClock(start=5.0)
        clock.advance(3.0)
        assert clock() == 8.0


class TestDeadline:
    def test_not_expired_within_budget(self):
        deadline = Deadline(10.0, clock=ManualClock(step=1.0))
        assert not deadline.expired()
        assert deadline.remaining() > 0
        deadline.check("grid_mapping")  # must not raise

    def test_check_raises_with_phase_and_elapsed(self):
        deadline = Deadline(2.0, clock=ManualClock(step=1.0))
        deadline.check("grid_mapping")
        with pytest.raises(QueryTimeout) as info:
            deadline.check("lower_bounding")
        assert info.value.phase == "lower_bounding"
        assert info.value.elapsed >= 2.0
        assert "lower_bounding" in str(info.value)

    def test_expiry_after_exactly_budget_ticks(self):
        deadline = Deadline(3.0, clock=ManualClock(step=1.0))
        assert [deadline.expired() for _ in range(4)] == [
            False, False, True, True,
        ]

    def test_negative_budget_rejected(self):
        with pytest.raises(InvalidQueryError):
            Deadline(-1.0)

    def test_from_timeout_ms(self):
        assert Deadline.from_timeout_ms(None) is None
        deadline = Deadline.from_timeout_ms(1500.0, clock=ManualClock())
        assert deadline.budget == pytest.approx(1.5)

    def test_checkpoint_none_is_noop(self):
        checkpoint(None, "verification")  # must not raise

    def test_timeout_is_a_builtin_timeout_error(self):
        deadline = Deadline(0.0, clock=ManualClock(step=1.0))
        with pytest.raises(TimeoutError):
            deadline.check("verification")

    def test_remaining_ms_counts_down_and_clamps_at_zero(self):
        clock = ManualClock()
        deadline = Deadline(0.5, clock=clock)
        assert deadline.remaining_ms() == pytest.approx(500.0)
        clock.advance(0.2)
        assert deadline.remaining_ms() == pytest.approx(300.0)
        clock.advance(10.0)
        assert deadline.remaining_ms() == 0.0  # clamped, never negative


class TestQueueWaitChargesTheBudget:
    """Satellite: time spent queued burns the request's own deadline."""

    def test_admission_wait_consumes_the_deadline(self):
        from repro.service.admission import ADMITTED, EXPIRED, AdmissionController

        clock = ManualClock()
        controller = AdmissionController(max_inflight=1, max_queue=4, clock=clock)
        assert controller.admit().outcome == ADMITTED  # occupies the only slot

        # The second request arrives with 50ms of budget already half
        # spent elsewhere; the admission queue may not wait past it.
        deadline = Deadline.from_timeout_ms(50.0, clock=clock)
        clock.advance(0.051)
        decision = controller.admit(deadline)
        assert decision.outcome == EXPIRED
        assert deadline.remaining_ms() == 0.0

    def test_expired_budget_never_reaches_execution(self):
        from repro.service.app import ServiceApp

        deadline = Deadline(0.0, clock=ManualClock(step=1.0))
        with pytest.raises(QueryTimeout) as info:
            ServiceApp._run(None, None, deadline)
        assert info.value.phase == "admission_queue"


class TestFaultSpec:
    def test_bad_kind_rejected(self):
        with pytest.raises(ValueError, match="kind"):
            FaultSpec("io", kind="explode")

    def test_bad_rate_rejected(self):
        with pytest.raises(ValueError, match="rate"):
            FaultSpec("io", rate=1.5)


class TestFaultInjector:
    def test_fail_spec_raises_with_point(self):
        injector = FaultInjector([FaultSpec("io")])
        with pytest.raises(InjectedFault) as info:
            injector.trip("io")
        assert info.value.point == "io"

    def test_match_gates_on_detail(self):
        injector = FaultInjector([FaultSpec("partition_task", match=3)])
        injector.trip("partition_task", detail=1)  # no match: silent
        with pytest.raises(InjectedFault):
            injector.trip("partition_task", detail=3)

    def test_max_triggers_limits_firing(self):
        injector = FaultInjector([FaultSpec("io", max_triggers=2)])
        for _ in range(2):
            with pytest.raises(InjectedFault):
                injector.trip("io")
        injector.trip("io")  # budget exhausted: silent
        assert injector.fired["io"] == 2

    def test_rate_zero_never_fires(self):
        injector = FaultInjector([FaultSpec("io", rate=0.0)])
        for _ in range(20):
            injector.trip("io")
        assert injector.fired == {}

    def test_injected_scope_restores_previous(self):
        outer = FaultInjector([])
        inner = FaultInjector([])
        with faults.injected(outer):
            with faults.injected(inner):
                assert faults.active() is inner
            assert faults.active() is outer
        assert faults.active() is None


class TestEnvParsing:
    def test_full_grammar(self):
        injector = from_env("seed=42;verification:fail;io:latency:0.5:250:x.npz")
        assert injector.seed == 42
        assert len(injector.specs) == 2
        first, second = injector.specs
        assert (first.point, first.kind) == ("verification", "fail")
        assert second.kind == "latency"
        assert second.rate == pytest.approx(0.5)
        assert second.latency == pytest.approx(0.25)
        assert second.match == "x.npz"

    def test_integer_match_parses_as_int(self):
        injector = from_env("partition_task:fail:1:0:2")
        assert injector.specs[0].match == 2

    def test_empty_and_seeds_only_yield_none(self):
        assert from_env(None) is None
        assert from_env("") is None
        assert from_env("seeds=0:8") is None

    def test_env_seeds_range_and_list(self):
        assert env_seeds("seeds=2:5") == [2, 3, 4]
        assert env_seeds("seeds=1,7,9") == [1, 7, 9]
        assert env_seeds("verification:fail") == []
        assert env_seeds(None) == []


class TestBatchTimeoutIsolation:
    """Satellite: one expired request degrades alone, never its batch."""

    @staticmethod
    def _collection():
        from conftest import random_collection

        return random_collection(n=20, mean_points=5, seed=5)

    def test_single_query_still_raises(self):
        from repro.session import QuerySession

        session = QuerySession(self._collection())
        with pytest.raises(QueryTimeout):
            session.query(4.5, deadline=Deadline(0.0, clock=ManualClock(step=1.0)))

    def test_one_timeout_does_not_poison_the_batch(self):
        from repro.core.engine import MIOEngine
        from repro.session import QueryRequest, QuerySession

        collection = self._collection()
        doomed = QueryRequest(
            r=4.5, deadline=Deadline(0.0, clock=ManualClock(step=1.0))
        )
        session = QuerySession(collection)
        results = session.query_many([4.9, doomed, 4.2])

        assert not results[1].exact
        assert results[1].winner == -1 and results[1].score == 0
        assert "anytime" in results[1].notes

        for index in (0, 2):
            fresh = MIOEngine(collection).query(results[index].r)
            assert results[index].exact
            assert (results[index].winner, results[index].score) == (
                fresh.winner, fresh.score,
            )
        stats = session.stats()
        assert stats["timeouts"] == 1
        assert stats["anytime_results"] == 1

    def test_timed_out_labeling_run_does_not_poison_its_group(self):
        from repro.session import QueryRequest, QuerySession

        # The doomed request is the group's would-be labeling run (largest
        # r of the ceiling); the next request must simply inherit that role.
        doomed = QueryRequest(
            r=4.9, deadline=Deadline(0.0, clock=ManualClock(step=1.0))
        )
        session = QuerySession(self._collection())
        results = session.query_many([doomed, 4.5, 4.2])
        assert not results[0].exact
        assert results[1].algorithm == "bigrid"          # promoted labeling run
        assert results[2].algorithm == "bigrid-label"    # still reuses labels
        assert results[1].exact and results[2].exact

    def test_deadline_expiring_in_verification_keeps_anytime_answer(self):
        from repro.session import QuerySession

        # Injected latency burns the first request's budget inside
        # verification, where the engine degrades to its verified prefix
        # instead of raising (PR 1 anytime semantics); the session keeps
        # that partial answer and the rest of the batch stays exact.
        injector = from_env("verification:latency:1:400")
        faults.install(injector)
        try:
            session = QuerySession(self._collection())
            results = session.query_many([{"r": 4.5, "timeout_ms": 200}, 4.2])
        finally:
            faults.install(None)
        assert not results[0].exact
        assert results[0].winner >= 0
        assert "anytime" in results[0].notes
        assert results[1].exact
        assert session.stats()["anytime_results"] == 1
        assert session.stats()["timeouts"] == 0


class TestAnytimeKernelParity:
    """Mid-verification expiry must degrade identically across kernels.

    The numpy backend's batched verifier polls the deadline at exactly the
    reference checkpoints (one per dequeued candidate, one per visited
    point group), so a budget that dies mid-batch must cut verification at
    the same candidate and surface the *same* ``exact=False`` anytime
    answer — the verified-prefix/lower-bound fallback — that the pure
    python path produces.
    """

    def _degraded_result(self, kernel):
        from conftest import random_collection
        from repro.session import QuerySession

        # Verification-heavy workload (large r leaves most objects as
        # candidates); injected latency at the first verification
        # checkpoint burns the real budget inside the phase, after the
        # filtering phases completed well within it.
        collection = random_collection(n=40, mean_points=8, seed=77)
        injector = from_env("verification:latency:1:400")
        faults.install(injector)
        try:
            session = QuerySession(collection, kernel=kernel)
            result = session.query_many([{"r": 8.0, "timeout_ms": 200}])[0]
        finally:
            faults.install(None)
        assert not result.exact
        assert "anytime" in result.notes
        assert session.stats()["anytime_results"] == 1
        return result

    def test_vectorized_verification_degrades_like_reference(self):
        from repro.kernels import numpy_kernel_available

        if not numpy_kernel_available():
            pytest.skip("numpy kernel unavailable here")
        ref = self._degraded_result("python")
        got = self._degraded_result("numpy")
        assert (ref.winner, ref.score) == (got.winner, got.score)
        assert ref.algorithm == got.algorithm
        assert ref.counters == got.counters
        # The in-flight candidate died at the first in-phase checkpoint,
        # so both paths fall back to the same unverified prefix.
        assert ref.counters["verified_objects"] == 0
        notes_ref = {k: v for k, v in ref.notes.items()
                     if k not in ("verification_path", "lower_bound_path")}
        notes_got = {k: v for k, v in got.notes.items()
                     if k not in ("verification_path", "lower_bound_path")}
        assert notes_ref == notes_got
