"""Unit suite for the cost-model query planner (``repro.planner``).

Four layers of pinning, from the model outward:

* **cost model** -- more points never predict cheaper (monotonicity in
  the collection's point count, for every plannable knob assignment),
  and the lower-bounding dispatch crossover prices the path that will
  actually run;
* **decision procedure** -- cold-start hysteresis (the static baseline
  survives near-ties, degenerate collections, and numpy-less hosts),
  capability-driven candidate enumeration, memoization keyed on the
  model version, and a pinned decision table for the paper's Fig. 5/6
  workload shapes;
* **feedback** -- online observation and offline profile ingestion
  (PR 8's JSONL schema) shift decisions deterministically: two fresh
  planners fed the same stream agree coefficient-for-coefficient;
* **integration** -- planned queries degrade through the existing
  fault/deadline chains (a planner never masks a
  ``PartitionTaskError``), and ``repro explain``'s plan rendering
  reads everything duck-typed off the result.
"""

import math

import pytest

from repro import faults
from repro.core.engine import MIOEngine
from repro.errors import InvalidQueryError, PartitionTaskError, QueryTimeout
from repro.faults import FaultInjector, FaultSpec
from repro.kernels import numpy_kernel_available
from repro.obs.explain import render_plan
from repro.parallel.engine import ParallelMIOEngine
from repro.planner import (
    AdaptivePlanner,
    CostModel,
    FixedPlanner,
    Plan,
    QueryStatistics,
    capture_statistics,
    estimate_units,
    parse_plan,
    resolve_planner,
    statistics_from_profile,
)
from repro.resilience import Deadline, ManualClock
from repro.session import QuerySession

from conftest import random_collection

needs_numpy = pytest.mark.skipif(
    not numpy_kernel_available(), reason="numpy kernel unavailable here"
)


def make_stats(**overrides) -> QueryStatistics:
    """A mid-size 2-d workload; fields overridable per test."""
    fields = dict(
        n=2_000,
        total_points=20_000,
        dimension=2,
        density=0.8,
        r=2.0,
        k=1,
        ceil_r=2,
        numpy_available=True,
    )
    fields.update(overrides)
    return QueryStatistics(**fields)


# ----------------------------------------------------------------------
# Plan: validation and the describe()/parse_plan() round trip
# ----------------------------------------------------------------------


class TestPlan:
    def test_default_plan_is_the_static_reference(self):
        plan = Plan()
        assert (plan.kernel, plan.mode, plan.shards) == ("python", "serial", 1)
        assert (plan.lb_dispatch, plan.grid_keys) == ("auto", "auto")

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"kernel": "fortran"},
            {"mode": "simulated"},
            {"shards": 0},
            {"mode": "serial", "shards": 2},
            {"lb_dispatch": "reduceat"},
            {"grid_keys": "stale"},
        ],
    )
    def test_invalid_knobs_raise(self, kwargs):
        with pytest.raises(InvalidQueryError):
            Plan(**kwargs)

    @pytest.mark.parametrize(
        "plan",
        [
            Plan(),
            Plan(kernel="numpy", lb_dispatch="vectorized", grid_keys="fresh"),
            Plan(kernel="numpy", mode="sharded", shards=8),
        ],
    )
    def test_describe_parse_round_trip(self, plan):
        assert parse_plan(plan.describe()) == plan

    @pytest.mark.parametrize(
        "note",
        ["", "kernel=python", "kernel=python mode=serial shards=one lb=auto grid=auto",
         "bogus=1 kernel=python mode=serial shards=1 lb=auto grid=auto",
         "kernel=python mode=serial shards=2 lb=auto grid=auto"],
    )
    def test_malformed_notes_parse_to_none(self, note):
        assert parse_plan(note) is None


class TestResolvePlanner:
    def test_static_resolves_to_no_planner_object(self):
        assert resolve_planner("static") is None
        assert resolve_planner(None) is None

    def test_adaptive_resolves_to_a_fresh_planner(self):
        planner = resolve_planner("adaptive")
        assert isinstance(planner, AdaptivePlanner)

    def test_instances_pass_through(self):
        fixed = FixedPlanner(Plan())
        assert resolve_planner(fixed) is fixed

    def test_unknown_name_raises(self):
        with pytest.raises(InvalidQueryError):
            resolve_planner("bogus")


# ----------------------------------------------------------------------
# Cost model: monotonicity and the dispatch crossover
# ----------------------------------------------------------------------

ALL_SERIAL_PLANS = [
    Plan(),
    Plan(grid_keys="fresh"),
    Plan(kernel="numpy"),
    Plan(kernel="numpy", lb_dispatch="seq"),
    Plan(kernel="numpy", lb_dispatch="vectorized"),
    Plan(kernel="numpy", grid_keys="fresh"),
]
SHARDED_PLANS = [
    Plan(mode="sharded", shards=2),
    Plan(kernel="numpy", mode="sharded", shards=4),
]


class TestCostModel:
    @pytest.mark.parametrize("plan", ALL_SERIAL_PLANS + SHARDED_PLANS)
    def test_more_points_never_predict_cheaper(self, plan):
        model = CostModel()
        stats = make_stats(cores=4, sharding_available=True, key_cache=True)
        totals = [
            model.predict(plan, stats.scaled(factor))["total"]
            for factor in (0.25, 0.5, 1.0, 2.0, 4.0, 16.0)
        ]
        assert totals == sorted(totals), plan.describe()

    def test_estimate_units_monotone_in_points(self):
        stats = make_stats()
        small, large = estimate_units(stats.scaled(0.5)), estimate_units(
            stats.scaled(8.0)
        )
        for phase, units in small.items():
            assert units <= large[phase], phase

    def test_lower_bound_dispatch_crossover(self):
        # Tiny shared-row counts favour the sequential gather, huge ones
        # the reduceat path -- the model reproduces the kernel's
        # measured 768-row switch in spirit.
        model = CostModel()
        tiny = make_stats(n=40, total_points=300, density=0.05)
        huge = make_stats(n=40_000, total_points=400_000, density=4.0)
        seq, vec = Plan(kernel="numpy", lb_dispatch="seq"), Plan(
            kernel="numpy", lb_dispatch="vectorized"
        )
        assert (
            model.predict(seq, tiny)["lower_bounding"]
            < model.predict(vec, tiny)["lower_bounding"]
        )
        assert (
            model.predict(vec, huge)["lower_bounding"]
            < model.predict(seq, huge)["lower_bounding"]
        )

    def test_auto_dispatch_prices_the_path_that_runs(self):
        model = CostModel()
        auto = Plan(kernel="numpy")
        tiny = make_stats(n=40, total_points=300, density=0.05)
        huge = make_stats(n=40_000, total_points=400_000, density=4.0)
        tiny_rows = estimate_units(tiny)["lower_bounding"]
        huge_rows = estimate_units(huge)["lower_bounding"]
        assert model.lower_bounding_key(auto, tiny_rows) == "lower_bounding_seq"
        assert model.lower_bounding_key(auto, huge_rows) == "lower_bounding_vec"

    def test_sharded_prediction_reports_sharded_phase_names(self):
        model = CostModel()
        prediction = model.predict(
            Plan(kernel="numpy", mode="sharded", shards=4),
            make_stats(cores=4, sharding_available=True),
        )
        assert set(prediction) == {
            "shard_route", "shard_execute", "shard_merge", "total",
        }

    def test_skewed_plan_cache_discounts_the_parallel_speedup(self):
        model = CostModel()
        plan = Plan(kernel="numpy", mode="sharded", shards=4)
        balanced = make_stats(cores=4, sharding_available=True)
        skewed = make_stats(
            cores=4, sharding_available=True, plan_cache_balance=3.0
        )
        assert (
            model.predict(plan, skewed)["shard_execute"]
            > model.predict(plan, balanced)["shard_execute"]
        )

    def test_observe_updates_only_serial_shaped_phases(self):
        model = CostModel()
        version = model.version
        # Sharded phase names carry no calibratable unit counters.
        assert model.observe(
            Plan(mode="sharded", shards=2),
            {"shard_execute": 0.5},
            {"mapped_points": 100},
        ) == 0
        assert model.version == version
        assert model.observe(
            Plan(), {"grid_mapping": 0.01}, {"mapped_points": 1_000}
        ) == 1
        assert model.version == version + 1

    def test_observation_outliers_are_clamped(self):
        model = CostModel()
        before = model.unit_cost("python", "grid_mapping")
        # One absurd observation (1000x the seed) moves the EWMA at most
        # alpha * (clamp - 1) of the way there.
        model.observe(Plan(), {"grid_mapping": before * 1e6}, {"mapped_points": 1})
        after = model.unit_cost("python", "grid_mapping")
        assert after <= before * 4.0


# ----------------------------------------------------------------------
# Decision procedure: cold start, enumeration, memoization, pinned table
# ----------------------------------------------------------------------


class TestColdStartDecisions:
    def test_degenerate_collection_keeps_the_baseline(self):
        planner = AdaptivePlanner()
        decision = planner.decide(make_stats(n=0, total_points=0), Plan())
        assert decision.plan == Plan()
        assert "degenerate" in decision.reason

    def test_without_numpy_the_python_baseline_survives(self):
        planner = AdaptivePlanner()
        decision = planner.decide(make_stats(numpy_available=False), Plan())
        assert decision.plan == Plan()
        assert decision.reason == "baseline within margin"

    def test_baseline_already_optimal_is_kept_without_churn(self):
        planner = AdaptivePlanner()
        baseline = Plan(kernel="numpy")
        decision = planner.decide(make_stats(), baseline)
        assert decision.plan == baseline

    def test_decision_carries_predictions_for_explain(self):
        decision = AdaptivePlanner().decide(make_stats(), Plan())
        assert decision.predicted["total"] > 0.0
        assert decision.baseline == Plan()
        assert decision.baseline_total > 0.0


class TestCandidateEnumeration:
    def test_capabilities_gate_the_candidate_set(self):
        planner = AdaptivePlanner()
        plans = planner.candidates(make_stats(numpy_available=False), Plan())
        assert all(p.kernel == "python" for p in plans)
        assert all(p.mode == "serial" for p in plans)
        # No key cache attached => no "fresh" policy to toggle.
        assert all(p.grid_keys == "auto" for p in plans)

    def test_sharded_ladder_requires_capacity(self):
        planner = AdaptivePlanner()
        serial_only = planner.candidates(
            make_stats(sharding_available=True, cores=1), Plan()
        )
        assert all(p.mode == "serial" for p in serial_only)
        laddered = planner.candidates(
            make_stats(sharding_available=True, cores=4), Plan()
        )
        shard_counts = {p.shards for p in laddered if p.mode == "sharded"}
        assert shard_counts == {2, 4, 8}  # ladder capped at 2 * cores

    def test_enumeration_is_deterministic(self):
        planner = AdaptivePlanner()
        stats = make_stats(sharding_available=True, cores=4, key_cache=True)
        assert planner.candidates(stats, Plan()) == planner.candidates(
            stats, Plan()
        )

    def test_baseline_is_always_a_candidate(self):
        planner = AdaptivePlanner()
        baseline = Plan(kernel="numpy", mode="sharded", shards=3)
        assert baseline in planner.candidates(make_stats(), baseline)


class TestMemoization:
    def test_same_statistics_hit_the_memo(self):
        planner = AdaptivePlanner()
        first = planner.decide(make_stats(), Plan())
        second = planner.decide(make_stats(), Plan())
        assert first is second
        assert planner.memo_hits == 1
        assert planner.decisions == 1

    def test_feedback_invalidates_the_memo(self):
        planner = AdaptivePlanner()
        planner.decide(make_stats(), Plan())
        planner.observe(Plan(), {"grid_mapping": 0.5}, {"mapped_points": 100})
        planner.decide(make_stats(), Plan())
        assert planner.decisions == 2  # version moved, memo key changed

    def test_counters_surface_the_tallies(self):
        planner = AdaptivePlanner()
        planner.decide(make_stats(), Plan())
        counters = planner.counters()
        assert counters["planner_decisions"] == 1
        assert counters["planner_model_version"] == 0


# Pinned cold-model decisions for the paper's workload shapes: Fig. 5
# varies collection cardinality, Fig. 6 varies the threshold r.  These
# were generated from the current implementation and express the model's
# intended *shape*: numpy for bulk work, the dispatch crossover on tiny
# collections, sharding only when capacity and scale both justify it,
# and the python baseline surviving numpy-less hosts.  If the cost
# seeds change intentionally, regenerate and say so in the commit.
FIGURE_SHAPES = {
    "fig5-tiny": dict(n=100, total_points=1_000, density=0.4, r=2.0, ceil_r=2),
    "fig5-small": dict(n=2_000, total_points=20_000, density=0.8, r=2.0, ceil_r=2),
    "fig5-large": dict(n=50_000, total_points=500_000, density=2.0, r=2.0, ceil_r=2),
    "fig5-parallel": dict(
        n=50_000, total_points=500_000, density=2.0, r=2.0, ceil_r=2,
        cores=8, sharding_available=True,
    ),
    "fig6-small-r": dict(n=10_000, total_points=100_000, density=1.0, r=0.5, ceil_r=1),
    "fig6-large-r": dict(n=10_000, total_points=100_000, density=1.0, r=8.0, ceil_r=8),
    "fig6-large-r-parallel": dict(
        n=10_000, total_points=100_000, density=1.0, r=8.0, ceil_r=8,
        cores=4, sharding_available=True,
    ),
    "no-numpy": dict(
        n=10_000, total_points=100_000, density=1.0, r=8.0, ceil_r=8,
        numpy_available=False,
    ),
    "session-cached": dict(
        n=10_000, total_points=100_000, density=1.0, r=8.0, ceil_r=8,
        labels_available=True, key_cache=True, lower_cache=True,
    ),
}

DECISION_TABLE = {
    "fig5-tiny": "kernel=numpy mode=serial shards=1 lb=vectorized grid=auto",
    "fig5-small": "kernel=numpy mode=serial shards=1 lb=auto grid=auto",
    "fig5-large": "kernel=numpy mode=serial shards=1 lb=auto grid=auto",
    "fig5-parallel": "kernel=numpy mode=sharded shards=8 lb=auto grid=auto",
    "fig6-small-r": "kernel=numpy mode=serial shards=1 lb=auto grid=auto",
    "fig6-large-r": "kernel=numpy mode=serial shards=1 lb=auto grid=auto",
    "fig6-large-r-parallel": "kernel=numpy mode=sharded shards=4 lb=auto grid=auto",
    "no-numpy": "kernel=python mode=serial shards=1 lb=auto grid=auto",
    "session-cached": "kernel=numpy mode=serial shards=1 lb=auto grid=auto",
}


class TestDecisionTable:
    @pytest.mark.parametrize("shape", sorted(FIGURE_SHAPES))
    def test_cold_model_decision_is_pinned(self, shape):
        fields = dict(dimension=2, k=1, numpy_available=True)
        fields.update(FIGURE_SHAPES[shape])
        decision = AdaptivePlanner().decide(QueryStatistics(**fields), Plan())
        assert decision.plan.describe() == DECISION_TABLE[shape], shape


# ----------------------------------------------------------------------
# Feedback: online observation and offline profile ingestion
# ----------------------------------------------------------------------


def synthetic_profile(
    plan: Plan,
    phases: dict,
    counters: dict,
    exact: bool = True,
    planned: bool = True,
    **extra,
) -> dict:
    """One telemetry profile dict in PR 8's JSONL schema (the fields
    ``repro report`` reads; only the planner-relevant subset matters)."""
    profile = {
        "r": 8.0,
        "n": 2_000,
        "k": 1,
        "exact": exact,
        "seconds": sum(phases.values()),
        "phases": dict(phases),
        "counters": dict(counters),
        "notes": {"plan": plan.describe()} if planned else {},
        "shards": plan.shards if plan.mode == "sharded" else 0,
    }
    profile.update(extra)
    return profile


#: A stream saying the numpy kernel's verification runs pathologically
#: slow on this host (seconds per row ~1000x the seed).
SLOW_NUMPY_STREAM = [
    synthetic_profile(
        Plan(kernel="numpy"),
        {"verification": 2.0, "grid_mapping": 1.5},
        {"distance_rows": 8_000, "mapped_points": 8_000},
    )
    for _ in range(12)
]


class TestFeedback:
    def test_online_observation_counts(self):
        planner = AdaptivePlanner()
        planner.observe(
            Plan(), {"grid_mapping": 0.01, "planning": 0.001},
            {"mapped_points": 500},
        )
        assert planner.observed_queries == 1
        assert planner.cost_model.observations == 1

    def test_ingest_replays_a_profile_stream(self):
        planner = AdaptivePlanner()
        used = planner.ingest_profiles(SLOW_NUMPY_STREAM)
        assert used == len(SLOW_NUMPY_STREAM)
        assert planner.ingested_profiles == used
        assert planner.cost_model.version > 0

    def test_ingest_skips_inexact_and_malformed_profiles(self):
        planner = AdaptivePlanner()
        stream = [
            synthetic_profile(
                Plan(), {"grid_mapping": 0.1}, {"mapped_points": 100},
                exact=False,
            ),
            {"r": 1.0},  # no phases/counters
            "not a dict",
            synthetic_profile(
                Plan(mode="sharded", shards=4),
                {"shard_execute": 0.1}, {"mapped_points": 100},
                planned=False,  # unplanned sharded run: not serial-shaped
            ),
        ]
        assert planner.ingest_profiles(stream) == 0

    def test_unplanned_profiles_attribute_kernel_from_dispatch_notes(self):
        planner = AdaptivePlanner()
        profile = synthetic_profile(
            Plan(), {"verification": 0.2}, {"distance_rows": 5_000},
            planned=False,
        )
        profile["notes"] = {"verification_path": "numpy-fused"}
        assert planner.ingest_profiles([profile]) == 1
        # The update landed on the numpy row, not the python row.
        assert planner.cost_model.unit_cost(
            "python", "verification"
        ) == CostModel().unit_cost("python", "verification")

    def test_ingestion_is_deterministic(self):
        first, second = AdaptivePlanner(), AdaptivePlanner()
        first.ingest_profiles(SLOW_NUMPY_STREAM)
        second.ingest_profiles(SLOW_NUMPY_STREAM)
        for key in (("numpy", "verification"), ("numpy", "grid_mapping")):
            assert first.cost_model.unit_cost(*key) == second.cost_model.unit_cost(
                *key
            )

    def test_profile_stream_flips_a_decision(self):
        # Cold model: numpy wins the mid-size workload.  After the slow-
        # numpy stream drifts its verification/mapping coefficients up,
        # the same statistics keep the python baseline.
        stats = make_stats()
        planner = AdaptivePlanner()
        assert planner.decide(stats, Plan()).plan.kernel == "numpy"
        planner.ingest_profiles(SLOW_NUMPY_STREAM)
        assert planner.decide(stats, Plan()).plan == Plan()

    def test_statistics_from_profile_round_trip(self):
        profile = synthetic_profile(
            Plan(), {"grid_mapping": 0.1}, {"mapped_points": 4_000}
        )
        stats = statistics_from_profile(profile)
        assert stats is not None
        assert (stats.n, stats.r, stats.ceil_r) == (2_000, 8.0, 8)
        assert stats.total_points == 4_000
        assert statistics_from_profile({"r": "x"}) is None
        assert statistics_from_profile({}) is None


# ----------------------------------------------------------------------
# Integration: wiring, fault/deadline degradation, explain rendering
# ----------------------------------------------------------------------


@pytest.fixture(scope="module")
def planner_collection():
    return random_collection(n=40, mean_points=8, seed=77)


class TestEngineWiring:
    def test_static_engine_records_no_plan(self, planner_collection):
        result = MIOEngine(planner_collection).query(8.0)
        assert "plan" not in result.notes
        assert not any(k.startswith("predicted:") for k in result.extra)

    def test_adaptive_engine_records_the_decision(self, planner_collection):
        result = MIOEngine(planner_collection, planner="adaptive").query(8.0)
        plan = parse_plan(result.notes["plan"])
        assert plan is not None and plan.mode == "serial"
        assert result.notes["planner"] == "adaptive"
        assert result.notes["plan_reason"]
        assert result.extra["predicted:total"] > 0.0
        assert "predicted:verification" in result.extra

    def test_pipeline_feeds_the_planner_back(self, planner_collection):
        planner = AdaptivePlanner()
        engine = MIOEngine(planner_collection, planner=planner)
        engine.query(8.0)
        assert planner.decisions == 1
        assert planner.observed_queries == 1
        assert planner.cost_model.version > 0

    def test_session_surfaces_planner_counters(self, planner_collection):
        session = QuerySession(planner_collection, planner="adaptive")
        session.query(8.0)
        stats = session.stats()
        assert stats["planner_decisions"] >= 1
        assert stats["planner_observed_queries"] >= 1

    def test_repeated_ceiling_plans_once_per_group(self, planner_collection):
        session = QuerySession(planner_collection, planner="adaptive")
        session.query(8.2)
        version = session.planner.cost_model.version
        session.query(8.4)  # same ceil(r) group
        if session.planner.cost_model.version == version:
            # Without intervening feedback the second query is a pure
            # memo hit; feedback legitimately recomputes instead.
            assert session.planner.memo_hits >= 1


class TestFaultAndDeadlineDegradation:
    def test_planned_shard_fault_degrades_to_serial(
        self, planner_collection, monkeypatch
    ):
        monkeypatch.setenv("REPRO_SHARD_INLINE", "1")
        expected = MIOEngine(planner_collection).query(8.0)
        engine = ParallelMIOEngine(
            planner_collection, cores=2, retries=0,
            planner=FixedPlanner(Plan(mode="sharded", shards=2)),
        )
        with faults.injected(FaultInjector([FaultSpec("shard_task")])):
            result = engine.query(8.0)
        assert result.counters.get("serial_fallback") == 1
        assert (result.winner, result.score) == (expected.winner, expected.score)
        assert result.exact

    def test_planner_never_masks_partition_task_error(
        self, planner_collection, monkeypatch
    ):
        monkeypatch.setenv("REPRO_SHARD_INLINE", "1")
        engine = ParallelMIOEngine(
            planner_collection, cores=2, retries=0, serial_fallback=False,
            planner=FixedPlanner(Plan(mode="sharded", shards=2)),
        )
        with faults.injected(FaultInjector([FaultSpec("shard_task")])):
            with pytest.raises(PartitionTaskError):
                engine.query(8.0)

    def test_adaptive_planner_with_faults_still_answers(
        self, planner_collection, monkeypatch
    ):
        monkeypatch.setenv("REPRO_SHARD_INLINE", "1")
        expected = MIOEngine(planner_collection).query(8.0)
        engine = ParallelMIOEngine(
            planner_collection, cores=2, retries=0, planner="adaptive"
        )
        with faults.injected(FaultInjector([FaultSpec("shard_task")])):
            result = engine.query(8.0)
        assert (result.winner, result.score) == (expected.winner, expected.score)
        assert result.exact

    def test_deadline_in_verification_still_degrades_to_anytime(
        self, planner_collection
    ):
        # A pinned plan keeps the tick count deterministic: measure one
        # full run, then expire two ticks early -- inside verification,
        # where the anytime contract yields an inexact lower bound.
        engine = MIOEngine(
            planner_collection, planner=FixedPlanner(Plan(kernel="python"))
        )
        unlimited = Deadline(10.0**9, clock=ManualClock(step=1.0))
        exact = engine.query(12.0, deadline=unlimited)
        assert exact.exact
        total_ticks = int(unlimited.elapsed())
        deadline = Deadline(float(total_ticks - 2), clock=ManualClock(step=1.0))
        result = engine.query(12.0, deadline=deadline)
        assert not result.exact
        assert result.notes.get("anytime")
        assert result.notes.get("degraded_deadline") == "verification"
        assert result.score <= exact.score  # verified lower bound

    def test_filter_phase_expiry_still_raises_through_the_planner(
        self, planner_collection
    ):
        engine = MIOEngine(planner_collection, planner="adaptive")
        deadline = Deadline(1.0, clock=ManualClock(step=1.0))
        with pytest.raises(QueryTimeout) as info:
            engine.query(12.0, deadline=deadline)
        assert info.value.phase  # named phase, not swallowed by planning


class TestExplainRendering:
    def test_static_result_renders_nothing(self, planner_collection):
        result = MIOEngine(planner_collection).query(8.0)
        assert render_plan(result) == ""

    def test_planned_result_renders_decision_and_costs(self, planner_collection):
        result = MIOEngine(planner_collection, planner="adaptive").query(8.0)
        text = render_plan(result)
        assert result.notes["plan"] in text
        assert "planner  adaptive" in text
        assert "predicted vs actual:" in text
        assert "verification" in text
