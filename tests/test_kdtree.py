"""Unit tests for the kd-tree."""

import numpy as np
import pytest
from scipy.spatial.distance import cdist

from repro.spatial.kdtree import KDTree


class TestConstruction:
    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            KDTree(np.empty((0, 2)))
        with pytest.raises(ValueError):
            KDTree(np.zeros(3))

    def test_len(self):
        assert len(KDTree(np.zeros((5, 2)))) == 5

    def test_degenerate_identical_points(self):
        tree = KDTree(np.ones((50, 3)))
        assert tree.nearest(np.ones(3)) == 0.0
        assert tree.any_within(np.zeros(3), 2.0)
        assert tree.count_within(np.ones(3), 0.1) == 50


class TestNearest:
    @pytest.mark.parametrize("dimension", [2, 3])
    @pytest.mark.parametrize("size", [1, 5, 100, 500])
    def test_matches_brute_force(self, dimension, size):
        rng = np.random.default_rng(size + dimension)
        points = rng.uniform(0, 100, size=(size, dimension))
        tree = KDTree(points)
        for _ in range(25):
            query = rng.uniform(-10, 110, size=dimension)
            expected = float(np.min(np.linalg.norm(points - query, axis=1)))
            assert tree.nearest(query) == pytest.approx(expected, abs=1e-9)

    def test_query_on_a_data_point(self):
        points = np.array([[0.0, 0.0], [5.0, 5.0]])
        assert KDTree(points).nearest(np.array([5.0, 5.0])) == 0.0


class TestAnyWithin:
    @pytest.mark.parametrize("size", [1, 20, 300])
    def test_matches_brute_force(self, size):
        rng = np.random.default_rng(size)
        points = rng.uniform(0, 50, size=(size, 2))
        tree = KDTree(points)
        for _ in range(40):
            query = rng.uniform(0, 50, size=2)
            r = float(rng.uniform(0.1, 10.0))
            expected = bool(np.min(np.linalg.norm(points - query, axis=1)) <= r)
            assert tree.any_within(query, r) == expected

    def test_boundary_inclusive(self):
        tree = KDTree(np.array([[3.0, 4.0]]))
        assert tree.any_within(np.zeros(2), 5.0)
        assert not tree.any_within(np.zeros(2), 4.999999)


class TestCountWithin:
    def test_matches_brute_force(self):
        rng = np.random.default_rng(77)
        points = rng.uniform(0, 30, size=(200, 3))
        tree = KDTree(points)
        for _ in range(25):
            query = rng.uniform(0, 30, size=3)
            r = float(rng.uniform(1.0, 15.0))
            expected = int(np.count_nonzero(np.linalg.norm(points - query, axis=1) <= r))
            assert tree.count_within(query, r) == expected


class TestLeafSizes:
    @pytest.mark.parametrize("leaf_size", [1, 2, 8, 64])
    def test_any_leaf_size_is_correct(self, leaf_size):
        rng = np.random.default_rng(leaf_size)
        points = rng.uniform(0, 20, size=(150, 2))
        tree = KDTree(points, leaf_size=leaf_size)
        queries = rng.uniform(0, 20, size=(10, 2))
        expected = cdist(queries, points).min(axis=1)
        for query, truth in zip(queries, expected):
            assert tree.nearest(query) == pytest.approx(float(truth), abs=1e-9)
