"""Tests for SWC morphology files and trajectory segmentation/CSV I/O."""

import numpy as np
import pytest

from repro.datasets.neurons import make_neurons
from repro.datasets.segmentation import (
    read_tracks_csv,
    segment_trajectories,
    split_trajectory,
    write_tracks_csv,
)
from repro.datasets.swc import (
    export_collection_to_swc,
    load_neurons_from_swc,
    read_swc,
    write_swc,
)


class TestSWC:
    def test_round_trip(self, tmp_path):
        points = np.array([[1.0, 2.0, 3.0], [4.5, 5.5, 6.5], [-1.0, 0.0, 2.25]])
        path = tmp_path / "cell.swc"
        write_swc(path, points, comment="test cell")
        loaded = read_swc(path)
        assert np.allclose(loaded, points)

    def test_read_skips_comments_and_blanks(self, tmp_path):
        path = tmp_path / "cell.swc"
        path.write_text(
            "# a NeuroMorpho-style header\n"
            "\n"
            "1 1 0.0 0.0 0.0 1.0 -1\n"
            "2 3 1.0 2.0 3.0 0.5 1\n"
        )
        assert read_swc(path).tolist() == [[0.0, 0.0, 0.0], [1.0, 2.0, 3.0]]

    def test_read_rejects_wrong_field_count(self, tmp_path):
        path = tmp_path / "bad.swc"
        path.write_text("1 1 0.0 0.0 0.0 1.0\n")
        with pytest.raises(ValueError, match="7 fields"):
            read_swc(path)

    def test_read_rejects_non_numeric(self, tmp_path):
        path = tmp_path / "bad.swc"
        path.write_text("1 1 x y z 1.0 -1\n")
        with pytest.raises(ValueError, match="non-numeric"):
            read_swc(path)

    def test_read_rejects_empty(self, tmp_path):
        path = tmp_path / "empty.swc"
        path.write_text("# nothing here\n")
        with pytest.raises(ValueError, match="no sample points"):
            read_swc(path)

    def test_write_rejects_bad_shapes(self, tmp_path):
        with pytest.raises(ValueError):
            write_swc(tmp_path / "x.swc", np.zeros((2, 2)))

    def test_collection_export_import(self, tmp_path):
        collection = make_neurons(n=4, mean_points=12, extent=50.0, seed=5)
        paths = export_collection_to_swc(tmp_path, collection)
        assert len(paths) == 4
        loaded = load_neurons_from_swc(paths)
        assert loaded.n == 4
        for original, restored in zip(collection, loaded):
            assert np.allclose(original.points, restored.points, atol=1e-6)

    def test_export_rejects_2d(self, tmp_path):
        from repro.core.objects import ObjectCollection

        collection = ObjectCollection.from_point_arrays([np.zeros((2, 2))])
        with pytest.raises(ValueError, match="3-D"):
            export_collection_to_swc(tmp_path, collection)


class TestSplitTrajectory:
    def test_balanced_split(self):
        points = np.zeros((104, 2))
        segments = split_trajectory(points, segment_length=50)
        lengths = [len(segment_points) for segment_points, _ in segments]
        assert sum(lengths) == 104
        assert lengths == [52, 52]

    def test_short_track_kept_whole(self):
        points = np.zeros((7, 2))
        segments = split_trajectory(points, segment_length=50)
        assert len(segments) == 1
        assert len(segments[0][0]) == 7

    def test_timestamps_split_alongside(self):
        points = np.zeros((10, 2))
        times = np.arange(10.0)
        segments = split_trajectory(points, times, segment_length=5)
        assert [list(t) for _p, t in segments] == [list(range(5)), list(range(5, 10))]

    def test_validation(self):
        with pytest.raises(ValueError):
            split_trajectory(np.zeros((0, 2)))
        with pytest.raises(ValueError):
            split_trajectory(np.zeros((5, 2)), segment_length=1, min_length=2)

    def test_approximate_length(self):
        points = np.zeros((487, 2))
        segments = split_trajectory(points, segment_length=50)
        lengths = [len(p) for p, _ in segments]
        assert sum(lengths) == 487
        assert all(40 <= length <= 60 for length in lengths)


class TestSegmentTrajectories:
    def test_collection_shape(self):
        rng = np.random.default_rng(1)
        tracks = [
            (rng.uniform(0, 10, size=(120, 2)), np.arange(120.0)),
            (rng.uniform(0, 10, size=(60, 2)), np.arange(60.0)),
        ]
        collection = segment_trajectories(tracks, segment_length=30)
        assert collection.n == 6  # 4 + 2 segments
        assert collection.has_timestamps()
        assert collection.total_points == 180

    def test_tracks_without_timestamps(self):
        tracks = [(np.zeros((40, 2)), None)]
        collection = segment_trajectories(tracks, segment_length=20)
        assert collection.n == 2
        assert not collection.has_timestamps()


class TestTracksCSV:
    def test_round_trip(self, tmp_path):
        rng = np.random.default_rng(2)
        tracks = [
            (rng.uniform(0, 100, size=(8, 2)), np.arange(8.0)),
            (rng.uniform(0, 100, size=(5, 2)), np.arange(5.0) * 2.0),
        ]
        path = tmp_path / "tracks.csv"
        write_tracks_csv(path, tracks)
        loaded = read_tracks_csv(path)
        assert len(loaded) == 2
        for (points, times), (loaded_points, loaded_times) in zip(tracks, loaded):
            assert np.allclose(points, loaded_points)
            assert np.allclose(times, loaded_times)

    def test_rows_sorted_by_time_within_individual(self, tmp_path):
        path = tmp_path / "tracks.csv"
        path.write_text(
            "individual,t,x,y\n"
            "a,2.0,20.0,0.0\n"
            "a,1.0,10.0,0.0\n"
            "b,1.0,99.0,0.0\n"
            "a,3.0,30.0,0.0\n"
        )
        tracks = read_tracks_csv(path)
        assert len(tracks) == 2
        assert tracks[0][0][:, 0].tolist() == [10.0, 20.0, 30.0]

    def test_3d_tracks(self, tmp_path):
        path = tmp_path / "tracks.csv"
        path.write_text("individual,t,x,y,z\na,0.0,1.0,2.0,3.0\na,1.0,2.0,3.0,4.0\n")
        tracks = read_tracks_csv(path)
        assert tracks[0][0].shape == (2, 3)

    def test_bad_header_rejected(self, tmp_path):
        path = tmp_path / "tracks.csv"
        path.write_text("bird,when,lon,lat\n")
        with pytest.raises(ValueError, match="header"):
            read_tracks_csv(path)

    def test_end_to_end_mio_on_csv(self, tmp_path):
        """CSV -> segmentation -> MIO query: the paper's full Bird pipeline."""
        from repro.core.engine import MIOEngine
        from repro.datasets.trajectories import make_trajectories

        source = make_trajectories(n=6, points_per_trajectory=40, seed=8)
        tracks = [(obj.points, obj.timestamps) for obj in source]
        path = tmp_path / "movebank.csv"
        write_tracks_csv(path, tracks)
        collection = segment_trajectories(read_tracks_csv(path), segment_length=10)
        assert collection.n == 24
        result = MIOEngine(collection).query(5.0)
        assert 0 <= result.score < collection.n
