"""End-to-end tests over real sockets: server, client, retries, drain.

These spin up :class:`~repro.service.server.MIOServer` on an ephemeral
port and talk to it with the bundled retry client; a couple of scenarios
drive genuine concurrent load to exercise shedding and graceful
shutdown under traffic.
"""

import json
import random
import threading
import time

import pytest

from repro.core.engine import MIOEngine
from repro.errors import BackendUnavailableError, ServiceOverloadedError
from repro.service import (
    MIOServer,
    ServiceApp,
    ServiceClient,
    ServiceConfig,
    serve,
)

from conftest import random_collection


@pytest.fixture(scope="module")
def collection():
    return random_collection(25, 5, seed=13)


@pytest.fixture()
def server(collection):
    instance = serve(collection, ServiceConfig(port=0, max_inflight=2, max_queue=4))
    yield instance
    instance.shutdown_gracefully()


@pytest.fixture()
def client(server):
    host, port = server.address
    return ServiceClient(host, port, timeout_s=10.0)


class TestRoundTrips:
    def test_query_matches_the_engine(self, collection, server, client):
        expected = MIOEngine(collection).query(4.0)
        payload = client.query(4.0)
        assert payload["winner"] == expected.winner
        assert payload["score"] == expected.score
        assert payload["exact"] is True

    def test_topk_and_batch(self, server, client):
        assert len(client.topk(4.0, 3)["topk"]) == 3
        batch = client.batch([{"r": 4.0}, {"r": 4.5, "k": 2}])
        assert batch["count"] == 2

    def test_health_ready_metrics(self, server, client):
        assert client.healthz()["status"] == "ok"
        assert client.readyz()["ready"] is True
        text = client.metrics_text()
        assert "repro_service_responses_total" in text

    def test_bad_input_maps_back_to_taxonomy(self, server, client):
        from repro.errors import InvalidQueryError

        with pytest.raises(InvalidQueryError):
            client.query("junk")

    def test_unreachable_server_is_backend_unavailable(self):
        client = ServiceClient("127.0.0.1", 1, timeout_s=0.5)
        with pytest.raises(BackendUnavailableError):
            client.healthz()


class TestClientRetries:
    def _overloaded_client(self, server, sleeps, retries=2):
        host, port = server.address
        return ServiceClient(
            host, port,
            max_retries=retries, backoff_s=0.01,
            rng=random.Random(5), sleep=sleeps.append,
        )

    def test_retry_honors_retry_after(self, collection):
        app = ServiceApp(collection, ServiceConfig(port=0, max_inflight=1, max_queue=0))
        server = MIOServer(app).start()
        sleeps = []
        try:
            decision = app.admission.admit()  # wedge the only slot
            assert decision.admitted
            client = self._overloaded_client(server, sleeps)
            with pytest.raises(ServiceOverloadedError) as info:
                client.query(4.0)
            assert info.value.retry_after is not None
        finally:
            app.admission.release()
            server.shutdown_gracefully()
        # Every backoff slept at least the server's hint (header is
        # integer-seconds, so >= 1s here), and the client gave up after
        # its retry budget.
        assert len(sleeps) == 2
        assert all(delay >= 1.0 for delay in sleeps)

    def test_retry_succeeds_once_capacity_frees(self, collection):
        app = ServiceApp(collection, ServiceConfig(port=0, max_inflight=1, max_queue=0))
        server = MIOServer(app).start()
        try:
            decision = app.admission.admit()
            assert decision.admitted

            def free_on_first_sleep(delay):
                app.admission.release()

            host, port = server.address
            client = ServiceClient(
                host, port, max_retries=3, backoff_s=0.01,
                rng=random.Random(5), sleep=free_on_first_sleep,
            )
            payload = client.query(4.0)
            assert payload["exact"] is True
            assert client.retries == 1
        finally:
            server.shutdown_gracefully()


class TestOverloadScenario:
    """Offered load >= 2x capacity: shed cleanly, never collapse."""

    def test_overload_sheds_with_429_and_serves_the_rest(self, collection):
        app = ServiceApp(
            collection,
            ServiceConfig(port=0, max_inflight=2, max_queue=2,
                          default_timeout_ms=2000.0),
        )
        server = MIOServer(app).start()
        host, port = server.address
        statuses = []
        lock = threading.Lock()

        def fire():
            client = ServiceClient(host, port, max_retries=0, timeout_s=30.0)
            try:
                payload = client.query(4.5)
                code = 200 if payload else 0
            except ServiceOverloadedError:
                code = 429
            with lock:
                statuses.append(code)

        threads = [threading.Thread(target=fire) for _ in range(16)]
        try:
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join(timeout=60.0)
        finally:
            server.shutdown_gracefully()

        assert len(statuses) == 16
        served = statuses.count(200)
        shed = statuses.count(429)
        assert served + shed == 16          # nothing vanished or 500ed
        assert served >= app.config.max_inflight + app.config.max_queue
        snapshot = app.snapshot()
        assert snapshot["shed"] == shed
        assert snapshot["admission"]["outcome_shed"] == shed


class TestGracefulShutdown:
    def test_drain_finishes_inflight_work(self, collection):
        app = ServiceApp(
            collection,
            ServiceConfig(port=0, max_inflight=2, max_queue=4, drain_s=10.0),
        )
        server = MIOServer(app).start()
        host, port = server.address
        payloads = []

        def slow_query():
            client = ServiceClient(host, port, max_retries=0, timeout_s=30.0)
            payloads.append(client.batch([{"r": 4.0}, {"r": 4.5}, {"r": 4.9}]))

        worker = threading.Thread(target=slow_query)
        worker.start()
        # Let the batch reach execution, then shut down underneath it.
        deadline = time.monotonic() + 5.0
        while time.monotonic() < deadline:
            if app.admission.snapshot()["inflight"] > 0:
                break
            time.sleep(0.002)
        drained = server.shutdown_gracefully()
        worker.join(timeout=30.0)
        assert drained is True
        assert len(payloads) == 1 and payloads[0]["count"] == 3
        assert app.ready is False

    def test_shutdown_is_idempotent(self, collection):
        server = serve(collection, ServiceConfig(port=0))
        assert server.shutdown_gracefully() is True
        # A second drain finds nothing in flight and succeeds again.
        assert server.app.drain(timeout_s=0.5) is True

    def test_requests_during_drain_get_503(self, collection):
        app = ServiceApp(collection, ServiceConfig(port=0))
        server = MIOServer(app).start()
        host, port = server.address
        app.begin_drain()
        try:
            client = ServiceClient(host, port, max_retries=0)
            with pytest.raises(ServiceOverloadedError):
                client.query(4.0)
            assert client.readyz()["ready"] is False
        finally:
            server.shutdown_gracefully()
