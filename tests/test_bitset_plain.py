"""Unit tests for the uncompressed (big-int) bitset."""

import pytest

from repro.bitset.plain import PlainBitset


class TestBasics:
    def test_empty(self):
        bitset = PlainBitset()
        assert bitset.cardinality() == 0
        assert bitset.to_int() == 0

    def test_set_get(self):
        bitset = PlainBitset()
        bitset.set(0)
        bitset.set(77)
        assert bitset.get(0) and bitset.get(77)
        assert not bitset.get(1)
        assert bitset.cardinality() == 2

    def test_set_any_order(self):
        bitset = PlainBitset()
        for index in (500, 2, 99, 2):
            bitset.set(index)
        assert list(bitset.iter_set_bits()) == [2, 99, 500]

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            PlainBitset(-1)
        with pytest.raises(ValueError):
            PlainBitset().set(-1)
        with pytest.raises(ValueError):
            PlainBitset().get(-1)

    def test_copy_independent(self):
        original = PlainBitset.from_indices([1])
        clone = original.copy()
        clone.set(2)
        assert original.cardinality() == 1


class TestOperations:
    def test_or_and_andnot_xor(self):
        a = PlainBitset.from_indices([1, 2, 3])
        b = PlainBitset.from_indices([3, 4])
        assert list((a | b).iter_set_bits()) == [1, 2, 3, 4]
        assert list((a & b).iter_set_bits()) == [3]
        assert list((a - b).iter_set_bits()) == [1, 2]
        assert list((a ^ b).iter_set_bits()) == [1, 2, 4]

    def test_andnot_never_negative(self):
        a = PlainBitset.from_indices([1])
        b = PlainBitset.from_indices([1, 2, 3])
        assert (a - b).to_int() == 0


class TestSizeAccounting:
    def test_size_is_whole_words(self):
        assert PlainBitset().size_in_bytes() == 0
        assert PlainBitset.from_indices([0]).size_in_bytes() == 8
        assert PlainBitset.from_indices([63]).size_in_bytes() == 8
        assert PlainBitset.from_indices([64]).size_in_bytes() == 16

    def test_uncompressed_grows_with_highest_bit(self):
        sparse = PlainBitset.from_indices([64 * 100])
        assert sparse.size_in_bytes() == 8 * 101
