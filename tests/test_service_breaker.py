"""Unit tests for the circuit breaker, driven by a manual clock.

Every transition in the closed -> open -> half-open machine is exercised
deterministically: no sleeping, no real time, a seeded RNG for the
jitter.
"""

import random

import pytest

from repro.resilience import ManualClock
from repro.service.breaker import CLOSED, HALF_OPEN, OPEN, CircuitBreaker


def make_breaker(clock, jitter=0.0, **kwargs):
    kwargs.setdefault("failure_threshold", 3)
    kwargs.setdefault("reset_s", 2.0)
    kwargs.setdefault("max_reset_s", 8.0)
    return CircuitBreaker(
        jitter=jitter, clock=clock, rng=random.Random(7), **kwargs
    )


class TestClosedState:
    def test_allows_until_threshold(self):
        breaker = make_breaker(ManualClock())
        for _ in range(2):
            assert breaker.allow()
            breaker.on_failure()
        assert breaker.state == CLOSED
        breaker.on_failure()  # third consecutive failure trips it
        assert breaker.state == OPEN
        assert not breaker.allow()

    def test_success_resets_the_failure_count(self):
        breaker = make_breaker(ManualClock())
        breaker.on_failure()
        breaker.on_failure()
        breaker.on_success()
        breaker.on_failure()
        breaker.on_failure()
        assert breaker.state == CLOSED  # never hit 3 *consecutive* failures


class TestOpenState:
    def test_blocks_until_the_reset_interval_elapses(self):
        clock = ManualClock()
        breaker = make_breaker(clock)
        for _ in range(3):
            breaker.on_failure()
        assert not breaker.allow()
        clock.advance(1.9)
        assert not breaker.allow()
        clock.advance(0.2)  # past reset_s=2.0 (no jitter)
        assert breaker.state == HALF_OPEN

    def test_jitter_stretches_the_interval(self):
        clock = ManualClock()
        rng = random.Random(3)
        expected = 2.0 * (1.0 + rng.random() * 0.5)
        breaker = CircuitBreaker(
            failure_threshold=1, reset_s=2.0, max_reset_s=8.0,
            jitter=0.5, clock=clock, rng=random.Random(3),
        )
        breaker.on_failure()
        clock.advance(expected - 0.01)
        assert breaker.state == OPEN
        clock.advance(0.02)
        assert breaker.state == HALF_OPEN


class TestHalfOpenState:
    def _tripped(self, clock):
        breaker = make_breaker(clock, failure_threshold=1)
        breaker.on_failure()
        clock.advance(2.1)
        assert breaker.state == HALF_OPEN
        return breaker

    def test_single_probe_only(self):
        clock = ManualClock()
        breaker = self._tripped(clock)
        assert breaker.allow()        # the probe
        assert not breaker.allow()    # concurrent request: fall back
        assert not breaker.allow()

    def test_probe_success_closes_and_resets_backoff(self):
        clock = ManualClock()
        breaker = self._tripped(clock)
        assert breaker.allow()
        breaker.on_success()
        assert breaker.state == CLOSED
        assert breaker.snapshot()["reset_s"] == pytest.approx(2.0)

    def test_probe_failure_doubles_the_interval(self):
        clock = ManualClock()
        breaker = self._tripped(clock)
        assert breaker.allow()
        breaker.on_failure()
        assert breaker.state == OPEN
        assert breaker.snapshot()["reset_s"] == pytest.approx(4.0)
        clock.advance(2.1)
        assert breaker.state == OPEN   # the old interval no longer suffices
        clock.advance(2.0)
        assert breaker.state == HALF_OPEN

    def test_backoff_caps_at_max_reset(self):
        clock = ManualClock()
        breaker = self._tripped(clock)
        for _ in range(5):  # repeated failed probes: 4, 8, capped at 8
            clock.advance(100.0)
            assert breaker.state == HALF_OPEN
            assert breaker.allow()
            breaker.on_failure()
        assert breaker.snapshot()["reset_s"] == pytest.approx(8.0)


class TestTelemetry:
    def test_snapshot_counts_transitions(self):
        clock = ManualClock()
        breaker = make_breaker(clock, failure_threshold=1)
        breaker.on_failure()
        clock.advance(2.1)
        assert breaker.allow()
        breaker.on_success()
        snapshot = breaker.snapshot()
        assert snapshot["state"] == CLOSED
        assert snapshot["transitions"][OPEN] == 1
        assert snapshot["transitions"][HALF_OPEN] == 1
        assert snapshot["transitions"][CLOSED] == 1
