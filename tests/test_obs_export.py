"""Exporters: Prometheus text format, its grammar validator, JSON."""

import json

import pytest

from repro.obs.export import (
    metrics_json,
    prometheus_text,
    trace_json,
    validate_prometheus_text,
)
from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import Tracer


def populated_registry() -> MetricsRegistry:
    registry = MetricsRegistry()
    registry.counter("repro_queries_total", "MIO queries answered").inc(
        engine="serial", algorithm="bigrid"
    )
    registry.gauge("repro_index_memory_bytes", "Index size").set(4096, engine="serial")
    registry.histogram(
        "repro_query_seconds", "Query latency", buckets=(0.001, 0.1, 1.0)
    ).observe(0.05, engine="serial")
    return registry


class TestPrometheusText:
    def test_real_output_passes_the_validator(self):
        text = prometheus_text(populated_registry())
        validate_prometheus_text(text)  # must not raise

    def test_headers_and_samples(self):
        text = prometheus_text(populated_registry())
        lines = text.splitlines()
        assert "# HELP repro_queries_total MIO queries answered" in lines
        assert "# TYPE repro_queries_total counter" in lines
        assert 'repro_queries_total{algorithm="bigrid",engine="serial"} 1' in lines
        assert "# TYPE repro_index_memory_bytes gauge" in lines
        assert 'repro_index_memory_bytes{engine="serial"} 4096' in lines

    def test_histogram_buckets_are_cumulative_with_inf(self):
        text = prometheus_text(populated_registry())
        lines = [line for line in text.splitlines() if line.startswith("repro_query_seconds")]
        assert lines == [
            'repro_query_seconds_bucket{engine="serial",le="0.001"} 0',
            'repro_query_seconds_bucket{engine="serial",le="0.1"} 1',
            'repro_query_seconds_bucket{engine="serial",le="1"} 1',
            'repro_query_seconds_bucket{engine="serial",le="+Inf"} 1',
            'repro_query_seconds_sum{engine="serial"} 0.05',
            'repro_query_seconds_count{engine="serial"} 1',
        ]

    def test_label_values_are_escaped(self):
        registry = MetricsRegistry()
        registry.counter("odd_total", "test").inc(
            name='quote " backslash \\ newline \n done'
        )
        text = prometheus_text(registry)
        assert '\\"' in text and "\\\\" in text and "\\n" in text
        validate_prometheus_text(text)

    def test_empty_registry_renders_empty(self):
        assert prometheus_text(MetricsRegistry()) == ""
        validate_prometheus_text("")


class TestLabelValueEscaping:
    """Text format 0.0.4: label values escape ``\\``, ``\"``, and newline.

    Each escape is exercised in isolation (a combined test can pass with
    one substitution masking another) and the escaped output must still
    satisfy the exposition-format validator.
    """

    @staticmethod
    def _render(value: str) -> str:
        registry = MetricsRegistry()
        registry.counter("esc_total", "test").inc(name=value)
        text = prometheus_text(registry)
        validate_prometheus_text(text)
        return text

    def test_backslash_escapes_to_double_backslash(self):
        text = self._render("a\\b")
        assert 'name="a\\\\b"' in text
        assert 'name="a\\b"' not in text.replace('name="a\\\\b"', "")

    def test_double_quote_escapes_to_backslash_quote(self):
        text = self._render('say "hi"')
        assert 'name="say \\"hi\\""' in text

    def test_newline_escapes_to_backslash_n(self):
        text = self._render("line1\nline2")
        assert 'name="line1\\nline2"' in text
        # The rendered sample must stay on one physical line.
        (sample,) = [l for l in text.splitlines() if l.startswith("esc_total")]
        assert "line1" in sample and "line2" in sample

    def test_literal_backslash_n_survives_distinct_from_newline(self):
        # A value already containing the two characters '\' 'n' must not
        # collide with an escaped newline: '\n' (2 chars) -> '\\n'.
        text = self._render("a\\nb")
        assert 'name="a\\\\nb"' in text

    def test_escaping_order_backslash_first(self):
        # '\"' in the input: the backslash doubles, then the quote escapes,
        # giving '\\\"' -- not the other order which would yield '\\\\"'.
        text = self._render('\\"')
        assert 'name="\\\\\\""' in text

    def test_all_three_together_round_trip_through_validator(self):
        text = self._render('q" b\\ n\n end')
        assert 'name="q\\" b\\\\ n\\n end"' in text


class TestValidator:
    def test_rejects_malformed_sample(self):
        with pytest.raises(ValueError, match="malformed sample"):
            validate_prometheus_text(
                "# HELP x_total t\n# TYPE x_total counter\nx_total{oops} 1\n"
            )

    def test_rejects_sample_without_type_header(self):
        with pytest.raises(ValueError, match="no TYPE header"):
            validate_prometheus_text("orphan_total 1\n")

    def test_rejects_duplicate_headers(self):
        with pytest.raises(ValueError, match="duplicate TYPE"):
            validate_prometheus_text(
                "# TYPE x_total counter\n# TYPE x_total counter\n"
            )
        with pytest.raises(ValueError, match="duplicate HELP"):
            validate_prometheus_text("# HELP x t\n# HELP x t\n")

    def test_rejects_malformed_comment(self):
        with pytest.raises(ValueError, match="malformed comment"):
            validate_prometheus_text("# TYPE x_total banana\n")

    def test_rejects_bucket_without_le(self):
        body = (
            "# TYPE h_seconds histogram\n"
            'h_seconds_bucket{engine="x"} 1\n'
        )
        with pytest.raises(ValueError, match="without le"):
            validate_prometheus_text(body)

    def test_rejects_histogram_without_inf_bucket(self):
        body = (
            "# TYPE h_seconds histogram\n"
            'h_seconds_bucket{le="1"} 1\n'
            "h_seconds_sum 1\n"
            "h_seconds_count 1\n"
        )
        with pytest.raises(ValueError, match="no \\+Inf bucket"):
            validate_prometheus_text(body)

    def test_rejects_histogram_missing_sum_count(self):
        body = (
            "# TYPE h_seconds histogram\n"
            'h_seconds_bucket{le="+Inf"} 1\n'
        )
        with pytest.raises(ValueError, match="_sum/_count"):
            validate_prometheus_text(body)

    def test_error_names_the_line(self):
        with pytest.raises(ValueError, match="line 3"):
            validate_prometheus_text(
                "# HELP x_total t\n# TYPE x_total counter\n!bad\n"
            )


class TestJsonExports:
    def test_metrics_json_round_trips(self):
        document = json.loads(metrics_json(populated_registry()))
        assert document["repro_queries_total"]["type"] == "counter"
        series = document["repro_queries_total"]["series"]
        assert series['algorithm="bigrid",engine="serial"'] == 1.0
        histogram = document["repro_query_seconds"]["series"]['engine="serial"']
        assert histogram["count"] == 1
        assert histogram["buckets"]["+Inf"] == 1

    def test_trace_json_nests_children(self):
        tracer = Tracer()
        with tracer.span("query", r=4.0):
            tracer.record("grid_mapping", 0.5, cells=3)
        document = json.loads(trace_json(tracer.roots))
        assert len(document) == 1
        root = document[0]
        assert root["name"] == "query"
        assert root["attributes"] == {"r": 4.0}
        (child,) = root["children"]
        assert child["name"] == "grid_mapping"
        assert child["duration_seconds"] == 0.5
        assert child["attributes"] == {"cells": 3}
