"""Sharded execution conformance: bit-exact parity with the serial engine.

PR 9's contract is that ``mode="sharded"`` is purely an execution
strategy: for every collection, backend, kernel, dimension, and shard
count, the sharded engine returns *bit-identical* answers to the serial
engine -- same winner, same score, same top-k order (including
tie-breaks).  This suite pins that contract plus the failure half:

* parity across the full configuration matrix on the deterministic
  inline path, and again through a real 2-worker process pool;
* routing invariants -- ownership is a partition, halos are exactly the
  Lemma-2 dilation (checked against brute force), plans are cached;
* worker-level semantics -- ``run_shard_task`` + ``merge_outcomes``
  replays the serial answer, and a missing settled score degrades to a
  timed-out (anytime) merge rather than a wrong exact answer;
* failure semantics -- ``shard_task`` faults retry then fall back to
  the serial engine (answers unchanged), expired deadlines raise
  :class:`~repro.errors.QueryTimeout`, and a killed worker process is
  respawned without failing the query.
"""

from __future__ import annotations

import numpy as np
import pytest
from conftest import oracle_scores, random_collection

from repro import faults
from repro.core.engine import MIOEngine
from repro.errors import PartitionTaskError, QueryTimeout
from repro.faults import FaultInjector, FaultSpec
from repro.kernels import numpy_kernel_available
from repro.obs.trace import Tracer
from repro.parallel.engine import ParallelMIOEngine
from repro.resilience import Deadline, ManualClock
from repro.shard.executor import ShardExecutor, run_shard_task
from repro.shard.merge import merge_outcomes
from repro.shard.router import ShardPlanCache, plan_shards

BACKENDS = ("ewah", "plain", "roaring")
KERNELS = ("python",) + (("numpy",) if numpy_kernel_available() else ())


@pytest.fixture(autouse=True)
def inline_executor(request, monkeypatch):
    """Force the deterministic inline path except where a test opts out.

    Tests marked ``process_pool`` exercise the real fork workers; the
    rest of the matrix runs inline so the suite stays fast on one core.
    """
    if "process_pool" not in request.keywords:
        monkeypatch.setenv("REPRO_SHARD_INLINE", "1")
    else:
        monkeypatch.delenv("REPRO_SHARD_INLINE", raising=False)


@pytest.fixture(scope="module")
def flat_collection():
    return random_collection(n=40, mean_points=8, seed=4242)


@pytest.fixture(scope="module")
def cube_collection():
    return random_collection(n=30, mean_points=6, dimension=3, seed=77)


def assert_parity(serial_result, sharded_result):
    assert (sharded_result.winner, sharded_result.score) == (
        serial_result.winner, serial_result.score,
    )
    assert sharded_result.topk == serial_result.topk
    assert sharded_result.exact


# ----------------------------------------------------------------------
# Parity matrix (inline path)
# ----------------------------------------------------------------------


class TestShardedParity:
    @pytest.mark.parametrize("backend", BACKENDS)
    @pytest.mark.parametrize("kernel", KERNELS)
    @pytest.mark.parametrize("shards", (1, 2, 5))
    def test_flat_matrix(self, flat_collection, backend, kernel, shards):
        serial = MIOEngine(flat_collection, backend=backend, kernel=kernel)
        engine = ParallelMIOEngine(
            flat_collection, cores=2, backend=backend, kernel=kernel,
            shards=shards,
        )
        for r in (2.0, 3.5, 5.0):
            assert_parity(
                serial.query_topk(r, k=4), engine.query_topk(r, k=4)
            )
        result = engine.query(3.5)
        assert result.algorithm == "bigrid-sharded"
        assert result.counters["shards"] == min(shards, len(flat_collection))

    @pytest.mark.parametrize("kernel", KERNELS)
    @pytest.mark.parametrize("shards", (2, 4))
    def test_three_dimensional(self, cube_collection, kernel, shards):
        serial = MIOEngine(cube_collection, kernel=kernel)
        engine = ParallelMIOEngine(
            cube_collection, cores=2, kernel=kernel, shards=shards
        )
        for r in (1.5, 4.0):
            assert_parity(
                serial.query_topk(r, k=3), engine.query_topk(r, k=3)
            )

    @pytest.mark.parametrize("curve", ("hilbert", "zorder"))
    def test_curve_choice_never_changes_answers(self, flat_collection, curve):
        serial = MIOEngine(flat_collection)
        engine = ParallelMIOEngine(
            flat_collection, cores=2, shards=3, curve=curve
        )
        assert_parity(serial.query_topk(4.0, k=5), engine.query_topk(4.0, k=5))

    @pytest.mark.parametrize("seed", (901, 902, 903))
    def test_oracle_differential(self, seed):
        collection = random_collection(n=25, mean_points=6, seed=seed)
        tau = oracle_scores(collection, 3.0)
        result = ParallelMIOEngine(collection, cores=2, shards=3).query(3.0)
        assert result.score == max(tau)
        assert tau[result.winner] == max(tau)

    def test_tracing_is_answer_neutral_and_phases_derive(self, flat_collection):
        tracer = Tracer()
        plain = ParallelMIOEngine(flat_collection, cores=2, shards=2).query(2.0)
        traced = ParallelMIOEngine(
            flat_collection, cores=2, shards=2, tracer=tracer
        ).query(2.0)
        assert (traced.winner, traced.score) == (plain.winner, plain.score)
        names = [child.name for child in tracer.root.children]
        assert names == ["shard_route", "shard_execute", "shard_merge"]
        execute = tracer.root.children[1]
        assert [child.name for child in execute.children] == [
            "shard-0", "shard-1",
        ]
        assert set(traced.phases) == {"shard_route", "shard_execute", "shard_merge"}


# ----------------------------------------------------------------------
# Routing invariants
# ----------------------------------------------------------------------


class TestShardPlans:
    @pytest.mark.parametrize("shards", (1, 3, 7))
    def test_ownership_is_a_partition(self, flat_collection, shards):
        plan = plan_shards(flat_collection, 3.5, shards)
        owned = np.concatenate(plan.owned)
        assert sorted(owned.tolist()) == list(range(len(flat_collection)))
        for shard in range(plan.shards):
            assert np.all(np.diff(plan.owned[shard]) > 0)
            assert np.all(np.diff(plan.halo[shard]) > 0)
            assert not set(plan.owned[shard]) & set(plan.halo[shard])

    def test_halo_is_the_exact_lemma2_dilation(self, flat_collection):
        # Brute force: a non-owned object belongs to the halo iff one of
        # its points lands in a large cell adjacent-or-equal (Chebyshev
        # distance <= 1) to a cell containing an owned object's point.
        r = 3.5
        plan = plan_shards(flat_collection, r, 4)
        width = float(np.ceil(r))
        cells = [
            {tuple(key) for key in np.floor(obj.points / width).astype(np.int64).tolist()}
            for obj in flat_collection
        ]
        for shard in range(plan.shards):
            owned = set(plan.owned[shard].tolist())
            owned_cells = set().union(*(cells[oid] for oid in owned))
            expected = {
                oid
                for oid in range(len(flat_collection))
                if oid not in owned
                and any(
                    max(abs(a - b) for a, b in zip(cell, target)) <= 1
                    for cell in cells[oid]
                    for target in owned_cells
                )
            }
            assert set(plan.halo[shard].tolist()) == expected

    def test_shards_never_exceed_objects(self):
        tiny = random_collection(n=3, mean_points=4, seed=5)
        plan = plan_shards(tiny, 2.0, 16)
        assert plan.shards == 3

    def test_plan_cache_hits_on_same_ceiling(self, flat_collection):
        cache = ShardPlanCache(max_entries=2)
        first = cache.get(flat_collection, 3.5, 2, "hilbert")
        again = cache.get(flat_collection, 3.2, 2, "hilbert")  # same ceil
        assert again is first
        assert cache.hits == 1 and cache.misses == 1
        cache.get(flat_collection, 5.0, 2, "hilbert")
        cache.get(flat_collection, 3.5, 4, "hilbert")  # different shard count
        assert cache.misses == 3


# ----------------------------------------------------------------------
# Worker + merge semantics (no engine)
# ----------------------------------------------------------------------


class TestWorkerAndMerge:
    def test_shard_tasks_plus_merge_replay_the_serial_answer(self, flat_collection):
        serial = MIOEngine(flat_collection).query_topk(3.5, k=5)
        plan = plan_shards(flat_collection, 3.5, 3)
        outcomes = [
            run_shard_task(
                flat_collection,
                shard=shard,
                owned=[int(oid) for oid in plan.owned[shard]],
                halo=[int(oid) for oid in plan.halo[shard]],
                r=3.5,
                k=5,
                backend="ewah",
                kernel="python",
            )
            for shard in range(plan.shards)
        ]
        merged = merge_outcomes(outcomes, k=5)
        assert not merged.timed_out
        assert merged.ranking == serial.topk

    def test_missing_settled_score_degrades_to_timed_out(self, flat_collection):
        plan = plan_shards(flat_collection, 3.5, 2)
        outcomes = [
            run_shard_task(
                flat_collection,
                shard=shard,
                owned=[int(oid) for oid in plan.owned[shard]],
                halo=[int(oid) for oid in plan.halo[shard]],
                r=3.5,
                k=3,
                backend="ewah",
                kernel="python",
            )
            for shard in range(plan.shards)
        ]
        # Simulate shard 1 having run out of deadline mid-verification:
        # drop its settled scores and flag it.  The merge must surface
        # the settled prefix as an anytime answer, never invent scores.
        outcomes[1].settled = outcomes[1].settled[:1]
        outcomes[1].timed_out = True
        merged = merge_outcomes(outcomes, k=3)
        exact = merge_outcomes(
            [outcomes[0]] + [
                run_shard_task(
                    flat_collection,
                    shard=1,
                    owned=[int(oid) for oid in plan.owned[1]],
                    halo=[int(oid) for oid in plan.halo[1]],
                    r=3.5,
                    k=3,
                    backend="ewah",
                    kernel="python",
                )
            ],
            k=3,
        )
        if merged.timed_out:
            settled_scores = dict(outcomes[0].settled + outcomes[1].settled)
            for oid, score in merged.ranking:
                assert settled_scores[oid] == score
        else:  # the dropped scores were never needed by the replay
            assert merged.ranking == exact.ranking


# ----------------------------------------------------------------------
# Failure semantics
# ----------------------------------------------------------------------


class TestShardFaults:
    def test_fault_falls_back_to_serial_with_identical_answer(self, flat_collection):
        expected = MIOEngine(flat_collection).query(2.0)
        engine = ParallelMIOEngine(flat_collection, cores=2, retries=0)
        with faults.injected(FaultInjector([FaultSpec("shard_task")])):
            result = engine.query(2.0)
        assert result.counters.get("serial_fallback") == 1
        assert "serial_fallback" in result.notes
        assert (result.winner, result.score) == (expected.winner, expected.score)
        assert result.exact

    def test_retry_budget_absorbs_a_transient_fault(self, flat_collection):
        engine = ParallelMIOEngine(flat_collection, cores=2, shards=2, retries=2)
        spec = FaultSpec("shard_task", max_triggers=1)
        with faults.injected(FaultInjector([spec])) as injector:
            result = engine.query(2.0)
        assert injector.fired["shard_task"] == 1
        assert result.algorithm == "bigrid-sharded"  # no fallback needed
        assert "serial_fallback" not in result.notes

    def test_fallback_disabled_raises_partition_task_error(self, flat_collection):
        engine = ParallelMIOEngine(
            flat_collection, cores=2, retries=0, serial_fallback=False
        )
        with faults.injected(FaultInjector([FaultSpec("shard_task")])):
            with pytest.raises(PartitionTaskError) as info:
                engine.query(2.0)
        assert info.value.attempts == 1

    def test_expired_deadline_raises_query_timeout(self, flat_collection):
        engine = ParallelMIOEngine(flat_collection, cores=2, shards=2)
        deadline = Deadline(1.0, clock=ManualClock(step=1.0))
        with pytest.raises(QueryTimeout) as info:
            engine.query(3.5, deadline=deadline)
        assert info.value.phase


# ----------------------------------------------------------------------
# The real process pool
# ----------------------------------------------------------------------


@pytest.mark.process_pool
class TestProcessPool:
    def test_pool_parity_and_reuse(self, flat_collection):
        serial = MIOEngine(flat_collection)
        engine = ParallelMIOEngine(flat_collection, cores=2, shards=2)
        try:
            assert not engine.shard_executor.inline
            for r in (2.0, 3.5, 5.0, 3.2):
                assert_parity(
                    serial.query_topk(r, k=4), engine.query_topk(r, k=4)
                )
            # The pool persists across queries, and the plan cache serves
            # repeat ceilings (3.5 and 3.2 share ceil(r) = 4).
            assert engine.plan_cache.hits >= 1
        finally:
            engine.close()

    def test_killed_worker_is_respawned(self, flat_collection):
        engine = ParallelMIOEngine(flat_collection, cores=2, shards=2)
        try:
            expected = engine.query(3.5)
            executor = engine.shard_executor
            victim = executor._procs[0]
            victim.kill()
            victim.join(timeout=10.0)
            result = engine.query(3.5)
            assert (result.winner, result.score) == (expected.winner, expected.score)
            assert executor.respawns >= 1
        finally:
            engine.close()

    def test_close_releases_the_pool(self, flat_collection):
        engine = ParallelMIOEngine(flat_collection, cores=2)
        engine.query(2.0)
        procs = list(engine.shard_executor._procs)
        engine.close()
        assert all(not proc.is_alive() for proc in procs)
        # The engine lazily rebuilds a pool if queried again.
        result = engine.query(2.0)
        assert result.algorithm == "bigrid-sharded"
        engine.close()
