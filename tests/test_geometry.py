"""Unit tests for the distance primitives."""

import numpy as np
import pytest
from scipy.spatial.distance import cdist

from repro.core import geometry


class TestEuclidean:
    def test_basic(self):
        assert geometry.euclidean(np.array([0.0, 0.0]), np.array([3.0, 4.0])) == 5.0

    def test_3d(self):
        assert geometry.euclidean(np.array([1.0, 2.0, 2.0]), np.zeros(3)) == 3.0

    def test_zero(self):
        point = np.array([1.5, -2.5])
        assert geometry.euclidean(point, point) == 0.0


class TestAnyWithin:
    def test_hit_and_miss(self):
        points = np.array([[0.0, 0.0], [10.0, 10.0]])
        assert geometry.any_within(np.array([0.5, 0.0]), points, 1.0)
        assert not geometry.any_within(np.array([5.0, 5.0]), points, 1.0)

    def test_boundary_inclusive(self):
        points = np.array([[3.0, 4.0]])
        assert geometry.any_within(np.zeros(2), points, 5.0)

    def test_empty_points(self):
        assert not geometry.any_within(np.zeros(2), np.empty((0, 2)), 1.0)

    def test_count_within(self):
        points = np.array([[0.0, 0.0], [1.0, 0.0], [5.0, 0.0]])
        assert geometry.count_within(np.zeros(2), points, 1.5) == 2
        assert geometry.count_within(np.zeros(2), np.empty((0, 2)), 1.0) == 0


class TestPointSetsInteract:
    def test_interacting(self):
        a = np.array([[0.0, 0.0], [1.0, 1.0]])
        b = np.array([[10.0, 10.0], [1.2, 1.0]])
        assert geometry.point_sets_interact(a, b, 0.5)

    def test_not_interacting(self):
        a = np.array([[0.0, 0.0]])
        b = np.array([[10.0, 10.0]])
        assert not geometry.point_sets_interact(a, b, 5.0)

    def test_boundary_distance_counts(self):
        a = np.array([[0.0, 0.0]])
        b = np.array([[2.0, 0.0]])
        assert geometry.point_sets_interact(a, b, 2.0)

    def test_empty_operands(self):
        a = np.empty((0, 2))
        b = np.array([[0.0, 0.0]])
        assert not geometry.point_sets_interact(a, b, 1.0)
        assert not geometry.point_sets_interact(b, a, 1.0)

    def test_blocked_path_beyond_block_size(self):
        # More rows than the internal block, hit only in the last block.
        rng = np.random.default_rng(0)
        a = rng.uniform(100, 200, size=(200, 2))
        a[-1] = [0.0, 0.0]
        b = np.array([[0.5, 0.0]])
        assert geometry.point_sets_interact(a, b, 1.0)

    def test_matches_cdist_on_random_sets(self):
        rng = np.random.default_rng(5)
        for _ in range(20):
            a = rng.uniform(0, 20, size=(rng.integers(1, 30), 3))
            b = rng.uniform(0, 20, size=(rng.integers(1, 30), 3))
            r = float(rng.uniform(0.5, 10))
            expected = bool(np.min(cdist(a, b)) <= r)
            assert geometry.point_sets_interact(a, b, r) == expected


class TestMinPairDistance:
    def test_matches_cdist(self):
        rng = np.random.default_rng(6)
        for _ in range(15):
            a = rng.uniform(0, 10, size=(rng.integers(1, 100), 2))
            b = rng.uniform(0, 10, size=(rng.integers(1, 100), 2))
            expected = float(np.min(cdist(a, b)))
            assert geometry.min_pair_distance(a, b) == pytest.approx(expected, abs=1e-9)

    def test_empty(self):
        assert geometry.min_pair_distance(np.empty((0, 2)), np.ones((1, 2))) == np.inf


class TestBoxes:
    def test_bounding_box(self):
        points = np.array([[1.0, 5.0], [3.0, 2.0]])
        low, high = geometry.bounding_box(points)
        assert low.tolist() == [1.0, 2.0]
        assert high.tolist() == [3.0, 5.0]

    def test_bounding_box_empty_raises(self):
        with pytest.raises(ValueError):
            geometry.bounding_box(np.empty((0, 2)))

    def test_boxes_overlap(self):
        assert geometry.boxes_within(
            np.array([0.0, 0.0]), np.array([2.0, 2.0]),
            np.array([1.0, 1.0]), np.array([3.0, 3.0]),
        )

    def test_boxes_within_gap(self):
        lo_a, hi_a = np.array([0.0, 0.0]), np.array([1.0, 1.0])
        lo_b, hi_b = np.array([4.0, 0.0]), np.array([5.0, 1.0])
        assert not geometry.boxes_within(lo_a, hi_a, lo_b, hi_b)
        assert geometry.boxes_within(lo_a, hi_a, lo_b, hi_b, r=3.0)
        assert not geometry.boxes_within(lo_a, hi_a, lo_b, hi_b, r=2.9)
