"""The error taxonomy's two public mappings, pinned end to end.

Satellite: every error class maps to its intended HTTP status (service)
and process exit code (CLI), and every degraded answer is explicitly
marked -- ``exact: false`` plus a ``degraded_*`` note -- so a client can
always tell a full answer from a partial one without guessing.
"""

import json

import pytest

from repro.errors import (
    BackendUnavailableError,
    CorruptDataError,
    InjectedFault,
    InvalidQueryError,
    PartitionTaskError,
    QueryTimeout,
    ReproError,
    ServiceOverloadedError,
)
from repro.service.app import ServiceApp, error_response
from repro.service.config import ServiceConfig

from conftest import random_collection

#: The full taxonomy contract: (class, exit code, HTTP status).
TAXONOMY = [
    (InvalidQueryError, 11, 400),
    (CorruptDataError, 12, 422),
    (QueryTimeout, 13, 504),
    (BackendUnavailableError, 14, 503),
    (PartitionTaskError, 15, 500),
    (InjectedFault, 16, 500),
    (ServiceOverloadedError, 17, 429),
]


class TestTaxonomyMappings:
    @pytest.mark.parametrize("cls,exit_code,http_status", TAXONOMY)
    def test_exit_code_and_http_status(self, cls, exit_code, http_status):
        assert cls.exit_code == exit_code
        assert cls.http_status == http_status

    def test_codes_are_distinct(self):
        exit_codes = [cls.exit_code for cls, _, _ in TAXONOMY]
        assert len(set(exit_codes)) == len(exit_codes)
        assert all(code != 0 for code in exit_codes)

    @pytest.mark.parametrize("cls,exit_code,http_status", TAXONOMY)
    def test_error_envelope_carries_the_mapping(self, cls, exit_code, http_status):
        response = error_response(cls("boom"))
        assert response.status == http_status
        assert response.payload["error"] == cls.__name__
        assert response.payload["status"] == http_status
        assert "boom" in response.payload["message"]

    def test_retry_after_header_rounds_up(self):
        response = error_response(
            ServiceOverloadedError("shed", retry_after=0.2), retry_after=0.2
        )
        assert response.headers["Retry-After"] == "1"
        assert response.payload["retry_after_s"] == 0.2

    def test_root_is_never_a_success(self):
        assert ReproError.http_status >= 400
        assert ReproError.exit_code != 0


@pytest.fixture(scope="module")
def app():
    return ServiceApp(
        random_collection(25, 5, seed=9),
        ServiceConfig(port=0, max_inflight=2, max_queue=2),
    )


class TestServiceErrorMapping:
    """The HTTP layer surfaces taxonomy statuses, never tracebacks."""

    @pytest.mark.parametrize("body", [
        b"{nope",
        b'["a", "list"]',
        b'{"k": 2}',
        b'{"r": "abc"}',
        b'{"r": true}',
        b'{"r": -1.0}',
        b'{"r": 2.0, "k": 0}',
        b'{"r": 2.0, "unknown_field": 1}',
        b'{"r": 2.0, "timeout_ms": -5}',
    ])
    def test_bad_input_is_http_400(self, app, body):
        response = app.handle("POST", "/query", None, body)
        assert response.status == 400
        assert response.payload["error"] == "InvalidQueryError"
        assert "Traceback" not in json.dumps(response.payload)

    @pytest.mark.parametrize("body", [
        b'{"queries": []}',
        b'{"queries": "nope"}',
        b'{"not_queries": [1]}',
        b'{"queries": [{"r": "junk"}]}',
    ])
    def test_bad_batch_is_http_400(self, app, body):
        response = app.handle("POST", "/batch", None, body)
        assert response.status == 400
        assert response.payload["error"] == "InvalidQueryError"

    def test_oversized_batch_is_http_400(self, app):
        queries = [{"r": 2.0}] * (app.config.max_batch + 1)
        response = app.handle(
            "POST", "/batch", None, json.dumps({"queries": queries}).encode()
        )
        assert response.status == 400

    def test_unknown_route_is_http_404(self, app):
        assert app.handle("GET", "/shrug").status == 404

    def test_batch_requires_post(self, app):
        response = app.handle("GET", "/batch", {"r": "2.0"})
        assert response.status == 400

    def test_unexpected_exception_becomes_structured_500(self, app, monkeypatch):
        def explode(payload):
            raise ZeroDivisionError("surprise")

        monkeypatch.setattr(app, "handle_query", explode)
        response = app.handle("POST", "/query", None, b'{"r": 2.0}')
        assert response.status == 500
        assert response.payload["error"] == "InternalError"
        assert "ZeroDivisionError" in response.payload["message"]


class TestDegradedAnswersAreMarked:
    """Anytime answers always say so: exact=False plus a degraded_* note."""

    def test_queue_expired_request_degrades_with_note(self, app):
        # A zero budget expires before execution; the request still gets
        # HTTP 200 with an explicitly-marked vacuous lower bound.
        response = app.handle("POST", "/query", None, b'{"r": 4.0, "timeout_ms": 0}')
        assert response.status == 200
        assert response.payload["exact"] is False
        assert any(k.startswith("degraded_") for k in response.payload["notes"])
        assert response.payload["winner"] == -1
        assert response.payload["score"] == 0

    def test_session_anytime_results_carry_degraded_note(self):
        from repro.resilience import Deadline, ManualClock
        from repro.session import QueryRequest, QuerySession

        session = QuerySession(random_collection(20, 5, seed=4))
        doomed = QueryRequest(
            r=4.5, deadline=Deadline(0.0, clock=ManualClock(step=1.0))
        )
        results = session.query_many([doomed, 4.2])
        assert not results[0].exact
        assert any(k.startswith("degraded_") for k in results[0].notes)
        assert results[1].exact
        assert not any(k.startswith("degraded_") for k in results[1].notes)

    def test_verification_expiry_keeps_partial_answer_marked(self):
        from repro import faults
        from repro.faults import from_env
        from repro.session import QuerySession

        injector = from_env("verification:latency:1:400")
        faults.install(injector)
        try:
            session = QuerySession(random_collection(20, 5, seed=4))
            results = session.query_many([{"r": 4.5, "timeout_ms": 200}])
        finally:
            faults.install(None)
        assert not results[0].exact
        assert "degraded_deadline" in results[0].notes
        assert results[0].winner >= 0  # verified prefix, not vacuous

    def test_exact_service_answer_has_no_degraded_note(self, app):
        response = app.handle("POST", "/query", None, b'{"r": 4.0}')
        assert response.status == 200
        assert response.payload["exact"] is True
        assert not any(k.startswith("degraded_") for k in response.payload["notes"])
