"""Tests for the simulated-makespan and thread executors."""

import time

import pytest

from repro.parallel.executor import CoreReport, SimulatedExecutor, ThreadExecutor


class TestSimulatedExecutor:
    def test_results_in_task_order(self):
        executor = SimulatedExecutor(2)
        tasks = [lambda value=v: value for v in range(5)]
        results, _report = executor.run(tasks, [0, 1, 0, 1, 0])
        assert results == [0, 1, 2, 3, 4]

    def test_costs_charged_to_assigned_core(self):
        executor = SimulatedExecutor(2)

        def busy():
            deadline = time.perf_counter() + 0.003
            while time.perf_counter() < deadline:
                pass

        _, report = executor.run([busy, busy], [0, 0])
        assert report.per_core_seconds[0] >= 0.005
        assert report.per_core_seconds[1] == 0.0
        assert report.serial_seconds >= report.per_core_seconds[0]

    def test_makespan_is_max_core_plus_merge(self):
        report = CoreReport(3)
        report.per_core_seconds = [1.0, 3.0, 2.0]
        report.merge_seconds = 0.5
        assert report.makespan == 3.5

    def test_barrier_seconds_add(self):
        report = CoreReport(2)
        report.barrier_seconds = 2.0
        report.per_core_seconds = [1.0, 0.0]
        assert report.makespan == 3.0

    def test_merge_is_timed(self):
        executor = SimulatedExecutor(2)

        def merge():
            deadline = time.perf_counter() + 0.002
            while time.perf_counter() < deadline:
                pass

        _, report = executor.run([lambda: None], [0], merge=merge)
        assert report.merge_seconds >= 0.002

    def test_mismatched_assignment_rejected(self):
        with pytest.raises(ValueError):
            SimulatedExecutor(2).run([lambda: 1], [0, 1])

    def test_invalid_cores(self):
        with pytest.raises(ValueError):
            SimulatedExecutor(0)

    def test_run_rounds_accumulates_barriers(self):
        executor = SimulatedExecutor(2)
        rounds = [
            ([lambda: 1, lambda: 2], [0, 1], None),
            ([lambda: 3], [0], None),
        ]
        results, report = executor.run_rounds(rounds)
        assert results == [[1, 2], [3]]
        assert report.barrier_seconds > 0.0
        assert report.makespan >= report.barrier_seconds

    def test_speedup_of_balanced_schedule(self):
        executor = SimulatedExecutor(4)

        def busy():
            deadline = time.perf_counter() + 0.002
            while time.perf_counter() < deadline:
                pass

        _, report = executor.run([busy] * 8, [0, 1, 2, 3, 0, 1, 2, 3])
        assert report.speedup() > 2.0  # ideally ~4


class TestThreadExecutor:
    def test_results_in_task_order(self):
        executor = ThreadExecutor(3)
        tasks = [lambda value=v: value * 10 for v in range(7)]
        results, _ = executor.run(tasks, [index % 3 for index in range(7)])
        assert results == [0, 10, 20, 30, 40, 50, 60]

    def test_merge_runs_after_tasks(self):
        executor = ThreadExecutor(2)
        log = []
        tasks = [lambda i=i: log.append(("task", i)) for i in range(4)]
        executor.run(tasks, [0, 1, 0, 1], merge=lambda: log.append(("merge", None)))
        assert log[-1] == ("merge", None)
        assert len(log) == 5

    def test_mismatched_assignment_rejected(self):
        with pytest.raises(ValueError):
            ThreadExecutor(2).run([lambda: 1], [])

    def test_invalid_cores(self):
        with pytest.raises(ValueError):
            ThreadExecutor(0)


class TestThreadExecutorFailures:
    """A failing task must not leave the round half-finished or racy."""

    def test_failure_carries_task_index(self):
        from repro.errors import PartitionTaskError

        def boom():
            raise RuntimeError("boom")

        tasks = [lambda v=v: v for v in range(6)]
        tasks[2] = boom
        with pytest.raises(PartitionTaskError) as info:
            ThreadExecutor(3).run(tasks, [index % 3 for index in range(6)])
        assert info.value.task_index == 2
        assert info.value.attempts == 1

    def test_other_tasks_still_run_to_completion(self):
        from repro.errors import PartitionTaskError

        done = []

        def boom():
            raise RuntimeError("boom")

        tasks = [lambda v=v: done.append(v) for v in range(6)]
        tasks[1] = boom
        with pytest.raises(PartitionTaskError):
            ThreadExecutor(3).run(tasks, [index % 3 for index in range(6)])
        assert sorted(done) == [0, 2, 3, 4, 5]

    def test_lowest_task_index_wins_deterministically(self):
        from repro.errors import PartitionTaskError

        def boom():
            raise RuntimeError("boom")

        for _ in range(5):  # scheduling varies; the reported index must not
            tasks = [lambda v=v: v for v in range(8)]
            tasks[5] = boom
            tasks[3] = boom
            with pytest.raises(PartitionTaskError) as info:
                ThreadExecutor(4).run(tasks, [index % 4 for index in range(8)])
            assert info.value.task_index == 3

    def test_retries_recover_transient_failure(self):
        attempts = {"count": 0}

        def flaky():
            attempts["count"] += 1
            if attempts["count"] == 1:
                raise RuntimeError("transient")
            return "ok"

        results, _ = ThreadExecutor(2, retries=1).run([flaky, lambda: 1], [0, 1])
        assert results == ["ok", 1]
        assert attempts["count"] == 2


class TestSimulatedExecutorFailures:
    def test_retry_budget_exhaustion_reports_attempts(self):
        from repro.errors import PartitionTaskError

        def boom():
            raise RuntimeError("always")

        with pytest.raises(PartitionTaskError) as info:
            SimulatedExecutor(1, retries=2).run([boom], [0])
        assert info.value.task_index == 0
        assert info.value.attempts == 3

    def test_retried_attempts_are_charged_to_the_core(self):
        import time as _time

        calls = {"count": 0}

        def flaky_busy():
            calls["count"] += 1
            deadline = _time.perf_counter() + 0.002
            while _time.perf_counter() < deadline:
                pass
            if calls["count"] == 1:
                raise RuntimeError("transient")
            return "ok"

        executor = SimulatedExecutor(1, retries=1)
        results, report = executor.run([flaky_busy], [0])
        assert results == ["ok"]
        assert report.per_core_seconds[0] >= 0.004  # both attempts billed
