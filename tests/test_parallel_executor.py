"""Tests for the simulated-makespan and thread executors."""

import time

import pytest

from repro.parallel.executor import CoreReport, SimulatedExecutor, ThreadExecutor


class TestSimulatedExecutor:
    def test_results_in_task_order(self):
        executor = SimulatedExecutor(2)
        tasks = [lambda value=v: value for v in range(5)]
        results, _report = executor.run(tasks, [0, 1, 0, 1, 0])
        assert results == [0, 1, 2, 3, 4]

    def test_costs_charged_to_assigned_core(self):
        executor = SimulatedExecutor(2)

        def busy():
            deadline = time.perf_counter() + 0.003
            while time.perf_counter() < deadline:
                pass

        _, report = executor.run([busy, busy], [0, 0])
        assert report.per_core_seconds[0] >= 0.005
        assert report.per_core_seconds[1] == 0.0
        assert report.serial_seconds >= report.per_core_seconds[0]

    def test_makespan_is_max_core_plus_merge(self):
        report = CoreReport(3)
        report.per_core_seconds = [1.0, 3.0, 2.0]
        report.merge_seconds = 0.5
        assert report.makespan == 3.5

    def test_barrier_seconds_add(self):
        report = CoreReport(2)
        report.barrier_seconds = 2.0
        report.per_core_seconds = [1.0, 0.0]
        assert report.makespan == 3.0

    def test_merge_is_timed(self):
        executor = SimulatedExecutor(2)

        def merge():
            deadline = time.perf_counter() + 0.002
            while time.perf_counter() < deadline:
                pass

        _, report = executor.run([lambda: None], [0], merge=merge)
        assert report.merge_seconds >= 0.002

    def test_mismatched_assignment_rejected(self):
        with pytest.raises(ValueError):
            SimulatedExecutor(2).run([lambda: 1], [0, 1])

    def test_invalid_cores(self):
        with pytest.raises(ValueError):
            SimulatedExecutor(0)

    def test_run_rounds_accumulates_barriers(self):
        executor = SimulatedExecutor(2)
        rounds = [
            ([lambda: 1, lambda: 2], [0, 1], None),
            ([lambda: 3], [0], None),
        ]
        results, report = executor.run_rounds(rounds)
        assert results == [[1, 2], [3]]
        assert report.barrier_seconds > 0.0
        assert report.makespan >= report.barrier_seconds

    def test_speedup_of_balanced_schedule(self):
        executor = SimulatedExecutor(4)

        def busy():
            deadline = time.perf_counter() + 0.002
            while time.perf_counter() < deadline:
                pass

        _, report = executor.run([busy] * 8, [0, 1, 2, 3, 0, 1, 2, 3])
        assert report.speedup() > 2.0  # ideally ~4


class TestThreadExecutor:
    def test_results_in_task_order(self):
        executor = ThreadExecutor(3)
        tasks = [lambda value=v: value * 10 for v in range(7)]
        results, _ = executor.run(tasks, [index % 3 for index in range(7)])
        assert results == [0, 10, 20, 30, 40, 50, 60]

    def test_merge_runs_after_tasks(self):
        executor = ThreadExecutor(2)
        log = []
        tasks = [lambda i=i: log.append(("task", i)) for i in range(4)]
        executor.run(tasks, [0, 1, 0, 1], merge=lambda: log.append(("merge", None)))
        assert log[-1] == ("merge", None)
        assert len(log) == 5

    def test_mismatched_assignment_rejected(self):
        with pytest.raises(ValueError):
            ThreadExecutor(2).run([lambda: 1], [])

    def test_invalid_cores(self):
        with pytest.raises(ValueError):
            ThreadExecutor(0)
