"""In-process tests of the service core: admission, degradation, drain.

Everything here drives :class:`~repro.service.app.ServiceApp` directly
(no sockets); the HTTP adapter has its own suite in
``test_service_http.py``.
"""

import json
import threading

import pytest

from repro import faults
from repro.core.engine import MIOEngine
from repro.faults import from_env
from repro.service.admission import (
    ADMITTED,
    DRAINING,
    EXPIRED,
    SHED,
    AdmissionController,
)
from repro.service.app import ServiceApp
from repro.service.config import ServiceConfig
from repro.errors import InvalidQueryError

from conftest import random_collection


@pytest.fixture()
def collection():
    return random_collection(25, 5, seed=11)


def make_app(collection, **overrides):
    defaults = dict(port=0, max_inflight=2, max_queue=2)
    defaults.update(overrides)
    return ServiceApp(collection, ServiceConfig(**defaults))


def post(app, path, payload):
    return app.handle("POST", path, None, json.dumps(payload).encode())


class TestConfigValidation:
    @pytest.mark.parametrize("overrides", [
        {"max_inflight": 0},
        {"max_queue": -1},
        {"default_timeout_ms": 0},
        {"max_batch": 0},
        {"breaker_failures": 0},
        {"breaker_reset_s": 0.0},
        {"breaker_reset_s": 5.0, "breaker_max_reset_s": 1.0},
        {"breaker_jitter": 1.5},
        {"drain_s": -1.0},
        {"retry_after_floor_s": 0.0},
    ])
    def test_bad_knobs_fail_at_startup(self, overrides):
        with pytest.raises(InvalidQueryError):
            ServiceConfig(**overrides)

    def test_clamp_timeout_applies_default_and_cap(self):
        config = ServiceConfig(default_timeout_ms=100.0, max_timeout_ms=500.0)
        assert config.clamp_timeout_ms(None) == 100.0
        assert config.clamp_timeout_ms(200.0) == 200.0
        assert config.clamp_timeout_ms(10_000.0) == 500.0


class TestQueryEndpoints:
    def test_query_matches_the_engine(self, collection):
        app = make_app(collection)
        response = post(app, "/query", {"r": 4.0})
        expected = MIOEngine(collection).query(4.0)
        assert response.status == 200
        assert response.payload["winner"] == expected.winner
        assert response.payload["score"] == expected.score
        assert response.payload["exact"] is True
        assert response.payload["queue_wait_ms"] == 0.0

    def test_topk_requires_k_and_returns_ranking(self, collection):
        app = make_app(collection)
        assert post(app, "/topk", {"r": 4.0}).status == 400
        response = post(app, "/topk", {"r": 4.0, "k": 3})
        assert response.status == 200
        assert len(response.payload["topk"]) == 3
        scores = [score for _, score in response.payload["topk"]]
        assert scores == sorted(scores, reverse=True)

    def test_batch_preserves_order_and_isolation(self, collection):
        app = make_app(collection)
        response = post(app, "/batch", {
            "queries": [4.9, {"r": 4.5, "timeout_ms": 0}, 4.2],
        })
        assert response.status == 200
        results = response.payload["results"]
        assert [round(r["r"], 1) for r in results] == [4.9, 4.5, 4.2]
        assert results[0]["exact"] and results[2]["exact"]
        assert not results[1]["exact"]  # the doomed one degrades alone

    def test_get_query_via_params(self, collection):
        app = make_app(collection)
        response = app.handle("GET", "/query", {"r": "4.0"})
        assert response.status == 200
        assert response.payload["exact"] is True


class TestAdmissionControl:
    def test_sheds_beyond_queue_capacity(self):
        controller = AdmissionController(max_inflight=1, max_queue=0)
        assert controller.admit().outcome == ADMITTED
        assert controller.admit().outcome == SHED
        controller.release()
        assert controller.admit().outcome == ADMITTED

    def test_queued_request_admitted_after_release(self):
        controller = AdmissionController(max_inflight=1, max_queue=2)
        assert controller.admit().outcome == ADMITTED
        outcomes = []

        def waiter():
            outcomes.append(controller.admit().outcome)
            controller.release()

        thread = threading.Thread(target=waiter)
        thread.start()
        # Wait until the request is queued, then free the slot.
        for _ in range(1000):
            if controller.snapshot()["queued"] == 1:
                break
            threading.Event().wait(0.001)
        controller.release()
        thread.join(timeout=5.0)
        assert outcomes == [ADMITTED]

    def test_draining_refuses_new_arrivals(self):
        controller = AdmissionController(max_inflight=1, max_queue=2)
        controller.begin_drain()
        assert controller.admit().outcome == DRAINING

    def test_shed_response_is_429_with_retry_after(self, collection):
        app = make_app(collection, max_inflight=1, max_queue=0)
        decision = app.admission.admit()
        assert decision.outcome == ADMITTED  # occupy the only slot
        try:
            response = post(app, "/query", {"r": 4.0})
        finally:
            app.admission.release()
        assert response.status == 429
        assert response.payload["error"] == "ServiceOverloadedError"
        assert float(response.headers["Retry-After"]) >= 1.0
        assert app.stats["shed"] == 1

    def test_retry_after_hint_clamped_to_config(self, collection):
        app = make_app(collection)
        hint = app.retry_after_hint()
        assert app.config.retry_after_floor_s <= hint <= app.config.retry_after_cap_s


class TestDegradationChain:
    def test_backend_fault_falls_back_and_still_answers(self, collection):
        app = make_app(collection)
        injector = from_env("lower_bounding:fail")
        faults.install(injector)
        try:
            # The fault injector is process-global, so it breaks the
            # fallback session too; the chain must bottom out in a
            # well-formed vacuous anytime answer, not an error.
            response = post(app, "/query", {"r": 4.0})
        finally:
            faults.install(None)
        assert response.status == 200
        assert response.payload["exact"] is False
        assert response.payload["winner"] == -1
        assert any(k.startswith("degraded_") for k in response.payload["notes"])

    def test_primary_only_fault_served_by_fallback(self, collection):
        app = make_app(collection)

        real_query = app.primary.query

        def broken_query(*args, **kwargs):
            from repro.errors import InjectedFault

            raise InjectedFault("primary path down", point="backend")

        app.primary.query = broken_query
        try:
            response = post(app, "/query", {"r": 4.0})
        finally:
            app.primary.query = real_query
        expected = MIOEngine(collection).query(4.0)
        assert response.status == 200
        assert response.payload["winner"] == expected.winner
        assert response.payload["exact"] is True
        assert "degraded_path" in response.payload["notes"]
        assert app.stats["fallback_served"] == 1

    def test_repeated_faults_trip_the_breaker(self, collection):
        app = make_app(collection, breaker_failures=3)

        def broken_query(*args, **kwargs):
            from repro.errors import InjectedFault

            raise InjectedFault("primary path down", point="backend")

        app.primary.query = broken_query
        for _ in range(3):
            assert post(app, "/query", {"r": 4.0}).status == 200
        assert app.breaker.state == "open"
        # With the breaker open the primary path is skipped entirely;
        # answers keep flowing from the fallback.
        response = post(app, "/query", {"r": 4.0})
        assert response.status == 200
        assert "breaker_open" in response.payload["notes"]["degraded_path"]

    def test_timeout_does_not_count_against_the_breaker(self, collection):
        app = make_app(collection, breaker_failures=1)
        response = post(app, "/query", {"r": 4.0, "timeout_ms": 0})
        assert response.status == 200
        assert response.payload["exact"] is False
        assert app.breaker.state == "closed"


class TestLifecycle:
    def test_drain_flips_readyz_and_refuses_queries(self, collection):
        app = make_app(collection)
        assert app.handle("GET", "/readyz").status == 200
        assert app.drain(timeout_s=1.0) is True
        readyz = app.handle("GET", "/readyz")
        assert readyz.status == 503
        assert readyz.payload["ready"] is False
        response = post(app, "/query", {"r": 4.0})
        assert response.status == 503

    def test_healthz_stays_alive_while_draining(self, collection):
        app = make_app(collection)
        app.begin_drain()
        assert app.handle("GET", "/healthz").status == 200

    def test_metrics_endpoint_is_valid_prometheus(self, collection):
        from repro.obs.export import validate_prometheus_text

        app = make_app(collection)
        post(app, "/query", {"r": 4.0})
        response = app.handle("GET", "/metrics")
        assert response.status == 200
        validate_prometheus_text(response.payload)
        assert "repro_service_admissions_total" in response.payload
        assert "repro_service_breaker_state" in response.payload

    def test_snapshot_aggregates_all_layers(self, collection):
        app = make_app(collection)
        post(app, "/query", {"r": 4.0})
        snapshot = app.snapshot()
        assert snapshot["served"] == 1
        assert snapshot["admission"]["outcome_admitted"] == 1
        assert snapshot["breaker"]["state"] == "closed"
        assert snapshot["session"]["queries"] >= 1
