"""Tests for the competitor algorithms (NL, kd-tree NL, SG, theoretical)."""

import pytest

from repro.baselines import (
    KDTreeNestedLoop,
    NestedLoopAlgorithm,
    SimpleGridAlgorithm,
    TheoreticalAlgorithm,
)
from repro.baselines.nested_loop import brute_force_scores

from conftest import oracle_scores, random_collection


@pytest.fixture(scope="module")
def collection():
    return random_collection(n=30, mean_points=6, seed=71)


@pytest.fixture(scope="module")
def truth(collection):
    return {r: oracle_scores(collection, r) for r in (1.0, 2.5, 5.0)}


class TestNestedLoop:
    @pytest.mark.parametrize("r", [1.0, 2.5, 5.0])
    def test_scores_match_oracle(self, collection, truth, r):
        assert NestedLoopAlgorithm(collection).scores(r) == truth[r]

    def test_query(self, collection, truth):
        result = NestedLoopAlgorithm(collection).query(2.5)
        assert result.algorithm == "nl"
        assert result.score == max(truth[2.5])

    def test_bbox_filter_same_answers(self, collection, truth):
        filtered = NestedLoopAlgorithm(collection, use_bbox_filter=True)
        assert filtered.scores(2.5) == truth[2.5]

    def test_topk(self, collection, truth):
        result = NestedLoopAlgorithm(collection).query_topk(2.5, 4)
        assert [s for _, s in result.topk] == sorted(truth[2.5], reverse=True)[:4]

    def test_invalid_r(self, collection):
        with pytest.raises(ValueError):
            NestedLoopAlgorithm(collection).scores(0.0)
        with pytest.raises(ValueError):
            NestedLoopAlgorithm(collection).query_topk(1.0, 0)

    def test_brute_force_scores_helper(self, collection, truth):
        assert brute_force_scores(collection, 1.0) == truth[1.0]


class TestKDTreeNestedLoop:
    @pytest.mark.parametrize("r", [1.0, 2.5, 5.0])
    def test_scores_match_oracle(self, collection, truth, r):
        assert KDTreeNestedLoop(collection).scores(r) == truth[r]

    def test_query_metadata(self, collection):
        result = KDTreeNestedLoop(collection).query(2.5)
        assert result.algorithm == "nl-kdtree"
        assert result.memory_bytes > 0

    def test_invalid_r(self, collection):
        with pytest.raises(ValueError):
            KDTreeNestedLoop(collection).scores(-1.0)


class TestSimpleGrid:
    @pytest.mark.parametrize("r", [1.0, 2.5, 5.0])
    def test_scores_match_oracle(self, collection, truth, r):
        assert SimpleGridAlgorithm(collection).scores(r) == truth[r]

    def test_query_metadata(self, collection, truth):
        result = SimpleGridAlgorithm(collection).query(2.5)
        assert result.algorithm == "sg"
        assert result.score == max(truth[2.5])
        assert result.counters["cells"] > 0
        assert result.memory_bytes > 0
        assert "build" in result.phases and "scoring" in result.phases

    def test_invalid_r(self, collection):
        with pytest.raises(ValueError):
            SimpleGridAlgorithm(collection).build(0.0)

    def test_memory_shrinks_with_larger_r(self, collection):
        small_r = SimpleGridAlgorithm(collection)
        small_r.build(0.5)
        large_r = SimpleGridAlgorithm(collection)
        large_r.build(8.0)
        assert large_r.memory_bytes() < small_r.memory_bytes()


class TestTheoretical:
    def test_scores_match_oracle_after_preprocessing(self, collection, truth):
        algorithm = TheoreticalAlgorithm(collection)
        algorithm.preprocess()
        for r in (1.0, 2.5, 5.0):
            assert algorithm.scores(r) == truth[r]

    def test_query_before_preprocess_raises(self, collection):
        with pytest.raises(RuntimeError):
            TheoreticalAlgorithm(collection).scores(1.0)

    def test_budget_guard(self, collection):
        algorithm = TheoreticalAlgorithm(collection)
        with pytest.raises(RuntimeError, match="budget"):
            algorithm.preprocess(budget_pairs=10)

    def test_quadratic_memory(self, collection):
        algorithm = TheoreticalAlgorithm(collection)
        algorithm.preprocess()
        n = collection.n
        assert algorithm.memory_bytes() == n * (n - 1) * 8

    def test_queries_are_threshold_independent_structures(self, collection):
        algorithm = TheoreticalAlgorithm(collection)
        algorithm.preprocess()
        first = algorithm.query(1.0)
        second = algorithm.query(5.0)
        assert first.algorithm == "theoretical"
        assert second.score >= first.score

    def test_invalid_r(self, collection):
        algorithm = TheoreticalAlgorithm(collection)
        algorithm.preprocess()
        with pytest.raises(ValueError):
            algorithm.scores(0.0)


class TestCrossAlgorithmAgreement:
    """Definition 1 fixes the max score; every algorithm must agree on it."""

    @pytest.mark.parametrize("r", [1.0, 2.5, 5.0])
    def test_all_max_scores_agree(self, collection, truth, r):
        expected = max(truth[r])
        assert NestedLoopAlgorithm(collection).query(r).score == expected
        assert KDTreeNestedLoop(collection).query(r).score == expected
        assert SimpleGridAlgorithm(collection).query(r).score == expected
        theoretical = TheoreticalAlgorithm(collection)
        theoretical.preprocess()
        assert theoretical.query(r).score == expected
