"""Tests for anytime (progressive) MIO queries."""

import pytest

from repro.core.engine import MIOEngine
from repro.progressive import query_progressive

from conftest import oracle_scores, random_collection


class TestConvergence:
    @pytest.mark.parametrize("seed", [171, 172, 173])
    def test_final_state_is_exact(self, seed):
        collection = random_collection(n=30, mean_points=6, seed=seed)
        truth = oracle_scores(collection, 2.0)
        states = list(query_progressive(collection, 2.0))
        final = states[-1]
        assert final.is_final
        assert final.best_score == max(truth)
        assert truth[final.best_oid] == final.best_score
        assert final.gap == 0 or final.candidates_verified == final.candidates_total

    def test_interval_always_contains_truth(self):
        collection = random_collection(n=25, mean_points=6, seed=174)
        best = max(oracle_scores(collection, 2.0))
        for state in query_progressive(collection, 2.0):
            assert state.best_score <= best <= state.score_upper_bound

    def test_gap_is_monotone_nonincreasing(self):
        collection = random_collection(n=30, mean_points=6, seed=175)
        gaps = [state.gap for state in query_progressive(collection, 2.0)]
        assert gaps == sorted(gaps, reverse=True)
        assert gaps[-1] == 0

    def test_best_score_is_monotone_nondecreasing(self):
        collection = random_collection(n=30, mean_points=6, seed=176)
        scores = [state.best_score for state in query_progressive(collection, 2.0)]
        assert scores == sorted(scores)

    def test_matches_engine_answer(self):
        collection = random_collection(n=35, mean_points=6, seed=177)
        final = list(query_progressive(collection, 3.0))[-1]
        assert final.best_score == MIOEngine(collection).query(3.0).score


class TestBudget:
    def test_truncated_stream_is_still_sound(self):
        collection = random_collection(n=40, mean_points=6, seed=178)
        best = max(oracle_scores(collection, 2.0))
        states = list(query_progressive(collection, 2.0, max_verifications=2))
        last = states[-1]
        assert last.candidates_verified <= 2
        assert last.best_score <= best <= last.score_upper_bound

    def test_zero_budget_yields_bounding_state_only(self):
        collection = random_collection(n=20, mean_points=5, seed=179)
        states = list(query_progressive(collection, 2.0, max_verifications=0))
        assert len(states) == 1
        assert states[0].candidates_verified == 0

    def test_first_state_has_no_verifications(self):
        collection = random_collection(n=20, mean_points=5, seed=180)
        first = next(iter(query_progressive(collection, 2.0)))
        assert first.candidates_verified == 0
        assert first.candidates_total >= 1


class TestEdgeCases:
    def test_isolated_collection_finishes_immediately(self):
        collection = random_collection(
            n=8, mean_points=3, seed=181, extent=50000.0, clustered=False
        )
        # Use a tiny r so nothing interacts.
        states = list(query_progressive(collection, 0.001))
        assert states[-1].best_score == 0
        assert states[-1].is_final

    def test_invalid_r(self):
        collection = random_collection(n=5, mean_points=3, seed=182)
        with pytest.raises(ValueError):
            list(query_progressive(collection, -1.0))
