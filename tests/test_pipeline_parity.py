"""Pipeline parity: the refactored engines answer exactly as before.

The serial, parallel, and variant engines all run through the one
:class:`~repro.core.pipeline.PhasePipeline` orchestrator now; this suite
pins the refactor three ways:

* **golden answers** -- winners, scores, and top-k rankings captured
  from the pre-refactor engines on a fixed collection, checked on every
  bitset backend (the answers are backend-independent);
* **oracle differential** -- both engines against the scipy nested-loop
  oracle on fresh collections;
* **cross-cutting semantics** -- tracing changes no answer, anytime
  degradation and fault injection behave identically through the
  orchestrator, and ``query_batch`` equals per-query answers (it is a
  thin wrapper over the shared ceil(r)-grouped sweep).
"""

from __future__ import annotations

import math

import pytest
from conftest import oracle_scores, random_collection

from repro import faults
from repro.core.engine import MIOEngine
from repro.core.pipeline import batch_order, kth_largest, run_grouped_sweep
from repro.errors import InjectedFault, QueryTimeout
from repro.faults import FaultInjector, FaultSpec
from repro.obs.trace import Tracer
from repro.parallel.engine import ParallelMIOEngine
from repro.resilience import Deadline, ManualClock

BACKENDS = ("ewah", "plain", "roaring")

#: Answers captured from the pre-refactor engines (commit 33bc27e) on
#: ``random_collection(n=40, mean_points=8, seed=4242)``.  They are
#: backend-independent, and serial == parallel by Section IV exactness.
GOLDEN = {
    2.0: {"winner": (5, 15), "topk": [(5, 15), (18, 15), (22, 15)]},
    3.5: {"winner": (15, 15), "topk": [(15, 15), (20, 15), (36, 15)]},
    5.0: {"winner": (36, 16), "topk": [(36, 16), (15, 15), (18, 15)]},
}


@pytest.fixture(scope="module")
def golden_collection():
    return random_collection(n=40, mean_points=8, seed=4242)


# ----------------------------------------------------------------------
# Golden answers, all backends, both engines
# ----------------------------------------------------------------------


class TestGoldenAnswers:
    @pytest.mark.parametrize("backend", BACKENDS)
    @pytest.mark.parametrize("r", sorted(GOLDEN))
    def test_serial_matches_prerefactor(self, golden_collection, backend, r):
        result = MIOEngine(golden_collection, backend=backend).query(r)
        assert (result.winner, result.score) == GOLDEN[r]["winner"]
        assert result.exact

    @pytest.mark.parametrize("backend", BACKENDS)
    @pytest.mark.parametrize("r", sorted(GOLDEN))
    def test_serial_topk_matches_prerefactor(self, golden_collection, backend, r):
        result = MIOEngine(golden_collection, backend=backend).query_topk(r, k=3)
        assert result.topk == GOLDEN[r]["topk"]

    @pytest.mark.parametrize("backend", BACKENDS)
    @pytest.mark.parametrize("r", sorted(GOLDEN))
    def test_parallel_matches_prerefactor(self, golden_collection, backend, r):
        engine = ParallelMIOEngine(
            golden_collection, cores=4, backend=backend, mode="simulated"
        )
        result = engine.query(r)
        assert (result.winner, result.score) == GOLDEN[r]["winner"]
        assert result.algorithm == "bigrid-parallel"

    @pytest.mark.parametrize("backend", BACKENDS)
    @pytest.mark.parametrize("r", sorted(GOLDEN))
    def test_sharded_matches_prerefactor(
        self, golden_collection, backend, r, monkeypatch
    ):
        # Real shard-parallel execution hits the same golden answers --
        # including the top-k order and its tie-breaks.
        monkeypatch.setenv("REPRO_SHARD_INLINE", "1")
        engine = ParallelMIOEngine(
            golden_collection, cores=2, backend=backend, shards=3
        )
        result = engine.query(r)
        assert (result.winner, result.score) == GOLDEN[r]["winner"]
        assert result.algorithm == "bigrid-sharded"
        assert engine.query_topk(r, k=3).topk == GOLDEN[r]["topk"]


# ----------------------------------------------------------------------
# Oracle differential
# ----------------------------------------------------------------------


class TestOracleDifferential:
    @pytest.mark.parametrize("seed", (901, 902, 903))
    @pytest.mark.parametrize("r", (1.5, 4.0))
    def test_serial_vs_oracle(self, seed, r):
        collection = random_collection(n=25, mean_points=6, seed=seed)
        tau = oracle_scores(collection, r)
        result = MIOEngine(collection).query(r)
        assert result.score == max(tau)
        assert tau[result.winner] == max(tau)

    @pytest.mark.parametrize("seed", (901, 902))
    def test_parallel_vs_oracle(self, seed):
        collection = random_collection(n=25, mean_points=6, seed=seed)
        tau = oracle_scores(collection, 3.0)
        result = ParallelMIOEngine(collection, cores=3).query(3.0)
        assert result.score == max(tau)
        assert tau[result.winner] == max(tau)


# ----------------------------------------------------------------------
# Tracing is answer-neutral through the orchestrator
# ----------------------------------------------------------------------


class TestTracedEqualsUntraced:
    def test_serial(self, golden_collection):
        for r in GOLDEN:
            tracer = Tracer()
            plain = MIOEngine(golden_collection).query(r)
            traced = MIOEngine(golden_collection, tracer=tracer).query(r)
            assert (traced.winner, traced.score) == (plain.winner, plain.score)
            span = tracer.root
            assert span.name == "query"
            names = [child.name for child in span.children]
            assert names == [
                "grid_mapping",
                "lower_bounding",
                "upper_bounding",
                "verification",
            ]
            assert traced.phases is not None  # derived from the trace tree

    def test_parallel(self, golden_collection):
        tracer = Tracer()
        plain = ParallelMIOEngine(
            golden_collection, cores=4, mode="simulated"
        ).query(2.0)
        traced = ParallelMIOEngine(
            golden_collection, cores=4, tracer=tracer, mode="simulated"
        ).query(2.0)
        assert (traced.winner, traced.score) == (plain.winner, plain.score)
        root = tracer.root
        # makespan_root: the trace tree sums like the simulated total.
        assert root.duration == pytest.approx(traced.total_time)


# ----------------------------------------------------------------------
# Anytime + fault semantics through the orchestrator
# ----------------------------------------------------------------------


class TestAnytimeThroughPipeline:
    def test_filter_phase_expiry_raises_with_phase(self, golden_collection):
        deadline = Deadline(1.0, clock=ManualClock(step=1.0))
        with pytest.raises(QueryTimeout) as info:
            MIOEngine(golden_collection).query(2.0, deadline=deadline)
        assert info.value.phase in ("grid_mapping", "lower_bounding", "upper_bounding")

    def test_verification_expiry_degrades_to_anytime(self, golden_collection):
        # Measure the total tick count, then expire partway through
        # verification: the answer must be anytime, not an exception.
        total = Deadline(10.0**9, clock=ManualClock(step=1.0))
        MIOEngine(golden_collection).query(2.0, deadline=total)
        budget = int(total.elapsed()) - 2
        deadline = Deadline(float(budget), clock=ManualClock(step=1.0))
        result = MIOEngine(golden_collection).query(2.0, deadline=deadline)
        if not result.exact:  # expiry may land just before the last candidate
            assert "anytime" in result.notes
        assert result.score <= max(oracle_scores(golden_collection, 2.0))


class TestFaultsThroughPipeline:
    @pytest.mark.parametrize(
        "point", ("grid_mapping", "lower_bounding", "upper_bounding", "verification")
    )
    def test_serial_phase_faults_still_raise(self, golden_collection, point):
        with faults.injected(FaultInjector([FaultSpec(point)])):
            with pytest.raises(InjectedFault) as info:
                MIOEngine(golden_collection).query(2.0)
        assert info.value.point == point

    def test_parallel_task_fault_falls_back_to_serial(self, golden_collection):
        engine = ParallelMIOEngine(
            golden_collection, cores=4, retries=0, mode="simulated"
        )
        with faults.injected(FaultInjector([FaultSpec("partition_task")])):
            result = engine.query(2.0)
        assert result.counters.get("serial_fallback") == 1
        assert "serial_fallback" in result.notes
        assert (result.winner, result.score) == GOLDEN[2.0]["winner"]
        assert result.exact

    def test_parallel_fallback_disabled_raises(self, golden_collection):
        engine = ParallelMIOEngine(
            golden_collection, cores=4, retries=0, serial_fallback=False,
            mode="simulated",
        )
        with faults.injected(FaultInjector([FaultSpec("partition_task")])):
            with pytest.raises(Exception):
                engine.query(2.0)


# ----------------------------------------------------------------------
# Batch == per-query (one shared grouped sweep)
# ----------------------------------------------------------------------


class TestBatchParity:
    def test_query_batch_equals_individual_queries(self, golden_collection):
        r_values = [5.0, 2.0, 3.5, 2.5, 4.8]
        engine = MIOEngine(golden_collection)
        batched = engine.query_batch(r_values)
        singles = [MIOEngine(golden_collection).query(r) for r in r_values]
        assert [(b.winner, b.score) for b in batched] == [
            (s.winner, s.score) for s in singles
        ]

    def test_batch_order_groups_by_ceiling_descending_r(self):
        r_values = [5.0, 2.0, 3.5, 2.5, 4.8]
        order = batch_order(r_values)
        keys = [(math.ceil(r_values[i]), -r_values[i]) for i in order]
        assert keys == sorted(keys)
        assert sorted(order) == list(range(len(r_values)))

    def test_run_grouped_sweep_restores_input_order(self):
        r_values = [4.2, 1.1, 4.9]
        results = run_grouped_sweep(r_values, lambda index: index * 10)
        assert results == [0, 10, 20]


# ----------------------------------------------------------------------
# Shared helpers
# ----------------------------------------------------------------------


class TestKthLargest:
    def test_matches_sorted(self):
        values = [3, 9, 1, 7, 7, 2]
        for k in range(1, len(values) + 1):
            assert kth_largest(values, k) == sorted(values, reverse=True)[k - 1]

    def test_k_beyond_length_is_zero(self):
        assert kth_largest([5, 1], 5) == 0
