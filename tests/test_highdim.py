"""Tests for the high-dimensional MIO extension (the paper's future work)."""

import numpy as np
import pytest
from scipy.spatial.distance import cdist

from repro.highdim import (
    HighDimCollection,
    MetricMIOEngine,
    make_highdim_clusters,
)


def oracle_scores_hd(collection, r):
    n = collection.n
    tau = [0] * n
    for i in range(n):
        for j in range(i + 1, n):
            if np.min(cdist(collection.objects[i], collection.objects[j])) <= r:
                tau[i] += 1
                tau[j] += 1
    return tau


class TestHighDimCollection:
    def test_basic(self):
        collection = HighDimCollection([np.zeros((3, 5)), np.ones((2, 5))])
        assert collection.n == 2
        assert collection.dimension == 5
        assert collection.total_points == 5

    def test_rejects_mixed_dimensions(self):
        with pytest.raises(ValueError):
            HighDimCollection([np.zeros((2, 4)), np.zeros((2, 5))])

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            HighDimCollection([])
        with pytest.raises(ValueError):
            HighDimCollection([np.zeros((0, 4))])

    def test_rejects_nan(self):
        with pytest.raises(ValueError):
            HighDimCollection([np.array([[np.nan, 0.0, 0.0]])])

    def test_rejects_1d(self):
        with pytest.raises(ValueError):
            HighDimCollection([np.zeros((3, 1))])


class TestMetricMIOExactness:
    @pytest.mark.parametrize("dimension", [2, 4, 6, 10])
    @pytest.mark.parametrize("r", [2.0, 6.0])
    def test_matches_oracle_across_dimensions(self, dimension, r):
        collection = make_highdim_clusters(
            n=25, mean_points=5, dimension=dimension, extent=60.0, seed=dimension
        )
        truth = oracle_scores_hd(collection, r)
        result = MetricMIOEngine(collection).query(r)
        assert result.score == max(truth)
        assert truth[result.winner] == result.score

    def test_brute_force_matches_oracle(self):
        collection = make_highdim_clusters(n=12, mean_points=4, dimension=7, seed=3)
        engine = MetricMIOEngine(collection)
        assert engine.brute_force_scores(3.0) == oracle_scores_hd(collection, 3.0)

    def test_all_isolated(self):
        rng = np.random.default_rng(0)
        centers = rng.uniform(0, 10_000.0, size=(10, 8))
        collection = HighDimCollection(
            [center + rng.normal(0, 0.1, size=(3, 8)) for center in centers]
        )
        result = MetricMIOEngine(collection).query(1.0)
        assert result.score == 0

    def test_invalid_r(self):
        collection = make_highdim_clusters(n=4, mean_points=3, dimension=4, seed=1)
        with pytest.raises(ValueError):
            MetricMIOEngine(collection).query(0.0)


class TestBoundsPrune:
    def test_pruning_leaves_fewer_candidates(self):
        # Tight clusters spread far apart: the sphere bounds both certify
        # in-cluster pairs and exclude cross-cluster pairs.
        collection = make_highdim_clusters(
            n=60,
            mean_points=5,
            dimension=8,
            n_clusters=6,
            extent=500.0,
            cluster_radius=0.4,
            seed=9,
        )
        result = MetricMIOEngine(collection).query(4.0)
        assert result.counters["candidates"] < collection.n
        assert result.counters["verified_objects"] <= result.counters["candidates"]
        assert result.counters["tau_max_low"] > 0

    def test_certain_pairs_need_no_verification(self):
        # Two tight clusters far apart: every in-cluster pair is certain,
        # so verification should do (almost) no point-level work.
        rng = np.random.default_rng(4)
        arrays = []
        for center_value in (0.0, 500.0):
            center = np.full(6, center_value)
            for _ in range(8):
                arrays.append(center + rng.normal(0, 0.05, size=(4, 6)))
        collection = HighDimCollection(arrays)
        result = MetricMIOEngine(collection).query(10.0)
        assert result.score == 7
        assert result.counters["pairs_checked"] == 0

    def test_memory_is_summary_only(self):
        collection = make_highdim_clusters(n=30, mean_points=20, dimension=5, seed=2)
        result = MetricMIOEngine(collection).query(2.0)
        # Centroids + radii: n * (d + 1) floats, far below the data size.
        assert result.memory_bytes == 30 * (5 + 1) * 8
