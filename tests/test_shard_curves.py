"""Property tests for the shard router's space-filling-curve codes.

The router's correctness never depends on these properties (the replay
merge is exact under *any* object partition), but its efficiency does:
locality keeps halos small.  This suite pins the algebra:

* encode/decode round-trip exactly, on both curves and both paths;
* the big-int fallback is bit-identical to the vectorized path wherever
  both are representable (the overflow policy changes representation,
  never values);
* Hilbert is a bijection whose consecutive codes are always grid
  neighbours (L1 distance exactly 1) -- the locality claim behind the
  ``curve="hilbert"`` default;
* :func:`curve_codes` handles negative keys, picks the fallback
  automatically past 62 interleaved bits, and orders rows identically on
  either path.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import InvalidQueryError
from repro.shard.curves import (
    CURVES,
    MAX_VECTOR_BITS,
    axis_bits,
    curve_codes,
    hilbert_decode,
    hilbert_decode_int,
    hilbert_encode,
    hilbert_encode_int,
    zorder_decode,
    zorder_decode_int,
    zorder_encode,
    zorder_encode_int,
)

ENCODERS = {
    "hilbert": (hilbert_encode, hilbert_decode, hilbert_encode_int, hilbert_decode_int),
    "zorder": (zorder_encode, zorder_decode, zorder_encode_int, zorder_decode_int),
}


@st.composite
def coordinate_batches(draw, max_dimension=4, max_bits=8):
    """A ``(coords, bits)`` pair that fits the vectorized 62-bit budget."""
    dimension = draw(st.integers(min_value=1, max_value=max_dimension))
    bits = draw(
        st.integers(min_value=1, max_value=min(max_bits, MAX_VECTOR_BITS // dimension))
    )
    n = draw(st.integers(min_value=1, max_value=12))
    cell = st.integers(min_value=0, max_value=(1 << bits) - 1)
    rows = draw(
        st.lists(
            st.lists(cell, min_size=dimension, max_size=dimension),
            min_size=n, max_size=n,
        )
    )
    return np.asarray(rows, dtype=np.int64), bits


class TestRoundTrip:
    @pytest.mark.parametrize("curve", CURVES)
    @settings(max_examples=60, deadline=None)
    @given(batch=coordinate_batches())
    def test_vectorized_decode_inverts_encode(self, curve, batch):
        coords, bits = batch
        encode, decode, _, _ = ENCODERS[curve]
        codes = encode(coords, bits)
        assert np.array_equal(decode(codes, coords.shape[1], bits), coords)

    @pytest.mark.parametrize("curve", CURVES)
    @settings(max_examples=60, deadline=None)
    @given(batch=coordinate_batches())
    def test_bigint_decode_inverts_encode(self, curve, batch):
        coords, bits = batch
        _, _, encode_int, decode_int = ENCODERS[curve]
        for row in coords.tolist():
            assert decode_int(encode_int(row, bits), len(row), bits) == row

    @pytest.mark.parametrize("curve", CURVES)
    @settings(max_examples=60, deadline=None)
    @given(batch=coordinate_batches())
    def test_bigint_path_matches_vectorized_path(self, curve, batch):
        # The overflow fallback must change representation, never values.
        coords, bits = batch
        encode, _, encode_int, _ = ENCODERS[curve]
        vectorized = encode(coords, bits).tolist()
        fallback = [encode_int(row, bits) for row in coords.tolist()]
        assert vectorized == fallback


class TestHilbertStructure:
    @pytest.mark.parametrize(
        "dimension,bits", [(1, 4), (2, 1), (2, 3), (3, 2), (4, 2)]
    )
    def test_bijection_over_the_full_cube(self, dimension, bits):
        total = 1 << (dimension * bits)
        codes = np.arange(total, dtype=np.int64)
        coords = hilbert_decode(codes, dimension, bits)
        # Every cell is visited exactly once...
        assert len({tuple(row) for row in coords.tolist()}) == total
        assert int(coords.min()) == 0 and int(coords.max()) == (1 << bits) - 1
        # ...and encoding the walk recovers the indices.
        assert np.array_equal(hilbert_encode(coords, bits), codes)

    @pytest.mark.parametrize(
        "dimension,bits", [(2, 3), (2, 4), (3, 2), (4, 2)]
    )
    def test_consecutive_codes_are_grid_adjacent(self, dimension, bits):
        # The locality property the router default relies on: each curve
        # step moves to an L1-adjacent cell.  (Z-order deliberately lacks
        # this -- its seams are why hilbert is the default.)
        total = 1 << (dimension * bits)
        coords = hilbert_decode(np.arange(total, dtype=np.int64), dimension, bits)
        steps = np.abs(np.diff(coords, axis=0)).sum(axis=1)
        assert np.all(steps == 1)

    def test_zorder_has_seams_hilbert_avoids(self):
        coords = zorder_decode(np.arange(64, dtype=np.int64), 2, 3)
        steps = np.abs(np.diff(coords, axis=0)).sum(axis=1)
        assert int(steps.max()) > 1


class TestCurveCodes:
    @pytest.mark.parametrize("curve", CURVES)
    def test_negative_keys_are_shifted_not_rejected(self, curve):
        keys = np.array([[-5, -7], [-5, -6], [3, 0], [-4, -7]], dtype=np.int64)
        result = curve_codes(keys, curve)
        assert not result.overflowed
        assert result.bits == axis_bits([9, 8])
        # Shifting preserves relative geometry: equal rows, equal codes.
        again = curve_codes(keys + 100, curve)
        assert np.array_equal(result.argsort(), again.argsort())

    def test_zorder_overflow_fallback_orders_like_the_vector_path(self):
        rng = np.random.default_rng(7)
        base = rng.integers(0, 1 << 8, size=(40, 2), dtype=np.int64)
        narrow = curve_codes(base, "zorder")
        assert not narrow.overflowed
        # Scale one row's spread past the 62-bit interleave budget: the
        # fallback engages, but z-order is prefix-stable (leading zero
        # bits never reorder), so the untouched low cells keep exactly
        # the vectorized order.
        wide = np.vstack([base, [[1 << 40, 1 << 40]]]).astype(np.int64)
        fallback = curve_codes(wide, "zorder")
        assert fallback.overflowed
        assert fallback.bits * 2 > MAX_VECTOR_BITS
        order = [index for index in fallback.argsort().tolist() if index < len(base)]
        assert order == narrow.argsort().tolist()
        # The outlier owns the largest code.
        assert int(fallback.argsort()[-1]) == len(base)

    def test_hilbert_overflow_fallback_matches_the_bigint_encoder(self):
        # Hilbert is deliberately NOT prefix-stable (deeper curves visit
        # the low subcube in a rotated orientation), so the fallback
        # contract is agreement with the big-int encoder at the chosen
        # depth -- the same algebra the vectorized path runs in-budget
        # (TestRoundTrip pins that equivalence).
        rng = np.random.default_rng(11)
        wide = np.vstack([
            rng.integers(0, 1 << 8, size=(20, 2), dtype=np.int64),
            [[1 << 40, 3], [5, 1 << 40]],
        ]).astype(np.int64)
        fallback = curve_codes(wide, "hilbert")
        assert fallback.overflowed
        shifted = (wide - fallback.mins).tolist()
        assert fallback.codes == [
            hilbert_encode_int(row, fallback.bits) for row in shifted
        ]

    def test_dtype_overflow_boundary_is_exact(self):
        # 2 axes x 31 bits = 62 interleaved bits: the last vectorized
        # configuration.  One more bit per axis must fall back.
        top = (1 << 31) - 1
        keys = np.array([[0, 0], [top, top]], dtype=np.int64)
        at_budget = curve_codes(keys, "zorder")
        assert not at_budget.overflowed and at_budget.bits == 31
        over = np.array([[0, 0], [1 << 31, 1 << 31]], dtype=np.int64)
        past_budget = curve_codes(over, "zorder")
        assert past_budget.overflowed and past_budget.bits == 32

    def test_stable_argsort_breaks_ties_by_row(self):
        keys = np.array([[2, 2], [1, 1], [2, 2], [1, 1]], dtype=np.int64)
        order = curve_codes(keys, "hilbert").argsort().tolist()
        assert order.index(1) < order.index(3)  # equal codes keep row order
        assert order.index(0) < order.index(2)

    def test_invalid_inputs_are_invalid_queries(self):
        with pytest.raises(InvalidQueryError):
            curve_codes(np.zeros((0, 2), dtype=np.int64))
        with pytest.raises(InvalidQueryError):
            curve_codes(np.zeros(4, dtype=np.int64))
        with pytest.raises(InvalidQueryError):
            curve_codes(np.zeros((2, 2), dtype=np.int64), curve="peano")
        with pytest.raises(InvalidQueryError):
            zorder_encode(np.array([[-1, 0]], dtype=np.int64), 4)
        with pytest.raises(InvalidQueryError):
            hilbert_encode(np.zeros((1, 2), dtype=np.int64), 32)
