"""The telemetry hub: sampler, profile store/sink, slow log, wiring.

Unit coverage uses duck-typed fake results (the same contract the
recorders use), so the subpackage stays freestanding; the integration
classes at the bottom drive real engine and session queries through the
pipeline choke point with an isolated hub installed.
"""

import json
import os
import types

import pytest

from repro.obs.telemetry import (
    ProfileSink,
    ProfileStore,
    RateSampler,
    SlowQueryLog,
    Telemetry,
    bind_trace_id,
    build_profile,
    current_trace_id,
    new_trace_id,
    synthesize_span_tree,
)

from conftest import random_collection

R = 4.0


def fake_result(
    seconds=0.001,
    exact=True,
    notes=None,
    phases=None,
    algorithm="bigrid",
):
    """A duck-typed result (same contract observe_query relies on)."""
    return types.SimpleNamespace(
        algorithm=algorithm,
        phases=dict(phases or {"grid_mapping": seconds / 2, "verification": seconds / 2}),
        counters={"candidates_total": 10, "candidates_settled": 7},
        notes=dict(notes or {}),
        exact=exact,
        total_time=seconds,
        memory_bytes=4096,
    )


def profile_for(result, **overrides):
    kwargs = dict(
        engine="serial", trace_id="trace-x", ts=100.0, r=R, k=1,
        ceil_r=0, n=30, sampled=False,
    )
    kwargs.update(overrides)
    return build_profile(result, **kwargs)


class TestRateSampler:
    def test_rate_must_lie_in_unit_interval(self):
        for bad in (-0.1, 1.5, float("nan")):
            with pytest.raises(ValueError):
                RateSampler(bad)
        sampler = RateSampler(0.5)
        with pytest.raises(ValueError):
            sampler.set_rate(2.0)
        assert sampler.rate == 0.5  # a rejected set_rate leaves the rate alone

    def test_rate_zero_never_samples(self):
        sampler = RateSampler(0.0)
        assert not any(sampler.should_sample() for _ in range(100))
        assert sampler.snapshot()["sampled"] == 0
        assert sampler.snapshot()["decisions"] == 100

    def test_rate_one_always_samples(self):
        sampler = RateSampler(1.0)
        assert all(sampler.should_sample() for _ in range(50))
        assert sampler.snapshot() == {"rate": 1.0, "decisions": 50, "sampled": 50}

    def test_systematic_sampling_is_deterministic(self):
        # Primed accumulator: the first decision fires, then exactly
        # every 1/rate decisions after it -- no RNG, no burst variance.
        sampler = RateSampler(0.25)
        decisions = [sampler.should_sample() for _ in range(17)]
        fired = [index for index, hit in enumerate(decisions) if hit]
        assert fired == [0, 3, 7, 11, 15]

    def test_long_run_fraction_equals_the_rate(self):
        sampler = RateSampler(0.01)
        hits = sum(sampler.should_sample() for _ in range(10_000))
        assert hits == pytest.approx(100, abs=1)

    def test_set_rate_reprimes_the_accumulator(self):
        sampler = RateSampler(0.5)
        sampler.should_sample()
        sampler.set_rate(0.1)
        assert sampler.should_sample()  # first decision after reconfig fires


class TestProfileStore:
    def test_ring_keeps_only_the_newest(self):
        store = ProfileStore(capacity=3)
        for index in range(5):
            store.record({"trace_id": f"t-{index}", "sampled": False, "exact": True})
        retained = store.snapshot()
        assert [p["trace_id"] for p in retained] == ["t-2", "t-3", "t-4"]
        assert len(store) == 3

    def test_totals_outlive_the_ring(self):
        store = ProfileStore(capacity=2)
        store.record({"sampled": True, "exact": True})
        store.record({"sampled": False, "exact": False})
        store.record({"sampled": False, "exact": True})
        assert store.totals() == {
            "recorded": 3, "sampled": 1, "degraded": 1, "retained": 2,
        }
        store.clear()
        assert len(store) == 0
        assert store.totals()["recorded"] == 3  # tallies persist

    def test_capacity_must_be_positive(self):
        with pytest.raises(ValueError):
            ProfileStore(capacity=0)


class TestProfileSink:
    def test_writes_one_json_object_per_line(self, tmp_path):
        path = tmp_path / "profiles.jsonl"
        with ProfileSink(str(path)) as sink:
            sink.write(profile_for(fake_result()))
            sink.write(profile_for(fake_result(), trace_id="trace-y"))
        lines = path.read_text().splitlines()
        assert len(lines) == 2
        decoded = [json.loads(line) for line in lines]
        assert [p["trace_id"] for p in decoded] == ["trace-x", "trace-y"]
        assert sink.written == 2 and sink.errors == 0

    def test_rotation_shifts_generations(self, tmp_path):
        path = tmp_path / "profiles.jsonl"
        sink = ProfileSink(str(path), max_bytes=600, backups=2)
        for index in range(12):
            sink.write(profile_for(fake_result(), trace_id=f"trace-{index:04d}"))
        sink.close()
        assert sink.rotations >= 2
        assert os.path.exists(f"{path}.1") and os.path.exists(f"{path}.2")
        assert not os.path.exists(f"{path}.3")  # oldest generation dropped
        # Every retained line is still valid JSON, and generation order
        # is newest-first: path holds the most recent trace ids.
        survivors = []
        for candidate in (f"{path}.2", f"{path}.1", str(path)):
            for line in open(candidate, encoding="utf-8"):
                survivors.append(json.loads(line)["trace_id"])
        assert survivors == sorted(survivors)
        assert survivors[-1] == "trace-0011"

    def test_backups_zero_truncates_instead_of_keeping_generations(self, tmp_path):
        path = tmp_path / "profiles.jsonl"
        sink = ProfileSink(str(path), max_bytes=600, backups=0)
        for index in range(12):
            sink.write(profile_for(fake_result(), trace_id=f"trace-{index:04d}"))
        sink.close()
        assert sink.rotations >= 1
        assert not os.path.exists(f"{path}.1")
        assert path.exists()

    def test_write_failures_disable_the_sink_not_the_query(self, tmp_path):
        # A directory at the sink path makes open() raise OSError.
        path = tmp_path / "is_a_directory"
        path.mkdir()
        sink = ProfileSink(str(path))
        sink.write(profile_for(fake_result()))  # must not raise
        sink.write(profile_for(fake_result()))
        assert sink.errors == 2
        assert sink.written == 0

    def test_parameter_validation(self, tmp_path):
        with pytest.raises(ValueError):
            ProfileSink(str(tmp_path / "p.jsonl"), max_bytes=0)
        with pytest.raises(ValueError):
            ProfileSink(str(tmp_path / "p.jsonl"), backups=-1)


class TestBuildProfile:
    def test_schema_is_complete_and_json_serializable(self):
        profile = profile_for(fake_result(notes={"verification_path": "numpy-fused"}))
        assert set(profile) == {
            "trace_id", "ts", "engine", "algorithm", "r", "k", "ceil_r", "n",
            "seconds", "exact", "sampled", "phases", "counters", "notes",
            "memory_bytes", "shards",
        }
        assert profile["notes"]["verification_path"] == "numpy-fused"
        json.dumps(profile)

    def test_copies_do_not_alias_the_result(self):
        result = fake_result()
        profile = profile_for(result)
        profile["phases"]["verification"] = 999.0
        profile["notes"]["x"] = "y"
        assert result.phases["verification"] != 999.0
        assert "x" not in result.notes


class TestSlowQueryLog:
    def test_classification_covers_the_cause_matrix(self):
        log = SlowQueryLog(threshold_ms=100.0)
        fast_exact = profile_for(fake_result(seconds=0.001))
        slow_exact = profile_for(fake_result(seconds=0.5))
        fast_degraded = profile_for(fake_result(seconds=0.001, exact=False))
        slow_degraded = profile_for(
            fake_result(seconds=0.5, notes={"degraded_deadline": "verification"})
        )
        assert log.classify(fast_exact) is None
        assert log.classify(slow_exact) == "slow"
        assert log.classify(fast_degraded) == "degraded"
        assert log.classify(slow_degraded) == "slow+degraded"

    def test_degraded_note_alone_is_enough(self):
        log = SlowQueryLog(threshold_ms=100.0)
        profile = profile_for(
            fake_result(seconds=0.001, notes={"degraded_backend": "plain"})
        )
        assert log.classify(profile) == "degraded"

    def test_consider_captures_with_a_synthesized_tree(self):
        log = SlowQueryLog(threshold_ms=0.0)
        profile = profile_for(fake_result(seconds=0.4))
        assert log.consider(profile)
        (entry,) = log.snapshot()
        assert entry["cause"] == "slow"
        tree = entry["span_tree"]
        assert tree["attributes"]["synthesized"] is True
        assert {child["name"] for child in tree["children"]} == set(profile["phases"])

    def test_consider_prefers_a_real_tree_when_given(self):
        log = SlowQueryLog(threshold_ms=0.0)
        real_tree = {"name": "query", "children": [], "attributes": {}}
        assert log.consider(profile_for(fake_result()), span_tree=real_tree)
        (entry,) = log.snapshot()
        assert entry["span_tree"] is real_tree

    def test_unremarkable_queries_are_not_captured(self):
        log = SlowQueryLog(threshold_ms=100.0)
        assert not log.consider(profile_for(fake_result(seconds=0.001)))
        assert log.captured == 0 and len(log) == 0

    def test_ring_and_lifetime_counter(self):
        log = SlowQueryLog(capacity=2, threshold_ms=0.0)
        for index in range(4):
            log.consider(profile_for(fake_result(), trace_id=f"t-{index}"))
        assert log.captured == 4
        assert [e["trace_id"] for e in log.snapshot()] == ["t-2", "t-3"]
        log.clear()
        assert len(log) == 0 and log.captured == 4

    def test_synthesized_tree_carries_correlation_fields(self):
        profile = profile_for(fake_result(seconds=0.2), engine="session")
        tree = synthesize_span_tree(profile)
        assert tree["name"] == "query"
        assert tree["duration_seconds"] == 0.2
        assert tree["attributes"]["engine"] == "session"
        assert tree["attributes"]["trace_id"] == "trace-x"


class TestTraceIdPropagation:
    def test_bind_and_read_back(self):
        assert current_trace_id() is None
        with bind_trace_id("trace-abc") as bound:
            assert bound == "trace-abc"
            assert current_trace_id() == "trace-abc"
            with bind_trace_id("trace-inner"):
                assert current_trace_id() == "trace-inner"
            assert current_trace_id() == "trace-abc"
        assert current_trace_id() is None

    def test_new_trace_ids_are_unique_and_prefixed(self):
        first, second = new_trace_id(), new_trace_id()
        assert first != second
        assert first.startswith("trace-") and second.startswith("trace-")


class TestTelemetryHub:
    def test_observe_result_records_profile_and_metrics(self, fresh_registry):
        hub = Telemetry(clock=lambda: 123.0)
        profile = hub.observe_result(fake_result(), engine="serial", r=R)
        assert profile is not None
        assert profile["ts"] == 123.0
        assert hub.profiles.totals()["recorded"] == 1
        counter = fresh_registry.get("repro_query_profiles_total")
        assert counter.value(engine="serial", sampled="false") == 1

    def test_disabled_hub_records_nothing(self, fresh_registry):
        hub = Telemetry(enabled=False)
        assert hub.observe_result(fake_result(), engine="serial", r=R) is None
        assert hub.profiles.totals()["recorded"] == 0
        assert not hub.should_sample()

    def test_trace_id_comes_from_the_bound_context(self):
        hub = Telemetry()
        with bind_trace_id("trace-bound"):
            profile = hub.observe_result(fake_result(), engine="serial", r=R)
        assert profile["trace_id"] == "trace-bound"
        # An explicit id wins over the context.
        with bind_trace_id("trace-bound"):
            profile = hub.observe_result(
                fake_result(), engine="serial", r=R, trace_id="trace-explicit"
            )
        assert profile["trace_id"] == "trace-explicit"
        # With neither, the hub mints one.
        profile = hub.observe_result(fake_result(), engine="serial", r=R)
        assert profile["trace_id"].startswith("trace-")

    def test_slow_queries_feed_the_log_and_the_cause_counter(self, fresh_registry):
        hub = Telemetry(slow_ms=0.0)
        hub.observe_result(fake_result(), engine="serial", r=R)
        hub.observe_result(fake_result(exact=False), engine="serial", r=R)
        assert hub.slowlog.captured == 2
        counter = fresh_registry.get("repro_slow_queries_total")
        assert counter.value(cause="slow") == 1
        assert counter.value(cause="slow+degraded") == 1

    def test_span_root_lands_in_the_trace_ring_with_the_id(self, fresh_registry):
        from repro.obs.trace import Tracer

        hub = Telemetry()
        tracer = Tracer()
        with tracer.span("query", engine="serial") as root:
            pass
        profile = hub.observe_result(
            fake_result(), engine="serial", r=R, sampled=True, span_root=root
        )
        (trace,) = hub.traces_snapshot()
        assert trace["trace_id"] == profile["trace_id"]
        assert trace["root"]["attributes"]["trace_id"] == profile["trace_id"]
        assert root.attributes["trace_id"] == profile["trace_id"]

    def test_sink_receives_every_profile(self, tmp_path, fresh_registry):
        path = tmp_path / "profiles.jsonl"
        hub = Telemetry(sink=ProfileSink(str(path)))
        hub.observe_result(fake_result(), engine="serial", r=R)
        hub.observe_result(fake_result(), engine="parallel", r=R)
        hub.reconfigure(sink=None)  # detach closes the handle
        assert len(path.read_text().splitlines()) == 2

    def test_reconfigure_sentinel_semantics(self, tmp_path):
        sink = ProfileSink(str(tmp_path / "p.jsonl"))
        hub = Telemetry(sink=sink)
        hub.reconfigure(sample_rate=0.5)  # sink omitted: untouched
        assert hub.sink is sink
        assert hub.sampler.rate == 0.5
        hub.reconfigure(sink=None)  # explicit None: detached
        assert hub.sink is None
        with pytest.raises(ValueError):
            hub.reconfigure(slow_ms=-1.0)
        hub.reconfigure(slow_ms=50.0)
        assert hub.slowlog.threshold_ms == 50.0

    def test_snapshot_shape(self, tmp_path, fresh_registry):
        hub = Telemetry(sample_rate=1.0, sink=ProfileSink(str(tmp_path / "p.jsonl")))
        hub.should_sample()
        hub.observe_result(fake_result(), engine="serial", r=R, sampled=True)
        snapshot = hub.snapshot()
        assert snapshot["enabled"] is True
        assert snapshot["sampler"] == {"rate": 1.0, "decisions": 1, "sampled": 1}
        assert snapshot["profiles"]["recorded"] == 1
        assert snapshot["slowlog"]["threshold_ms"] == 250.0
        assert snapshot["sink"]["attached"] is True
        assert snapshot["sink"]["written"] == 1
        hub.reconfigure(sink=None)
        assert hub.snapshot()["sink"] == {"attached": False}


@pytest.fixture
def collection():
    return random_collection(n=30, mean_points=8, seed=21)


class TestPipelineIntegration:
    """The choke point: engine queries flow into the installed hub."""

    def test_engine_query_emits_an_unsampled_profile(
        self, collection, fresh_registry, fresh_telemetry
    ):
        from repro.core.engine import MIOEngine

        result = MIOEngine(collection).query(R)
        (profile,) = fresh_telemetry.profiles.snapshot()
        assert profile["engine"] == "serial"
        assert profile["algorithm"] == result.algorithm
        assert profile["sampled"] is False
        assert profile["seconds"] == result.total_time
        assert profile["n"] == collection.n
        assert profile["phases"] == result.phases
        assert fresh_telemetry.traces_snapshot() == []

    def test_sample_rate_one_attaches_a_span_tree(
        self, collection, fresh_registry, fresh_telemetry
    ):
        from repro.core.engine import MIOEngine

        fresh_telemetry.reconfigure(sample_rate=1.0)
        untraced = MIOEngine(collection).query(R)
        (profile,) = fresh_telemetry.profiles.snapshot()
        assert profile["sampled"] is True
        (trace,) = fresh_telemetry.traces_snapshot()
        assert trace["trace_id"] == profile["trace_id"]
        children = {child["name"] for child in trace["root"]["children"]}
        assert "verification" in children and "grid_mapping" in children
        counter = fresh_registry.get("repro_query_profiles_total")
        assert counter.value(engine="serial", sampled="true") == 1
        # Sampling is non-intrusive: the answer matches an unsampled run.
        fresh_telemetry.reconfigure(sample_rate=0.0)
        resampled = MIOEngine(collection).query(R)
        assert (untraced.winner, untraced.score) == (resampled.winner, resampled.score)

    def test_caller_supplied_tracer_counts_as_sampled(
        self, collection, fresh_registry, fresh_telemetry
    ):
        from repro.core.engine import MIOEngine
        from repro.obs.trace import Tracer

        MIOEngine(collection, tracer=Tracer()).query(R)
        (profile,) = fresh_telemetry.profiles.snapshot()
        assert profile["sampled"] is True
        assert len(fresh_telemetry.traces_snapshot()) == 1
        # The head sampler was never consulted (the caller brought the
        # tracer), so its decision tally stays untouched.
        assert fresh_telemetry.sampler.snapshot()["decisions"] == 0

    def test_disabled_hub_leaves_queries_untouched(
        self, collection, fresh_registry, fresh_telemetry
    ):
        from repro.core.engine import MIOEngine

        fresh_telemetry.reconfigure(enabled=False, sample_rate=1.0)
        result = MIOEngine(collection).query(R)
        assert result.exact
        assert fresh_telemetry.profiles.totals()["recorded"] == 0
        assert fresh_telemetry.traces_snapshot() == []

    def test_parallel_engine_reports_through_the_same_choke_point(
        self, collection, fresh_registry, fresh_telemetry
    ):
        from repro.parallel.engine import ParallelMIOEngine

        ParallelMIOEngine(collection, cores=2).query(R)
        (profile,) = fresh_telemetry.profiles.snapshot()
        assert profile["engine"] == "parallel"


class TestSessionIntegration:
    def test_query_ids_become_profile_trace_ids(
        self, collection, fresh_registry, fresh_telemetry
    ):
        from repro.session import QuerySession

        QuerySession(collection).query_many([4.9, 4.1, {"r": 4.5, "k": 2}])
        profiles = fresh_telemetry.profiles.snapshot()
        assert len(profiles) == 3
        ids = [profile["trace_id"] for profile in profiles]
        assert all(trace_id.startswith("query-") for trace_id in ids)
        assert len(set(ids)) == 3

    def test_timeout_results_are_captured_as_degraded(
        self, collection, fresh_registry, fresh_telemetry
    ):
        from repro.session import QuerySession

        session = QuerySession(collection)
        (result,) = session.query_many([{"r": 4.5, "timeout_ms": 0.0001}])
        assert not result.exact
        profiles = fresh_telemetry.profiles.snapshot()
        degraded = [p for p in profiles if not p["exact"]]
        assert degraded, "the expired query must still produce a profile"
        entry = degraded[-1]
        assert any(key.startswith("degraded_") for key in entry["notes"])
        # Always-sample-slow: the degraded query is in the slow log with
        # a synthesized tree (it was never head-sampled).
        captured = fresh_telemetry.slowlog.snapshot()
        assert any("degraded" in e["cause"] for e in captured)
