"""Unit tests for the large-grid (Definition 3)."""

import numpy as np

from repro.bitset import EWAHBitset
from repro.grid.large_grid import LargeGrid


def make_grid():
    return LargeGrid(width=2.0, dimension=2, bitset_cls=EWAHBitset)


class TestPostings:
    def test_posting_lists_accumulate_point_indices(self):
        grid = make_grid()
        grid.add_point(0, (0, 0), 3)
        grid.add_point(0, (0, 0), 7)
        grid.add_point(1, (0, 0), 0)
        cell = grid.cell((0, 0))
        assert cell.postings[0] == [3, 7]
        assert cell.postings[1] == [0]
        assert list(cell.bitset.iter_set_bits()) == [0, 1]

    def test_posting_points_cache(self):
        grid = make_grid()
        grid.add_point(0, (0, 0), 1)
        points = np.array([[0.0, 0.0], [1.0, 1.0], [2.0, 2.0]])
        cell = grid.cell((0, 0))
        fetched = cell.posting_points(0, points)
        assert fetched.tolist() == [[1.0, 1.0]]
        assert cell.posting_points(0, points) is fetched  # cached


class TestAdjacentUnion:
    def test_union_covers_cell_and_neighbors(self):
        grid = make_grid()
        grid.add_point(0, (0, 0), 0)
        grid.add_point(1, (1, 0), 0)   # adjacent
        grid.add_point(2, (5, 5), 0)   # far away
        union = grid.adjacent_union((0, 0))
        assert list(union.iter_set_bits()) == [0, 1]

    def test_union_is_memoized(self):
        grid = make_grid()
        grid.add_point(0, (0, 0), 0)
        first = grid.adjacent_union((0, 0))
        assert grid.adj_computed == 1
        second = grid.adjacent_union((0, 0))
        assert second is first
        assert grid.adj_computed == 1

    def test_union_includes_diagonal_neighbors(self):
        grid = make_grid()
        grid.add_point(0, (0, 0), 0)
        grid.add_point(1, (1, 1), 0)
        assert grid.adjacent_union((0, 0)).get(1)

    def test_union_excludes_two_cells_away(self):
        grid = make_grid()
        grid.add_point(0, (0, 0), 0)
        grid.add_point(1, (2, 0), 0)
        assert not grid.adjacent_union((0, 0)).get(1)


class TestMemory:
    def test_memory_counts_postings_and_bitsets(self):
        grid = make_grid()
        assert grid.memory_bytes() == 0
        grid.add_point(0, (0, 0), 0)
        base = grid.memory_bytes()
        grid.add_point(0, (0, 0), 1)
        assert grid.memory_bytes() == base + 8  # one more posting entry

    def test_adjacent_union_adds_memory(self):
        grid = make_grid()
        grid.add_point(0, (0, 0), 0)
        before = grid.memory_bytes()
        grid.adjacent_union((0, 0))
        assert grid.memory_bytes() > before
