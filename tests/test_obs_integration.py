"""Observability wired through the engines, session, harness, and CLI.

The load-bearing guarantees:

* tracing is non-intrusive — a traced query returns the *same*
  ``MIOResult`` (answer, phases structure, counters) as an untraced one,
  on every backend and engine;
* the span tree is the phase breakdown — per-phase durations read off the
  trace sum to ``MIOResult.total_time`` exactly (the engines derive
  ``phases`` from the trace when one is attached);
* the registry sees every subsystem: engines, the three cache tiers,
  deadlines, fallbacks, mutations.
"""

import json

import pytest

from repro.bench.harness import run_algorithm
from repro.cli import main
from repro.core.engine import MIOEngine
from repro.obs import metrics as obs_metrics
from repro.obs.export import validate_prometheus_text
from repro.obs.trace import PHASE_SPAN_NAMES, Tracer, phase_durations
from repro.parallel.engine import ParallelMIOEngine
from repro.session import QuerySession

from conftest import random_collection

BACKENDS = ("ewah", "plain", "roaring")
R = 4.0


def answer(result):
    """The caller-visible content of a result, excluding timings."""
    return (
        result.algorithm,
        result.winner,
        result.score,
        result.topk,
        result.exact,
        sorted(result.phases),
        result.counters,
        result.memory_bytes,
    )


@pytest.fixture
def collection():
    return random_collection(n=30, mean_points=8, seed=21)


class TestTracingIsNonIntrusive:
    @pytest.mark.parametrize("backend", BACKENDS)
    def test_serial_traced_equals_untraced(self, collection, backend, fresh_registry):
        untraced = MIOEngine(collection, backend=backend).query(R)
        tracer = Tracer()
        traced = MIOEngine(collection, backend=backend, tracer=tracer).query(R)
        assert answer(traced) == answer(untraced)

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_parallel_traced_equals_untraced(self, collection, backend, fresh_registry):
        untraced = ParallelMIOEngine(collection, cores=3, backend=backend).query(R)
        tracer = Tracer()
        traced = ParallelMIOEngine(
            collection, cores=3, backend=backend, tracer=tracer
        ).query(R)
        assert answer(traced) == answer(untraced)

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_session_traced_equals_untraced(self, collection, backend, fresh_registry):
        workload = [4.9, 4.1, {"r": 4.5, "k": 3}]
        untraced = QuerySession(collection, backend=backend).query_many(workload)
        traced = QuerySession(
            collection, backend=backend, tracer=Tracer()
        ).query_many(workload)
        assert [answer(t) for t in traced] == [answer(u) for u in untraced]

    def test_topk_traced_equals_untraced(self, collection, fresh_registry):
        untraced = MIOEngine(collection).query_topk(R, 4)
        traced = MIOEngine(collection, tracer=Tracer()).query_topk(R, 4)
        assert answer(traced) == answer(untraced)


class TestTraceIsThePhaseBreakdown:
    def test_serial_phases_are_derived_from_the_trace(self, collection, fresh_registry):
        tracer = Tracer()
        result = MIOEngine(collection, tracer=tracer).query(R)
        root = tracer.root
        assert root.name == "query"
        assert result.phases == phase_durations(root)
        assert sum(result.phases.values()) == pytest.approx(
            result.total_time, rel=0.01
        )
        assert all(name in PHASE_SPAN_NAMES for name in result.phases)

    def test_parallel_phases_match_the_trace_makespans(self, collection, fresh_registry):
        tracer = Tracer()
        result = ParallelMIOEngine(
            collection, cores=4, tracer=tracer, mode="simulated"
        ).query(R)
        assert result.phases == phase_durations(tracer.root)
        assert sum(result.phases.values()) == pytest.approx(
            result.total_time, rel=0.01
        )
        # The root span duration is the simulated query time.
        assert tracer.root.duration == pytest.approx(result.total_time)

    def test_label_reuse_appears_as_label_io_spans(self, collection, fresh_registry):
        from repro.core.labels import LabelStore

        store = LabelStore()
        tracer = Tracer()
        engine = MIOEngine(collection, label_store=store, tracer=tracer)
        engine.query(4.9)  # labeling run: writes labels
        engine.query(4.1)  # with-label run: reads them
        labeling_root, with_label_root = tracer.roots
        assert "label_output" in phase_durations(labeling_root)
        assert "label_input" in phase_durations(with_label_root)

    def test_batch_span_tree_shape(self, collection, fresh_registry):
        tracer = Tracer()
        session = QuerySession(collection, cores=2, tracer=tracer)
        session.query_many([4.9, 4.1, 4.3])
        (batch,) = [root for root in tracer.roots if root.name == "batch"]
        assert batch.attributes["size"] == 3
        assert [child.name for child in batch.children] == ["request"] * 3
        batch_id = batch.attributes["batch_id"]
        for request in batch.children:
            assert request.attributes["batch_id"] == batch_id
            (query,) = request.children
            assert query.name == "query"

    def test_harness_traces_baselines_from_reported_phases(
        self, collection, fresh_registry
    ):
        tracer = Tracer()
        record = run_algorithm("sg", collection, R, tracer=tracer)
        root = tracer.root
        assert root.name == "algorithm"
        assert root.attributes["algorithm"] == "sg"
        assert root.duration == pytest.approx(record.seconds)
        assert {child.name for child in root.children} == set(record.phases)

    def test_bench_record_to_record_carries_phases(self, collection, fresh_registry):
        record = run_algorithm("bigrid", collection, R, dataset="test")
        payload = record.to_record()
        assert payload["algorithm"] == "bigrid"
        assert payload["winner"] == record.winner
        assert set(payload["phases"]) == set(record.phases)
        assert payload["memory_bytes"] > 0
        json.dumps(payload)  # must be JSON-serializable as-is


class TestMemoryReporting:
    def test_serial_reports_index_memory_like_its_peers(self, collection):
        serial = MIOEngine(collection).query(R)
        parallel = ParallelMIOEngine(collection, cores=2, mode="simulated").query(R)
        baseline = run_algorithm("sg", collection, R)
        assert serial.memory_bytes > 0
        assert parallel.memory_bytes > 0
        assert baseline.memory_bytes > 0
        # Serial and parallel build the same BIGrid for the same query.
        assert serial.memory_bytes == parallel.memory_bytes


class TestRegistryFeeds:
    def test_engines_feed_queries_and_phase_histograms(self, collection, fresh_registry):
        MIOEngine(collection).query(R)
        ParallelMIOEngine(collection, cores=2, mode="simulated").query(R)
        queries = fresh_registry.get("repro_queries_total")
        assert queries.value(engine="serial", algorithm="bigrid") == 1
        assert queries.value(engine="parallel", algorithm="bigrid-parallel") == 1
        latency = fresh_registry.get("repro_query_seconds")
        assert latency.snapshot(engine="serial")["count"] == 1
        assert latency.snapshot(engine="parallel")["count"] == 1
        assert fresh_registry.get("repro_phase_seconds") is not None

    def test_all_three_cache_tiers_report(self, collection, fresh_registry):
        session = QuerySession(collection)
        session.query_many([4.9, 4.1, 4.1])
        requests = fresh_registry.get("repro_cache_requests_total")
        assert requests.value(tier="labels", outcome="miss") >= 1
        assert requests.value(tier="labels", outcome="hit") >= 1
        assert requests.value(tier="grid_keys", outcome="miss") >= 1
        assert requests.value(tier="grid_keys", outcome="hit") >= 1
        # Same exact r repeated: the lower-bound tier hits too.
        assert requests.value(tier="lower_bounds", outcome="hit") >= 1
        assert requests.value(tier="lower_bounds", outcome="miss") >= 1

    def test_invalidations_report_per_tier(self, collection, fresh_registry):
        session = QuerySession(collection)
        session.query(R)
        session.invalidate()
        invalidations = fresh_registry.get("repro_cache_invalidations_total")
        for tier in ("labels", "grid_keys", "lower_bounds"):
            assert invalidations.value(tier=tier) == 1

    def test_deadline_expiry_and_mutations_report(self, fresh_registry):
        import numpy as np

        from repro.dynamic import DynamicMIO
        from repro.errors import QueryTimeout
        from repro.resilience import Deadline, ManualClock

        deadline = Deadline(1.0, clock=ManualClock(step=2.0))
        with pytest.raises(QueryTimeout):
            deadline.check("verification")
        expirations = fresh_registry.get("repro_deadline_expirations_total")
        assert expirations.value(phase="verification") == 1

        dynamic = DynamicMIO()
        handle = dynamic.add_object(np.array([[0.0, 0.0]]))
        dynamic.remove_object(handle)
        mutations = fresh_registry.get("repro_mutations_total")
        assert mutations.value(op="add") == 1
        assert mutations.value(op="remove") == 1

    def test_serial_fallback_reports_and_traces(self, collection, fresh_registry):
        from repro.faults import FaultInjector, FaultSpec, injected

        tracer = Tracer()
        engine = ParallelMIOEngine(
            collection, cores=2, retries=0, tracer=tracer, mode="simulated"
        )
        with injected(FaultInjector([FaultSpec("partition_task")])):
            result = engine.query(R)
        assert result.counters.get("serial_fallback") == 1
        assert fresh_registry.get("repro_serial_fallbacks_total").value() == 1
        assert fresh_registry.get("repro_faults_injected_total").value(
            point="partition_task", kind="fail"
        ) >= 1
        root = tracer.roots[0]
        assert root.attributes.get("serial_fallback") is True
        # The nested serial query span holds the real phase breakdown.
        nested = [span for span in root.walk() if span is not root and span.name == "query"]
        assert len(nested) == 1
        assert result.phases == phase_durations(nested[0])


class TestCliSurfaces:
    @pytest.fixture
    def dataset(self, tmp_path, collection):
        from repro.datasets import save_collection

        path = tmp_path / "data.npz"
        save_collection(str(path), collection)
        return str(path)

    def test_query_trace_prints_span_tree(self, dataset, capsys, fresh_registry):
        assert main(["query", dataset, "-r", str(R), "--trace"]) == 0
        out = capsys.readouterr().out
        assert "trace:" in out
        assert "query" in out and "grid_mapping" in out and "verification" in out

    def test_query_metrics_out_prometheus(self, dataset, tmp_path, fresh_registry):
        metrics_path = tmp_path / "metrics.prom"
        assert main(["query", dataset, "-r", str(R),
                     "--metrics-out", str(metrics_path)]) == 0
        text = metrics_path.read_text()
        validate_prometheus_text(text)
        assert "repro_queries_total" in text

    def test_query_metrics_out_json(self, dataset, tmp_path, fresh_registry):
        metrics_path = tmp_path / "metrics.json"
        assert main(["query", dataset, "-r", str(R),
                     "--metrics-out", str(metrics_path)]) == 0
        document = json.loads(metrics_path.read_text())
        assert "repro_queries_total" in document

    def test_explain_renders_tree_and_funnel(self, dataset, capsys, fresh_registry):
        assert main(["explain", dataset, "-r", str(R)]) == 0
        out = capsys.readouterr().out
        assert "span tree:" in out
        assert "pruning funnel:" in out
        assert "objects" in out and "candidates" in out and "settled" in out

    def test_explain_parallel_shows_cores(self, dataset, capsys, fresh_registry):
        assert main(["explain", dataset, "-r", str(R), "--cores", "3"]) == 0
        out = capsys.readouterr().out
        assert "engine=parallel" in out

    @pytest.fixture
    def workload(self, tmp_path, dataset):
        path = tmp_path / "workload.json"
        path.write_text(json.dumps(
            {"dataset": dataset, "queries": [4.9, 4.1, {"r": 4.5, "k": 2}]}
        ))
        return str(path)

    def test_batch_stats_reports_all_cache_tiers(self, workload, capsys, fresh_registry):
        assert main(["batch", workload, "--stats"]) == 0
        payload = json.loads(capsys.readouterr().out)
        series = payload["metrics"]["repro_cache_requests_total"]["series"]
        for tier in ("labels", "grid_keys", "lower_bounds"):
            assert f'outcome="hit",tier="{tier}"' in series
            assert f'outcome="miss",tier="{tier}"' in series

    def test_batch_trace_out_and_log_json(self, workload, tmp_path, capsys,
                                          fresh_registry):
        trace_path = tmp_path / "trace.json"
        log_path = tmp_path / "log.jsonl"
        assert main(["batch", workload, "--trace-out", str(trace_path),
                     "--log-json", str(log_path)]) == 0
        capsys.readouterr()
        trees = json.loads(trace_path.read_text())
        (batch,) = [tree for tree in trees if tree["name"] == "batch"]
        assert len(batch["children"]) == 3

        records = [json.loads(line) for line in log_path.read_text().splitlines()]
        query_records = [rec for rec in records if rec["event"] == "query"]
        batch_records = [rec for rec in records if rec["event"] == "batch"]
        assert len(query_records) == 3
        assert len(batch_records) == 1
        batch_id = batch_records[0]["batch_id"]
        assert all(rec["batch_id"] == batch_id for rec in query_records)
        assert len({rec["query_id"] for rec in query_records}) == 3
        # Correlation ids also appear in the trace for cross-referencing.
        assert batch["attributes"]["batch_id"] == batch_id
