"""Unit tests for upper-bounding and pruning (Algorithm 5 / Lemma 2)."""

from repro.core.labels import GRID_BIT, UPPER_BIT, PointLabels
from repro.core.lower_bound import compute_lower_bounds
from repro.core.query import PhaseStats
from repro.core.upper_bound import compute_upper_bounds
from repro.grid.bigrid import BIGrid

from conftest import oracle_scores, random_collection


class TestSoundness:
    def test_upper_bound_never_below_score(self):
        collection = random_collection(n=30, mean_points=6, seed=31)
        for r in (1.0, 2.5, 5.0):
            bigrid = BIGrid.build(collection, r=r)
            upper = compute_upper_bounds(bigrid, tau_max_low=0)
            truth = oracle_scores(collection, r)
            for oid in range(collection.n):
                assert upper.values[oid] >= truth[oid]

    def test_bounds_sandwich_scores(self):
        collection = random_collection(n=25, mean_points=6, seed=32)
        r = 2.0
        bigrid = BIGrid.build(collection, r=r)
        lower = compute_lower_bounds(bigrid)
        upper = compute_upper_bounds(bigrid, tau_max_low=0)
        truth = oracle_scores(collection, r)
        for oid in range(collection.n):
            assert lower.values[oid] <= truth[oid] <= upper.values[oid]


class TestPruning:
    def test_true_winner_survives_pruning(self):
        collection = random_collection(n=40, mean_points=6, seed=33)
        r = 2.0
        bigrid = BIGrid.build(collection, r=r)
        lower = compute_lower_bounds(bigrid)
        upper = compute_upper_bounds(bigrid, tau_max_low=lower.tau_max)
        truth = oracle_scores(collection, r)
        best = max(truth)
        winners = {oid for oid, score in enumerate(truth) if score == best}
        surviving = {oid for _, oid in upper.candidates}
        assert winners & surviving == winners

    def test_candidates_sorted_descending(self):
        collection = random_collection(n=30, mean_points=6, seed=34)
        bigrid = BIGrid.build(collection, r=2.0)
        upper = compute_upper_bounds(bigrid, tau_max_low=0)
        bounds = [bound for bound, _ in upper.candidates]
        assert bounds == sorted(bounds, reverse=True)

    def test_threshold_prunes(self):
        collection = random_collection(n=30, mean_points=6, seed=35)
        bigrid = BIGrid.build(collection, r=2.0)
        all_candidates = compute_upper_bounds(bigrid, tau_max_low=0).candidates
        strict = compute_upper_bounds(bigrid, tau_max_low=max(v for v, _ in all_candidates))
        assert len(strict.candidates) <= len(all_candidates)

    def test_stats(self):
        collection = random_collection(n=20, mean_points=5, seed=36)
        bigrid = BIGrid.build(collection, r=2.0)
        stats = PhaseStats()
        result = compute_upper_bounds(bigrid, tau_max_low=0, stats=stats)
        assert stats.counters["candidates"] == len(result.candidates)
        assert stats.counters["candidates"] + stats.counters["pruned_objects"] == collection.n
        assert stats.counters["adj_unions_computed"] == len(bigrid.large_grid)


class TestLabeling:
    def test_labeling_1_marks_isolated_cells(self):
        # Two far-apart objects: every large cell is single-object.
        collection = random_collection(n=2, mean_points=4, seed=37, extent=1000.0, clustered=False)
        bigrid = BIGrid.build(collection, r=0.5)
        labeler = PointLabels.for_collection(collection, 0.5)
        compute_upper_bounds(bigrid, tau_max_low=0, labeler=labeler)
        cleared = labeler.count_cleared()
        assert cleared["grid"] == collection.total_points

    def test_labeling_2_marks_redundant_points(self):
        collection = random_collection(n=10, mean_points=10, seed=38)
        bigrid = BIGrid.build(collection, r=3.0)
        labeler = PointLabels.for_collection(collection, 3.0)
        compute_upper_bounds(bigrid, tau_max_low=0, labeler=labeler)
        # At minimum every duplicate point of a key group gets marked.
        duplicates = sum(
            len(points) - 1
            for groups in bigrid.object_groups
            for points in groups.values()
        )
        assert labeler.count_cleared()["upper"] >= duplicates

    def test_upper_masks_reproduce_bounds(self):
        """Replaying with the labels it produced yields identical bounds."""
        collection = random_collection(n=25, mean_points=8, seed=39)
        r = 2.0
        bigrid = BIGrid.build(collection, r=r)
        labeler = PointLabels.for_collection(collection, r)
        original = compute_upper_bounds(bigrid, tau_max_low=0, labeler=labeler)
        # Rebuild (fresh adj unions) and replay with masks.
        bigrid2 = BIGrid.build(collection, r=r, point_filter=labeler.grid_mask)
        replay = compute_upper_bounds(bigrid2, tau_max_low=0, upper_masks=labeler.upper_mask)
        assert replay.values == original.values

    def test_label_bits_are_independent(self):
        labels = PointLabels([4], r=2.0)
        labels.mark_upper_skippable(0, [1])
        labels.mark_verify_skippable(0, [1])
        assert labels.arrays[0][1] == GRID_BIT  # only the grid bit remains
        assert labels.arrays[0][0] == GRID_BIT | UPPER_BIT | 0b001
