"""Unit and property tests for the Roaring-style chunked bitmap."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.bitset.plain import PlainBitset
from repro.bitset.roaring import (
    ARRAY,
    ARRAY_LIMIT,
    BITMAP,
    CHUNK_SIZE,
    RUN,
    RoaringBitset,
)


class TestContainers:
    def test_sparse_chunk_uses_array(self):
        bitset = RoaringBitset.from_indices([1, 5, 100])
        assert bitset.container_kinds()[ARRAY] == 1

    def test_dense_irregular_chunk_uses_bitmap(self):
        bitset = RoaringBitset.from_indices(range(0, CHUNK_SIZE, 2))
        assert bitset.container_kinds()[BITMAP] == 1

    def test_contiguous_chunk_uses_run(self):
        bitset = RoaringBitset.from_int((1 << 50_000) - 1)
        assert bitset.container_kinds()[RUN] == 1
        assert bitset.size_in_bytes() < 32  # one run, tiny

    def test_array_limit_boundary(self):
        # Exactly ARRAY_LIMIT scattered values still fit an array container
        # (2 bytes each beats the 8 KiB bitmap).
        values = list(range(0, ARRAY_LIMIT * 16, 16))[:ARRAY_LIMIT]
        bitset = RoaringBitset.from_indices(values)
        assert bitset.container_kinds()[ARRAY] == 1

    def test_multiple_chunks(self):
        bitset = RoaringBitset.from_indices([0, CHUNK_SIZE, 5 * CHUNK_SIZE + 7])
        assert sum(bitset.container_kinds().values()) == 3
        assert list(bitset.iter_set_bits()) == [0, CHUNK_SIZE, 5 * CHUNK_SIZE + 7]


class TestBasics:
    def test_set_get_cardinality(self):
        bitset = RoaringBitset()
        bitset.set(3)
        bitset.set(70_000)
        bitset.set(3)  # idempotent
        assert bitset.get(3) and bitset.get(70_000)
        assert not bitset.get(4)
        assert bitset.cardinality() == 2

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            RoaringBitset().set(-1)
        with pytest.raises(ValueError):
            RoaringBitset().get(-1)
        with pytest.raises(ValueError):
            RoaringBitset.from_int(-1)
        with pytest.raises(ValueError):
            RoaringBitset.from_indices([-5])

    def test_copy_independent(self):
        original = RoaringBitset.from_indices([1])
        clone = original.copy()
        clone.set(2)
        assert original.cardinality() == 1

    def test_int_round_trip(self):
        value = (1 << 100_000) | (1 << 70_000) | 0b1011
        assert RoaringBitset.from_int(value).to_int() == value


class TestOperations:
    def test_cross_chunk_ops(self):
        a = RoaringBitset.from_indices([1, CHUNK_SIZE + 1])
        b = RoaringBitset.from_indices([CHUNK_SIZE + 1, 2 * CHUNK_SIZE])
        assert list((a | b).iter_set_bits()) == [1, CHUNK_SIZE + 1, 2 * CHUNK_SIZE]
        assert list((a & b).iter_set_bits()) == [CHUNK_SIZE + 1]
        assert list((a - b).iter_set_bits()) == [1]
        assert list((a ^ b).iter_set_bits()) == [1, 2 * CHUNK_SIZE]

    def test_empty_containers_dropped(self):
        a = RoaringBitset.from_indices([10])
        result = a - a
        assert result.is_empty()
        assert result.size_in_bytes() == 0

    def test_mixed_backend_operand(self):
        roaring = RoaringBitset.from_indices([1, 2])
        plain = PlainBitset.from_indices([2, 3])
        assert list(roaring.or_(plain).iter_set_bits()) == [1, 2, 3]


bit_sets = st.sets(st.integers(min_value=0, max_value=300_000), max_size=80)


@given(bit_sets, bit_sets)
def test_roaring_matches_plain_semantics(xs, ys):
    a, b = RoaringBitset.from_indices(xs), RoaringBitset.from_indices(ys)
    pa, pb = PlainBitset.from_indices(xs), PlainBitset.from_indices(ys)
    assert (a | b).to_int() == (pa | pb).to_int()
    assert (a & b).to_int() == (pa & pb).to_int()
    assert (a - b).to_int() == (pa - pb).to_int()
    assert (a ^ b).to_int() == (pa ^ pb).to_int()


@given(bit_sets)
def test_roaring_round_trips(xs):
    bitset = RoaringBitset.from_indices(xs)
    assert list(bitset.iter_set_bits()) == sorted(xs)
    assert bitset.cardinality() == len(xs)
    assert RoaringBitset.from_int(bitset.to_int()) == bitset


@given(bit_sets, st.integers(min_value=0, max_value=300_000))
def test_roaring_set_matches_plain(xs, extra):
    bitset = RoaringBitset.from_indices(xs)
    bitset.set(extra)
    assert list(bitset.iter_set_bits()) == sorted(xs | {extra})


class TestEngineIntegration:
    def test_engine_with_roaring_backend(self):
        from repro.core.engine import MIOEngine

        from conftest import oracle_scores, random_collection

        collection = random_collection(n=25, mean_points=6, seed=151)
        for r in (1.0, 3.0):
            truth = max(oracle_scores(collection, r))
            assert MIOEngine(collection, backend="roaring").query(r).score == truth
