"""Tests for the parallel MIO engine and parallel competitors (Section IV)."""

import pytest

from repro.core.engine import MIOEngine
from repro.core.labels import LabelStore
from repro.parallel.engine import (
    ParallelMIOEngine,
    parallel_nested_loop,
    parallel_simple_grid,
)

from conftest import oracle_scores, random_collection


@pytest.fixture(scope="module")
def collection():
    return random_collection(n=35, mean_points=7, seed=91)


@pytest.fixture(scope="module")
def truth(collection):
    return oracle_scores(collection, 2.0)


class TestExactness:
    @pytest.mark.parametrize("cores", [1, 2, 4, 7])
    def test_matches_oracle_across_core_counts(self, collection, truth, cores):
        result = ParallelMIOEngine(collection, cores=cores).query(2.0)
        assert result.score == max(truth)
        assert truth[result.winner] == result.score

    @pytest.mark.parametrize("lb", ["greedy-d", "hash-p"])
    @pytest.mark.parametrize("ub", ["greedy-p", "greedy-d"])
    def test_every_strategy_combination_is_exact(self, collection, truth, lb, ub):
        engine = ParallelMIOEngine(collection, cores=3, lb_strategy=lb, ub_strategy=ub)
        assert engine.query(2.0).score == max(truth)

    def test_matches_serial_engine(self, collection):
        for r in (1.0, 3.0):
            serial = MIOEngine(collection).query(r)
            parallel = ParallelMIOEngine(collection, cores=4).query(r)
            assert parallel.score == serial.score

    def test_3d(self, clustered_collection_3d):
        truth = oracle_scores(clustered_collection_3d, 2.5)
        result = ParallelMIOEngine(clustered_collection_3d, cores=4).query(2.5)
        assert result.score == max(truth)


class TestLabels:
    def test_consumes_labels_from_serial_run(self, collection, truth):
        store = LabelStore()
        MIOEngine(collection, label_store=store).query(2.0)  # labeling run
        engine = ParallelMIOEngine(
            collection, cores=4, label_store=store, mode="simulated"
        )
        result = engine.query(2.0)
        assert result.algorithm == "bigrid-label-parallel"
        assert result.score == max(truth)

    def test_label_free_when_store_empty(self, collection):
        engine = ParallelMIOEngine(
            collection, cores=2, label_store=LabelStore(), mode="simulated"
        )
        assert engine.query(2.0).algorithm == "bigrid-parallel"

    @pytest.mark.parametrize("lb", ["greedy-d", "hash-p"])
    @pytest.mark.parametrize("ub", ["greedy-p", "greedy-d"])
    def test_label_runs_exact_for_all_strategies(self, collection, truth, lb, ub):
        store = LabelStore()
        MIOEngine(collection, label_store=store).query(2.0)
        engine = ParallelMIOEngine(
            collection, cores=3, lb_strategy=lb, ub_strategy=ub,
            label_store=store, mode="simulated",
        )
        assert engine.query(2.0).score == max(truth)


class TestReporting:
    def test_phases_and_extras(self, collection):
        result = ParallelMIOEngine(collection, cores=4, mode="simulated").query(2.0)
        for phase in ("grid_mapping", "lower_bounding", "upper_bounding", "verification"):
            assert phase in result.phases
            assert f"serial:{phase}" in result.extra
            # A makespan can never exceed the serial time of the same work.
            assert result.phases[phase] <= result.extra[f"serial:{phase}"] + 1e-9
        assert result.counters["cores"] == 4

    def test_single_core_makespan_equals_serial(self, collection):
        result = ParallelMIOEngine(collection, cores=1, mode="simulated").query(2.0)
        for phase in ("lower_bounding", "upper_bounding"):
            assert result.phases[phase] == pytest.approx(
                result.extra[f"serial:{phase}"], rel=0.05, abs=1e-5
            )


class TestValidation:
    def test_invalid_strategies(self, collection):
        with pytest.raises(ValueError):
            ParallelMIOEngine(collection, cores=2, lb_strategy="magic")
        with pytest.raises(ValueError):
            ParallelMIOEngine(collection, cores=2, ub_strategy="magic")
        with pytest.raises(ValueError):
            ParallelMIOEngine(collection, cores=2, label_reuse="magic")

    def test_invalid_r(self, collection):
        with pytest.raises(ValueError):
            ParallelMIOEngine(collection, cores=2).query(-1.0)


class TestParallelCompetitors:
    @pytest.mark.parametrize("cores", [1, 3])
    def test_parallel_nl_exact(self, collection, truth, cores):
        result = parallel_nested_loop(collection, 2.0, cores)
        assert result.score == max(truth)
        assert result.counters["cores"] == cores

    @pytest.mark.parametrize("cores", [1, 3])
    def test_parallel_sg_exact(self, collection, truth, cores):
        result = parallel_simple_grid(collection, 2.0, cores)
        assert result.score == max(truth)

    def test_parallel_nl_rejects_bad_r(self, collection):
        with pytest.raises(ValueError):
            parallel_nested_loop(collection, 0.0, 2)

    def test_makespans_bounded_by_serial(self, collection):
        nl = parallel_nested_loop(collection, 2.0, 4)
        assert nl.phases["scan"] <= nl.extra["serial:scan"] + 1e-9
        sg = parallel_simple_grid(collection, 2.0, 4)
        assert sg.phases["build_and_scoring"] <= sg.extra["serial:build_and_scoring"] + 1e-9


class TestParallelTopK:
    @pytest.mark.parametrize("k", [1, 3, 8])
    def test_matches_oracle(self, collection, k):
        truth = sorted(oracle_scores(collection, 2.0), reverse=True)
        result = ParallelMIOEngine(collection, cores=4).query_topk(2.0, k)
        assert [score for _, score in result.topk] == truth[:k]

    def test_matches_serial_topk(self, collection):
        from repro.core.engine import MIOEngine

        serial = MIOEngine(collection).query_topk(2.0, 5)
        parallel = ParallelMIOEngine(collection, cores=3).query_topk(2.0, 5)
        assert [s for _, s in parallel.topk] == [s for _, s in serial.topk]

    def test_topk_with_labels(self, collection):
        from repro.core.engine import MIOEngine
        from repro.core.labels import LabelStore

        store = LabelStore()
        MIOEngine(collection, label_store=store).query(2.0)
        truth = sorted(oracle_scores(collection, 2.0), reverse=True)[:4]
        engine = ParallelMIOEngine(
            collection, cores=4, label_store=store, mode="simulated"
        )
        result = engine.query_topk(2.0, 4)
        assert result.algorithm == "bigrid-label-parallel"
        assert [score for _, score in result.topk] == truth

    def test_invalid_k(self, collection):
        with pytest.raises(ValueError):
            ParallelMIOEngine(collection, cores=2).query_topk(2.0, 0)

    def test_query_has_no_topk_field(self, collection):
        assert ParallelMIOEngine(collection, cores=2).query(2.0).topk is None
