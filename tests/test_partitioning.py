"""Tests for multi-way number partitioning and the Eq. (3) cost model."""

import pytest

from repro.parallel.partitioning import (
    greedy_partition,
    hash_partition,
    karmarkar_karp_partition,
    load_balance_ratio,
    streaming_greedy_partition,
    upper_bounding_group_cost,
)


def assert_valid_partition(parts, count):
    seen = sorted(index for part in parts for index in part)
    assert seen == list(range(count))


class TestStreamingGreedy:
    def test_covers_all_items(self):
        parts, loads = streaming_greedy_partition([3, 1, 4, 1, 5, 9], 3)
        assert_valid_partition(parts, 6)
        assert sum(loads) == 23

    def test_single_part(self):
        parts, loads = streaming_greedy_partition([1, 2, 3], 1)
        assert parts == [[0, 1, 2]]
        assert loads == [6.0]

    def test_preserves_arrival_order_within_part(self):
        parts, _ = streaming_greedy_partition([1] * 10, 2)
        for part in parts:
            assert part == sorted(part)

    def test_equal_weights_balance_perfectly(self):
        _, loads = streaming_greedy_partition([2.0] * 12, 4)
        assert load_balance_ratio(loads) == 1.0

    def test_empty(self):
        parts, loads = streaming_greedy_partition([], 2)
        assert parts == [[], []]
        assert loads == [0.0, 0.0]

    def test_invalid_parts(self):
        with pytest.raises(ValueError):
            streaming_greedy_partition([1], 0)


class TestLPT:
    def test_covers_all_items(self):
        parts, _ = greedy_partition([5, 5, 4, 3, 3], 2)
        assert_valid_partition(parts, 5)

    def test_lpt_at_least_as_balanced_as_streaming_on_adversarial_input(self):
        # Ascending weights are adversarial for streaming greedy.
        weights = list(range(1, 30))
        _, streaming_loads = streaming_greedy_partition(weights, 4)
        _, lpt_loads = greedy_partition(weights, 4)
        assert load_balance_ratio(lpt_loads) <= load_balance_ratio(streaming_loads) + 1e-9


class TestKarmarkarKarp:
    def test_covers_all_items(self):
        parts, _ = karmarkar_karp_partition([8, 7, 6, 5, 4], 2)
        assert_valid_partition(parts, 5)

    def test_classic_two_way_example(self):
        # The textbook trace: KK on [8,7,6,5,4] two-way ends with difference
        # 2 ({8,6} + {7,5,4} style splits); the optimum 0 is out of reach for
        # the heuristic, which is exactly the known behaviour.
        _, loads = karmarkar_karp_partition([8, 7, 6, 5, 4], 2)
        assert abs(loads[0] - loads[1]) == 2.0

    def test_three_way(self):
        parts, loads = karmarkar_karp_partition([9, 8, 7, 6, 5, 4], 3)
        assert_valid_partition(parts, 6)
        assert sum(loads) == 39

    def test_never_worse_than_streaming(self):
        import random

        rng = random.Random(3)
        for _ in range(10):
            weights = [rng.randint(1, 50) for _ in range(25)]
            _, kk_loads = karmarkar_karp_partition(weights, 4)
            _, stream_loads = streaming_greedy_partition(weights, 4)
            assert max(kk_loads) <= max(stream_loads) + 1e-9

    def test_empty(self):
        parts, loads = karmarkar_karp_partition([], 3)
        assert parts == [[], [], []]
        assert loads == [0.0, 0.0, 0.0]


class TestHashPartition:
    def test_round_robin(self):
        assert hash_partition(5, 2) == [[0, 2, 4], [1, 3]]

    def test_more_parts_than_items(self):
        parts = hash_partition(2, 4)
        assert parts == [[0], [1], [], []]


class TestBalanceRatio:
    def test_perfect(self):
        assert load_balance_ratio([2.0, 2.0]) == 1.0

    def test_skewed(self):
        assert load_balance_ratio([3.0, 1.0]) == 1.5

    def test_empty_or_zero(self):
        assert load_balance_ratio([]) == 1.0
        assert load_balance_ratio([0.0, 0.0]) == 1.0


class TestEq3CostModel:
    def test_fresh_cell_pays_neighborhood(self):
        fresh = upper_bounding_group_cost(4, True, dimension=3)
        cached = upper_bounding_group_cost(4, False, dimension=3)
        assert fresh == 27 + 4
        assert cached == 1 + 4
        assert fresh > cached

    def test_2d_neighborhood_is_9(self):
        assert upper_bounding_group_cost(0, True, dimension=2) == 9

    def test_label_reuse_drops_point_term(self):
        with_labels = upper_bounding_group_cost(10, False, 3, include_labeling=False)
        without = upper_bounding_group_cost(10, False, 3, include_labeling=True)
        assert with_labels == 1
        assert without == 11

    def test_bitset_cost_scales(self):
        assert upper_bounding_group_cost(0, True, 3, bitset_cost=2.0) == 54


# ----------------------------------------------------------------------
# Number-partitioning helpers promoted public in earlier PRs:
# zipf_partition (skewed generator sizes) and bits_of (bitset bridge).
# Their empty-input behavior is part of the documented contract.
# ----------------------------------------------------------------------


class TestZipfPartitionEdgeCases:
    def test_zero_total_returns_empty_array(self):
        import numpy as np

        from repro.datasets.trajectories import zipf_partition

        sizes = zipf_partition(np.random.default_rng(0), 0, 5, 1.3)
        assert sizes.shape == (0,)
        assert sizes.dtype == np.int64

    def test_zero_total_accepts_any_part_count(self):
        import numpy as np

        from repro.datasets.trajectories import zipf_partition

        for n_parts in (0, 1, 7, -3):
            sizes = zipf_partition(np.random.default_rng(0), 0, n_parts, 1.3)
            assert len(sizes) == 0

    def test_negative_total_raises(self):
        import numpy as np
        import pytest

        from repro.datasets.trajectories import zipf_partition

        with pytest.raises(ValueError, match="non-negative"):
            zipf_partition(np.random.default_rng(0), -1, 3, 1.3)

    def test_nonpositive_parts_with_positive_total_raises(self):
        import numpy as np
        import pytest

        from repro.datasets.trajectories import zipf_partition

        for n_parts in (0, -2):
            with pytest.raises(ValueError, match="positive total"):
                zipf_partition(np.random.default_rng(0), 10, n_parts, 1.3)

    def test_parts_positive_and_sum_to_total(self):
        import numpy as np

        from repro.datasets.trajectories import zipf_partition

        for seed, total, n_parts in ((0, 1, 1), (1, 5, 9), (2, 100, 7), (3, 17, 17)):
            sizes = zipf_partition(np.random.default_rng(seed), total, n_parts, 1.5)
            assert len(sizes) == min(n_parts, total)
            assert int(sizes.sum()) == total
            assert (sizes >= 1).all()


class TestBitsOfEdgeCases:
    def test_zero_is_empty_set(self):
        from repro.core.verification import bits_of

        assert bits_of(0) == set()

    def test_zero_returns_fresh_mutable_set(self):
        from repro.core.verification import bits_of

        first = bits_of(0)
        first.add(99)
        assert bits_of(0) == set()

    def test_round_trip(self):
        from repro.core.verification import bits_of

        for positions in (set(), {0}, {63}, {0, 1, 64, 200}, set(range(0, 300, 7))):
            value = sum(1 << p for p in positions)
            assert bits_of(value) == positions
