"""Unit tests for the result/stat containers and executor reports."""

import gc

from repro.core.query import MIOResult, PhaseStats
from repro.parallel.executor import CoreReport, gc_paused


class TestPhaseStats:
    def test_add_time_accumulates(self):
        stats = PhaseStats()
        stats.add_time("phase", 0.5)
        stats.add_time("phase", 0.25)
        assert stats.phases["phase"] == 0.75

    def test_add_count_accumulates(self):
        stats = PhaseStats()
        stats.add_count("hits")
        stats.add_count("hits", 4)
        assert stats.counters["hits"] == 5

    def test_set_count_overwrites(self):
        stats = PhaseStats()
        stats.add_count("items", 3)
        stats.set_count("items", 10)
        assert stats.counters["items"] == 10


class TestMIOResult:
    def test_total_time_sums_phases(self):
        result = MIOResult("x", 1.0, 0, 5, phases={"a": 0.5, "b": 0.25})
        assert result.total_time == 0.75

    def test_phase_time_default(self):
        result = MIOResult("x", 1.0, 0, 5)
        assert result.phase_time("missing") == 0.0

    def test_repr_contains_key_facts(self):
        text = repr(MIOResult("bigrid", 2.0, winner=7, score=3))
        assert "bigrid" in text and "winner=7" in text and "score=3" in text

    def test_extra_defaults_empty(self):
        assert MIOResult("x", 1.0, 0, 0).extra == {}


class TestCoreReport:
    def test_makespan_composition(self):
        report = CoreReport(2)
        report.per_core_seconds = [1.0, 4.0]
        report.merge_seconds = 0.5
        report.barrier_seconds = 2.0
        assert report.makespan == 6.5

    def test_speedup_zero_makespan(self):
        report = CoreReport(2)
        assert report.speedup() == 1.0

    def test_speedup_ratio(self):
        report = CoreReport(4)
        report.per_core_seconds = [1.0, 1.0, 1.0, 1.0]
        report.serial_seconds = 4.0
        assert report.speedup() == 4.0

    def test_merge_with_adds_makespans(self):
        first = CoreReport(2)
        first.per_core_seconds = [1.0, 0.5]
        first.serial_seconds = 1.5
        second = CoreReport(2)
        second.per_core_seconds = [2.0, 2.0]
        second.serial_seconds = 4.0
        combined = first.merge_with(second)
        assert combined.makespan == 3.0
        assert combined.serial_seconds == 5.5


class TestGcPaused:
    def test_restores_enabled_state(self):
        assert gc.isenabled()
        with gc_paused():
            assert not gc.isenabled()
        assert gc.isenabled()

    def test_respects_already_disabled(self):
        gc.disable()
        try:
            with gc_paused():
                assert not gc.isenabled()
            assert not gc.isenabled()
        finally:
            gc.enable()

    def test_restores_on_exception(self):
        try:
            with gc_paused():
                raise RuntimeError("boom")
        except RuntimeError:
            pass
        assert gc.isenabled()
