"""The metrics registry: counters, gauges, log-bucket histograms."""

import pytest

from repro.obs.metrics import (
    DEFAULT_SECONDS_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    merge_histogram_snapshots,
)


class TestCounter:
    def test_increments_accumulate_per_label_set(self):
        counter = Counter("requests_total", "test")
        counter.inc(tier="labels", outcome="hit")
        counter.inc(2.0, tier="labels", outcome="hit")
        counter.inc(tier="labels", outcome="miss")
        assert counter.value(tier="labels", outcome="hit") == 3.0
        assert counter.value(tier="labels", outcome="miss") == 1.0
        assert counter.value(tier="grid_keys", outcome="hit") == 0.0

    def test_label_order_does_not_matter(self):
        counter = Counter("c_total", "test")
        counter.inc(a="1", b="2")
        assert counter.value(b="2", a="1") == 1.0

    def test_counters_only_go_up(self):
        counter = Counter("c_total", "test")
        with pytest.raises(ValueError):
            counter.inc(-1.0)

    def test_bound_counter_hits_the_same_series(self):
        counter = Counter("c_total", "test")
        bound = counter.labels(tier="grid_keys", outcome="hit")
        for _ in range(5):
            bound.inc()
        counter.inc(tier="grid_keys", outcome="hit")
        assert counter.value(tier="grid_keys", outcome="hit") == 6.0

    def test_invalid_names_rejected(self):
        with pytest.raises(ValueError):
            Counter("bad name", "test")
        counter = Counter("ok_total", "test")
        with pytest.raises(ValueError):
            counter.inc(**{"0bad": "x"})


class TestGauge:
    def test_set_overwrites_and_inc_accumulates(self):
        gauge = Gauge("memory_bytes", "test")
        gauge.set(100.0, engine="serial")
        gauge.set(250.0, engine="serial")
        assert gauge.value(engine="serial") == 250.0
        gauge.inc(50.0, engine="serial")
        assert gauge.value(engine="serial") == 300.0


class TestHistogramBucketing:
    def test_default_buckets_are_half_decade_log_scale(self):
        assert DEFAULT_SECONDS_BUCKETS[0] == pytest.approx(1e-6)
        assert DEFAULT_SECONDS_BUCKETS[-1] == pytest.approx(10.0)
        ratios = [
            b2 / b1
            for b1, b2 in zip(DEFAULT_SECONDS_BUCKETS, DEFAULT_SECONDS_BUCKETS[1:])
        ]
        assert all(ratio == pytest.approx(10.0 ** 0.5, rel=1e-6) for ratio in ratios)

    def test_observation_lands_in_le_bucket(self):
        histogram = Histogram("h_seconds", "test", buckets=(0.1, 1.0, 10.0))
        histogram.observe(0.05)   # <= 0.1
        histogram.observe(0.1)    # == bound -> le semantics: the 0.1 bucket
        histogram.observe(0.5)    # <= 1.0
        histogram.observe(100.0)  # overflow -> +Inf
        snapshot = histogram.snapshot()
        assert snapshot["buckets"]["0.1"] == 2
        assert snapshot["buckets"]["1.0"] == 3
        assert snapshot["buckets"]["10.0"] == 3
        assert snapshot["buckets"]["+Inf"] == 4
        assert snapshot["count"] == 4
        assert snapshot["sum"] == pytest.approx(100.65)

    def test_cumulative_counts_are_monotone(self):
        histogram = Histogram("h_seconds", "test")
        for value in (1e-7, 1e-5, 1e-3, 0.1, 0.5, 2.0, 50.0):
            histogram.observe(value)
        snapshot = histogram.snapshot()
        counts = list(snapshot["buckets"].values())
        assert counts == sorted(counts)
        assert counts[-1] == snapshot["count"]

    def test_buckets_must_be_ascending_and_nonempty(self):
        with pytest.raises(ValueError):
            Histogram("h", "test", buckets=())
        with pytest.raises(ValueError):
            Histogram("h", "test", buckets=(1.0, 1.0))
        with pytest.raises(ValueError):
            Histogram("h", "test", buckets=(2.0, 1.0))

    def test_labelled_series_are_independent(self):
        histogram = Histogram("h_seconds", "test", buckets=(1.0,))
        histogram.observe(0.5, engine="serial")
        histogram.observe(0.5, engine="parallel")
        histogram.observe(0.5, engine="parallel")
        assert histogram.snapshot(engine="serial")["count"] == 1
        assert histogram.snapshot(engine="parallel")["count"] == 2
        assert histogram.snapshot(engine="missing")["count"] == 0


class TestRegistry:
    def test_get_or_create_is_idempotent(self):
        registry = MetricsRegistry()
        first = registry.counter("queries_total", "help one")
        second = registry.counter("queries_total", "help two")
        assert first is second
        assert first.help == "help one"  # first registration wins

    def test_kind_conflicts_are_loud(self):
        registry = MetricsRegistry()
        registry.counter("thing_total", "test")
        with pytest.raises(ValueError, match="already registered"):
            registry.gauge("thing_total", "test")
        with pytest.raises(ValueError, match="already registered"):
            registry.histogram("thing_total", "test")

    def test_snapshot_filters_by_prefix(self):
        registry = MetricsRegistry()
        registry.counter("repro_cache_requests_total", "test").inc(tier="labels")
        registry.counter("repro_queries_total", "test").inc()
        snapshot = registry.snapshot(prefix="repro_cache_")
        assert list(snapshot) == ["repro_cache_requests_total"]
        series = snapshot["repro_cache_requests_total"]["series"]
        assert series == {'tier="labels"': 1.0}

    def test_snapshot_carries_type_help_and_histograms(self):
        registry = MetricsRegistry()
        registry.histogram("h_seconds", "latency", buckets=(1.0,)).observe(0.5)
        snapshot = registry.snapshot()
        metric = snapshot["h_seconds"]
        assert metric["type"] == "histogram"
        assert metric["help"] == "latency"
        assert metric["series"][""]["count"] == 1

    def test_reset_drops_everything(self):
        registry = MetricsRegistry()
        registry.counter("a_total", "test").inc()
        registry.reset()
        assert list(registry.collect()) == []
        assert registry.get("a_total") is None


class TestHistogramMerge:
    """The fixed log-bucket invariant: snapshots from separate runs merge."""

    def test_merge_equals_observing_everything_in_one_histogram(self):
        run_a = Histogram("h_seconds", "test")
        run_b = Histogram("h_seconds", "test")
        combined = Histogram("h_seconds", "test")
        values_a = (1e-7, 1e-4, 0.02, 0.5)
        values_b = (3e-6, 0.02, 2.0, 50.0)
        for value in values_a:
            run_a.observe(value)
            combined.observe(value)
        for value in values_b:
            run_b.observe(value)
            combined.observe(value)
        merged = merge_histogram_snapshots([run_a.snapshot(), run_b.snapshot()])
        assert merged["buckets"] == combined.snapshot()["buckets"]
        assert merged["count"] == combined.snapshot()["count"]
        assert merged["sum"] == pytest.approx(combined.snapshot()["sum"])

    def test_merged_cumulative_counts_stay_monotone(self):
        runs = []
        for seed, values in enumerate(((0.001, 0.1), (1e-5, 5.0, 0.2), (30.0,))):
            histogram = Histogram("h_seconds", "test")
            for value in values:
                histogram.observe(value)
            runs.append(histogram.snapshot())
        merged = merge_histogram_snapshots(runs)
        counts = list(merged["buckets"].values())
        assert counts == sorted(counts)
        assert merged["buckets"]["+Inf"] == merged["count"] == 6

    def test_different_bucket_bounds_are_rejected(self):
        coarse = Histogram("h_seconds", "test", buckets=(0.1, 1.0))
        fine = Histogram("h_seconds", "test", buckets=(0.01, 0.1, 1.0))
        coarse.observe(0.5)
        fine.observe(0.5)
        with pytest.raises(ValueError, match="different bucket bounds"):
            merge_histogram_snapshots([coarse.snapshot(), fine.snapshot()])

    def test_empty_snapshots_merge_as_identity(self):
        histogram = Histogram("h_seconds", "test", buckets=(1.0,))
        histogram.observe(0.5)
        empty = Histogram("h_seconds", "test", buckets=(1.0,)).snapshot()
        merged = merge_histogram_snapshots([empty, histogram.snapshot(), empty])
        assert merged == histogram.snapshot()
        assert merge_histogram_snapshots([]) == {"buckets": {}, "sum": 0.0, "count": 0}

    def test_merge_is_order_independent(self):
        snapshots = []
        for values in ((0.001,), (0.5, 3.0), (1e-6, 0.02)):
            histogram = Histogram("h_seconds", "test")
            for value in values:
                histogram.observe(value)
            snapshots.append(histogram.snapshot())
        forward = merge_histogram_snapshots(snapshots)
        backward = merge_histogram_snapshots(list(reversed(snapshots)))
        assert forward["buckets"] == backward["buckets"]
        assert forward["count"] == backward["count"]
        assert forward["sum"] == pytest.approx(backward["sum"])


class TestProcessRegistryIsolation:
    def test_set_registry_swaps_the_module_shortcuts(self, fresh_registry):
        from repro.obs import metrics

        metrics.counter("isolated_total", "test").inc()
        assert fresh_registry.get("isolated_total") is not None
        assert metrics.get_registry() is fresh_registry
