"""Tests for the dynamic (updatable) collection wrapper."""

import numpy as np
import pytest

from repro.dynamic import DynamicMIO

from conftest import oracle_scores, random_collection


def filled(seed=191, n=15):
    collection = random_collection(n=n, mean_points=5, seed=seed)
    dynamic = DynamicMIO()
    handles = [dynamic.add_object(obj.points) for obj in collection]
    return collection, dynamic, handles


class TestMutation:
    def test_handles_are_stable_and_unique(self):
        _collection, dynamic, handles = filled()
        assert len(set(handles)) == len(handles)
        dynamic.remove_object(handles[3])
        assert handles[3] not in dynamic
        assert handles[4] in dynamic
        new_handle = dynamic.add_object(np.zeros((2, 2)))
        assert new_handle not in handles  # never recycled

    def test_size_tracking(self):
        _collection, dynamic, handles = filled(n=10)
        assert len(dynamic) == 10
        dynamic.remove_object(handles[0])
        assert len(dynamic) == 9

    def test_remove_missing_raises(self):
        _collection, dynamic, _handles = filled()
        with pytest.raises(KeyError):
            dynamic.remove_object(99999)

    def test_add_rejects_bad_arrays(self):
        dynamic = DynamicMIO()
        with pytest.raises(ValueError):
            dynamic.add_object(np.zeros((0, 2)))
        with pytest.raises(ValueError):
            dynamic.add_object(np.zeros(3))

    def test_get_points(self):
        dynamic = DynamicMIO()
        points = np.array([[1.0, 2.0]])
        handle = dynamic.add_object(points)
        assert np.array_equal(dynamic.get_points(handle), points)


class TestQueries:
    def test_query_matches_oracle(self):
        collection, dynamic, handles = filled(seed=192, n=25)
        truth = oracle_scores(collection, 2.0)
        winner_handle, result = dynamic.query(2.0)
        assert result.score == max(truth)
        assert truth[handles.index(winner_handle)] == result.score

    def test_query_after_removal_matches_oracle(self):
        collection, dynamic, handles = filled(seed=193, n=20)
        removed = {3, 11}
        for index in removed:
            dynamic.remove_object(handles[index])
        survivors = [i for i in range(collection.n) if i not in removed]
        reduced = collection.subset(survivors)
        truth = oracle_scores(reduced, 2.0)
        winner_handle, result = dynamic.query(2.0)
        assert result.score == max(truth)
        winner_position = survivors.index(handles.index(winner_handle))
        assert truth[winner_position] == result.score

    def test_query_after_additions_matches_oracle(self):
        collection, dynamic, _handles = filled(seed=194, n=12)
        extra = random_collection(n=6, mean_points=5, seed=195)
        for obj in extra:
            dynamic.add_object(obj.points)
        from repro.core.objects import ObjectCollection

        merged = ObjectCollection.from_point_arrays(
            [obj.points for obj in collection] + [obj.points for obj in extra]
        )
        truth = oracle_scores(merged, 2.0)
        _winner, result = dynamic.query(2.0)
        assert result.score == max(truth)

    def test_topk_handles(self):
        collection, dynamic, handles = filled(seed=196, n=20)
        truth = sorted(oracle_scores(collection, 2.0), reverse=True)[:4]
        ranking = dynamic.query_topk(2.0, 4)
        assert [score for _h, score in ranking] == truth
        assert all(handle in dynamic for handle, _s in ranking)

    def test_needs_two_objects(self):
        dynamic = DynamicMIO()
        dynamic.add_object(np.zeros((1, 2)))
        with pytest.raises(ValueError):
            dynamic.query(1.0)


class TestLabelLifecycle:
    def test_repeated_queries_reuse_labels(self):
        _collection, dynamic, _handles = filled(seed=197, n=20)
        _w1, first = dynamic.query(2.0)
        _w2, second = dynamic.query(2.0)
        assert first.algorithm == "bigrid"
        assert second.algorithm == "bigrid-label"
        assert first.score == second.score

    def test_mutation_invalidates_labels(self):
        _collection, dynamic, handles = filled(seed=198, n=20)
        dynamic.query(2.0)
        dynamic.remove_object(handles[0])
        _winner, result = dynamic.query(2.0)
        # Fresh collection, fresh store: this must be a labeling run again.
        assert result.algorithm == "bigrid"

    def test_labels_can_be_disabled(self):
        collection = random_collection(n=10, mean_points=4, seed=199)
        dynamic = DynamicMIO(use_labels=False)
        for obj in collection:
            dynamic.add_object(obj.points)
        _w1, first = dynamic.query(2.0)
        _w2, second = dynamic.query(2.0)
        assert first.algorithm == second.algorithm == "bigrid"
