"""Unit tests for BIGrid construction (Algorithm 3)."""

import numpy as np
import pytest

from repro.core.objects import ObjectCollection
from repro.grid.bigrid import BIGrid
from repro.grid.keys import compute_keys, large_cell_width, small_cell_width

from conftest import random_collection


class TestBuild:
    def test_every_point_is_mapped_once(self, clustered_collection):
        bigrid = BIGrid.build(clustered_collection, r=2.0)
        assert bigrid.mapped_points == clustered_collection.total_points
        # Each object's groups partition its point indices.
        for oid in range(clustered_collection.n):
            indices = sorted(
                index
                for points in bigrid.object_groups[oid].values()
                for index in points
            )
            assert indices == list(range(clustered_collection[oid].num_points))

    def test_posting_lists_match_groups(self, clustered_collection):
        bigrid = BIGrid.build(clustered_collection, r=2.0)
        for oid in range(clustered_collection.n):
            for key, points in bigrid.object_groups[oid].items():
                assert bigrid.large_grid.cells[key].postings[oid] == points

    def test_no_empty_cells(self, clustered_collection):
        bigrid = BIGrid.build(clustered_collection, r=2.0)
        for cell in bigrid.small_grid.cells.values():
            assert cell.distinct_objects >= 1
        for cell in bigrid.large_grid.cells.values():
            assert cell.postings

    def test_key_lists_only_contain_shared_cells(self, clustered_collection):
        bigrid = BIGrid.build(clustered_collection, r=2.0)
        for oid, keys in enumerate(bigrid.key_lists):
            for key in keys:
                cell = bigrid.small_grid.cells[key]
                assert cell.distinct_objects >= 2
                assert cell.bitset.get(oid)

    def test_key_lists_cover_all_shared_cells(self, clustered_collection):
        bigrid = BIGrid.build(clustered_collection, r=2.0)
        for key, cell in bigrid.small_grid.cells.items():
            if cell.distinct_objects >= 2:
                members = list(cell.bitset.iter_set_bits())
                for oid in members:
                    assert key in bigrid.key_lists[oid]

    def test_widths_follow_definitions(self, clustered_collection):
        r = 3.3
        bigrid = BIGrid.build(clustered_collection, r=r)
        assert bigrid.small_grid.width == pytest.approx(
            small_cell_width(r, clustered_collection.dimension)
        )
        assert bigrid.large_grid.width == large_cell_width(r)

    def test_width_overrides_for_offline_ablation(self, clustered_collection):
        bigrid = BIGrid.build(clustered_collection, r=2.0, small_width=0.5, large_width=7.0)
        assert bigrid.small_grid.width == 0.5
        assert bigrid.large_grid.width == 7.0

    def test_bitset_bits_match_cell_contents(self, clustered_collection):
        bigrid = BIGrid.build(clustered_collection, r=2.0)
        width = bigrid.large_grid.width
        for obj in clustered_collection:
            for key in compute_keys(obj.points, width):
                assert bigrid.large_grid.cells[key].bitset.get(obj.oid)

    def test_plain_backend(self, clustered_collection):
        bigrid = BIGrid.build(clustered_collection, r=2.0, backend="plain")
        assert type(bigrid.small_grid.bitset_cls()).__name__ == "PlainBitset"

    def test_unknown_backend_rejected(self, clustered_collection):
        with pytest.raises(ValueError):
            BIGrid.build(clustered_collection, r=2.0, backend="nope")


class TestPointFilter:
    def test_filter_skips_points(self):
        collection = random_collection(n=10, mean_points=6, seed=3)

        def keep_even(oid):
            count = collection[oid].num_points
            mask = np.zeros(count, dtype=bool)
            mask[::2] = True
            return mask

        bigrid = BIGrid.build(collection, r=2.0, point_filter=keep_even)
        expected = sum((obj.num_points + 1) // 2 for obj in collection)
        assert bigrid.mapped_points == expected

    def test_filter_none_mask_means_all(self, clustered_collection):
        bigrid = BIGrid.build(clustered_collection, r=2.0, point_filter=lambda oid: None)
        assert bigrid.mapped_points == clustered_collection.total_points

    def test_filter_can_skip_whole_object(self):
        collection = random_collection(n=5, mean_points=4, seed=4)

        def drop_object_zero(oid):
            count = collection[oid].num_points
            return np.zeros(count, dtype=bool) if oid == 0 else np.ones(count, dtype=bool)

        bigrid = BIGrid.build(collection, r=2.0, point_filter=drop_object_zero)
        assert not bigrid.object_groups[0]
        assert bigrid.mapped_points == collection.total_points - collection[0].num_points


class TestMemory:
    def test_memory_positive_and_monotone_in_points(self):
        small = random_collection(n=10, mean_points=4, seed=1)
        large = random_collection(n=10, mean_points=20, seed=1)
        assert 0 < BIGrid.build(small, r=2.0).memory_bytes() < BIGrid.build(large, r=2.0).memory_bytes()

    def test_repr(self, clustered_collection):
        assert "BIGrid(r=2.0" in repr(BIGrid.build(clustered_collection, r=2.0))
