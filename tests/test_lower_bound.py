"""Unit tests for lower-bounding (Algorithm 4 / Lemma 1)."""

import numpy as np
import pytest

from repro.core.lower_bound import compute_lower_bounds
from repro.core.objects import ObjectCollection
from repro.core.query import PhaseStats
from repro.grid.bigrid import BIGrid
from repro.kernels import numpy_kernel_available

from conftest import oracle_scores, random_collection


class TestSoundness:
    def test_lower_bound_never_exceeds_score(self):
        collection = random_collection(n=30, mean_points=6, seed=21)
        for r in (1.0, 2.5, 5.0):
            bigrid = BIGrid.build(collection, r=r)
            lower = compute_lower_bounds(bigrid)
            truth = oracle_scores(collection, r)
            for oid in range(collection.n):
                assert lower.values[oid] <= truth[oid]

    def test_tau_max_is_max_of_values(self):
        collection = random_collection(n=25, mean_points=5, seed=22)
        lower = compute_lower_bounds(BIGrid.build(collection, r=2.0))
        assert lower.tau_max == max(lower.values)

    def test_overlapping_objects_get_positive_bound(self):
        collection = ObjectCollection.from_point_arrays(
            [np.array([[0.0, 0.0]]), np.array([[0.01, 0.0]])]
        )
        lower = compute_lower_bounds(BIGrid.build(collection, r=1.0))
        assert lower.values == [1, 1]

    def test_isolated_objects_get_zero(self):
        collection = ObjectCollection.from_point_arrays(
            [np.array([[0.0, 0.0]]), np.array([[100.0, 100.0]])]
        )
        lower = compute_lower_bounds(BIGrid.build(collection, r=1.0))
        assert lower.values == [0, 0]
        assert lower.tau_max == 0


class TestBitsets:
    def test_bitsets_kept_on_request(self):
        collection = random_collection(n=15, mean_points=5, seed=23)
        bigrid = BIGrid.build(collection, r=3.0)
        without = compute_lower_bounds(bigrid)
        with_bitsets = compute_lower_bounds(bigrid, keep_bitsets=True)
        assert without.bitsets is None
        assert with_bitsets.bitsets is not None
        for oid, bitset in enumerate(with_bitsets.bitsets):
            if bitset is None:
                assert with_bitsets.values[oid] == 0
            else:
                assert bitset.get(oid)
                assert bitset.cardinality() - 1 == with_bitsets.values[oid]

    def test_bitset_members_certainly_interact(self):
        collection = random_collection(n=20, mean_points=6, seed=24)
        r = 2.0
        bigrid = BIGrid.build(collection, r=r)
        result = compute_lower_bounds(bigrid, keep_bitsets=True)
        truth = oracle_scores(collection, r)
        for oid, bitset in enumerate(result.bitsets):
            if bitset is None:
                continue
            members = [b for b in bitset.iter_set_bits() if b != oid]
            # Every member must truly interact: check via the oracle pairs.
            for member in members:
                from scipy.spatial.distance import cdist

                distances = cdist(collection[oid].points, collection[member].points)
                assert np.min(distances) <= r


class TestStats:
    def test_counters_recorded(self):
        collection = random_collection(n=10, mean_points=5, seed=25)
        bigrid = BIGrid.build(collection, r=2.0)
        stats = PhaseStats()
        compute_lower_bounds(bigrid, stats=stats)
        assert "lower_or_operations" in stats.counters
        assert "tau_max_low" in stats.counters
        assert stats.counters["lower_or_operations"] == sum(
            len(keys) for keys in bigrid.key_lists
        )


@pytest.mark.skipif(
    not numpy_kernel_available(), reason="numpy kernel unavailable here"
)
class TestNumpyDispatch:
    """Pin the numpy kernel's size-based dispatch for lower-bounding.

    Fixed numpy dispatch overhead (flatnonzero + cumsum + reduceat) loses
    to a sequential big-int pass on small grids, so the kernel routes
    single-word grids below ``LOWER_BOUND_DISPATCH_MIN_ROWS`` shared rows
    to the reference algorithm over the pre-gathered packed words.  These
    tests pin the dispatch boundary (observable via ``LowerBoundResult
    .path``) and prove both paths bit-identical on the same grid.
    """

    @staticmethod
    def _kernel():
        from repro.kernels.numpy_backend import NUMPY_KERNEL

        return NUMPY_KERNEL

    @staticmethod
    def _backend_module():
        from repro.kernels import numpy_backend

        return numpy_backend

    def test_tiny_grid_takes_sequential_path(self):
        # 20 objects -> one bitset word, far fewer than 768 shared rows.
        collection = random_collection(n=20, mean_points=5, seed=61)
        grid = self._kernel().build_bigrid(collection, 2.0)
        assert grid.shared_words.shape[0] < 768
        result = self._kernel().lower_bounds(grid)
        assert result.path == "numpy-seq"

    def test_empty_grid_takes_sequential_path(self):
        # Isolated objects share no small cell: zero rows, trivially tiny.
        collection = ObjectCollection.from_point_arrays(
            [np.array([[0.0, 0.0]]), np.array([[500.0, 500.0]])]
        )
        grid = self._kernel().build_bigrid(collection, 1.0)
        result = self._kernel().lower_bounds(grid)
        assert result.path == "numpy-seq"
        assert result.values == [0, 0]

    def test_multi_word_grids_always_vectorized(self):
        # >64 objects need several bitset words; the sequential path only
        # handles the single-word layout, so dispatch goes vectorized
        # regardless of row count.
        collection = random_collection(n=70, mean_points=4, seed=62)
        grid = self._kernel().build_bigrid(collection, 3.0)
        assert grid.shared_words.shape[1] > 1
        result = self._kernel().lower_bounds(grid)
        assert result.path == "numpy-reduceat"

    def test_crossover_boundary_is_exact(self, monkeypatch):
        backend = self._backend_module()
        collection = random_collection(n=30, mean_points=6, seed=63)
        grid = self._kernel().build_bigrid(collection, 2.5)
        rows = grid.shared_words.shape[0]
        assert rows > 0

        # rows < threshold -> sequential; rows >= threshold -> vectorized.
        monkeypatch.setattr(backend, "LOWER_BOUND_DISPATCH_MIN_ROWS", rows + 1)
        assert self._kernel().lower_bounds(grid).path == "numpy-seq"
        monkeypatch.setattr(backend, "LOWER_BOUND_DISPATCH_MIN_ROWS", rows)
        assert self._kernel().lower_bounds(grid).path == "numpy-reduceat"

    @pytest.mark.parametrize("r", [0.8, 2.0, 5.0])
    def test_both_paths_bit_identical(self, r, monkeypatch):
        backend = self._backend_module()
        collection = random_collection(n=35, mean_points=7, seed=64)
        grid = self._kernel().build_bigrid(collection, r)

        results = {}
        for label, threshold in (("seq", 1 << 30), ("vec", 0)):
            stats = PhaseStats()
            monkeypatch.setattr(
                backend, "LOWER_BOUND_DISPATCH_MIN_ROWS", threshold
            )
            result = self._kernel().lower_bounds(
                grid, keep_bitsets=True, stats=stats
            )
            results[label] = (result, stats)
        seq, seq_stats = results["seq"]
        vec, vec_stats = results["vec"]
        assert seq.path == "numpy-seq" and vec.path == "numpy-reduceat"
        assert seq.values == vec.values
        assert seq.tau_max == vec.tau_max
        assert seq_stats.counters == vec_stats.counters
        assert [
            0 if bits is None else bits.to_int() for bits in seq.bitsets
        ] == [0 if bits is None else bits.to_int() for bits in vec.bitsets]

        # Both must also match the pure-python reference on its own grid.
        reference = compute_lower_bounds(
            BIGrid.build(collection, r=r), keep_bitsets=True
        )
        assert reference.path == "reference"
        assert seq.values == reference.values
        assert seq.tau_max == reference.tau_max
