"""Unit tests for lower-bounding (Algorithm 4 / Lemma 1)."""

import numpy as np

from repro.core.lower_bound import compute_lower_bounds
from repro.core.objects import ObjectCollection
from repro.core.query import PhaseStats
from repro.grid.bigrid import BIGrid

from conftest import oracle_scores, random_collection


class TestSoundness:
    def test_lower_bound_never_exceeds_score(self):
        collection = random_collection(n=30, mean_points=6, seed=21)
        for r in (1.0, 2.5, 5.0):
            bigrid = BIGrid.build(collection, r=r)
            lower = compute_lower_bounds(bigrid)
            truth = oracle_scores(collection, r)
            for oid in range(collection.n):
                assert lower.values[oid] <= truth[oid]

    def test_tau_max_is_max_of_values(self):
        collection = random_collection(n=25, mean_points=5, seed=22)
        lower = compute_lower_bounds(BIGrid.build(collection, r=2.0))
        assert lower.tau_max == max(lower.values)

    def test_overlapping_objects_get_positive_bound(self):
        collection = ObjectCollection.from_point_arrays(
            [np.array([[0.0, 0.0]]), np.array([[0.01, 0.0]])]
        )
        lower = compute_lower_bounds(BIGrid.build(collection, r=1.0))
        assert lower.values == [1, 1]

    def test_isolated_objects_get_zero(self):
        collection = ObjectCollection.from_point_arrays(
            [np.array([[0.0, 0.0]]), np.array([[100.0, 100.0]])]
        )
        lower = compute_lower_bounds(BIGrid.build(collection, r=1.0))
        assert lower.values == [0, 0]
        assert lower.tau_max == 0


class TestBitsets:
    def test_bitsets_kept_on_request(self):
        collection = random_collection(n=15, mean_points=5, seed=23)
        bigrid = BIGrid.build(collection, r=3.0)
        without = compute_lower_bounds(bigrid)
        with_bitsets = compute_lower_bounds(bigrid, keep_bitsets=True)
        assert without.bitsets is None
        assert with_bitsets.bitsets is not None
        for oid, bitset in enumerate(with_bitsets.bitsets):
            if bitset is None:
                assert with_bitsets.values[oid] == 0
            else:
                assert bitset.get(oid)
                assert bitset.cardinality() - 1 == with_bitsets.values[oid]

    def test_bitset_members_certainly_interact(self):
        collection = random_collection(n=20, mean_points=6, seed=24)
        r = 2.0
        bigrid = BIGrid.build(collection, r=r)
        result = compute_lower_bounds(bigrid, keep_bitsets=True)
        truth = oracle_scores(collection, r)
        for oid, bitset in enumerate(result.bitsets):
            if bitset is None:
                continue
            members = [b for b in bitset.iter_set_bits() if b != oid]
            # Every member must truly interact: check via the oracle pairs.
            for member in members:
                from scipy.spatial.distance import cdist

                distances = cdist(collection[oid].points, collection[member].points)
                assert np.min(distances) <= r


class TestStats:
    def test_counters_recorded(self):
        collection = random_collection(n=10, mean_points=5, seed=25)
        bigrid = BIGrid.build(collection, r=2.0)
        stats = PhaseStats()
        compute_lower_bounds(bigrid, stats=stats)
        assert "lower_or_operations" in stats.counters
        assert "tau_max_low" in stats.counters
        assert stats.counters["lower_or_operations"] == sum(
            len(keys) for keys in bigrid.key_lists
        )
