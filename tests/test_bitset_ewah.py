"""Unit tests for the EWAH compressed bitset."""

import pytest

from repro.bitset.ewah import _ALL, EWAHBitset, union_all
from repro.bitset.plain import PlainBitset


class TestConstruction:
    def test_empty(self):
        bitset = EWAHBitset()
        assert bitset.cardinality() == 0
        assert bitset.to_int() == 0
        assert bitset.is_empty()
        assert not bitset

    def test_from_indices(self):
        bitset = EWAHBitset.from_indices([3, 1, 4, 1, 5])
        assert list(bitset.iter_set_bits()) == [1, 3, 4, 5]
        assert bitset.cardinality() == 4

    def test_from_int_round_trip(self):
        value = 0b1011_0001_0000_0000_0000_0001
        assert EWAHBitset.from_int(value).to_int() == value

    def test_from_int_negative_rejected(self):
        with pytest.raises(ValueError):
            EWAHBitset.from_int(-1)

    def test_from_int_multi_word(self):
        value = (1 << 200) | (1 << 64) | 1
        bitset = EWAHBitset.from_int(value)
        assert list(bitset.iter_set_bits()) == [0, 64, 200]

    def test_copy_is_independent(self):
        original = EWAHBitset.from_indices([1, 2])
        clone = original.copy()
        clone.set(700)
        assert original.cardinality() == 2
        assert clone.cardinality() == 3


class TestSetGet:
    def test_append_in_order(self):
        bitset = EWAHBitset()
        for index in (0, 5, 63, 64, 500):
            bitset.set(index)
        assert list(bitset.iter_set_bits()) == [0, 5, 63, 64, 500]

    def test_set_is_idempotent(self):
        bitset = EWAHBitset()
        bitset.set(10)
        bitset.set(10)
        assert bitset.cardinality() == 1

    def test_set_earlier_bit_rebuild_path(self):
        bitset = EWAHBitset()
        bitset.set(300)
        bitset.set(2)  # slow path: earlier word
        assert list(bitset.iter_set_bits()) == [2, 300]
        assert bitset.cardinality() == 2

    def test_set_same_word_as_last(self):
        bitset = EWAHBitset()
        bitset.set(64)
        bitset.set(70)  # same word, later offset: handled by rebuild-or-append
        assert list(bitset.iter_set_bits()) == [64, 70]

    def test_negative_index_rejected(self):
        bitset = EWAHBitset()
        with pytest.raises(ValueError):
            bitset.set(-1)
        with pytest.raises(ValueError):
            bitset.get(-3)

    def test_get(self):
        bitset = EWAHBitset.from_indices([0, 100, 129])
        assert bitset.get(0)
        assert bitset.get(100)
        assert bitset.get(129)
        assert not bitset.get(1)
        assert not bitset.get(128)
        assert not bitset.get(10_000)

    def test_contains_operator(self):
        bitset = EWAHBitset.from_indices([7])
        assert 7 in bitset
        assert 8 not in bitset


class TestCompression:
    def test_sparse_run_compresses(self):
        bitset = EWAHBitset.from_indices([0, 64 * 100])
        # 101 uncompressed words vs: marker+dirty, marker(run)+dirty.
        assert bitset.uncompressed_word_count() == 101
        assert bitset.word_count() <= 4
        assert bitset.compression_ratio() > 0.9

    def test_dense_run_compresses(self):
        bitset = EWAHBitset.from_int((1 << (64 * 50)) - 1)
        assert bitset.cardinality() == 64 * 50
        assert bitset.word_count() <= 2

    def test_incompressible_literals(self):
        # Alternating bits make every word dirty.
        value = int("01" * 32 * 8, 2)
        bitset = EWAHBitset.from_int(value)
        assert bitset.word_count() >= bitset.uncompressed_word_count()

    def test_size_in_bytes_is_word_count(self):
        bitset = EWAHBitset.from_indices([1, 2, 3])
        assert bitset.size_in_bytes() == 8 * bitset.word_count()

    def test_empty_compression_ratio(self):
        assert EWAHBitset().compression_ratio() == 0.0


class TestBinaryOperations:
    def test_or(self):
        a = EWAHBitset.from_indices([1, 100])
        b = EWAHBitset.from_indices([2, 100, 300])
        assert list((a | b).iter_set_bits()) == [1, 2, 100, 300]

    def test_and(self):
        a = EWAHBitset.from_indices([1, 2, 3, 200])
        b = EWAHBitset.from_indices([2, 200, 201])
        assert list((a & b).iter_set_bits()) == [2, 200]

    def test_andnot(self):
        a = EWAHBitset.from_indices([1, 2, 3])
        b = EWAHBitset.from_indices([2])
        assert list((a - b).iter_set_bits()) == [1, 3]

    def test_xor(self):
        a = EWAHBitset.from_indices([1, 2])
        b = EWAHBitset.from_indices([2, 3])
        assert list((a ^ b).iter_set_bits()) == [1, 3]

    def test_ops_with_empty(self):
        a = EWAHBitset.from_indices([5, 700])
        empty = EWAHBitset()
        assert (a | empty) == a
        assert (a & empty).is_empty()
        assert (a - empty) == a
        assert (empty - a).is_empty()

    def test_different_lengths(self):
        short = EWAHBitset.from_indices([0])
        long = EWAHBitset.from_indices([0, 64 * 20])
        assert (short | long).cardinality() == 2
        assert (short - long).is_empty()
        assert (long - short).cardinality() == 1

    def test_mixed_backend_operand(self):
        ewah = EWAHBitset.from_indices([1, 2])
        plain = PlainBitset.from_indices([2, 3])
        result = ewah.or_(plain)
        assert isinstance(result, EWAHBitset)
        assert list(result.iter_set_bits()) == [1, 2, 3]

    def test_result_trailing_zeros_trimmed(self):
        a = EWAHBitset.from_indices([1000])
        result = a - a
        assert result.is_empty()
        assert result.word_count() == 0
        assert result.uncompressed_word_count() == 0

    def test_union_all(self):
        parts = [EWAHBitset.from_indices([i]) for i in (3, 1, 2)]
        assert list(union_all(parts).iter_set_bits()) == [1, 2, 3]
        assert union_all([]).is_empty()


class TestEqualityAndHash:
    def test_equality_across_backends(self):
        assert EWAHBitset.from_indices([1, 5]) == PlainBitset.from_indices([1, 5])
        assert EWAHBitset.from_indices([1]) != PlainBitset.from_indices([2])

    def test_hash_consistency(self):
        a = EWAHBitset.from_indices([4, 9])
        b = EWAHBitset.from_indices([4, 9])
        assert hash(a) == hash(b)

    def test_repr_preview(self):
        text = repr(EWAHBitset.from_indices(range(12)))
        assert text.startswith("EWAHBitset(")
        assert "..." in text


class TestSerialization:
    def test_round_trip_simple(self):
        bitset = EWAHBitset.from_indices([0, 3, 64, 200, 1000])
        assert EWAHBitset.deserialize(bitset.serialize()) == bitset

    def test_round_trip_empty(self):
        assert EWAHBitset.deserialize(EWAHBitset().serialize()).is_empty()

    def test_round_trip_dense(self):
        bitset = EWAHBitset.from_int((1 << 640) - 1)
        assert EWAHBitset.deserialize(bitset.serialize()) == bitset

    def test_bad_length_rejected(self):
        with pytest.raises(ValueError):
            EWAHBitset.deserialize(b"abc")

    def test_serialized_words_are_8_bytes(self):
        data = EWAHBitset.from_indices([1, 2, 3]).serialize()
        assert len(data) % 8 == 0
        assert len(data) > 0


class TestWordBoundaries:
    @pytest.mark.parametrize("index", [0, 63, 64, 65, 127, 128, 4095, 4096])
    def test_single_bit_positions(self, index):
        bitset = EWAHBitset.from_indices([index])
        assert bitset.get(index)
        assert bitset.cardinality() == 1
        assert bitset.to_int() == 1 << index

    def test_full_word_literal_becomes_run(self):
        bitset = EWAHBitset.from_int(_ALL)
        assert bitset.cardinality() == 64
        assert bitset.word_count() == 1  # one marker, zero dirty words
