"""Golden-answer regression fixtures.

These pin exact outputs of the temporal engine and the progressive query
on fixed seeded inputs.  Unlike the oracle-backed property tests, a
golden test fails on *any* behavioral drift — a different tie-break, a
changed candidate order, one extra verification — even when the final
answer stays correct, which is exactly the regression signal wanted for
the paths the kernel layer now sits under.

The frozen values were produced by the current implementation and
cross-checked against ``conftest``'s brute-force oracles (the winners
below attain the oracle's maximum score).  If an *intentional* behavior
change lands (e.g. a new tie-break rule), regenerate the tuples and say
so in the commit.
"""

import pytest

from repro.core.temporal import TemporalMIOEngine
from repro.progressive import query_progressive

from conftest import random_collection

# (r, delta) -> (winner, score) on random_collection(30, 6, seed=42, ts=True)
TEMPORAL_GOLDEN = {
    (1.5, 2.0): (23, 3),
    (3.0, 5.0): (9, 8),
    (6.0, 1.0): (23, 9),
}

# r -> [(best_oid, best_score, score_upper_bound, candidates_total,
#        candidates_verified, is_final), ...] on
# random_collection(25, 6, seed=7): the full anytime state sequence.
PROGRESSIVE_GOLDEN = {
    1.2: [
        (15, 3, 8, 18, 0, False),
        (2, 4, 8, 18, 1, False),
        (4, 6, 8, 18, 2, False),
        (4, 6, 8, 18, 3, False),
        (10, 7, 8, 18, 4, False),
        (10, 7, 8, 18, 5, False),
        (10, 7, 8, 18, 6, False),
        (10, 7, 8, 18, 7, False),
        (10, 7, 8, 18, 8, False),
        (10, 7, 8, 18, 9, False),
        (24, 8, 8, 18, 10, True),
    ],
    3.0: [
        (24, 8, 8, 13, 0, True),
    ],
}


@pytest.fixture(scope="module")
def temporal_collection():
    return random_collection(n=30, mean_points=6, seed=42, with_timestamps=True)


@pytest.fixture(scope="module")
def progressive_collection():
    return random_collection(n=25, mean_points=6, seed=7)


class TestTemporalGolden:
    @pytest.mark.parametrize("r,delta", sorted(TEMPORAL_GOLDEN))
    def test_query_matches_golden(self, temporal_collection, r, delta):
        result = TemporalMIOEngine(temporal_collection).query(r, delta)
        assert result.algorithm == "bigrid-temporal"
        assert (result.winner, result.score) == TEMPORAL_GOLDEN[(r, delta)]
        assert result.exact

    def test_tighter_delta_never_raises_score(self, temporal_collection):
        # Sanity on the fixture itself: the golden scores are monotone in
        # delta at fixed r (the temporal predicate only gets stricter).
        engine = TemporalMIOEngine(temporal_collection)
        loose = engine.query(3.0, 5.0)
        tight = engine.query(3.0, 0.5)
        assert tight.score <= loose.score


class TestProgressiveGolden:
    @pytest.mark.parametrize("r", sorted(PROGRESSIVE_GOLDEN))
    def test_state_sequence_matches_golden(self, progressive_collection, r):
        states = [
            (
                state.best_oid,
                state.best_score,
                state.score_upper_bound,
                state.candidates_total,
                state.candidates_verified,
                state.is_final,
            )
            for state in query_progressive(progressive_collection, r)
        ]
        assert states == PROGRESSIVE_GOLDEN[r]

    @pytest.mark.parametrize("r", sorted(PROGRESSIVE_GOLDEN))
    def test_truncated_stream_is_golden_prefix(self, progressive_collection, r):
        golden = PROGRESSIVE_GOLDEN[r]
        limit = max(1, len(golden) - 2)
        states = [
            (
                state.best_oid,
                state.best_score,
                state.score_upper_bound,
                state.candidates_total,
                state.candidates_verified,
                state.is_final,
            )
            for state in query_progressive(
                progressive_collection, r, max_verifications=limit - 1
            )
        ]
        assert states == golden[:limit]
