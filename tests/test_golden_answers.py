"""Golden-answer regression fixtures.

These pin exact outputs of the temporal engine and the progressive query
on fixed seeded inputs.  Unlike the oracle-backed property tests, a
golden test fails on *any* behavioral drift — a different tie-break, a
changed candidate order, one extra verification — even when the final
answer stays correct, which is exactly the regression signal wanted for
the paths the kernel layer now sits under.

The frozen values were produced by the current implementation and
cross-checked against ``conftest``'s brute-force oracles (the winners
below attain the oracle's maximum score).  If an *intentional* behavior
change lands (e.g. a new tie-break rule), regenerate the tuples and say
so in the commit.
"""

import pytest

from repro.core.engine import MIOEngine
from repro.core.temporal import TemporalMIOEngine
from repro.kernels import numpy_kernel_available
from repro.progressive import query_progressive
from repro.session import QuerySession

from conftest import random_collection

KERNELS = ("python", "numpy") if numpy_kernel_available() else ("python",)
BITSET_BACKENDS = ("ewah", "plain", "roaring")

# (r, delta) -> (winner, score) on random_collection(30, 6, seed=42, ts=True)
TEMPORAL_GOLDEN = {
    (1.5, 2.0): (23, 3),
    (3.0, 5.0): (9, 8),
    (6.0, 1.0): (23, 9),
}

# r -> [(best_oid, best_score, score_upper_bound, candidates_total,
#        candidates_verified, is_final), ...] on
# random_collection(25, 6, seed=7): the full anytime state sequence.
PROGRESSIVE_GOLDEN = {
    1.2: [
        (15, 3, 8, 18, 0, False),
        (2, 4, 8, 18, 1, False),
        (4, 6, 8, 18, 2, False),
        (4, 6, 8, 18, 3, False),
        (10, 7, 8, 18, 4, False),
        (10, 7, 8, 18, 5, False),
        (10, 7, 8, 18, 6, False),
        (10, 7, 8, 18, 7, False),
        (10, 7, 8, 18, 8, False),
        (10, 7, 8, 18, 9, False),
        (24, 8, 8, 18, 10, True),
    ],
    3.0: [
        (24, 8, 8, 13, 0, True),
    ],
}


# Verification-heavy fixtures: large r on a clustered collection leaves
# most of the collection as candidates after filtering, so VERIFICATION
# dominates — exactly the regime the batched kernel verifier runs in.
# Tuples are (winner, score, candidates, verified_objects, distance_rows,
# posting_checks, verify_points_skipped, early_terminated), generated with
# the pre-batching python reference and cross-checked against the oracle.
VERIFY_HEAVY_GOLDEN = {
    5.0: (4, 18, 19, 4, 346, 190, 0, 1),
    8.0: (4, 20, 24, 16, 1669, 762, 0, 1),
    12.0: (4, 21, 28, 25, 7105, 2273, 0, 1),
}

# The with-label session path on the same collection: repeated ceilings
# replay labels, so later queries skip labeled points (high coverage —
# 43 and 62 of ~320 points) while the answers and distance work stay
# pinned.  Tuples as above, preceded by the algorithm that must run.
SESSION_LABEL_GOLDEN = [
    (12.0, "bigrid", (4, 21, 28, 25, 5385, 1901, 0, 1)),
    (9.0, "bigrid", (4, 20, 27, 13, 1228, 534, 0, 1)),
    (12.0, "bigrid-label", (4, 21, 28, 25, 5385, 1901, 43, 1)),
    (9.0, "bigrid-label", (4, 20, 27, 13, 1228, 534, 62, 1)),
]

_VERIFY_COUNTER_KEYS = (
    "candidates",
    "verified_objects",
    "distance_rows",
    "posting_checks",
    "verify_points_skipped",
    "early_terminated",
)


@pytest.fixture(scope="module")
def verify_heavy_collection():
    return random_collection(n=40, mean_points=8, seed=77)


@pytest.fixture(scope="module")
def temporal_collection():
    return random_collection(n=30, mean_points=6, seed=42, with_timestamps=True)


@pytest.fixture(scope="module")
def progressive_collection():
    return random_collection(n=25, mean_points=6, seed=7)


class TestVerificationHeavyGolden:
    @pytest.mark.parametrize("kernel", KERNELS)
    @pytest.mark.parametrize("backend", BITSET_BACKENDS)
    @pytest.mark.parametrize("r", sorted(VERIFY_HEAVY_GOLDEN))
    def test_engine_query_matches_golden(
        self, verify_heavy_collection, r, backend, kernel
    ):
        result = MIOEngine(
            verify_heavy_collection, backend=backend, kernel=kernel
        ).query(r)
        winner, score, *counters = VERIFY_HEAVY_GOLDEN[r]
        assert result.exact
        assert (result.winner, result.score) == (winner, score)
        assert [
            result.counters[key] for key in _VERIFY_COUNTER_KEYS
        ] == counters

    @pytest.mark.parametrize("kernel", KERNELS)
    @pytest.mark.parametrize("backend", BITSET_BACKENDS)
    def test_session_label_sequence_matches_golden(
        self, verify_heavy_collection, backend, kernel
    ):
        session = QuerySession(
            verify_heavy_collection, backend=backend, kernel=kernel
        )
        for r, algorithm, golden in SESSION_LABEL_GOLDEN:
            result = session.query(r)
            winner, score, *counters = golden
            assert result.algorithm == algorithm, r
            assert result.exact
            assert (result.winner, result.score) == (winner, score), r
            assert [
                result.counters[key] for key in _VERIFY_COUNTER_KEYS
            ] == counters, r


class TestTemporalGolden:
    @pytest.mark.parametrize("r,delta", sorted(TEMPORAL_GOLDEN))
    def test_query_matches_golden(self, temporal_collection, r, delta):
        result = TemporalMIOEngine(temporal_collection).query(r, delta)
        assert result.algorithm == "bigrid-temporal"
        assert (result.winner, result.score) == TEMPORAL_GOLDEN[(r, delta)]
        assert result.exact

    def test_tighter_delta_never_raises_score(self, temporal_collection):
        # Sanity on the fixture itself: the golden scores are monotone in
        # delta at fixed r (the temporal predicate only gets stricter).
        engine = TemporalMIOEngine(temporal_collection)
        loose = engine.query(3.0, 5.0)
        tight = engine.query(3.0, 0.5)
        assert tight.score <= loose.score


class TestProgressiveGolden:
    @pytest.mark.parametrize("r", sorted(PROGRESSIVE_GOLDEN))
    def test_state_sequence_matches_golden(self, progressive_collection, r):
        states = [
            (
                state.best_oid,
                state.best_score,
                state.score_upper_bound,
                state.candidates_total,
                state.candidates_verified,
                state.is_final,
            )
            for state in query_progressive(progressive_collection, r)
        ]
        assert states == PROGRESSIVE_GOLDEN[r]

    @pytest.mark.parametrize("r", sorted(PROGRESSIVE_GOLDEN))
    def test_truncated_stream_is_golden_prefix(self, progressive_collection, r):
        golden = PROGRESSIVE_GOLDEN[r]
        limit = max(1, len(golden) - 2)
        states = [
            (
                state.best_oid,
                state.best_score,
                state.score_upper_bound,
                state.candidates_total,
                state.candidates_verified,
                state.is_final,
            )
            for state in query_progressive(
                progressive_collection, r, max_verifications=limit - 1
            )
        ]
        assert states == golden[:limit]
