"""Integration tests for the MIO engine (Algorithm 2)."""

import pytest

from repro.core.engine import MIOEngine
from repro.core.pipeline import kth_largest
from repro.datasets import make_neurons, make_powerlaw, make_trajectories

from conftest import oracle_scores, random_collection


class TestQueryExactness:
    @pytest.mark.parametrize("seed", [1, 2, 3])
    @pytest.mark.parametrize("r", [1.0, 2.0, 4.0])
    def test_matches_oracle_2d(self, seed, r):
        collection = random_collection(n=35, mean_points=6, seed=seed)
        truth = oracle_scores(collection, r)
        result = MIOEngine(collection).query(r)
        assert result.score == max(truth)
        assert truth[result.winner] == result.score

    @pytest.mark.parametrize("r", [1.5, 3.0])
    def test_matches_oracle_3d(self, clustered_collection_3d, r):
        truth = oracle_scores(clustered_collection_3d, r)
        result = MIOEngine(clustered_collection_3d).query(r)
        assert result.score == max(truth)

    def test_matches_oracle_on_generated_datasets(self):
        for collection in (
            make_neurons(n=12, mean_points=30, extent=60.0, seed=2),
            make_trajectories(n=25, points_per_trajectory=10, extent=300.0, seed=2),
            make_powerlaw(n=30, mean_points=6, extent=400.0, n_communities=5, seed=2),
        ):
            truth = oracle_scores(collection, 4.0)
            result = MIOEngine(collection).query(4.0)
            assert result.score == max(truth)

    def test_plain_backend_same_answer(self, clustered_collection):
        r = 2.0
        ewah = MIOEngine(clustered_collection, backend="ewah").query(r)
        plain = MIOEngine(clustered_collection, backend="plain").query(r)
        assert ewah.score == plain.score

    def test_known_small_case(self, small_collection):
        result = MIOEngine(small_collection).query(1.5)
        # o1 touches both o0 (gap 0.5) and o2 (gap 1.0); others touch one.
        assert result.winner == 1
        assert result.score == 2

    def test_far_apart_scores_zero(self, small_collection):
        result = MIOEngine(small_collection).query(0.1)
        assert result.score == 0


class TestTopK:
    @pytest.mark.parametrize("k", [1, 2, 5, 10])
    def test_topk_matches_oracle(self, clustered_collection, k):
        r = 2.0
        truth = sorted(oracle_scores(clustered_collection, r), reverse=True)
        result = MIOEngine(clustered_collection).query_topk(r, k)
        assert [score for _, score in result.topk] == truth[:k]

    def test_topk_k1_equals_query(self, clustered_collection):
        engine = MIOEngine(clustered_collection)
        assert engine.query_topk(2.0, 1).score == engine.query(2.0).score

    def test_topk_k_exceeding_n(self, small_collection):
        result = MIOEngine(small_collection).query_topk(1.5, 100)
        assert len(result.topk) == small_collection.n

    def test_invalid_k(self, small_collection):
        with pytest.raises(ValueError):
            MIOEngine(small_collection).query_topk(1.0, 0)


class TestValidation:
    def test_invalid_r(self, small_collection):
        engine = MIOEngine(small_collection)
        with pytest.raises(ValueError):
            engine.query(0.0)
        with pytest.raises(ValueError):
            engine.query(-2.0)

    def test_invalid_label_reuse(self, small_collection):
        with pytest.raises(ValueError):
            MIOEngine(small_collection, label_reuse="sometimes")


class TestResultMetadata:
    def test_phases_recorded(self, clustered_collection):
        result = MIOEngine(clustered_collection).query(2.0)
        for phase in ("grid_mapping", "lower_bounding", "upper_bounding", "verification"):
            assert phase in result.phases
            assert result.phases[phase] >= 0.0
        assert result.total_time > 0.0
        assert result.phase_time("nonexistent") == 0.0

    def test_counters_recorded(self, clustered_collection):
        result = MIOEngine(clustered_collection).query(2.0)
        assert result.counters["mapped_points"] == clustered_collection.total_points
        assert result.counters["candidates"] >= 1
        assert result.counters["verified_objects"] >= 1

    def test_memory_reported(self, clustered_collection):
        result = MIOEngine(clustered_collection).query(2.0)
        assert result.memory_bytes > 0

    def test_algorithm_name(self, clustered_collection):
        assert MIOEngine(clustered_collection).query(2.0).algorithm == "bigrid"

    def test_last_bigrid_exposed(self, clustered_collection):
        engine = MIOEngine(clustered_collection)
        assert engine.last_bigrid is None
        engine.query(2.0)
        assert engine.last_bigrid is not None
        assert engine.last_bigrid.r == 2.0

    def test_repr(self, clustered_collection):
        text = repr(MIOEngine(clustered_collection).query(2.0))
        assert "MIOResult" in text and "bigrid" in text


class TestKthLargest:
    def test_basic(self):
        assert kth_largest([5, 1, 3], 1) == 5
        assert kth_largest([5, 1, 3], 2) == 3
        assert kth_largest([5, 1, 3], 3) == 1

    def test_k_beyond_length(self):
        assert kth_largest([5, 1], 5) == 0


class TestFloatBoundaryRegression:
    """Regression: computed distance exactly r across a cell boundary.

    A point infinitesimally left of 0 floors into cell -1 while a point at
    exactly 1.0 floors into cell 1 of a width-1 grid; their float64
    distance rounds to exactly r = 1.0, so an unguarded large grid would
    place them two cells apart and the upper bound would miss the pair.
    The guarded widths (grid.keys.WIDTH_GUARD) keep the engine consistent
    with float comparisons.  Found by hypothesis.
    """

    def test_denormal_boundary_pair(self):
        import numpy as np

        from repro.core.objects import ObjectCollection

        collection = ObjectCollection.from_point_arrays(
            [
                np.array([[1.0, 0.0], [0.0, 2.0]]),
                np.array([[-2.225073858507203e-309, 0.0]]),
            ]
        )
        result = MIOEngine(collection).query(1.0)
        assert result.score == 1

    def test_exact_width_pair_on_boundary(self):
        import numpy as np

        from repro.core.objects import ObjectCollection

        # Both points exactly on cell corners, distance exactly r.
        collection = ObjectCollection.from_point_arrays(
            [np.array([[0.0, 0.0]]), np.array([[3.0, 4.0]])]
        )
        result = MIOEngine(collection).query(5.0)
        assert result.score == 1


class TestQueryBatch:
    def test_batch_matches_individual_queries(self, clustered_collection):
        engine = MIOEngine(clustered_collection)
        sweep = [2.9, 2.1, 3.5, 2.5]
        batch = engine.query_batch(sweep)
        for r, result in zip(sweep, batch):
            assert result.r == r
            assert result.score == max(oracle_scores(clustered_collection, r))

    def test_batch_reuses_labels_within_ceiling(self, clustered_collection):
        engine = MIOEngine(clustered_collection)
        batch = engine.query_batch([2.2, 2.9, 2.5])
        # The largest r of the ceil=3 group labels; the others reuse.
        by_r = {result.r: result for result in batch}
        assert by_r[2.9].algorithm == "bigrid"
        assert by_r[2.2].algorithm == "bigrid-label"
        assert by_r[2.5].algorithm == "bigrid-label"

    def test_batch_without_store_leaves_engine_unchanged(self, clustered_collection):
        engine = MIOEngine(clustered_collection)
        engine.query_batch([2.0, 2.5])
        assert engine.label_store is None

    def test_batch_with_existing_store_keeps_it(self, clustered_collection):
        from repro.core.labels import LabelStore

        store = LabelStore()
        engine = MIOEngine(clustered_collection, label_store=store)
        engine.query_batch([2.0])
        assert engine.label_store is store
        assert store.has(2)

    def test_empty_batch(self, clustered_collection):
        assert MIOEngine(clustered_collection).query_batch([]) == []

    def test_batch_preserves_input_order(self, clustered_collection):
        engine = MIOEngine(clustered_collection)
        sweep = [5.0, 2.0, 3.0]
        assert [result.r for result in engine.query_batch(sweep)] == sweep
