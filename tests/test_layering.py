"""Layering lint: the import graph respects the architecture.

``docs/architecture.md`` draws the layers; this suite enforces them with
an AST walk over every module in ``src/repro`` (CI runs it as its own
job, so a violating import fails fast with the offending file:line):

* **foundation stays below orchestration** -- ``repro.core``,
  ``repro.grid``, and ``repro.bitset`` never import the engines' callers
  (``repro.parallel``, ``repro.session``, ``repro.dynamic``,
  ``repro.progressive``, ``repro.bench``, ``repro.cli``, ``repro.baselines``);
* **observability is freestanding** -- ``repro.obs`` imports nothing
  from the query machinery, so it can be reasoned about (and reused)
  independently;
* **sharding sits below the orchestrators** -- ``repro.shard`` (curves,
  router, executor, merge) is plumbing that ``repro.parallel`` drives;
  it must never import the session/service/CLI layers, nor
  ``repro.parallel`` itself, or the worker processes would drag the
  whole application stack into every fork;
* **the planner is pure decision logic** -- ``repro.planner`` (the
  cost-model query planner) sits *below* ``repro.core``: the pipeline
  applies its plans, so the planner itself may import nothing from the
  package except ``repro.errors``.  Capability facts it needs (numpy
  availability, core counts, plan-cache balance) arrive as statistics
  captured by its callers;
* **no private cross-module imports** -- ``from repro.x import _name``
  couples a module to another's internals; everything shared is public
  (this is what forced :func:`~repro.core.verification.bits_of` and
  :func:`~repro.datasets.trajectories.zipf_partition` into the open).
"""

from __future__ import annotations

import ast
from pathlib import Path
from typing import Iterator, List, Tuple

SRC = Path(__file__).resolve().parent.parent / "src" / "repro"

#: Modules the foundation layers must never reach up into.
ORCHESTRATION = (
    "repro.parallel",
    "repro.session",
    "repro.dynamic",
    "repro.progressive",
    "repro.bench",
    "repro.cli",
    "repro.baselines",
)

#: The foundation layers themselves.
FOUNDATION = ("repro.core", "repro.grid", "repro.bitset", "repro.kernels")

#: Query machinery the freestanding obs layer must not depend on.
QUERY_MACHINERY = (
    "repro.core",
    "repro.grid",
    "repro.parallel",
    "repro.planner",
    "repro.session",
)

#: Everything the planner may import (besides the stdlib and itself).
PLANNER_ALLOWED = ("repro.errors", "repro.planner")

#: Layers the shard plumbing must never reach up into.  ``repro.parallel``
#: is in the list on purpose: the dependency points the other way (the
#: parallel engine drives the shard executor), and keeping workers free of
#: the orchestrators keeps the fork image small.
SHARD_FORBIDDEN = ORCHESTRATION + ("repro.service",)


def _module_name(path: Path) -> str:
    relative = path.relative_to(SRC.parent).with_suffix("")
    parts = list(relative.parts)
    if parts[-1] == "__init__":
        parts.pop()
    return ".".join(parts)


def _imports(path: Path) -> Iterator[Tuple[int, str, List[str]]]:
    """Yield ``(lineno, imported_module, imported_names)`` for one file."""
    tree = ast.parse(path.read_text(), filename=str(path))
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                yield node.lineno, alias.name, []
        elif isinstance(node, ast.ImportFrom):
            assert node.level == 0, f"{path}: relative import at line {node.lineno}"
            module = node.module or ""
            yield node.lineno, module, [alias.name for alias in node.names]


def _in_layer(module: str, layers: Tuple[str, ...]) -> bool:
    return any(module == layer or module.startswith(layer + ".") for layer in layers)


def _all_files() -> List[Path]:
    files = sorted(SRC.rglob("*.py"))
    assert files, "src/repro not found"
    return files


def test_foundation_never_imports_orchestration():
    violations = []
    for path in _all_files():
        module = _module_name(path)
        if not _in_layer(module, FOUNDATION):
            continue
        for lineno, imported, _ in _imports(path):
            if _in_layer(imported, ORCHESTRATION + ("repro.shard",)):
                violations.append(f"{path}:{lineno}: {module} imports {imported}")
    assert not violations, "\n".join(violations)


def test_shard_never_imports_orchestration():
    violations = []
    for path in _all_files():
        module = _module_name(path)
        if not _in_layer(module, ("repro.shard",)):
            continue
        for lineno, imported, _ in _imports(path):
            if _in_layer(imported, SHARD_FORBIDDEN):
                violations.append(f"{path}:{lineno}: {module} imports {imported}")
    assert not violations, "\n".join(violations)


def test_obs_is_freestanding():
    violations = []
    for path in _all_files():
        module = _module_name(path)
        if not _in_layer(module, ("repro.obs",)):
            continue
        for lineno, imported, _ in _imports(path):
            if _in_layer(imported, QUERY_MACHINERY):
                violations.append(f"{path}:{lineno}: {module} imports {imported}")
    assert not violations, "\n".join(violations)


def test_planner_imports_only_errors():
    violations = []
    for path in _all_files():
        module = _module_name(path)
        if not _in_layer(module, ("repro.planner",)):
            continue
        for lineno, imported, _ in _imports(path):
            if imported.startswith("repro") and not _in_layer(
                imported, PLANNER_ALLOWED
            ):
                violations.append(f"{path}:{lineno}: {module} imports {imported}")
    assert not violations, "\n".join(violations)


def test_no_private_cross_module_imports():
    violations = []
    for path in _all_files():
        for lineno, imported, names in _imports(path):
            if not imported.startswith("repro"):
                continue
            private = [name for name in names if name.startswith("_")]
            if private:
                violations.append(
                    f"{path}:{lineno}: from {imported} import {', '.join(private)}"
                )
    assert not violations, "\n".join(violations)
