"""Tests for bitset backend selection."""

import pytest

from repro.bitset import EWAHBitset, PlainBitset, available_backends, bitset_class


def test_available_backends():
    assert set(available_backends()) == {"ewah", "plain", "roaring"}


def test_resolution():
    from repro.bitset import RoaringBitset

    assert bitset_class("ewah") is EWAHBitset
    assert bitset_class("plain") is PlainBitset
    assert bitset_class("roaring") is RoaringBitset


def test_unknown_backend_lists_options():
    with pytest.raises(ValueError, match="ewah"):
        bitset_class("wah64")


def test_backends_share_interface():
    for name in available_backends():
        bitset = bitset_class(name).from_indices([2, 5])
        assert bitset.cardinality() == 2
        assert list(bitset.iter_set_bits()) == [2, 5]
        assert bitset.size_in_bytes() > 0
