"""Tests for the per-phase partitioning plans (Section IV)."""

from repro.grid.bigrid import BIGrid
from repro.parallel.plans import (
    plan_lower_bounding_greedy_d,
    plan_objects_by_weight,
    plan_upper_bounding_greedy_d,
    plan_upper_bounding_greedy_p,
    plan_verification_chunks,
    split_points_round_robin,
)

from conftest import random_collection


def make_bigrid(seed=81, r=2.0):
    return BIGrid.build(random_collection(n=25, mean_points=8, seed=seed), r=r)


class TestObjectPlans:
    def test_assignment_covers_all_objects(self):
        bigrid = make_bigrid()
        for plan in (
            plan_lower_bounding_greedy_d(bigrid, 4),
            plan_upper_bounding_greedy_d(bigrid, 4),
        ):
            assert len(plan.assignment) == bigrid.collection.n
            assert all(0 <= core < 4 for core in plan.assignment)

    def test_loads_match_assignment(self):
        bigrid = make_bigrid()
        plan = plan_lower_bounding_greedy_d(bigrid, 3)
        recomputed = [0.0] * 3
        for oid, core in enumerate(plan.assignment):
            recomputed[core] += len(bigrid.key_lists[oid])
        assert recomputed == plan.loads

    def test_single_core(self):
        plan = plan_objects_by_weight([3.0, 1.0], 1)
        assert plan.assignment == [0, 0]


class TestGreedyPGroupPlan:
    def test_every_group_assigned_once(self):
        bigrid = make_bigrid()
        plan = plan_upper_bounding_greedy_p(bigrid, 4)
        total_groups = sum(len(groups) for groups in bigrid.object_groups)
        assert len(plan.tasks) == total_groups
        assert len(plan.assignment) == total_groups

    def test_key_ownership_is_exclusive(self):
        """Each large-grid key is handled by exactly one core (no b_adj races)."""
        bigrid = make_bigrid()
        plan = plan_upper_bounding_greedy_p(bigrid, 4)
        owner = {}
        for (oid, key, _points), core in zip(plan.tasks, plan.assignment):
            assert owner.setdefault(key, core) == core

    def test_loads_are_positive_where_used(self):
        bigrid = make_bigrid()
        plan = plan_upper_bounding_greedy_p(bigrid, 2)
        assert sum(plan.loads) > 0

    def test_label_mode_cost_differs(self):
        bigrid = make_bigrid()
        with_labeling = plan_upper_bounding_greedy_p(bigrid, 2, include_labeling=True)
        without = plan_upper_bounding_greedy_p(bigrid, 2, include_labeling=False)
        assert sum(with_labeling.loads) > sum(without.loads)


class TestVerificationChunks:
    def test_round_robin_split(self):
        assert split_points_round_robin([10, 11, 12, 13, 14], 2) == [[10, 12, 14], [11, 13]]

    def test_chunks_cover_all_points(self):
        bigrid = make_bigrid()
        groups = bigrid.object_groups[0]
        per_core = plan_verification_chunks(groups, 3)
        covered = sorted(
            point
            for chunk_list in per_core
            for _key, points in chunk_list
            for point in points
        )
        expected = sorted(point for points in groups.values() for point in points)
        assert covered == expected

    def test_small_groups_go_to_lightest_core(self):
        groups = {("a",): [0], ("b",): [1], ("c",): [2], ("d",): [3]}
        per_core = plan_verification_chunks(groups, 4)
        sizes = [sum(len(points) for _k, points in chunk_list) for chunk_list in per_core]
        assert sizes == [1, 1, 1, 1]

    def test_large_group_spreads_over_cores(self):
        groups = {("a",): list(range(12))}
        per_core = plan_verification_chunks(groups, 3)
        sizes = [sum(len(points) for _k, points in chunk_list) for chunk_list in per_core]
        assert sizes == [4, 4, 4]
