"""Tests for the temporal MIO extension (Appendix B)."""

import numpy as np
import pytest

from repro.core.objects import ObjectCollection
from repro.core.temporal import TemporalMIOEngine

from conftest import oracle_temporal_scores, random_collection


class TestExactness:
    @pytest.mark.parametrize("delta", [0.5, 2.0, 10.0])
    def test_matches_oracle(self, delta):
        collection = random_collection(n=25, mean_points=6, seed=61, with_timestamps=True)
        truth = oracle_temporal_scores(collection, 2.0, delta)
        result = TemporalMIOEngine(collection).query(2.0, delta)
        assert result.score == max(truth)
        assert truth[result.winner] == result.score

    def test_delta_zero_exact_timestamps(self):
        # Hand-built: only o0/o1 share both space and an exact timestamp.
        collection = ObjectCollection.from_point_arrays(
            [
                np.array([[0.0, 0.0], [1.0, 0.0]]),
                np.array([[0.1, 0.0], [9.0, 9.0]]),
                np.array([[0.2, 0.0]]),
            ],
            [
                np.array([1.0, 2.0]),
                np.array([1.0, 3.0]),
                np.array([5.0]),  # co-located with o0/o1 but never co-temporal
            ],
        )
        result = TemporalMIOEngine(collection).query(1.0, 0.0)
        assert result.score == 1
        assert result.winner in (0, 1)

    def test_delta_zero_random(self):
        collection = random_collection(n=20, mean_points=5, seed=62, with_timestamps=True)
        # Quantize timestamps so exact matches exist.
        quantized = ObjectCollection.from_point_arrays(
            [obj.points for obj in collection],
            [np.round(obj.timestamps) for obj in collection],
        )
        truth = oracle_temporal_scores(quantized, 3.0, 0.0)
        result = TemporalMIOEngine(quantized).query(3.0, 0.0)
        assert result.score == max(truth)

    def test_large_delta_reduces_to_spatial(self):
        collection = random_collection(n=20, mean_points=5, seed=63, with_timestamps=True)
        spatial_truth = oracle_temporal_scores(collection, 2.0, delta=1e9)
        result = TemporalMIOEngine(collection).query(2.0, 1e9)
        assert result.score == max(spatial_truth)

    def test_3d_with_time(self):
        collection = random_collection(
            n=15, mean_points=5, dimension=3, seed=64, with_timestamps=True
        )
        truth = oracle_temporal_scores(collection, 3.0, 1.5)
        result = TemporalMIOEngine(collection).query(3.0, 1.5)
        assert result.score == max(truth)


class TestTighterDeltaNeverIncreasesScores:
    def test_monotone_in_delta(self):
        collection = random_collection(n=20, mean_points=5, seed=65, with_timestamps=True)
        engine = TemporalMIOEngine(collection)
        scores = [engine.query(2.0, delta).score for delta in (0.5, 1.0, 4.0, 16.0)]
        assert scores == sorted(scores)


class TestValidation:
    def test_requires_timestamps(self, clustered_collection):
        with pytest.raises(ValueError):
            TemporalMIOEngine(clustered_collection)

    def test_invalid_thresholds(self):
        collection = random_collection(n=5, mean_points=3, seed=66, with_timestamps=True)
        engine = TemporalMIOEngine(collection)
        with pytest.raises(ValueError):
            engine.query(0.0, 1.0)
        with pytest.raises(ValueError):
            engine.query(1.0, -0.5)


class TestMetadata:
    def test_phases_and_counters(self):
        collection = random_collection(n=15, mean_points=5, seed=67, with_timestamps=True)
        result = TemporalMIOEngine(collection).query(2.0, 2.0)
        assert result.algorithm == "bigrid-temporal"
        assert "grid_mapping" in result.phases
        assert result.counters["time_bins"] >= 1
        assert result.memory_bytes > 0

    def test_negative_timestamps_supported(self):
        collection = ObjectCollection.from_point_arrays(
            [np.array([[0.0, 0.0]]), np.array([[0.1, 0.0]])],
            [np.array([-5.0]), np.array([-5.5])],
        )
        result = TemporalMIOEngine(collection).query(1.0, 1.0)
        assert result.score == 1


class TestExtremeDeltas:
    """Regressions found by hypothesis: tiny deltas must not overflow."""

    def test_denormal_delta(self):
        collection = random_collection(n=6, mean_points=3, seed=68, with_timestamps=True)
        truth = oracle_temporal_scores(collection, 2.0, 1.1125369292536007e-308)
        result = TemporalMIOEngine(collection).query(2.0, 1.1125369292536007e-308)
        assert result.score == max(truth)

    def test_small_delta_bins_as_python_ints(self):
        collection = random_collection(n=5, mean_points=3, seed=69, with_timestamps=True)
        truth = oracle_temporal_scores(collection, 2.0, 1e-18)
        result = TemporalMIOEngine(collection).query(2.0, 1e-18)
        assert result.score == max(truth)
