"""Neuroscience scenario (Example 1 of the paper): finding hub neurons.

Neurons are modeled as 3-D point sets (their sampled arbors); two neurons
can form a synapse -- "interact" -- when an axon and a dendrite come within
a proximity threshold r.  Hub neurons, which connect to many others,
orchestrate network activity, and an MIO query finds them directly.

Analysts sweep r (synapse formation distances vary by study, typically a
few micrometers), which is exactly the workload the label store
accelerates: the first query per ceil(r) pays full price, subsequent
fine-grained sweeps reuse the recorded point labels.

Run:  python examples/neuroscience_hub_neurons.py
"""

import time

from repro import LabelStore, MIOEngine, make_neurons


def main() -> None:
    # A cortical patch: 120 synthetic neuron arbors (see DESIGN.md for the
    # NeuroMorpho substitution), coordinates in micrometers.
    collection = make_neurons(
        n=120,
        mean_points=150,
        extent=250.0,
        n_clusters=6,
        cluster_spread=14.0,
        step=2.0,
        seed=11,
    )
    print(f"simulated cortical patch: {collection}")

    # The label store persists intermediate results across the sweep.
    engine = MIOEngine(collection, label_store=LabelStore())

    print("\nsweeping synapse-formation thresholds (micrometers):")
    print(f"{'r':>6} | {'hub neuron':>10} | {'degree':>6} | {'time [ms]':>9} | labels")
    for r in (4.0, 4.2, 4.5, 4.8, 6.0, 6.5):
        started = time.perf_counter()
        result = engine.query(r)
        elapsed = (time.perf_counter() - started) * 1e3
        mode = "reused" if result.algorithm == "bigrid-label" else "created"
        print(f"{r:>6.1f} | {'o_' + str(result.winner):>10} | {result.score:>6} "
              f"| {elapsed:>9.1f} | {mode}")

    # Inspect the hub at the finest threshold: which neurons does it reach?
    r = 4.0
    top = engine.query_topk(r, k=8)
    print(f"\ntop hub candidates at r={r} (potential rich-club members):")
    for oid, degree in top.topk:
        arbor = collection[oid]
        low, high = arbor.bounds()
        span = float(max(high - low))
        print(f"  o_{oid}: degree {degree}, {arbor.num_points} sample points, "
              f"arbor span {span:.0f} um")


if __name__ == "__main__":
    main()
