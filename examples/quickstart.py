"""Quickstart: find the most interactive object in a spatial dataset.

Generates a small trajectory collection, runs an MIO query with the BIGrid
engine, cross-checks the answer against the nested-loop baseline, and shows
the filter-and-verification statistics that make BIGrid fast.

Run:  python examples/quickstart.py
"""

from repro import MIOEngine, NestedLoopAlgorithm, make_trajectories


def main() -> None:
    # An object is a set of spatial points; here, 2-D trajectory segments.
    collection = make_trajectories(n=300, points_per_trajectory=30, seed=42)
    print(f"dataset: {collection}")

    engine = MIOEngine(collection)

    # The MIO query: which object has a within-r point pair with the most
    # other objects?
    r = 5.0
    result = engine.query(r)
    print(f"\nMIO answer at r={r}:")
    print(f"  object o_{result.winner} interacts with {result.score} of "
          f"{collection.n - 1} other objects "
          f"({100.0 * result.score / (collection.n - 1):.0f}%)")

    # Phase breakdown (Algorithm 2's pipeline).
    print("\nphase times:")
    for phase, seconds in result.phases.items():
        print(f"  {phase:<16} {seconds * 1e3:8.2f} ms")

    # Pruning statistics: most objects never reach exact scoring.
    print("\npruning:")
    print(f"  candidates after upper-bound pruning: "
          f"{result.counters['candidates']} / {collection.n}")
    print(f"  objects exactly verified:             "
          f"{result.counters['verified_objects']}")

    # Sanity: the brute-force nested loop agrees.
    brute = NestedLoopAlgorithm(collection).query(r)
    assert brute.score == result.score
    print(f"\nnested-loop cross-check: score {brute.score} "
          f"in {brute.total_time:.3f}s vs BIGrid {result.total_time:.3f}s")

    # Top-k variant: the k most interactive objects.
    topk = engine.query_topk(r, k=5)
    print("\ntop-5 most interactive objects:")
    for oid, score in topk.topk:
        print(f"  o_{oid}: tau = {score}")


if __name__ == "__main__":
    main()
