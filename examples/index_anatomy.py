"""Anatomy of a BIGrid: what the index stores and why it prunes.

Builds the index directly (without the engine) and walks through the
structures of Section III-A: the small-grid bitsets behind Lemma 1's lower
bounds, the large-grid inverted lists and adjacent-union bitsets behind
Lemma 2's upper bounds, and the EWAH compression that keeps them small.

Run:  python examples/index_anatomy.py
"""

from repro import BIGrid, make_powerlaw
from repro.core.lower_bound import compute_lower_bounds
from repro.core.upper_bound import compute_upper_bounds


def main() -> None:
    collection = make_powerlaw(n=500, mean_points=10, extent=1200.0,
                               n_communities=20, seed=9)
    r = 5.0
    bigrid = BIGrid.build(collection, r)
    print(f"dataset: {collection}")
    print(f"BIGrid for r={r}: {len(bigrid.small_grid)} small cells "
          f"(width {bigrid.small_grid.width:.2f}), "
          f"{len(bigrid.large_grid)} large cells "
          f"(width {bigrid.large_grid.width:.0f})")

    # Small grid: cells shared by >= 2 objects certify interactions.
    shared = sum(
        1 for cell in bigrid.small_grid.cells.values() if cell.distinct_objects >= 2
    )
    print(f"\nsmall grid: {shared} shared cells certify interactions "
          f"without a single distance computation")
    key_list_sizes = [len(keys) for keys in bigrid.key_lists]
    print(f"key lists |o_i.L|: mean {sum(key_list_sizes) / len(key_list_sizes):.1f}, "
          f"max {max(key_list_sizes)}")

    # The bounds in action.
    lower = compute_lower_bounds(bigrid)
    upper = compute_upper_bounds(bigrid, tau_max_low=lower.tau_max)
    print(f"\nbest lower bound tau_max_low = {lower.tau_max}")
    print(f"candidates surviving Theorem 2 pruning: "
          f"{len(upper.candidates)} / {collection.n}")
    bound_gap = [
        upper.values[oid] - lower.values[oid] for oid in range(collection.n)
    ]
    print(f"bound gap (upper - lower): mean {sum(bound_gap) / len(bound_gap):.1f}")

    # EWAH compression of the cell bitsets (footnote 4).
    compressed = sum(
        cell.bitset.size_in_bytes() for cell in bigrid.small_grid.cells.values()
    )
    uncompressed = len(bigrid.small_grid) * 8 * (-(-collection.n // 64))
    print(f"\nsmall-grid bitsets: {compressed / 1024:.1f} KiB compressed vs "
          f"{uncompressed / 1024:.1f} KiB uncompressed "
          f"({100 * (1 - compressed / uncompressed):.0f}% saved)")

    # A dense cell up close.
    densest = max(
        bigrid.large_grid.cells.values(), key=lambda cell: len(cell.postings)
    )
    print(f"\ndensest large cell: {len(densest.postings)} posting lists, "
          f"{sum(len(p) for p in densest.postings.values())} points, "
          f"bitset {densest.bitset.size_in_bytes()} bytes "
          f"for {collection.n} objects")


if __name__ == "__main__":
    main()
