"""End-to-end pipeline on real data formats (SWC + Movebank-style CSV).

The paper's datasets come from neuromorpho.org (SWC morphology files) and
movebank.org (trajectory fixes).  This example shows the exact pipeline a
user with downloaded data would run — here the files are synthesized
first, so the script is self-contained:

1. write/read SWC neuron morphologies, query for hub neurons;
2. write/read a Movebank-style CSV, segment long tracks into ~m-point
   trajectory objects (the paper's preparation step [14]), and run both
   spatial and temporal MIO queries on the segments.

Run:  python examples/real_data_pipeline.py
"""

import tempfile
from pathlib import Path

from repro import MIOEngine, TemporalMIOEngine, make_neurons, make_trajectories
from repro.datasets import (
    export_collection_to_swc,
    load_neurons_from_swc,
    read_tracks_csv,
    segment_trajectories,
    write_tracks_csv,
)


def neuron_pipeline(workdir: Path) -> None:
    print("=== SWC pipeline (neuromorpho.org format)")
    source = make_neurons(n=40, mean_points=80, extent=150.0, seed=31)
    swc_dir = workdir / "morphologies"
    paths = export_collection_to_swc(swc_dir, source)
    print(f"wrote {len(paths)} .swc files to {swc_dir}")

    collection = load_neurons_from_swc(paths)
    print(f"loaded {collection}")
    result = MIOEngine(collection).query(r=4.0)
    print(f"hub neuron at r=4um: o_{result.winner} touching {result.score} neurons\n")


def trajectory_pipeline(workdir: Path) -> None:
    print("=== Movebank-style CSV pipeline")
    # Long tracks (200 fixes each); MIO works on ~25-point segments.
    long_tracks = make_trajectories(
        n=15, points_per_trajectory=200, n_flocks=3, offset_scale=5.0, seed=32
    )
    csv_path = workdir / "fixes.csv"
    write_tracks_csv(csv_path, [(obj.points, obj.timestamps) for obj in long_tracks])
    print(f"wrote {long_tracks.total_points} fixes for {long_tracks.n} "
          f"individuals to {csv_path}")

    tracks = read_tracks_csv(csv_path)
    segments = segment_trajectories(tracks, segment_length=25)
    print(f"segmented into {segments} "
          f"(the paper's ~m-point preparation step)")

    spatial = MIOEngine(segments).query(r=4.0)
    print(f"spatial MIO at r=4m: segment o_{spatial.winner} "
          f"interacts with {spatial.score} segments")
    temporal = TemporalMIOEngine(segments).query(r=4.0, delta=3.0)
    print(f"temporal MIO (delta=3 steps): o_{temporal.winner} "
          f"with {temporal.score} co-moving segments")


def main() -> None:
    with tempfile.TemporaryDirectory() as tmp:
        workdir = Path(tmp)
        neuron_pipeline(workdir)
        trajectory_pipeline(workdir)


if __name__ == "__main__":
    main()
