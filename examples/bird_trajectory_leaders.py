"""Trajectory-analysis scenario (Example 2 of the paper): finding leaders.

Bird trajectories are 2-D point sequences; two birds interact when their
paths come within r meters.  The paper's Fig. 2 shows an MIO answer that
interacts with ~30% of a Movebank trajectory set -- a leader whose motion
pattern many individuals follow.  This example reproduces that analysis on
the leader-follower generator, including the temporal variant (Appendix B):
birds interact only if they were close *at close times*.

Run:  python examples/bird_trajectory_leaders.py
"""

import networkx as nx

from repro import MIOEngine, TemporalMIOEngine, make_trajectories
from repro.analysis import interacting_partners, interaction_graph


def main() -> None:
    # Flocks of correlated trajectories with Zipf-skewed sizes; each point
    # carries its time step.
    collection = make_trajectories(
        n=400,
        points_per_trajectory=40,
        extent=3000.0,
        n_flocks=8,
        offset_scale=6.0,
        seed=23,
    )
    print(f"trajectory set: {collection}")

    # Purely spatial MIO: paths that came close at ANY time.
    engine = MIOEngine(collection)
    r = 4.0
    spatial = engine.query(r)
    share = 100.0 * spatial.score / (collection.n - 1)
    print(f"\nspatial MIO at r={r}m: trajectory o_{spatial.winner} "
          f"interacts with {spatial.score} others ({share:.0f}% of the set)")
    print("  (compare the paper's Fig. 2: the leader interacts with ~30%)")

    # Temporal MIO: co-location must be co-temporal (leader-follower needs
    # both).  delta is in trajectory time steps.
    temporal_engine = TemporalMIOEngine(collection)
    print(f"\ntemporal MIO at r={r}m, varying the time tolerance delta:")
    print(f"{'delta':>6} | {'leader':>8} | {'followers':>9} | share")
    for delta in (0.0, 1.0, 4.0, 16.0):
        result = temporal_engine.query(r, delta)
        share = 100.0 * result.score / (collection.n - 1)
        print(f"{delta:>6.1f} | {'o_' + str(result.winner):>8} "
              f"| {result.score:>9} | {share:.0f}%")
    print("\nsmall delta isolates true leader-follower motion (same place,")
    print("same time); large delta converges to the spatial answer.")

    # The spatial score can only shrink when the temporal constraint binds.
    tight = temporal_engine.query(r, 0.0)
    assert tight.score <= spatial.score

    # Follow-up analysis (the paper's [18]): extract the leader's nearby
    # trajectories and study the flock structure on the interaction graph.
    followers = interacting_partners(collection, r, spatial.winner)
    print(f"\nleader o_{spatial.winner}'s followers (first 10 of "
          f"{len(followers)}): {followers[:10]}")

    graph = interaction_graph(collection, r)
    components = sorted(nx.connected_components(graph), key=len, reverse=True)
    print(f"interaction graph: {graph.number_of_edges()} edges, "
          f"{len(components)} components; largest flock has "
          f"{len(components[0])} trajectories")
    clustering = nx.average_clustering(graph)
    print(f"average clustering coefficient: {clustering:.2f} "
          f"(flocks are tightly knit)")


if __name__ == "__main__":
    main()
