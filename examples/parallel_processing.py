"""Multi-core MIO processing (Section IV of the paper).

Shows the partitioning schemes behind the paper's parallel speedups: the
cost-based greedy plans balance load where naive hash/object partitioning
cannot, and the simulated-makespan executor quantifies each plan's quality
deterministically (see DESIGN.md §5 for why speedups are simulated rather
than thread-measured under CPython's GIL).

Run:  python examples/parallel_processing.py
"""

from repro import MIOEngine, ParallelMIOEngine, make_powerlaw


def main() -> None:
    # A skewed dataset -- the regime where load balancing matters.
    collection = make_powerlaw(n=600, mean_points=12, extent=1500.0,
                               n_communities=25, seed=5)
    print(f"dataset: {collection}")

    r = 5.0
    serial = MIOEngine(collection).query(r)
    print(f"\nserial BIGrid: o_{serial.winner} with score {serial.score} "
          f"in {serial.total_time * 1e3:.0f} ms")

    print("\nsimulated parallel run time by core count "
          "(LB-greedy-d + UB-greedy-p, the paper's winners):")
    print(f"{'cores':>5} | {'makespan [ms]':>13} | speedup")
    base = None
    for cores in (1, 2, 4, 8, 12):
        result = ParallelMIOEngine(collection, cores=cores).query(r)
        assert result.score == serial.score  # exactness is never traded
        makespan = result.total_time
        base = base or makespan
        print(f"{cores:>5} | {makespan * 1e3:>13.1f} | {base / makespan:.2f}x")

    print("\npartitioning strategies at 8 cores (phase makespans, ms):")
    print(f"{'strategy':<28} | {'lower':>8} | {'upper':>8}")
    for lb, ub in (("greedy-d", "greedy-p"), ("hash-p", "greedy-p"),
                   ("greedy-d", "greedy-d")):
        engine = ParallelMIOEngine(collection, cores=8, lb_strategy=lb, ub_strategy=ub)
        result = engine.query(r)
        print(f"LB-{lb:<10} UB-{ub:<10} | "
              f"{result.phases['lower_bounding'] * 1e3:>8.2f} | "
              f"{result.phases['upper_bounding'] * 1e3:>8.2f}")
    print("\nthe cost-based greedy plans (the first row) are the paper's "
          "Fig. 8 winners.")


if __name__ == "__main__":
    main()
