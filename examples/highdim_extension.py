"""Beyond 3 dimensions: the paper's future work, implemented.

BIGrid's grids stop working in high-dimensional spaces (the 3^d-cell
neighbourhood of the upper bound explodes), which the paper's conclusion
leaves as future work.  ``repro.highdim`` keeps the paper's
filter-and-verification *framework* but swaps the grid bounds for
dimension-agnostic bounding-sphere bounds.  This example runs the same
MIO analysis on feature-vector objects from 2 to 16 dimensions and shows
the pruning holding steady.

Run:  python examples/highdim_extension.py
"""

import math

from repro.highdim import MetricMIOEngine, make_highdim_clusters


def main() -> None:
    r = 4.0
    print("MIO queries across dimensions (metric bounding-sphere engine):")
    print(f"{'d':>3} | {'winner':>7} | {'score':>5} | {'candidates':>10} "
          f"| {'verified':>8} | {'time [ms]':>9}")
    for dimension in (2, 3, 4, 8, 16):
        collection = make_highdim_clusters(
            n=150,
            mean_points=10,
            dimension=dimension,
            n_clusters=12,
            extent=400.0,
            # Keep object radii constant as d grows.
            cluster_radius=1.2 / math.sqrt(dimension),
            seed=dimension,
        )
        engine = MetricMIOEngine(collection)
        result = engine.query(r)
        # Spot-check exactness against brute force.
        assert result.score == max(engine.brute_force_scores(r))
        print(f"{dimension:>3} | {'o_' + str(result.winner):>7} | {result.score:>5} "
              f"| {result.counters['candidates']:>10} "
              f"| {result.counters['verified_objects']:>8} "
              f"| {result.total_time * 1e3:>9.2f}")

    print("\nthe sphere bounds cost O(n^2 d) -- no 3^d blow-up -- so both the")
    print("candidate fraction and the run time stay flat as d grows, while")
    print("every answer above was verified exact against brute force.")


if __name__ == "__main__":
    main()
