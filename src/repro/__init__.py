"""repro: MIO queries over spatial object databases with the BIGrid index.

A faithful, from-scratch reproduction of

    Daichi Amagata and Takahiro Hara,
    "Identifying the Most Interactive Object in Spatial Databases",
    ICDE 2019.

Quick start::

    from repro import MIOEngine, make_trajectories

    collection = make_trajectories(n=200, points_per_trajectory=30, seed=1)
    engine = MIOEngine(collection)
    result = engine.query(r=4.0)
    print(result.winner, result.score)

See README.md for the architecture overview and DESIGN.md for the mapping
from paper sections to modules.
"""

from repro import faults
from repro.analysis import all_scores, interacting_partners, interaction_graph
from repro.baselines import (
    KDTreeNestedLoop,
    NestedLoopAlgorithm,
    RTreeNestedLoop,
    SimpleGridAlgorithm,
    TheoreticalAlgorithm,
)
from repro.bitset import EWAHBitset, PlainBitset, bitset_class, resolve_backend
from repro.core import (
    LabelStore,
    MIOEngine,
    MIOResult,
    ObjectCollection,
    PointLabels,
    SpatialObject,
    TemporalMIOEngine,
)
from repro.dynamic import DynamicMIO
from repro.errors import (
    BackendUnavailableError,
    CorruptDataError,
    InjectedFault,
    InvalidQueryError,
    PartitionTaskError,
    QueryTimeout,
    ReproError,
)
from repro.progressive import ProgressiveState, query_progressive
from repro.session import QueryRequest, QuerySession
from repro.datasets import (
    load_dataset,
    make_neurons,
    make_powerlaw,
    make_trajectories,
    sample_collection,
)
from repro.grid import BIGrid
from repro.parallel import ParallelMIOEngine
from repro.resilience import Deadline, ManualClock

__version__ = "1.0.0"

__all__ = [
    "BIGrid",
    "BackendUnavailableError",
    "CorruptDataError",
    "Deadline",
    "DynamicMIO",
    "InjectedFault",
    "InvalidQueryError",
    "ManualClock",
    "PartitionTaskError",
    "QueryTimeout",
    "ReproError",
    "ProgressiveState",
    "all_scores",
    "interacting_partners",
    "interaction_graph",
    "EWAHBitset",
    "KDTreeNestedLoop",
    "LabelStore",
    "MIOEngine",
    "MIOResult",
    "NestedLoopAlgorithm",
    "ObjectCollection",
    "ParallelMIOEngine",
    "PlainBitset",
    "PointLabels",
    "QueryRequest",
    "QuerySession",
    "RTreeNestedLoop",
    "SimpleGridAlgorithm",
    "SpatialObject",
    "TemporalMIOEngine",
    "TheoreticalAlgorithm",
    "bitset_class",
    "faults",
    "load_dataset",
    "make_neurons",
    "make_powerlaw",
    "make_trajectories",
    "query_progressive",
    "resolve_backend",
    "sample_collection",
    "__version__",
]
