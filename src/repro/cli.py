"""Command-line interface: ``python -m repro <command>``.

Commands
--------

``generate``   build a named synthetic dataset and save it as ``.npz``
``stats``      print Table-I style statistics for a dataset file
``query``      run an MIO / top-k / temporal query over a dataset file
``compare``    run all algorithms on one query and print a comparison
``batch``      run a JSON workload through one QuerySession (label reuse)
``explain``    trace one query: span tree plus the pruning funnel
``serve``      run the hardened concurrent HTTP query service (docs/service.md)
``report``     aggregate a telemetry profile log and/or floor-check bench artifacts

Observability flags: ``query --trace`` prints the span tree under the
answer, ``query``/``batch --metrics-out PATH`` dump the metrics registry
(Prometheus text format, or JSON when the path ends in ``.json``),
``batch --trace-out PATH`` writes the batch's span trees as JSON, and
``batch --log-json PATH`` streams one structured log line per request
with ``batch_id``/``query_id`` correlation ids.  Telemetry flags
(``--telemetry-out``, ``--sample-rate``, ``--slow-ms`` on ``query``,
``batch``, and ``serve``; ``batch --slowlog-out``) feed the always-on
telemetry hub -- see ``docs/observability.md``.  ``--planner adaptive``
(on ``query``, ``batch``, ``explain``, ``serve``) lets the cost-model
planner re-select kernel/mode/shards per query; ``explain`` then prints
the decision with predicted-vs-actual phase costs (``docs/planner.md``).

Example session::

    python -m repro generate bird-2 --scale 0.5 -o birds.npz
    python -m repro stats birds.npz
    python -m repro query birds.npz -r 4 --topk 5
    python -m repro compare birds.npz -r 4
    python -m repro batch workload.json --stats

A workload file names its dataset and lists requests (bare numbers are
thresholds; objects may set ``k`` and a per-request ``timeout_ms``)::

    {"dataset": "birds.npz",
     "queries": [4.9, 4.1, {"r": 4.5, "k": 3}, {"r": 8.2, "timeout_ms": 500}]}
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from pathlib import Path
from typing import List, Optional

from repro import faults
from repro.bench.harness import run_algorithm
from repro.bench.reporting import format_table
from repro.core.engine import MIOEngine
from repro.core.temporal import TemporalMIOEngine
from repro.obs import logging as obs_logging
from repro.obs.explain import (
    funnel_stages,
    render_funnel,
    render_plan,
    render_span_tree,
)
from repro.obs.export import metrics_json, prometheus_text, trace_json
from repro.obs.metrics import get_registry
from repro.obs.telemetry import ProfileSink, get_telemetry
from repro.obs.telemetry.report import (
    check_bench_artifacts,
    compare_to_kernel_artifact,
    load_profiles,
    render_summary,
    summarize,
)
from repro.obs.trace import Tracer
from repro.datasets import (
    DATASET_NAMES,
    describe,
    load_collection,
    load_dataset,
    sample_collection,
    save_collection,
)
from repro.errors import CorruptDataError, InvalidQueryError, ReproError
from repro.kernels import KERNEL_NAMES
from repro.parallel import ParallelMIOEngine
from repro.session import QuerySession


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="MIO queries over spatial object databases (BIGrid, ICDE 2019)",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    generate = commands.add_parser("generate", help="build a synthetic dataset")
    generate.add_argument("dataset", choices=DATASET_NAMES)
    generate.add_argument("--scale", type=float, default=1.0, help="object-count multiplier")
    generate.add_argument("--seed", type=int, default=7)
    generate.add_argument("-o", "--output", required=True, help="output .npz path")

    stats = commands.add_parser("stats", help="describe a dataset file")
    stats.add_argument("path", help=".npz dataset file")

    query = commands.add_parser("query", help="run an MIO query")
    query.add_argument("path", help=".npz dataset file")
    query.add_argument("-r", type=float, required=True, help="distance threshold")
    query.add_argument("--topk", type=int, default=1, help="return the k best objects")
    query.add_argument("--delta", type=float, default=None,
                       help="temporal threshold (needs timestamps)")
    query.add_argument("--backend", default="ewah", choices=("ewah", "plain"))
    query.add_argument("--kernel", default="auto", choices=KERNEL_NAMES,
                       help="compute kernel for the query phases; auto "
                            "feature-detects numpy (default: auto)")
    query.add_argument("--sample", type=float, default=1.0,
                       help="object sampling rate in (0, 1]")
    query.add_argument("--timeout-ms", type=float, default=None,
                       help="query deadline in milliseconds; expiring during "
                            "verification yields an anytime (inexact) answer")
    query.add_argument("--retries", type=int, default=2,
                       help="per-task retry budget (parallel engine)")
    query.add_argument("--cores", type=int, default=1,
                       help="worker processes; >1 uses the parallel engine")
    query.add_argument("--parallel-mode", default="sharded",
                       choices=("sharded", "simulated"),
                       help="parallel execution: real shard workers "
                            "(default) or the legacy makespan simulation")
    query.add_argument("--shards", type=int, default=None,
                       help="shards per sharded query (default: one per core)")
    _add_planner_flag(query)
    query.add_argument("--trace", action="store_true",
                       help="print the query's span tree under the answer")
    query.add_argument("--metrics-out", default=None, metavar="PATH",
                       help="write the metrics registry after the query "
                            "(Prometheus text, or JSON if PATH ends in .json)")
    _add_telemetry_flags(query)

    compare = commands.add_parser("compare", help="run all algorithms on one query")
    compare.add_argument("path", help=".npz dataset file")
    compare.add_argument("-r", type=float, required=True)
    compare.add_argument("--algorithms", nargs="+",
                         default=["nl", "sg", "bigrid"],
                         help="subset of: nl nl-kdtree sg bigrid theoretical")
    compare.add_argument("--kernel", default="auto", choices=KERNEL_NAMES,
                         help="compute kernel for the BIGrid algorithms")

    batch = commands.add_parser(
        "batch", help="run a JSON workload through one query session"
    )
    batch.add_argument("workload", help="JSON workload file (see module docstring)")
    batch.add_argument("--stats", action="store_true",
                       help="emit per-request results and session counters as JSON")
    batch.add_argument("--backend", default=None,
                       choices=("ewah", "plain", "roaring"),
                       help="bitset backend (overrides the workload file)")
    batch.add_argument("--kernel", default="auto", choices=KERNEL_NAMES,
                       help="compute kernel for the query phases; auto "
                            "feature-detects numpy (default: auto)")
    batch.add_argument("--cores", type=int, default=1,
                       help="worker processes; >1 fans with-label queries out")
    batch.add_argument("--parallel-mode", default="sharded",
                       choices=("sharded", "simulated"),
                       help="parallel execution: real shard workers "
                            "(default) or the legacy makespan simulation")
    batch.add_argument("--shards", type=int, default=None,
                       help="shards per sharded query (default: one per core)")
    batch.add_argument("--retries", type=int, default=2,
                       help="per-task retry budget (parallel engine)")
    _add_planner_flag(batch)
    batch.add_argument("--trace-out", default=None, metavar="PATH",
                       help="write the batch's span trees as JSON")
    batch.add_argument("--metrics-out", default=None, metavar="PATH",
                       help="write the metrics registry after the batch "
                            "(Prometheus text, or JSON if PATH ends in .json)")
    batch.add_argument("--log-json", default=None, metavar="PATH",
                       help="stream one structured JSON log line per request "
                            "(batch_id/query_id correlation ids)")
    _add_telemetry_flags(batch)
    batch.add_argument("--slowlog-out", default=None, metavar="PATH",
                       help="write the slow-query log captured during the "
                            "batch as JSON")

    serve = commands.add_parser(
        "serve", help="run the hardened concurrent query service over a dataset"
    )
    serve.add_argument("path", help=".npz dataset file")
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=8080,
                       help="listen port (0 picks an ephemeral port)")
    serve.add_argument("--backend", default="ewah",
                       choices=("ewah", "plain", "roaring"))
    serve.add_argument("--kernel", default="auto", choices=KERNEL_NAMES,
                       help="compute kernel for the primary execution path")
    serve.add_argument("--cores", type=int, default=1,
                       help="worker processes for the primary path")
    serve.add_argument("--parallel-mode", default="sharded",
                       choices=("sharded", "simulated"),
                       help="parallel execution for the primary path")
    serve.add_argument("--shards", type=int, default=None,
                       help="shards per sharded query (default: one per core)")
    _add_planner_flag(serve)
    serve.add_argument("--max-inflight", type=int, default=4,
                       help="requests executing concurrently")
    serve.add_argument("--max-queue", type=int, default=16,
                       help="admission queue depth before shedding with 429")
    serve.add_argument("--default-timeout-ms", type=float, default=1000.0,
                       help="budget for requests without a timeout_ms")
    serve.add_argument("--max-timeout-ms", type=float, default=30000.0,
                       help="cap on any requested budget (0 disables)")
    serve.add_argument("--breaker-failures", type=int, default=5,
                       help="consecutive failures that trip the circuit breaker")
    serve.add_argument("--breaker-reset-s", type=float, default=2.0,
                       help="base open interval before a half-open probe")
    serve.add_argument("--drain-s", type=float, default=5.0,
                       help="graceful-shutdown drain budget in seconds")
    serve.add_argument("--sample-rate", type=float, default=0.01,
                       help="fraction of queries carrying a full span tree "
                            "into /tracez (0 disables sampling)")
    serve.add_argument("--slow-ms", type=float, default=250.0,
                       help="latency threshold for the /slowlogz capture")
    serve.add_argument("--telemetry-out", default=None, metavar="PATH",
                       help="append one JSON profile line per query "
                            "(rotating JSONL; feed it to `repro report`)")

    explain = commands.add_parser(
        "explain", help="trace one query: span tree plus the pruning funnel"
    )
    explain.add_argument("path", help=".npz dataset file")
    explain.add_argument("-r", type=float, required=True, help="distance threshold")
    explain.add_argument("--topk", type=int, default=1, help="return the k best objects")
    explain.add_argument("--backend", default="ewah",
                         choices=("ewah", "plain", "roaring"))
    explain.add_argument("--kernel", default="auto", choices=KERNEL_NAMES,
                         help="compute kernel for the query phases")
    explain.add_argument("--cores", type=int, default=1,
                         help="worker processes; >1 uses the parallel engine")
    explain.add_argument("--parallel-mode", default="sharded",
                         choices=("sharded", "simulated"),
                         help="parallel execution: real shard workers "
                              "(default) or the legacy makespan simulation")
    explain.add_argument("--shards", type=int, default=None,
                         help="shards per sharded query (default: one per core)")
    _add_planner_flag(explain)

    report = commands.add_parser(
        "report",
        help="aggregate a telemetry profile log into per-phase percentiles "
             "and/or floor-check recorded BENCH_*.json artifacts",
    )
    report.add_argument("profiles", nargs="?", default=None,
                        help="JSONL profile log written by --telemetry-out")
    report.add_argument("--json", action="store_true",
                        help="emit the summary as JSON instead of text")
    report.add_argument("--check-bench", nargs="+", default=None, metavar="PATH",
                        help="BENCH_*.json artifacts to hold to their perf "
                             "floors; any regression exits nonzero")
    report.add_argument("--margin", type=float, default=0.8,
                        help="noise margin applied to every floor "
                             "(default 0.8: a floor F passes at F*0.8)")
    report.add_argument("--against", default=None, metavar="PATH",
                        help="BENCH_kernel_speedup.json to compare the "
                             "profile log's per-phase p50s against")
    report.add_argument("--max-slowdown", type=float, default=25.0,
                        help="tolerated live-over-recorded phase ratio for "
                             "--against (generous: machines differ)")

    return parser


def _add_planner_flag(command: argparse.ArgumentParser) -> None:
    """The query-planner knob shared by query/batch/explain/serve."""
    command.add_argument("--planner", default="static",
                         choices=("static", "adaptive"),
                         help="query planner: static keeps the configured "
                              "knobs, adaptive re-selects kernel/mode/shards "
                              "per query from the cost model (bit-identical "
                              "answers; see docs/planner.md)")


def _add_telemetry_flags(command: argparse.ArgumentParser) -> None:
    """The telemetry knobs shared by ``query`` and ``batch``."""
    command.add_argument("--telemetry-out", default=None, metavar="PATH",
                         help="append one JSON profile line per query "
                              "(rotating JSONL; feed it to `repro report`)")
    command.add_argument("--sample-rate", type=float, default=None,
                         help="fraction of queries traced with full span "
                              "trees (deterministic systematic sampling)")
    command.add_argument("--slow-ms", type=float, default=None,
                         help="latency threshold for slow-query capture")


class _CliTelemetry:
    """Apply a command's telemetry flags to the process hub, then undo.

    The hub is process-global; restoring the previous dials keeps
    repeated in-process ``main()`` calls (tests, notebooks) independent.
    """

    def __init__(self) -> None:
        self._hub = get_telemetry()
        self._sink: Optional[ProfileSink] = None
        self._prev_rate = self._hub.sampler.rate
        self._prev_slow = self._hub.slowlog.threshold_ms

    def __enter__(self) -> "_CliTelemetry":
        return self

    def apply(self, args: argparse.Namespace) -> None:
        if getattr(args, "telemetry_out", None):
            self._sink = ProfileSink(args.telemetry_out)
            self._hub.reconfigure(sink=self._sink)
        if getattr(args, "sample_rate", None) is not None:
            self._hub.reconfigure(sample_rate=args.sample_rate)
        if getattr(args, "slow_ms", None) is not None:
            self._hub.reconfigure(slow_ms=args.slow_ms)

    def __exit__(self, *exc_info) -> None:
        if self._sink is not None:
            self._hub.reconfigure(sink=None)
        self._hub.reconfigure(
            sample_rate=self._prev_rate, slow_ms=self._prev_slow
        )


def _write_metrics(path: str) -> None:
    """Dump the process registry: Prometheus text, or JSON for ``*.json``."""
    text = metrics_json() if path.endswith(".json") else prometheus_text()
    Path(path).write_text(text)


def _cmd_generate(args: argparse.Namespace) -> int:
    collection = load_dataset(args.dataset, scale=args.scale, seed=args.seed)
    save_collection(args.output, collection)
    print(f"wrote {collection} to {args.output}")
    return 0


def _cmd_stats(args: argparse.Namespace) -> int:
    collection = load_collection(args.path)
    info = describe(collection)
    rows = [[key, value] for key, value in info.items()]
    rows.append(["timestamps", "yes" if collection.has_timestamps() else "no"])
    print(format_table(["statistic", "value"], rows, title=args.path))
    return 0


def _cmd_query(args: argparse.Namespace) -> int:
    with _CliTelemetry() as telemetry:
        telemetry.apply(args)
        return _run_query(args)


def _run_query(args: argparse.Namespace) -> int:
    collection = load_collection(args.path)
    if args.sample < 1.0:
        collection = sample_collection(collection, args.sample)
    tracer = Tracer() if args.trace else None
    if args.delta is not None:
        if args.topk != 1:
            print("error: --topk is not supported together with --delta", file=sys.stderr)
            return 2
        if args.timeout_ms is not None:
            print("warning: --timeout-ms is ignored for temporal queries",
                  file=sys.stderr)
        result = TemporalMIOEngine(collection).query(args.r, args.delta)
        if tracer is not None:
            # The temporal engine is untraced internally; reconstruct its
            # span tree from the reported phase breakdown.
            with tracer.span("query", engine="temporal", r=args.r,
                             delta=args.delta) as root:
                for phase, seconds in result.phases.items():
                    tracer.record(phase, seconds)
                root.set_attributes(winner=result.winner, score=result.score)
            root.set_duration(result.total_time)
    else:
        if args.cores != 1:
            engine = ParallelMIOEngine(
                collection, cores=args.cores, backend=args.backend,
                retries=args.retries, tracer=tracer, kernel=args.kernel,
                mode=args.parallel_mode, shards=args.shards,
                planner=args.planner,
            )
        else:
            engine = MIOEngine(
                collection, backend=args.backend, tracer=tracer,
                kernel=args.kernel, planner=args.planner,
            )
        try:
            if args.topk > 1:
                result = engine.query_topk(
                    args.r, args.topk, timeout_ms=args.timeout_ms
                )
            else:
                result = engine.query(args.r, timeout_ms=args.timeout_ms)
        finally:
            if isinstance(engine, ParallelMIOEngine):
                engine.close()
    print(f"algorithm : {result.algorithm}")
    print(f"winner    : o_{result.winner}")
    print(f"score     : {result.score} of {collection.n - 1} objects")
    if not result.exact:
        print("answer    : inexact (deadline) -- score is a verified lower bound")
    for key, note in sorted(result.notes.items()):
        print(f"note      : {key}: {note}")
    if result.topk:
        for rank, (oid, score) in enumerate(result.topk, start=1):
            print(f"  #{rank}: o_{oid} (tau = {score})")
    print(f"time      : {result.total_time:.4f} s")
    for phase, seconds in result.phases.items():
        print(f"  {phase:<16} {seconds:.4f} s")
    if tracer is not None and tracer.root is not None:
        print("\ntrace:")
        print(render_span_tree(tracer.root, indent="  "))
    if args.metrics_out:
        _write_metrics(args.metrics_out)
        print(f"\nwrote metrics to {args.metrics_out}", file=sys.stderr)
    return 0


def _cmd_explain(args: argparse.Namespace) -> int:
    collection = load_collection(args.path)
    tracer = Tracer()
    if args.cores != 1:
        engine = ParallelMIOEngine(
            collection, cores=args.cores, backend=args.backend, tracer=tracer,
            kernel=args.kernel, mode=args.parallel_mode, shards=args.shards,
            planner=args.planner,
        )
    else:
        engine = MIOEngine(
            collection, backend=args.backend, tracer=tracer,
            kernel=args.kernel, planner=args.planner,
        )
    try:
        if args.topk > 1:
            result = engine.query_topk(args.r, args.topk)
        else:
            result = engine.query(args.r)
    finally:
        if isinstance(engine, ParallelMIOEngine):
            engine.close()
    print(f"{result.algorithm} over {args.path} at r={args.r}")
    print(f"winner    : o_{result.winner} (tau = {result.score} "
          f"of {collection.n - 1} objects)")
    if "shards" in result.counters:
        print(f"shards    : {result.counters['shards']} "
              f"across {result.counters.get('cores', args.cores)} worker(s)")
    if result.topk:
        for rank, (oid, score) in enumerate(result.topk, start=1):
            print(f"  #{rank}: o_{oid} (tau = {score})")
    for key, note in sorted(result.notes.items()):
        print(f"note      : {key}: {note}")
    print(f"time      : {result.total_time:.4f} s")
    plan_text = render_plan(result)
    if plan_text:
        print("\nplanner decision:")
        print(plan_text)
    print("\nspan tree:")
    print(render_span_tree(tracer.root, indent="  "))
    print("\npruning funnel:")
    print(render_funnel(funnel_stages(result, collection.n)))
    return 0


def _cmd_compare(args: argparse.Namespace) -> int:
    collection = load_collection(args.path)
    rows = []
    for name in args.algorithms:
        record = run_algorithm(name, collection, args.r, kernel=args.kernel)
        rows.append(
            [name, f"o_{record.winner}", record.score,
             round(record.seconds, 4), round(record.memory_kib, 1)]
        )
    print(
        format_table(
            ["algorithm", "winner", "score", "time [s]", "index [KiB]"],
            rows,
            title=f"{args.path} at r={args.r}",
        )
    )
    scores = {row[2] for row in rows}
    if len(scores) != 1:
        print("error: algorithms disagree on the max score!", file=sys.stderr)
        return 1
    return 0


def _load_workload(path: str):
    """Parse a workload file into ``(dataset_path, backend, queries)``.

    The dataset path resolves relative to the workload file's directory,
    so a workload directory stays relocatable.
    """
    workload_path = Path(path)
    try:
        document = json.loads(workload_path.read_text())
    except OSError as exc:
        raise CorruptDataError(f"{path}: cannot read workload ({exc})") from exc
    except json.JSONDecodeError as exc:
        # Malformed *input* is the caller's bug (exit 11 / HTTP 400), not
        # corrupt on-disk state; only an unreadable file is CorruptDataError.
        raise InvalidQueryError(f"{path}: not valid JSON ({exc})") from exc
    if not isinstance(document, dict) or "dataset" not in document:
        raise InvalidQueryError(
            f'{path}: workload must be an object with a "dataset" key'
        )
    queries = document.get("queries")
    if not isinstance(queries, list) or not queries:
        raise InvalidQueryError(f'{path}: workload needs a non-empty "queries" list')
    dataset = Path(document["dataset"])
    if not dataset.is_absolute():
        dataset = workload_path.parent / dataset
    return str(dataset), document.get("backend"), queries


def _cmd_batch(args: argparse.Namespace) -> int:
    with _CliTelemetry() as telemetry:
        telemetry.apply(args)
        code = _run_batch(args)
    if args.slowlog_out:
        slowlog = get_telemetry().slowlog
        Path(args.slowlog_out).write_text(
            json.dumps(
                {
                    "threshold_ms": slowlog.threshold_ms,
                    "captured": slowlog.captured,
                    "entries": slowlog.snapshot(),
                },
                indent=2,
                sort_keys=True,
            )
        )
    return code


def _run_batch(args: argparse.Namespace) -> int:
    dataset_path, workload_backend, queries = _load_workload(args.workload)
    backend = args.backend or workload_backend or "ewah"
    collection = load_collection(dataset_path)
    tracer = Tracer() if args.trace_out else None
    session = QuerySession(
        collection, backend=backend, cores=args.cores, retries=args.retries,
        tracer=tracer, kernel=args.kernel, parallel_mode=args.parallel_mode,
        shards=args.shards, planner=args.planner,
    )
    log_stream = None
    try:
        if args.log_json:
            log_stream = open(args.log_json, "w")
            obs_logging.configure(log_stream)
        results = session.query_many(queries)
    finally:
        session.close()
        if log_stream is not None:
            obs_logging.configure(None)
            log_stream.close()
    if tracer is not None:
        Path(args.trace_out).write_text(trace_json(tracer.roots))
    if args.metrics_out:
        _write_metrics(args.metrics_out)
    if args.stats:
        payload = {
            "workload": args.workload,
            "dataset": dataset_path,
            "backend": backend,
            "metrics": get_registry().snapshot(prefix="repro_cache_"),
            "results": [
                {
                    "r": result.r,
                    "algorithm": result.algorithm,
                    "winner": result.winner,
                    "score": result.score,
                    "exact": result.exact,
                    "seconds": round(result.total_time, 6),
                    "topk": result.topk,
                    "notes": result.notes,
                }
                for result in results
            ],
            "session": session.stats(),
        }
        print(json.dumps(payload, indent=2, sort_keys=True))
        return 0
    rows = []
    for result in results:
        rows.append(
            [
                result.r,
                result.algorithm,
                "-" if result.winner < 0 else f"o_{result.winner}",
                result.score,
                "yes" if result.exact else "no",
                round(result.total_time, 4),
            ]
        )
    print(
        format_table(
            ["r", "algorithm", "winner", "score", "exact", "time [s]"],
            rows,
            title=f"{args.workload} over {dataset_path} ({backend})",
        )
    )
    stats = session.stats()
    print(
        f"session   : {stats['queries']} queries, "
        f"{stats['label_hits']} with-label, "
        f"{stats['points_skipped_by_labels']} points skipped via labels, "
        f"{stats['timeouts']} timeouts"
    )
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    # Imported lazily: none of the other commands need the service stack.
    from repro.service import MIOServer, ServiceApp, ServiceConfig

    collection = load_collection(args.path)
    config = ServiceConfig(
        host=args.host,
        port=args.port,
        max_inflight=args.max_inflight,
        max_queue=args.max_queue,
        default_timeout_ms=args.default_timeout_ms,
        max_timeout_ms=args.max_timeout_ms,
        breaker_failures=args.breaker_failures,
        breaker_reset_s=args.breaker_reset_s,
        drain_s=args.drain_s,
        sample_rate=args.sample_rate,
        slow_query_ms=args.slow_ms,
        cores=args.cores,
        parallel_mode=args.parallel_mode,
        shards=args.shards,
        planner=args.planner,
    )
    app = ServiceApp(collection, config, backend=args.backend, kernel=args.kernel)
    if args.telemetry_out:
        get_telemetry().reconfigure(sink=ProfileSink(args.telemetry_out))
    server = MIOServer(app)
    host, port = server.address
    print(f"serving {args.path} ({collection.n} objects) on http://{host}:{port}",
          file=sys.stderr)
    print(f"endpoints: /query /topk /batch /healthz /readyz /metrics "
          f"/statusz /tracez /slowlogz",
          file=sys.stderr)
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        print("\ndraining in-flight requests ...", file=sys.stderr)
        drained = server.shutdown_gracefully()
        snapshot = app.snapshot()
        print(
            f"served {snapshot['served']} requests "
            f"({snapshot['degraded']} degraded, {snapshot['shed']} shed); "
            f"drain {'completed' if drained else 'timed out'}",
            file=sys.stderr,
        )
    return 0


def _cmd_report(args: argparse.Namespace) -> int:
    """Aggregate profiles / floor-check artifacts; nonzero on regression."""
    if not args.profiles and not args.check_bench:
        raise InvalidQueryError(
            "repro report needs a profile log and/or --check-bench artifacts"
        )
    failures: List[str] = []
    if args.profiles:
        profiles, skipped = load_profiles(args.profiles)
        if not profiles:
            raise CorruptDataError(
                f"{args.profiles}: no valid profile lines "
                f"({skipped} malformed lines skipped)"
            )
        summary = summarize(profiles)
        if args.json:
            print(json.dumps(summary, indent=2, sort_keys=True))
        else:
            print(render_summary(summary, skipped))
        if args.against:
            failures.extend(
                compare_to_kernel_artifact(
                    summary, args.against, max_slowdown=args.max_slowdown
                )
            )
    if args.check_bench:
        failures.extend(check_bench_artifacts(args.check_bench, margin=args.margin))
    if failures:
        print(f"\nREGRESSION: {len(failures)} floor(s) violated", file=sys.stderr)
        for failure in failures:
            print(f"  - {failure}", file=sys.stderr)
        return 1
    if args.check_bench:
        print(
            f"checked {len(args.check_bench)} bench artifact(s): "
            f"all floors hold (margin {args.margin})"
        )
    return 0


_COMMANDS = {
    "generate": _cmd_generate,
    "stats": _cmd_stats,
    "query": _cmd_query,
    "compare": _cmd_compare,
    "batch": _cmd_batch,
    "explain": _cmd_explain,
    "serve": _cmd_serve,
    "report": _cmd_report,
}


def main(argv: Optional[List[str]] = None) -> int:
    """Entry point; returns the process exit code.

    Every :class:`~repro.errors.ReproError` subclass carries a distinct
    ``exit_code`` (10-16), so scripts can tell a timeout from corrupt data
    from a bad query without parsing stderr.  ``REPRO_FAULTS`` in the
    environment installs the deterministic fault injector for chaos runs.
    """
    args = build_parser().parse_args(argv)
    injector = None
    try:
        injector = faults.from_env(os.environ.get("REPRO_FAULTS"))
        if injector is not None:
            faults.install(injector)
        return _COMMANDS[args.command](args)
    except ReproError as exc:
        print(f"error[{type(exc).__name__}]: {exc}", file=sys.stderr)
        return exc.exit_code
    finally:
        if injector is not None:
            faults.install(None)


if __name__ == "__main__":
    sys.exit(main())
