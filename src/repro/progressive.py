"""Anytime (progressive) MIO queries.

The paper motivates MIO queries with interactive analysis: "if each MIO
query incurs a long processing time, only a limited number of trials may
be possible" (Section I-B).  The filter-and-verification framework is
naturally an *anytime* algorithm — after bounding, the best lower bound
is already a valid provisional answer, and every verified candidate
either improves it or tightens the optimality gap — so this module
exposes it that way:

* :func:`query_progressive` yields a :class:`ProgressiveState` after the
  bounding phases and then after every verified candidate.  Each state
  carries the best object so far, a certified interval
  ``[best_score, score_upper_bound]`` on the optimum, and ``is_final``.
* Consumers stop whenever the gap is good enough (or their time budget
  runs out); running to exhaustion reproduces the exact answer.

The filter phases run through the shared orchestrator's filter prefix
(:data:`~repro.core.pipeline.FILTER_PIPELINE` -- the serial engine's own
grid-mapping/bounding stages); only the one-candidate-at-a-time
verification loop is this module's own.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Optional

from repro.core.objects import ObjectCollection
from repro.core.pipeline import FILTER_PIPELINE, QueryContext
from repro.errors import InvalidQueryError
from repro.resilience import Deadline


@dataclass
class ProgressiveState:
    """A certified intermediate answer.

    The true maximum score lies in ``[best_score, score_upper_bound]``;
    ``best_oid`` attains ``best_score``.  When ``is_final`` is True the
    interval has collapsed (or every candidate is verified) and
    ``best_oid`` is an exact MIO answer.
    """

    best_oid: int
    best_score: int
    score_upper_bound: int
    candidates_total: int
    candidates_verified: int
    is_final: bool

    @property
    def gap(self) -> int:
        """How far the provisional answer can still be beaten."""
        return self.score_upper_bound - self.best_score


def query_progressive(
    collection: ObjectCollection,
    r: float,
    backend: str = "ewah",
    max_verifications: Optional[int] = None,
    timeout_ms: Optional[float] = None,
    deadline: Optional[Deadline] = None,
    kernel: str = "python",
) -> Iterator[ProgressiveState]:
    """Yield progressively tighter MIO answers for one query.

    The first state arrives after grid mapping + bounding (no exact
    scoring yet); subsequent states follow each verified candidate.
    ``max_verifications`` truncates the stream early (the final state
    then reports ``is_final=False`` unless the gap closed first).

    A ``timeout_ms`` budget (or explicit ``deadline``) behaves like the
    engine's: grid mapping and bounding raise ``QueryTimeout`` on expiry,
    while expiry during verification simply ends the stream — the last
    yielded state is the anytime answer, its interval still certified.
    """
    if r <= 0:
        raise InvalidQueryError("the distance threshold r must be positive")
    if deadline is None:
        deadline = Deadline.from_timeout_ms(timeout_ms)
    ctx = FILTER_PIPELINE.execute(
        QueryContext(
            collection=collection, r=r, deadline=deadline, backend=backend,
            kernel=kernel,
        )
    )
    bigrid, lower, candidates = ctx.bigrid, ctx.lower, ctx.upper.candidates

    # The best lower bound is already attained by some object; use it as
    # the provisional answer before any verification.
    best_oid = max(range(collection.n), key=lambda oid: (lower.values[oid], -oid))
    best_score = lower.values[best_oid]
    remaining_upper = candidates[0][0] if candidates else 0

    yield ProgressiveState(
        best_oid=best_oid,
        best_score=best_score,
        score_upper_bound=max(remaining_upper, best_score),
        candidates_total=len(candidates),
        candidates_verified=0,
        is_final=not candidates or remaining_upper <= best_score,
    )
    if not candidates or remaining_upper <= best_score:
        return

    budget = len(candidates) if max_verifications is None else max_verifications
    verified = 0
    for position, (upper_bound, oid) in enumerate(candidates):
        if upper_bound <= best_score or verified >= budget:
            break
        if deadline is not None and deadline.expired():
            return  # the last yielded state stands as the anytime answer
        # Verify exactly one candidate by scoring it in isolation (through
        # the kernel seam, so the batched scorer serves progressive too).
        result = ctx.kernel.verify_candidates(bigrid, [(upper_bound, oid)], r, k=1)
        score = result.ranking[0][1]
        verified += 1
        if score > best_score or (score == best_score and oid < best_oid):
            best_oid, best_score = oid, score
        next_upper = (
            candidates[position + 1][0] if position + 1 < len(candidates) else 0
        )
        final = next_upper <= best_score
        yield ProgressiveState(
            best_oid=best_oid,
            best_score=best_score,
            score_upper_bound=max(next_upper, best_score),
            candidates_total=len(candidates),
            candidates_verified=verified,
            is_final=final,
        )
        if final:
            return
