"""Synthetic dataset generators and dataset utilities.

The paper evaluates on rat neuron morphologies (NeuroMorpho), bird
trajectories (Movebank) and a brain-network-seeded synthetic set; none of
those are redistributable here, so each generator below synthesizes the
closest structural analogue (see DESIGN.md §3 for the substitution
arguments):

* :func:`make_neurons`        -- 3-D branching arbors with clustered somata
* :func:`make_trajectories`   -- 2-D leader-follower trajectory segments
* :func:`make_powerlaw`       -- hub-and-spoke clusters giving a power-law
  score distribution (the "Syn" analogue)

:mod:`repro.datasets.registry` exposes the five named Table-I analogues at
benchmark and test scales; :mod:`repro.datasets.swc` and
:mod:`repro.datasets.segmentation` ingest real NeuroMorpho SWC files and
Movebank-style track CSVs (with the paper's ~m-point segmentation), so the
pipeline also runs on the genuine data sources.
"""

from repro.datasets.io import load_collection, save_collection
from repro.datasets.neurons import make_neurons
from repro.datasets.powerlaw import make_powerlaw
from repro.datasets.registry import (
    DATASET_NAMES,
    dataset_table,
    default_r_values,
    load_dataset,
)
from repro.datasets.sampling import sample_collection
from repro.datasets.segmentation import (
    read_tracks_csv,
    segment_trajectories,
    split_trajectory,
    write_tracks_csv,
)
from repro.datasets.stats import describe, score_distribution_alpha
from repro.datasets.swc import (
    export_collection_to_swc,
    load_neurons_from_swc,
    read_swc,
    write_swc,
)
from repro.datasets.trajectories import make_trajectories

__all__ = [
    "DATASET_NAMES",
    "dataset_table",
    "default_r_values",
    "describe",
    "export_collection_to_swc",
    "load_collection",
    "load_dataset",
    "make_neurons",
    "make_powerlaw",
    "load_neurons_from_swc",
    "make_trajectories",
    "read_swc",
    "read_tracks_csv",
    "sample_collection",
    "save_collection",
    "score_distribution_alpha",
    "segment_trajectories",
    "split_trajectory",
    "write_swc",
    "write_tracks_csv",
]
