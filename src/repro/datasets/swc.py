"""SWC neuron-morphology files (the NeuroMorpho exchange format).

The paper's Neuron datasets come from neuromorpho.org, which serves
reconstructions in SWC: one sample point per line,

    <id> <type> <x> <y> <z> <radius> <parent_id>

with ``#`` comment lines and ``parent_id = -1`` for roots.  This module
reads real SWC files into :class:`~repro.core.objects.SpatialObject`
point sets (the paper uses only the sample coordinates) and writes our
synthetic arbors back out as valid SWC, so the pipeline runs unchanged on
downloaded morphologies.
"""

from __future__ import annotations

from pathlib import Path
from typing import Iterable, List, Union

import numpy as np

from repro.core.objects import ObjectCollection

PathLike = Union[str, Path]

#: SWC structure-type code for "undefined" (we carry no topology semantics).
_UNDEFINED_TYPE = 0
_DEFAULT_RADIUS = 1.0


def read_swc(path: PathLike) -> np.ndarray:
    """Read one SWC file and return its sample coordinates as an (m, 3) array.

    Raises ``ValueError`` on malformed lines (wrong field count or
    non-numeric coordinates); comment and blank lines are skipped.
    """
    points: List[List[float]] = []
    with open(Path(path)) as handle:
        for line_number, raw_line in enumerate(handle, start=1):
            line = raw_line.strip()
            if not line or line.startswith("#"):
                continue
            fields = line.split()
            if len(fields) != 7:
                raise ValueError(
                    f"{path}:{line_number}: SWC lines need 7 fields, got {len(fields)}"
                )
            try:
                points.append([float(fields[2]), float(fields[3]), float(fields[4])])
            except ValueError as error:
                raise ValueError(
                    f"{path}:{line_number}: non-numeric coordinate"
                ) from error
    if not points:
        raise ValueError(f"{path}: no sample points found")
    return np.asarray(points, dtype=np.float64)


def write_swc(path: PathLike, points: np.ndarray, comment: str = "") -> None:
    """Write an (m, 3) point array as a valid SWC file.

    Points are emitted as a simple parent chain (each sample's parent is
    the previous one), which preserves the coordinates exactly -- the only
    thing :func:`read_swc` (and the paper's pipeline) consumes.
    """
    points = np.asarray(points, dtype=np.float64)
    if points.ndim != 2 or points.shape[1] != 3 or len(points) == 0:
        raise ValueError("SWC export needs a non-empty (m, 3) array")
    with open(Path(path), "w") as handle:
        if comment:
            handle.write(f"# {comment}\n")
        handle.write("# id type x y z radius parent\n")
        for index, (x, y, z) in enumerate(points, start=1):
            parent = index - 1 if index > 1 else -1
            handle.write(
                f"{index} {_UNDEFINED_TYPE} {x:.6f} {y:.6f} {z:.6f} "
                f"{_DEFAULT_RADIUS:.3f} {parent}\n"
            )


def load_neurons_from_swc(paths: Iterable[PathLike]) -> ObjectCollection:
    """Build a collection from SWC files, one object per file (in order)."""
    arrays = [read_swc(path) for path in paths]
    return ObjectCollection.from_point_arrays(arrays)


def export_collection_to_swc(
    directory: PathLike,
    collection: ObjectCollection,
    prefix: str = "neuron",
) -> List[Path]:
    """Write each object of a 3-D collection as ``<prefix>_<oid>.swc``."""
    if collection.dimension != 3:
        raise ValueError("SWC files are 3-D; the collection must be too")
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    paths = []
    for obj in collection:
        path = directory / f"{prefix}_{obj.oid:05d}.swc"
        write_swc(path, obj.points, comment=f"object {obj.oid}")
        paths.append(path)
    return paths
