"""Trajectory segmentation and Movebank-style CSV ingestion.

The paper's Bird datasets are produced "by dividing long trajectories so
that each trajectory contains approximately m points" [14].  This module
is that preparation step:

* :func:`split_trajectory` -- one long track into ~m-point segments;
* :func:`segment_trajectories` -- a set of long tracks into an
  :class:`~repro.core.objects.ObjectCollection` of segments;
* :func:`read_tracks_csv` -- a Movebank-style CSV
  (``individual,t,x,y[,z]`` rows, one row per fix, arbitrary order) into
  per-individual tracks ready for segmentation.
"""

from __future__ import annotations

import csv
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.core.objects import ObjectCollection

PathLike = Union[str, Path]

#: One long track: (points, timestamps or None).
Track = Tuple[np.ndarray, Optional[np.ndarray]]


def split_trajectory(
    points: np.ndarray,
    timestamps: Optional[np.ndarray] = None,
    segment_length: int = 50,
    min_length: int = 2,
) -> List[Track]:
    """Split one track into consecutive segments of ~``segment_length`` points.

    The split is balanced: a 104-point track at segment_length 50 yields
    segments of 52 + 52 rather than 50 + 50 + 4, so every segment has
    "approximately m points" as the paper describes.  The segment count is
    capped so every piece has at least ``min_length`` points (a track
    shorter than ``min_length`` stays whole); segments always partition
    the track -- no point is dropped.
    """
    points = np.asarray(points, dtype=np.float64)
    if points.ndim != 2 or len(points) == 0:
        raise ValueError("a trajectory must be a non-empty (m, d) array")
    if segment_length < min_length:
        raise ValueError("segment_length must be at least min_length")
    total = len(points)
    # Cap the segment count so every piece has at least min_length points:
    # no point of the track is ever dropped.
    n_segments = max(1, min(round(total / segment_length), total // min_length))
    boundaries = np.linspace(0, total, n_segments + 1).astype(int)
    segments: List[Track] = []
    for start, stop in zip(boundaries[:-1], boundaries[1:]):
        segment_times = timestamps[start:stop] if timestamps is not None else None
        segments.append((points[start:stop], segment_times))
    return segments


def segment_trajectories(
    tracks: Sequence[Track],
    segment_length: int = 50,
    min_length: int = 2,
) -> ObjectCollection:
    """Segment long tracks into a collection of ~m-point objects."""
    point_arrays: List[np.ndarray] = []
    timestamp_arrays: List[Optional[np.ndarray]] = []
    for points, timestamps in tracks:
        for segment_points, segment_times in split_trajectory(
            points, timestamps, segment_length, min_length
        ):
            point_arrays.append(segment_points)
            timestamp_arrays.append(segment_times)
    if not point_arrays:
        raise ValueError("no segments produced")
    if any(times is None for times in timestamp_arrays):
        return ObjectCollection.from_point_arrays(point_arrays)
    return ObjectCollection.from_point_arrays(point_arrays, timestamp_arrays)


def read_tracks_csv(path: PathLike) -> List[Track]:
    """Read a Movebank-style CSV into per-individual, time-sorted tracks.

    Expected header: ``individual,t,x,y`` (optionally ``,z``).  Rows may
    appear in any order; fixes are grouped by individual and sorted by
    timestamp.  Tracks are returned in first-appearance order.
    """
    by_individual: Dict[str, List[Tuple[float, List[float]]]] = {}
    order: List[str] = []
    with open(Path(path), newline="") as handle:
        reader = csv.reader(handle)
        header = [column.strip().lower() for column in next(reader)]
        if header[:2] != ["individual", "t"] or header[2:4] != ["x", "y"]:
            raise ValueError(
                "expected header 'individual,t,x,y[,z]', got " + ",".join(header)
            )
        dimension = len(header) - 2
        if dimension not in (2, 3):
            raise ValueError("tracks must be 2-D or 3-D")
        for row in reader:
            if not row:
                continue
            individual = row[0]
            if individual not in by_individual:
                by_individual[individual] = []
                order.append(individual)
            by_individual[individual].append(
                (float(row[1]), [float(value) for value in row[2:2 + dimension]])
            )
    tracks: List[Track] = []
    for individual in order:
        fixes = sorted(by_individual[individual], key=lambda fix: fix[0])
        points = np.asarray([coords for _t, coords in fixes], dtype=np.float64)
        times = np.asarray([t for t, _coords in fixes], dtype=np.float64)
        tracks.append((points, times))
    return tracks


def write_tracks_csv(path: PathLike, tracks: Sequence[Track]) -> None:
    """Write tracks in the Movebank-style format read by :func:`read_tracks_csv`."""
    if not tracks:
        raise ValueError("no tracks to write")
    dimension = tracks[0][0].shape[1]
    axes = ["x", "y", "z"][:dimension]
    with open(Path(path), "w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(["individual", "t", *axes])
        for index, (points, timestamps) in enumerate(tracks):
            if timestamps is None:
                timestamps = np.arange(len(points), dtype=np.float64)
            for t, coords in zip(timestamps, points):
                writer.writerow([f"track{index}", t, *coords.tolist()])
