"""The Syn analogue: a synthetic set whose score distribution is power-law.

The paper generates Syn "so that its score distribution follows a power
law, based on a human-brain network".  We achieve the same property
constructively: objects are grouped into communities whose sizes follow a
Zipf law; community members scatter their points inside a ball sized so
that members of one community interact at moderate thresholds, while
communities are placed far apart.  An object in a community of size ``s``
then scores approximately ``s - 1``, so scores inherit the Zipf tail --
including the hub objects an MIO query is after.

A configurable fraction of bridge objects spans two communities each
(points split between both balls), which keeps the interaction graph
connected like a brain network rather than a disjoint union of cliques.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.core.objects import ObjectCollection
from repro.datasets.trajectories import zipf_partition


def make_powerlaw(
    n: int,
    mean_points: int,
    extent: float = 3000.0,
    n_communities: int = 40,
    zipf_exponent: float = 1.6,
    community_radius: float = 15.0,
    bridge_fraction: float = 0.05,
    point_count_jitter: float = 0.3,
    seed: Optional[int] = 0,
) -> ObjectCollection:
    """Generate ``n`` 3-D objects with a Zipf-tailed score distribution.

    ``community_radius`` sets the spatial scale of a community relative to
    the unit of ``r`` (the paper sweeps r = 4..10); larger thresholds
    connect progressively more of each community.
    """
    if n < 1 or mean_points < 2:
        raise ValueError("need n >= 1 objects and mean_points >= 2")
    rng = np.random.default_rng(seed)
    sizes = zipf_partition(rng, n, n_communities, zipf_exponent)
    centers = rng.uniform(0.0, extent, size=(len(sizes), 3))
    n_bridges = int(bridge_fraction * n)
    point_arrays = []
    community_of_object = np.repeat(np.arange(len(sizes)), sizes)
    for oid in range(n):
        community = int(community_of_object[oid])
        jitter = 1.0 + rng.uniform(-point_count_jitter, point_count_jitter)
        count = max(2, int(round(mean_points * jitter)))
        if oid < n_bridges and len(sizes) > 1:
            other = int(rng.integers(len(sizes)))
            half = count // 2
            points = np.vstack(
                [
                    _community_cloud(rng, centers[community], community_radius, count - half),
                    _community_cloud(rng, centers[other], community_radius, half),
                ]
            )
        else:
            points = _community_cloud(rng, centers[community], community_radius, count)
        point_arrays.append(points)
    order = rng.permutation(n)
    return ObjectCollection.from_point_arrays(point_arrays[i] for i in order)


def _community_cloud(
    rng: np.random.Generator,
    center: np.ndarray,
    radius: float,
    count: int,
) -> np.ndarray:
    """A short correlated walk inside the community ball around ``center``."""
    anchor = center + rng.normal(0.0, radius, size=3)
    steps = rng.normal(0.0, radius / 6.0, size=(count, 3))
    walk = anchor + np.cumsum(steps, axis=0)
    return walk
