"""Synthetic neuron morphologies (the Neuron / Neuron-2 analogues).

A neuron is modeled the way the motivating literature does (Fig. 1 of the
paper): a soma from which several neurites grow as persistent random walks
that occasionally branch, producing an elongated, space-filling arbor of
3-D sample points.  Somata are drawn from a small number of spatial
clusters, so arbors overlap heavily inside a cluster (dense space) and
rarely across clusters (sparse space) -- the skew that makes compressed
bitsets and grid pruning effective.

These shapes are exactly the ones the paper argues defeat MBR indexing:
an arbor's bounding box is mostly empty space.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.core.objects import ObjectCollection


def make_neurons(
    n: int,
    mean_points: int,
    extent: float = 200.0,
    n_clusters: int = 6,
    cluster_spread: float = 12.0,
    step: float = 2.0,
    branch_probability: float = 0.05,
    heading_persistence: float = 0.85,
    point_count_jitter: float = 0.3,
    seed: Optional[int] = 0,
) -> ObjectCollection:
    """Generate ``n`` branching 3-D arbors averaging ``mean_points`` points.

    Parameters mirror morphology statistics rather than any specific
    dataset: ``step`` is the sampling distance along a neurite (the unit of
    ``r``; the paper sweeps r = 4..10 micrometers), ``cluster_spread`` the
    soma scatter within a cluster, ``heading_persistence`` how straight
    neurites grow, and ``branch_probability`` the per-step branching rate.
    """
    if n < 1 or mean_points < 2:
        raise ValueError("need n >= 1 objects and mean_points >= 2")
    rng = np.random.default_rng(seed)
    centers = rng.uniform(0.0, extent, size=(n_clusters, 3))
    point_arrays = []
    for _ in range(n):
        soma = centers[rng.integers(n_clusters)] + rng.normal(0.0, cluster_spread, size=3)
        jitter = 1.0 + rng.uniform(-point_count_jitter, point_count_jitter)
        target = max(2, int(round(mean_points * jitter)))
        point_arrays.append(
            _grow_arbor(rng, soma, target, step, branch_probability, heading_persistence)
        )
    return ObjectCollection.from_point_arrays(point_arrays)


def _grow_arbor(
    rng: np.random.Generator,
    soma: np.ndarray,
    target_points: int,
    step: float,
    branch_probability: float,
    heading_persistence: float,
) -> np.ndarray:
    """Grow one arbor: several neurites random-walking out of the soma."""
    points = [soma]
    n_primaries = int(rng.integers(2, 6))
    tips = [(soma.copy(), _random_direction(rng)) for _ in range(n_primaries)]
    while len(points) < target_points:
        tip_index = int(rng.integers(len(tips)))
        position, heading = tips[tip_index]
        new_heading = _steer(rng, heading, heading_persistence)
        new_position = position + step * new_heading
        points.append(new_position)
        tips[tip_index] = (new_position, new_heading)
        if rng.random() < branch_probability:
            tips.append((new_position.copy(), _random_direction(rng)))
    return np.asarray(points[:target_points], dtype=np.float64)


def _random_direction(rng: np.random.Generator) -> np.ndarray:
    direction = rng.normal(size=3)
    return direction / np.linalg.norm(direction)


def _steer(rng: np.random.Generator, heading: np.ndarray, persistence: float) -> np.ndarray:
    """Blend the previous heading with noise and renormalize."""
    blended = persistence * heading + (1.0 - persistence) * rng.normal(size=3)
    norm = np.linalg.norm(blended)
    if norm == 0.0:
        return _random_direction(rng)
    return blended / norm
