"""Dataset statistics: the quantities Table I reports, plus score-skew checks.

:func:`score_distribution_alpha` fits the exponent of a power-law score
distribution by least squares on the log-log rank/frequency curve; the Syn
generator's tests use it to confirm the paper's "score distribution follows
a power law" property actually holds.
"""

from __future__ import annotations

from typing import Dict, Sequence

import numpy as np

from repro.core.objects import ObjectCollection


def describe(collection: ObjectCollection) -> Dict[str, float]:
    """n, m, nm, dimensionality, extent per axis, point-count spread."""
    counts = np.array([obj.num_points for obj in collection], dtype=np.float64)
    low, high = collection.bounds()
    return {
        "n": collection.n,
        "m": float(counts.mean()),
        "nm": collection.total_points,
        "dimension": collection.dimension,
        "m_min": float(counts.min()),
        "m_max": float(counts.max()),
        "extent": float(np.max(high - low)),
    }


def score_distribution_alpha(scores: Sequence[int]) -> float:
    """Power-law exponent estimate of a score distribution.

    Fits ``log(score) ~ -alpha * log(rank)`` over the positive scores in
    descending order and returns ``alpha`` (larger means heavier skew).
    Returns 0.0 when fewer than three positive scores exist.
    """
    positive = sorted((s for s in scores if s > 0), reverse=True)
    if len(positive) < 3:
        return 0.0
    ranks = np.arange(1, len(positive) + 1, dtype=np.float64)
    values = np.asarray(positive, dtype=np.float64)
    slope, _intercept = np.polyfit(np.log(ranks), np.log(values), 1)
    return float(-slope)


def interaction_density(scores: Sequence[int]) -> float:
    """Average score divided by (n - 1): the fraction of interacting pairs."""
    scores = list(scores)
    if len(scores) < 2:
        return 0.0
    return float(np.mean(scores)) / (len(scores) - 1)
