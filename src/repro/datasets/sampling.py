"""Object sampling for the scalability experiments (Fig. 6).

The paper evaluates scalability by selecting ``s * n`` objects from each
dataset at sampling rate ``s``; :func:`sample_collection` does the same,
renumbering object ids so bitsets stay dense.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.core.objects import ObjectCollection


def sample_collection(
    collection: ObjectCollection,
    rate: float,
    seed: Optional[int] = 0,
) -> ObjectCollection:
    """A uniform sample of ``round(rate * n)`` objects (at least one)."""
    if not 0.0 < rate <= 1.0:
        raise ValueError("the sampling rate must lie in (0, 1]")
    if rate == 1.0:
        return collection
    rng = np.random.default_rng(seed)
    count = max(1, int(round(rate * collection.n)))
    indices = np.sort(rng.choice(collection.n, size=count, replace=False))
    return collection.subset(indices.tolist())
