"""Synthetic bird trajectories (the Bird / Bird-2 analogues).

The paper's Bird datasets are Movebank trajectories split into ~m-point
segments, and its trajectory motivation (Fig. 2) is leader-follower
structure: many individuals follow a leader's motion pattern with spatial
offsets, so one trajectory interacts with a large fraction of the set.

We reproduce that structure directly: flocks of configurable (Zipf-skewed)
size share a leader path -- a persistent 2-D random walk -- and each member
flies the same path displaced by a random offset plus per-point jitter.
Offsets are exponentially distributed around the interaction range, so for
small ``r`` only the tight core of a flock interacts and the interaction
graph grows smoothly with ``r``, as in the paper's r-sweeps.  Every point
also carries a timestamp (its position along the path), which the temporal
extension (Appendix B) consumes.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.core.objects import ObjectCollection


def make_trajectories(
    n: int,
    points_per_trajectory: int,
    extent: float = 2000.0,
    n_flocks: int = 12,
    zipf_exponent: float = 1.3,
    step: float = 5.0,
    offset_scale: float = 8.0,
    jitter: float = 1.0,
    heading_persistence: float = 0.9,
    with_timestamps: bool = True,
    seed: Optional[int] = 0,
) -> ObjectCollection:
    """Generate ``n`` trajectory segments of ``points_per_trajectory`` points.

    ``offset_scale`` controls how tightly followers track their leader (the
    unit of ``r``; the paper sweeps r = 4..10 meters), ``zipf_exponent``
    the skew of flock sizes (large flocks produce the hub objects MIO
    queries find).
    """
    if n < 1 or points_per_trajectory < 2:
        raise ValueError("need n >= 1 objects and points_per_trajectory >= 2")
    rng = np.random.default_rng(seed)
    flock_sizes = zipf_partition(rng, n, n_flocks, zipf_exponent)
    point_arrays = []
    timestamp_arrays = []
    for flock_size in flock_sizes:
        leader_path = _leader_path(
            rng, points_per_trajectory, extent, step, heading_persistence
        )
        times = np.arange(points_per_trajectory, dtype=np.float64)
        for member in range(flock_size):
            if member == 0:
                offset = np.zeros(2)
            else:
                direction = rng.normal(size=2)
                direction /= np.linalg.norm(direction)
                offset = direction * rng.exponential(offset_scale)
            noise = rng.normal(0.0, jitter, size=(points_per_trajectory, 2))
            point_arrays.append(leader_path + offset + noise)
            timestamp_arrays.append(times.copy())
    return ObjectCollection.from_point_arrays(
        point_arrays, timestamp_arrays if with_timestamps else None
    )


def _leader_path(
    rng: np.random.Generator,
    length: int,
    extent: float,
    step: float,
    persistence: float,
) -> np.ndarray:
    """A persistent random walk starting somewhere in the extent."""
    positions = np.empty((length, 2), dtype=np.float64)
    positions[0] = rng.uniform(0.0, extent, size=2)
    heading = rng.normal(size=2)
    heading /= np.linalg.norm(heading)
    for index in range(1, length):
        heading = persistence * heading + (1.0 - persistence) * rng.normal(size=2)
        norm = np.linalg.norm(heading)
        if norm == 0.0:
            heading = rng.normal(size=2)
            norm = np.linalg.norm(heading)
        heading /= norm
        positions[index] = positions[index - 1] + step * heading
    return positions


def zipf_partition(
    rng: np.random.Generator,
    total: int,
    n_parts: int,
    exponent: float,
) -> np.ndarray:
    """Split ``total`` into ``n_parts`` Zipf-proportional positive sizes.

    Shared by every skewed generator (flock sizes here, community sizes
    in :mod:`repro.datasets.powerlaw`): sizes follow ``1/rank**exponent``,
    each part gets at least 1, and rounding remainders are folded back so
    the sizes always sum to ``total`` exactly.  When ``total < n_parts``
    the part count shrinks to ``total`` (every part must be positive).

    Edge cases: ``total == 0`` returns an *empty* int64 array — the empty
    partition is the only one whose parts are positive and sum to zero —
    and any ``n_parts`` is then acceptable (it shrinks to zero parts).
    A non-positive ``n_parts`` with ``total > 0`` raises ``ValueError``:
    no zero-part split of a positive total exists.  ``total < 0`` raises
    ``ValueError`` as well.
    """
    if total < 0:
        raise ValueError(f"total must be non-negative, got {total}")
    if total > 0 and n_parts < 1:
        raise ValueError(
            f"cannot split a positive total into {n_parts} parts"
        )
    n_parts = min(n_parts, total)
    weights = 1.0 / np.arange(1, n_parts + 1, dtype=np.float64) ** exponent
    sizes = np.maximum(1, np.floor(total * weights / weights.sum()).astype(np.int64))
    # Distribute the rounding remainder over the largest parts.
    shortfall = total - int(sizes.sum())
    index = 0
    while shortfall != 0:
        adjustment = 1 if shortfall > 0 else -1
        if sizes[index % n_parts] + adjustment >= 1:
            sizes[index % n_parts] += adjustment
            shortfall -= adjustment
        index += 1
    rng.shuffle(sizes)
    return sizes
