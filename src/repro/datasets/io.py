"""Dataset persistence.

Collections serialize to a single ``.npz``: all coordinates concatenated
plus per-object offsets (the standard ragged-array layout), with optional
timestamps.  A CSV exchange format (``oid,x,y[,z][,t]`` rows) is provided
for interoperability with external tools.
"""

from __future__ import annotations

import csv
from pathlib import Path
from typing import List, Union

import numpy as np

from repro import faults
from repro.core.objects import ObjectCollection
from repro.errors import CorruptDataError

PathLike = Union[str, Path]


def save_collection(path: PathLike, collection: ObjectCollection) -> None:
    """Write a collection to ``path`` (``.npz``)."""
    points = np.vstack([obj.points for obj in collection])
    offsets = np.cumsum([0] + [obj.num_points for obj in collection])
    payload = {"points": points, "offsets": offsets}
    if collection.has_timestamps():
        payload["timestamps"] = np.concatenate([obj.timestamps for obj in collection])
    np.savez_compressed(Path(path), **payload)


def load_collection(path: PathLike) -> ObjectCollection:
    """Read a collection written by :func:`save_collection`.

    An unreadable archive, a missing array, or content that does not form a
    valid collection raises :class:`CorruptDataError` naming ``path`` —
    callers never see a raw ``zipfile``/``numpy`` exception.
    """
    path = Path(path)
    faults.trip("io", detail=str(path))
    try:
        with np.load(path) as archive:
            points = archive["points"]
            offsets = archive["offsets"]
            timestamps = archive["timestamps"] if "timestamps" in archive.files else None
        point_arrays = [
            points[offsets[i]:offsets[i + 1]] for i in range(len(offsets) - 1)
        ]
        timestamp_arrays = None
        if timestamps is not None:
            timestamp_arrays = [
                timestamps[offsets[i]:offsets[i + 1]] for i in range(len(offsets) - 1)
            ]
        return ObjectCollection.from_point_arrays(point_arrays, timestamp_arrays)
    except FileNotFoundError:
        raise
    except Exception as exc:
        raise CorruptDataError(f"{path}: not a valid collection archive ({exc})") from exc


def export_csv(path: PathLike, collection: ObjectCollection) -> None:
    """Write ``oid,x,y[,z][,t]`` rows (header included)."""
    axes = ["x", "y", "z"][: collection.dimension]
    header = ["oid", *axes] + (["t"] if collection.has_timestamps() else [])
    with open(Path(path), "w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(header)
        for obj in collection:
            for index in range(obj.num_points):
                row: List[object] = [obj.oid, *obj.points[index].tolist()]
                if obj.timestamps is not None:
                    row.append(obj.timestamps[index])
                writer.writerow(row)


def import_csv(path: PathLike) -> ObjectCollection:
    """Read a file written by :func:`export_csv`.

    Unparseable rows, a missing/short header, or content that does not form
    a valid collection raise :class:`CorruptDataError` naming ``path``.
    """
    path = Path(path)
    faults.trip("io", detail=str(path))
    try:
        with open(path, newline="") as handle:
            reader = csv.reader(handle)
            header = next(reader, None)
            if not header or header[0] != "oid":
                raise CorruptDataError(f"{path}: missing oid,x,y[,z][,t] header")
            has_time = header[-1] == "t"
            dimension = len(header) - 1 - (1 if has_time else 0)
            points_by_oid: dict = {}
            times_by_oid: dict = {}
            for row in reader:
                oid = int(row[0])
                points_by_oid.setdefault(oid, []).append(
                    [float(value) for value in row[1:1 + dimension]]
                )
                if has_time:
                    times_by_oid.setdefault(oid, []).append(float(row[-1]))
        oids = sorted(points_by_oid)
        point_arrays = [np.asarray(points_by_oid[oid]) for oid in oids]
        timestamp_arrays = (
            [np.asarray(times_by_oid[oid]) for oid in oids] if has_time else None
        )
        return ObjectCollection.from_point_arrays(point_arrays, timestamp_arrays)
    except FileNotFoundError:
        raise
    except CorruptDataError:
        raise
    except Exception as exc:
        raise CorruptDataError(f"{path}: not a valid collection CSV ({exc})") from exc
