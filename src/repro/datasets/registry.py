"""Named dataset analogues mirroring Table I of the paper.

Each entry keeps the *shape* of its Table-I counterpart -- the n : m ratio,
the dimensionality, and the spatial skew -- at a scale pure Python can
sweep in seconds (DESIGN.md §3 documents the scale substitution).  The
``scale`` parameter multiplies ``n`` so the Fig. 6 scalability experiments
can grow or shrink a dataset while keeping m fixed, exactly like the
paper's object sampling.

The unit of ``r`` matches the generators' step scales, so the paper's
sweep r = 4..10 lands in the interesting regime for every dataset.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Tuple

from repro.core.objects import ObjectCollection
from repro.datasets.neurons import make_neurons
from repro.datasets.powerlaw import make_powerlaw
from repro.datasets.trajectories import make_trajectories


@dataclass(frozen=True)
class DatasetSpec:
    """Recipe for one named dataset analogue."""

    name: str
    paper_n: int
    paper_m: int
    unit: str
    build: Callable[[float, int], ObjectCollection]
    base_n: int
    base_m: int


def _neuron(scale: float, seed: int) -> ObjectCollection:
    return make_neurons(
        n=max(2, int(70 * scale)),
        mean_points=350,
        extent=220.0,
        n_clusters=5,
        cluster_spread=15.0,
        step=2.0,
        seed=seed,
    )


def _neuron_2(scale: float, seed: int) -> ObjectCollection:
    return make_neurons(
        n=max(2, int(420 * scale)),
        mean_points=45,
        extent=320.0,
        n_clusters=8,
        cluster_spread=18.0,
        step=2.5,
        seed=seed,
    )


def _bird(scale: float, seed: int) -> ObjectCollection:
    return make_trajectories(
        n=max(2, int(900 * scale)),
        points_per_trajectory=22,
        extent=2500.0,
        n_flocks=18,
        step=6.0,
        offset_scale=9.0,
        seed=seed,
    )


def _bird_2(scale: float, seed: int) -> ObjectCollection:
    return make_trajectories(
        n=max(2, int(320 * scale)),
        points_per_trajectory=55,
        extent=1800.0,
        n_flocks=10,
        step=5.0,
        offset_scale=8.0,
        seed=seed,
    )


def _syn(scale: float, seed: int) -> ObjectCollection:
    return make_powerlaw(
        n=max(2, int(1400 * scale)),
        mean_points=15,
        extent=2600.0,
        n_communities=45,
        community_radius=14.0,
        seed=seed,
    )


_REGISTRY: Dict[str, DatasetSpec] = {
    "neuron": DatasetSpec("neuron", 776, 7960, "micrometer", _neuron, 70, 350),
    "neuron-2": DatasetSpec("neuron-2", 5493, 848, "micrometer", _neuron_2, 420, 45),
    "bird": DatasetSpec("bird", 143042, 50, "meter", _bird, 900, 22),
    "bird-2": DatasetSpec("bird-2", 29247, 100, "meter", _bird_2, 320, 55),
    "syn": DatasetSpec("syn", 851519, 52, "-", _syn, 1400, 15),
}

DATASET_NAMES: Tuple[str, ...] = tuple(_REGISTRY)


def load_dataset(name: str, scale: float = 1.0, seed: int = 7) -> ObjectCollection:
    """Build a named analogue; ``scale`` multiplies the object count."""
    try:
        spec = _REGISTRY[name]
    except KeyError:
        options = ", ".join(DATASET_NAMES)
        raise ValueError(f"unknown dataset {name!r} (choose from: {options})") from None
    return spec.build(scale, seed)


def dataset_spec(name: str) -> DatasetSpec:
    """The registry entry for a named dataset."""
    return _REGISTRY[name]


def default_r_values(name: str) -> List[float]:
    """The paper's r sweep (4..10, after [7]) -- shared by every dataset."""
    if name not in _REGISTRY:
        raise ValueError(f"unknown dataset {name!r}")
    return [4.0, 6.0, 8.0, 10.0]


def dataset_table(scale: float = 1.0, seed: int = 7) -> List[Dict[str, object]]:
    """Rows of the Table-I analogue: per-dataset n, m, nm and the paper's."""
    rows = []
    for name, spec in _REGISTRY.items():
        collection = spec.build(scale, seed)
        rows.append(
            {
                "dataset": name,
                "n": collection.n,
                "m": round(collection.mean_points, 1),
                "nm": collection.total_points,
                "dim": collection.dimension,
                "unit": spec.unit,
                "paper_n": spec.paper_n,
                "paper_m": spec.paper_m,
                "paper_nm": spec.paper_n * spec.paper_m,
            }
        )
    return rows
