"""Spatial grid structures: the G in BIGrid.

* :mod:`repro.grid.keys`       -- cell key computation and adjacency
* :mod:`repro.grid.small_grid` -- Definition 2 (bitset cells, width r/sqrt(d))
* :mod:`repro.grid.large_grid` -- Definition 3 (inverted lists + bitsets,
  width ceil(r), lazy adjacent-union bitsets)
* :mod:`repro.grid.bigrid`     -- Algorithm 3, GRID-MAPPING (+ label variant)
"""

from repro.grid.bigrid import BIGrid
from repro.grid.keys import (
    adjacent_keys,
    cell_and_adjacent_keys,
    compute_keys,
    large_cell_width,
    neighbor_offsets,
    small_cell_width,
)
from repro.grid.large_grid import LargeGrid, LargeGridCell
from repro.grid.small_grid import SmallGrid, SmallGridCell

__all__ = [
    "BIGrid",
    "LargeGrid",
    "LargeGridCell",
    "SmallGrid",
    "SmallGridCell",
    "adjacent_keys",
    "cell_and_adjacent_keys",
    "compute_keys",
    "large_cell_width",
    "neighbor_offsets",
    "small_cell_width",
]
