"""BIGrid: the paper's hybrid index, built online per query (Algorithm 3).

A BIGrid bundles the small-grid (lower bounds), the large-grid (upper
bounds + verification), the per-object key lists ``o_i.L`` (small-grid cells
shared with at least one other object, Lemma 1's access set) and the
per-object key grouping ``P_{i,K}`` of points by large-grid cell (used by
upper-bounding and by the parallel cost model, Eq. (3)).

Construction is a single object-major scan: every per-point operation is
O(1) amortized, so GRID-MAPPING runs in O(nm), and cells are created only
when a point maps into them (no empty cells, no replication).

``point_filter`` implements GRID-MAPPING-WITH-LABEL (Lemma 3): points whose
label has the first bit 0 are skipped entirely -- they provably contribute
to no bound and no score for any ``r'`` with ``ceil(r') == ceil(r)``.

``small_width`` / ``large_width`` overrides exist only for the Appendix A
ablation (offline grids built for a mismatched ``r'``); production callers
never pass them.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Set, Type

import numpy as np

from repro.bitset.base import Bitset
from repro.bitset.factory import bitset_class
from repro.core.objects import ObjectCollection
from repro.grid.keys import Key, compute_keys, large_cell_width, small_cell_width
from repro.grid.large_grid import LargeGrid
from repro.grid.small_grid import SmallGrid
from repro.resilience import Deadline, checkpoint

PointFilter = Callable[[int], Optional[np.ndarray]]

#: ``(oid, selected_indices) -> large-grid keys`` for the selected points.
#: Supplied by a session's :class:`~repro.grid.cache.LargeKeyCache` so the
#: per-point large-key computation is shared across same-ceiling queries.
LargeKeysProvider = Callable[[int, np.ndarray], List[Key]]


class BIGrid:
    """The built index for one distance threshold ``r``."""

    __slots__ = (
        "collection",
        "r",
        "small_grid",
        "large_grid",
        "key_lists",
        "object_groups",
        "mapped_points",
    )

    def __init__(
        self,
        collection: ObjectCollection,
        r: float,
        small_grid: SmallGrid,
        large_grid: LargeGrid,
        key_lists: List[Set[Key]],
        object_groups: List[Dict[Key, List[int]]],
        mapped_points: int,
    ) -> None:
        self.collection = collection
        self.r = r
        self.small_grid = small_grid
        self.large_grid = large_grid
        #: ``o_i.L`` -- small-grid keys shared with another object.
        self.key_lists = key_lists
        #: ``P_{i,K}`` -- point indices of ``o_i`` grouped by large-grid key,
        #: in first-occurrence order (the canonical point access order that
        #: label replay relies on).
        self.object_groups = object_groups
        #: Points actually mapped (equals nm unless a label filter skipped some).
        self.mapped_points = mapped_points

    # ------------------------------------------------------------------
    # Construction (Algorithm 3)
    # ------------------------------------------------------------------

    @classmethod
    def build(
        cls,
        collection: ObjectCollection,
        r: float,
        backend: str = "ewah",
        point_filter: Optional[PointFilter] = None,
        small_width: Optional[float] = None,
        large_width: Optional[float] = None,
        deadline: Optional[Deadline] = None,
        large_keys_provider: Optional[LargeKeysProvider] = None,
    ) -> "BIGrid":
        """GRID-MAPPING(O, r): build both grids in one scan of the points.

        An expired ``deadline`` raises ``QueryTimeout`` between objects: a
        partially built index supports no bound, so grid mapping has no
        anytime answer to offer.
        """
        bitset_cls: Type[Bitset] = bitset_class(backend)
        dimension = collection.dimension
        s_width = small_width if small_width is not None else small_cell_width(r, dimension)
        l_width = large_width if large_width is not None else large_cell_width(r)
        small_grid = SmallGrid(s_width, dimension, bitset_cls)
        large_grid = LargeGrid(l_width, dimension, bitset_cls)
        key_lists: List[Set[Key]] = [set() for _ in range(collection.n)]
        object_groups: List[Dict[Key, List[int]]] = [{} for _ in range(collection.n)]
        mapped_points = 0

        for obj in collection:
            checkpoint(deadline, "grid_mapping")
            oid = obj.oid
            indices = _selected_indices(obj.num_points, point_filter, oid)
            if len(indices) == 0:
                continue
            mapped_points += len(indices)
            small_keys = compute_keys(obj.points[indices], s_width)
            if large_keys_provider is not None and large_width is None:
                large_keys = large_keys_provider(oid, indices)
            else:
                large_keys = compute_keys(obj.points[indices], l_width)
            groups = object_groups[oid]
            for position, point_index in enumerate(indices):
                # Small grid (lines 3-13): maintain bitsets and key lists.
                small_key = small_keys[position]
                reached, first_oid = small_grid.add_point(oid, small_key)
                if reached == 2:
                    key_lists[first_oid].add(small_key)
                    key_lists[oid].add(small_key)
                elif reached is not None and reached > 2:
                    key_lists[oid].add(small_key)
                # Large grid (lines 14-21): postings + per-object grouping.
                large_key = large_keys[position]
                large_grid.add_point(oid, large_key, int(point_index))
                group = groups.get(large_key)
                if group is None:
                    groups[large_key] = [int(point_index)]
                else:
                    group.append(int(point_index))

        return cls(
            collection,
            r,
            small_grid,
            large_grid,
            key_lists,
            object_groups,
            mapped_points,
        )

    # ------------------------------------------------------------------
    # Accounting
    # ------------------------------------------------------------------

    def memory_bytes(self) -> int:
        """Index footprint: both grids plus the key lists and groupings."""
        total = self.small_grid.memory_bytes() + self.large_grid.memory_bytes()
        for keys in self.key_lists:
            total += 16 + (8 * self.collection.dimension) * len(keys)
        for groups in self.object_groups:
            # Group index entries reference the posting lists already charged
            # to the large grid: key plus one pointer per group.
            total += 16 + (8 * self.collection.dimension + 8) * len(groups)
        return total

    def __repr__(self) -> str:
        return (
            f"BIGrid(r={self.r}, small_cells={len(self.small_grid)}, "
            f"large_cells={len(self.large_grid)})"
        )


def _selected_indices(
    num_points: int,
    point_filter: Optional[PointFilter],
    oid: int,
) -> np.ndarray:
    """Point indices of one object that survive the (optional) label filter."""
    if point_filter is None:
        return np.arange(num_points)
    mask = point_filter(oid)
    if mask is None:
        return np.arange(num_points)
    return np.nonzero(mask)[0]
