"""The small-grid of Definition 2.

A hash table of cells with width ``r / sqrt(d)``.  Each cell carries one
compressed bitset whose bit ``i`` is set iff object ``o_i`` has a point in
the cell.  Cells are created on demand (no empty cells, no replication).

The grid also tracks, per cell, how many *distinct* objects have points in
it, which is what Algorithm 3 needs to maintain the key lists ``o_i.L``
("cells shared by at least two objects") without re-counting bits.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple, Type

from repro.bitset.base import Bitset
from repro.grid.keys import Key


class SmallGridCell:
    """One small-grid cell: its bitset plus distinct-object bookkeeping."""

    __slots__ = ("bitset", "distinct_objects", "first_oid", "last_oid")

    def __init__(self, bitset: Bitset) -> None:
        self.bitset = bitset
        self.distinct_objects = 0
        self.first_oid = -1
        self.last_oid = -1


class SmallGrid:
    """Hash-table grid of :class:`SmallGridCell`."""

    __slots__ = ("width", "dimension", "bitset_cls", "cells")

    def __init__(self, width: float, dimension: int, bitset_cls: Type[Bitset]) -> None:
        self.width = width
        self.dimension = dimension
        self.bitset_cls = bitset_cls
        self.cells: Dict[Key, SmallGridCell] = {}

    def add_point(self, oid: int, key: Key) -> Tuple[Optional[int], int]:
        """Record that object ``oid`` has a point in cell ``key``.

        Objects must arrive in non-decreasing oid order per cell, which
        Algorithm 3's object-major scan guarantees.  Returns the pair
        ``(newly_reached_distinct_count or None, first_oid)`` so the caller
        can apply the key-list updates of Algorithm 3, lines 7-10:

        * ``(2, i')``  -- the cell just became shared: add the key to both
          ``o_i.L`` and ``o_{i'}.L``;
        * ``(c > 2, _)`` -- add the key to ``o_i.L`` only;
        * ``(None, _)`` -- no change in distinct count (duplicate point of
          the same object, or a fresh single-object cell... see below).

        A fresh cell (count 1) is reported as ``(1, oid)``.
        """
        cell = self.cells.get(key)
        if cell is None:
            cell = SmallGridCell(self.bitset_cls())
            self.cells[key] = cell
            cell.bitset.set(oid)
            cell.distinct_objects = 1
            cell.first_oid = oid
            cell.last_oid = oid
            return 1, oid
        if cell.last_oid == oid:
            return None, cell.first_oid
        cell.bitset.set(oid)
        cell.distinct_objects += 1
        cell.last_oid = oid
        return cell.distinct_objects, cell.first_oid

    def cell(self, key: Key) -> Optional[SmallGridCell]:
        """The cell at ``key``, or None if no point maps there."""
        return self.cells.get(key)

    def __len__(self) -> int:
        return len(self.cells)

    def memory_bytes(self) -> int:
        """Bitset bytes plus per-entry hash table overhead.

        Each hash entry is charged the key (8 bytes per axis), one pointer,
        and the fixed cell header (counts), mirroring a compact C++ layout.
        """
        per_entry = 8 * self.dimension + 8 + 12
        total = per_entry * len(self.cells)
        for cell in self.cells.values():
            total += cell.bitset.size_in_bytes()
        return total
