"""Cell key computation and adjacency for uniform grids.

A cell key is the tuple of per-axis indices ``floor(coordinate / width)``;
cells are half-open boxes ``[k*w, (k+1)*w)``.  Two widths matter:

* **small-grid** width ``r / sqrt(d)`` (Definition 2): the cell diagonal is
  exactly ``r``, so two points sharing a small cell are certainly within
  ``r`` -- the basis of the lower bound (Lemma 1).
* **large-grid** width ``ceil(r)`` (Definition 3): any point within ``r`` of
  ``p`` lies in ``p``'s cell or one of its ``3^d - 1`` adjacent cells -- the
  basis of the upper bound (Lemma 2).  The ceiling makes the large grid
  identical for every ``r'`` with ``ceil(r') == ceil(r)``, which is what the
  label-reuse scheme of Section III-D relies on.
"""

from __future__ import annotations

import itertools
import math
from functools import lru_cache
from typing import Iterator, List, Tuple

import numpy as np

from repro.errors import InvalidQueryError

Key = Tuple[int, ...]

#: Relative guard applied to cell widths so the geometric guarantees hold
#: under float64 *computed* distances, not just exact ones.  Distance
#: computations carry a relative error of a few ulps (~1e-15); at the exact
#: ``dist == r`` boundary that error can round a mathematically-greater
#: distance down to ``r`` (or a smaller one up past it).  Widening the
#: large grid and narrowing the small grid by 1e-12 -- far above the
#: arithmetic error, far below any meaningful geometry -- restores both
#: Lemma 1 ("same small cell => computed dist <= r") and Lemma 2
#: ("computed dist <= r => adjacent large cells") for every float input.
#: Both widths remain pure functions of r / ceil(r), so the label-reuse
#: property of Section III-D is untouched.
WIDTH_GUARD = 1e-12


def small_cell_width(r: float, dimension: int) -> float:
    """Width of a small-grid cell: ``r / sqrt(d)`` (diagonal equals ``r``),
    shrunk by the float guard."""
    if not r > 0 or math.isinf(r):
        raise InvalidQueryError("the distance threshold r must be positive and finite")
    if dimension not in (2, 3):
        raise InvalidQueryError("only 2-D and 3-D grids are supported")
    return (r / math.sqrt(dimension)) * (1.0 - WIDTH_GUARD)


def large_cell_width(r: float) -> float:
    """Width of a large-grid cell: ``ceil(r)``, widened by the float guard."""
    if not r > 0 or math.isinf(r):
        raise InvalidQueryError("the distance threshold r must be positive and finite")
    return float(math.ceil(r)) * (1.0 + WIDTH_GUARD)


def compute_keys(points: np.ndarray, width: float) -> List[Key]:
    """Cell keys for every row of ``points`` under the given cell width."""
    indices = np.floor(points / width).astype(np.int64)
    return [tuple(row) for row in indices.tolist()]


def point_key(point: np.ndarray, width: float) -> Key:
    """Cell key of a single point."""
    return tuple(int(math.floor(float(c) / width)) for c in point)


@lru_cache(maxsize=None)
def neighbor_offsets(dimension: int, include_center: bool = False) -> Tuple[Key, ...]:
    """Offsets to the ``3^d - 1`` adjacent cells (plus the cell itself if asked)."""
    offsets = [
        offset
        for offset in itertools.product((-1, 0, 1), repeat=dimension)
        if include_center or any(offset)
    ]
    return tuple(offsets)


def adjacent_keys(key: Key) -> Iterator[Key]:
    """Keys of the cells adjacent to ``key`` (excluding ``key`` itself)."""
    for offset in neighbor_offsets(len(key)):
        yield tuple(k + o for k, o in zip(key, offset))


def cell_and_adjacent_keys(key: Key) -> Iterator[Key]:
    """``key`` followed by its adjacent cell keys (the K' of Definition 3)."""
    yield key
    yield from adjacent_keys(key)
