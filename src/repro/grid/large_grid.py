"""The large-grid of Definition 3.

A hash table of cells with width ``ceil(r)``.  Each cell carries

* an inverted list ``I(c_K)``: one posting list per object, holding the
  indices of that object's points mapped into the cell,
* a compressed bitset ``b(c_K)`` with bit ``i`` set iff ``o_i`` has a
  posting list in the cell,
* a lazily computed union bitset ``b_adj(c_K) = OR of b(c_K')`` over the
  cell and its adjacent cells.  Algorithm 3 deliberately does *not* build
  these during grid mapping (it would touch 3^d cells per point); they are
  materialized on first use in the upper-bounding step and memoized.

Posting lists store point row indices rather than coordinates, so the
coordinates live once in the collection and verification fetches them with
one fancy-index per posting list.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Type

import numpy as np

from repro.bitset.base import Bitset
from repro.grid.keys import Key, cell_and_adjacent_keys


class LargeGridCell:
    """One large-grid cell: inverted list, bitset, lazy adjacent union."""

    __slots__ = (
        "bitset",
        "postings",
        "adj_int",
        "_adj_bitset",
        "last_oid",
        "_point_cache",
        "neighbor_cells",
    )

    def __init__(self, bitset: Bitset) -> None:
        self.bitset = bitset
        self.postings: Dict[int, List[int]] = {}
        #: Big-int form of ``b_adj``; None until upper-bounding touches the
        #: cell.  The hot loops consume this; the compressed form below is
        #: materialized on demand for storage accounting and inspection.
        self.adj_int: Optional[int] = None
        self._adj_bitset: Optional[Bitset] = None
        self.last_oid = -1
        self._point_cache: Dict[int, np.ndarray] = {}
        #: Non-empty cells of the neighbourhood (self first), cached when the
        #: adjacent union is computed so verification re-walks no keys.
        self.neighbor_cells: Optional[List["LargeGridCell"]] = None

    @property
    def adj_bitset(self) -> Optional[Bitset]:
        """Compressed ``b_adj(c_K)``, or None if not yet computed."""
        if self._adj_bitset is None and self.adj_int is not None:
            self._adj_bitset = type(self.bitset).from_int(self.adj_int)
        return self._adj_bitset

    def posting_points(self, oid: int, points: np.ndarray) -> np.ndarray:
        """Coordinates of ``oid``'s posting list, cached after first fetch."""
        cached = self._point_cache.get(oid)
        if cached is None:
            cached = points[self.postings[oid]]
            self._point_cache[oid] = cached
        return cached


class LargeGrid:
    """Hash-table grid of :class:`LargeGridCell`."""

    __slots__ = ("width", "dimension", "bitset_cls", "cells", "adj_computed")

    def __init__(self, width: float, dimension: int, bitset_cls: Type[Bitset]) -> None:
        self.width = width
        self.dimension = dimension
        self.bitset_cls = bitset_cls
        self.cells: Dict[Key, LargeGridCell] = {}
        #: Number of adjacent-union bitsets materialized so far (a stat the
        #: label experiments report).
        self.adj_computed = 0

    def add_point(self, oid: int, key: Key, point_index: int) -> None:
        """Map one point into the grid (Algorithm 3, lines 15-21)."""
        cell = self.cells.get(key)
        if cell is None:
            cell = LargeGridCell(self.bitset_cls())
            self.cells[key] = cell
        if cell.last_oid != oid:
            cell.bitset.set(oid)
            cell.last_oid = oid
            cell.postings[oid] = []
        cell.postings[oid].append(point_index)

    def cell(self, key: Key) -> Optional[LargeGridCell]:
        """The cell at ``key``, or None if no point maps there."""
        return self.cells.get(key)

    def adjacent_union_int(self, key: Key) -> int:
        """``b_adj(c_K)`` as a big int: union over the cell's neighbourhood.

        Computed on first request and memoized on the cell (the ``K not in
        KeySet`` check of Algorithm 5, lines 7-9).
        """
        cell = self.cells[key]
        if cell.adj_int is None:
            union = 0
            cells = self.cells
            neighbors = []
            for neighbor_key in cell_and_adjacent_keys(key):
                neighbor = cells.get(neighbor_key)
                if neighbor is not None:
                    union |= neighbor.bitset.to_int()
                    neighbors.append(neighbor)
            cell.adj_int = union
            cell.neighbor_cells = neighbors
            self.adj_computed += 1
        return cell.adj_int

    def adjacent_union(self, key: Key) -> Bitset:
        """``b_adj(c_K)`` as a (compressed) bitset; see adjacent_union_int."""
        self.adjacent_union_int(key)
        return self.cells[key].adj_bitset

    def __len__(self) -> int:
        return len(self.cells)

    def memory_bytes(self) -> int:
        """Bitsets, adjacent-union bitsets, postings, and table overhead.

        Posting entries are charged 8 bytes each (a point reference); each
        posting list and each hash entry is charged a pointer-sized header.
        The transient point-coordinate caches are measurement aids and are
        excluded, as is the collection itself.
        """
        per_entry = 8 * self.dimension + 8 + 8
        total = per_entry * len(self.cells)
        for cell in self.cells.values():
            total += cell.bitset.size_in_bytes()
            if cell.adj_bitset is not None:
                total += cell.adj_bitset.size_in_bytes()
            for posting in cell.postings.values():
                total += 16 + 8 * len(posting)
        return total
