"""Cross-query grid state caches.

The large grid (Definition 3) is a pure function of ``ceil(r)``: its cell
width is ``ceil(r)`` (float-guarded, see :mod:`repro.grid.keys`), so the
mapping from every point to its large-grid cell key is *identical* for all
thresholds sharing one ceiling.  A single query still has to hash every
point into that grid, but across a batched workload the key computation --
``floor(point / width)`` over all ``nm`` points -- is repeated work that a
session can cache once per ceiling.

:class:`LargeKeyCache` holds, per ``(ceil(r), oid)``, the full per-point
large-grid key list of one object and hands :meth:`provider` callables to
``BIGrid.build`` (and the parallel engine's grid mapping).  A with-label
query maps only a filtered subset of points; the provider therefore indexes
the cached full key list by the surviving point indices, which keeps one
cache entry valid for label-free and with-label runs alike.

The cache is keyed by *position* (object ids), exactly like point labels;
it must be cleared whenever the collection changes.  :class:`~repro.session.
QuerySession` owns that lifecycle.

The cache is thread-safe: the concurrent query service shares one
instance across worker threads.  Dictionary accesses are guarded by a
lock, while ``compute_keys`` runs outside it -- two threads missing the
same ``(ceil_r, oid)`` may both compute the entry, but the computation is
deterministic, so last-write-wins is harmless.
"""

from __future__ import annotations

import threading
from typing import Callable, Dict, List, Optional, Tuple

import numpy as np

from repro.core.objects import ObjectCollection
from repro.grid.keys import Key, compute_keys, large_cell_width
from repro.obs.recorders import cache_request_counter, observe_cache_invalidation

#: ``provider(oid, selected_indices) -> keys`` for the selected points.
LargeKeysProvider = Callable[[int, np.ndarray], List[Key]]


class LargeKeyCache:
    """Per-``ceil(r)`` cache of every object's large-grid cell keys."""

    __slots__ = ("_keys", "_lock", "hits", "misses")

    def __init__(self) -> None:
        #: ``(ceil_r, oid) -> per-point key list`` (all points of the object).
        self._keys: Dict[Tuple[int, int], List[Key]] = {}
        self._lock = threading.RLock()
        self.hits = 0
        self.misses = 0

    def provider(
        self, collection: ObjectCollection, ceil_r: int
    ) -> LargeKeysProvider:
        """A ``BIGrid.build``-compatible key provider for one ceiling.

        ``large_cell_width`` depends only on ``ceil(r)``, so computing it
        from the ceiling itself yields the exact width every ``r`` in the
        bucket uses.
        """
        width = large_cell_width(float(ceil_r))
        # Bound registry counters: the per-object hot path below pays one
        # dict-slot float add per lookup, not a metric-name resolution.
        hit_metric = cache_request_counter("grid_keys", hit=True)
        miss_metric = cache_request_counter("grid_keys", hit=False)

        def provide(oid: int, indices: np.ndarray) -> List[Key]:
            with self._lock:
                entry = self._keys.get((ceil_r, oid))
            if entry is None:
                # Computed outside the lock: a concurrent miss on the same
                # key recomputes the identical deterministic entry.
                entry = compute_keys(collection[oid].points, width)
                with self._lock:
                    self.misses += 1
                    self._keys[(ceil_r, oid)] = entry
                miss_metric.inc()
            else:
                with self._lock:
                    self.hits += 1
                hit_metric.inc()
            if len(indices) == len(entry):
                return entry
            return [entry[i] for i in indices]

        return provide

    def __len__(self) -> int:
        return len(self._keys)

    def clear(self) -> None:
        """Drop all cached keys (required on any collection mutation)."""
        observe_cache_invalidation("grid_keys")
        with self._lock:
            self._keys.clear()

    def counters(self) -> Dict[str, int]:
        return {"grid_key_cache_hits": self.hits, "grid_key_cache_misses": self.misses}
