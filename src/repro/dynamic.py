"""Dynamic object collections: insert/remove between queries.

The paper assumes a static, memory-resident collection (Section II-A),
which matches its simulation workloads; production trajectory stores
grow.  :class:`DynamicMIO` wraps the static machinery with the minimal
bookkeeping that keeps every paper guarantee intact:

* objects get stable external handles, independent of the dense internal
  ids the bitsets use;
* every mutation invalidates the compiled collection and the label store
  (labels are positional, so reusing them across a re-compaction would be
  unsound — this is the cracking-style trade-off the related work
  discusses: reuse helps only while the data holds still);
* queries lazily re-compact and then run the unmodified exact engine --
  and therefore the shared phase orchestrator
  (:data:`~repro.core.pipeline.SERIAL_PIPELINE`) every other variant
  uses -- so answers are always exact for the current contents.

This is deliberately a thin adoption layer, not an incremental index:
maintaining BIGrid incrementally is pointless because the index is built
per query anyway (Appendix A); what must be dynamic is the collection
and the label-reuse lifecycle.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.core.engine import MIOEngine
from repro.core.labels import LabelStore
from repro.core.objects import ObjectCollection
from repro.core.query import MIOResult
from repro.obs import metrics as obs_metrics


class DynamicMIO:
    """An updatable collection with exact MIO queries.

    Handles returned by :meth:`add_object` are stable across removals;
    query results are translated back to handles.
    """

    def __init__(self, backend: str = "ewah", use_labels: bool = True) -> None:
        self.backend = backend
        self.use_labels = use_labels
        self._points: Dict[int, np.ndarray] = {}
        self._timestamps: Dict[int, Optional[np.ndarray]] = {}
        self._next_handle = 0
        self._engine: Optional[MIOEngine] = None
        self._handle_of_position: List[int] = []
        #: Monotone mutation counter.  Sessions watch it to drop *their own*
        #: positional caches (labels, grid keys, lower bounds) on mutation:
        #: after a remove+add of same-shaped objects the re-compacted
        #: collection can alias positions, so shape checks alone
        #: (``labels_match_collection``) cannot detect the staleness.
        self.version = 0

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------

    def add_object(
        self, points: np.ndarray, timestamps: Optional[np.ndarray] = None
    ) -> int:
        """Insert an object; returns its stable handle."""
        points = np.ascontiguousarray(points, dtype=np.float64)
        if points.ndim != 2 or len(points) == 0:
            raise ValueError("an object must be a non-empty (m, d) array")
        handle = self._next_handle
        self._next_handle += 1
        self._points[handle] = points
        self._timestamps[handle] = (
            np.ascontiguousarray(timestamps, dtype=np.float64)
            if timestamps is not None
            else None
        )
        obs_metrics.counter(
            "repro_mutations_total", "DynamicMIO collection mutations"
        ).inc(op="add")
        self._invalidate()
        return handle

    def remove_object(self, handle: int) -> None:
        """Remove an object by handle; raises ``KeyError`` if absent."""
        del self._points[handle]
        del self._timestamps[handle]
        obs_metrics.counter(
            "repro_mutations_total", "DynamicMIO collection mutations"
        ).inc(op="remove")
        self._invalidate()

    def _invalidate(self) -> None:
        # Labels are positional; any mutation makes stored labels unsound.
        self._engine = None
        self._handle_of_position = []
        self.version += 1

    # ------------------------------------------------------------------
    # Inspection
    # ------------------------------------------------------------------

    @property
    def size(self) -> int:
        return len(self._points)

    def __len__(self) -> int:
        return self.size

    def __contains__(self, handle: int) -> bool:
        return handle in self._points

    def get_points(self, handle: int) -> np.ndarray:
        return self._points[handle]

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------

    def snapshot(self) -> Tuple[ObjectCollection, List[int]]:
        """The current contents compiled to a static collection.

        Returns ``(collection, handle_of_position)``; positions in the
        collection map back to stable handles through the second element.
        Sessions pair this with :attr:`version` to know when a snapshot
        (and every positional cache derived from it) has gone stale.
        """
        if len(self._points) < 2:
            raise ValueError("MIO queries need at least two objects")
        handles = sorted(self._points)
        collection = ObjectCollection.from_point_arrays(
            [self._points[handle] for handle in handles]
        )
        return collection, handles

    def _compile(self) -> MIOEngine:
        if self._engine is None:
            collection, handles = self.snapshot()
            self._handle_of_position = handles
            store = LabelStore() if self.use_labels else None
            self._engine = MIOEngine(collection, backend=self.backend, label_store=store)
        return self._engine

    def query(self, r: float) -> Tuple[int, MIOResult]:
        """Exact MIO over the current contents: ``(winner_handle, result)``.

        Repeated queries between mutations share one compiled collection
        and one label store, so same-ceiling sweeps get the Section III-D
        speedup automatically; any mutation resets both.
        """
        engine = self._compile()
        result = engine.query(r)
        return self._handle_of_position[result.winner], result

    def query_topk(self, r: float, k: int) -> List[Tuple[int, int]]:
        """Top-k as ``(handle, score)`` pairs, best first."""
        engine = self._compile()
        result = engine.query_topk(r, k)
        return [
            (self._handle_of_position[oid], score) for oid, score in result.topk
        ]
