"""Plain-text rendering of experiment results.

The benchmark suite prints each reproduced table/figure as an ascii table
whose rows match what the paper plots (series of run times over ``r``,
memory over sampling rate, per-phase breakdowns, speedup ratios), so the
shapes can be read directly from the pytest output and are archived in
EXPERIMENTS.md.
"""

from __future__ import annotations

from typing import Dict, List, Sequence


def format_table(headers: Sequence[str], rows: Sequence[Sequence[object]], title: str = "") -> str:
    """Render rows as a fixed-width ascii table."""
    columns = [[str(header)] + [_fmt(row[index]) for row in rows] for index, header in enumerate(headers)]
    widths = [max(len(cell) for cell in column) for column in columns]
    lines = []
    if title:
        lines.append(title)
    separator = "-+-".join("-" * width for width in widths)
    lines.append(" | ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append(separator)
    for row in rows:
        lines.append(" | ".join(_fmt(cell).ljust(w) for cell, w in zip(row, widths)))
    return "\n".join(lines)


def format_series(
    x_name: str,
    x_values: Sequence[object],
    series: Dict[str, Sequence[object]],
    title: str = "",
) -> str:
    """Render one figure panel: one row per x value, one column per series."""
    headers = [x_name, *series.keys()]
    rows: List[List[object]] = []
    for index, x_value in enumerate(x_values):
        row: List[object] = [x_value]
        for values in series.values():
            row.append(values[index] if index < len(values) else "-")
        rows.append(row)
    return format_table(headers, rows, title=title)


def _fmt(value: object) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 100:
            return f"{value:.0f}"
        if abs(value) >= 1:
            return f"{value:.2f}"
        return f"{value:.4f}"
    return str(value)
