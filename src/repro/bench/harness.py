"""Uniform algorithm runner for the benchmark suite.

``run_algorithm(name, collection, r)`` executes one of the paper's four
evaluated algorithms (NL, SG, BIGrid, BIGrid-label) -- plus the extras this
repository implements (kd-tree NL, the theoretical algorithm) -- and
returns a :class:`BenchRecord` with the query processing time (the sum of
the algorithm's phase times, excluding memory-accounting bookkeeping), the
answer, the index memory, and the phase breakdown: everything Figs. 5-7
and Table II report.
"""

from __future__ import annotations

import os

from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.baselines import (
    KDTreeNestedLoop,
    NestedLoopAlgorithm,
    RTreeNestedLoop,
    SimpleGridAlgorithm,
    TheoreticalAlgorithm,
)
from repro.core.engine import MIOEngine
from repro.core.labels import LabelStore
from repro.core.objects import ObjectCollection
from repro.core.query import MIOResult
from repro.obs.trace import ensure_tracer
from repro.session import QuerySession

ALGORITHMS = (
    "nl", "nl-kdtree", "nl-rtree", "sg", "bigrid", "bigrid-label",
    "bigrid-session", "theoretical",
)


def bench_provenance(
    *, cores: int = 1, parallel_mode: str = "serial", shards: int = 0
) -> Dict[str, object]:
    """Execution-environment stamp for a ``BENCH_*.json`` artifact.

    A recorded speedup is meaningless without knowing what ran it: a
    "2x parallel speedup" measured on a one-core container is noise, and
    a serial artifact replayed on a 64-core box should not be compared
    against parallel floors.  Every artifact writer embeds this block so
    ``repro report --check-bench`` can tell which floors legitimately
    apply to the recorded numbers.

    ``parallel_mode`` is ``"serial"`` for single-engine runs, else one
    of :data:`repro.parallel.engine.PARALLEL_MODES`; ``shards`` is 0
    whenever the run was not sharded.
    """
    return {
        "cpu_count": int(os.cpu_count() or 1),
        "cores": int(cores),
        "parallel_mode": str(parallel_mode),
        "shards": int(shards),
    }


@dataclass
class BenchRecord:
    """One algorithm run: what the paper's plots consume."""

    algorithm: str
    dataset: str
    r: float
    seconds: float
    winner: int
    score: int
    memory_bytes: int
    phases: Dict[str, float] = field(default_factory=dict)
    counters: Dict[str, int] = field(default_factory=dict)

    @property
    def memory_kib(self) -> float:
        return self.memory_bytes / 1024.0

    def to_record(self) -> Dict[str, object]:
        """A JSON-friendly dict for ``BENCH_*.json`` files.

        Carries the per-phase breakdown alongside the total, so stored
        trajectory points can answer *where* a regression happened, not
        just that one did.
        """
        return {
            "algorithm": self.algorithm,
            "dataset": self.dataset,
            "r": self.r,
            "seconds": round(self.seconds, 6),
            "winner": self.winner,
            "score": self.score,
            "memory_bytes": self.memory_bytes,
            "phases": {name: round(seconds, 6) for name, seconds in self.phases.items()},
            "counters": dict(self.counters),
        }


def run_algorithm(
    name: str,
    collection: ObjectCollection,
    r: float,
    dataset: str = "",
    k: int = 1,
    label_store: Optional[LabelStore] = None,
    backend: str = "ewah",
    session: Optional[QuerySession] = None,
    tracer=None,
    kernel: str = "python",
) -> BenchRecord:
    """Run one algorithm once and record everything the figures need.

    ``kernel`` selects the compute backend of the BIGrid algorithms
    (``"python"``, ``"numpy"``, or ``"auto"``; see :mod:`repro.kernels`),
    so every figure benchmark can report both backends.  Baselines ignore
    it.

    ``bigrid-label`` needs a ``label_store`` that already holds labels for
    ``ceil(r)`` (run ``bigrid`` with the same store first); this mirrors the
    paper's setup where BIGrid-label consumes the labels a previous query
    with the same ceiling produced.

    ``bigrid-session`` is the session-reuse mode: pass one
    :class:`~repro.session.QuerySession` over ``collection`` and reuse it
    across calls -- labels, large-grid keys, and exact-``r`` lower-bound
    state stay warm between runs, which is what the batch-reuse benchmark
    measures.

    With a ``tracer``, the run is wrapped in an ``algorithm`` span and the
    result's phase breakdown is attached as child spans — baselines have
    no internal instrumentation, so their trace is reconstructed from the
    phases they report.
    """
    tracer = ensure_tracer(tracer)
    with tracer.span("algorithm", algorithm=name, dataset=dataset, r=r) as span:
        result = _dispatch(name, collection, r, k, label_store, backend, session, kernel)
        if tracer.enabled:
            for phase, seconds in result.phases.items():
                tracer.record(phase, seconds)
            span.set_duration(result.total_time)
            span.set_attributes(winner=result.winner, score=result.score)
    return BenchRecord(
        algorithm=name,
        dataset=dataset,
        r=r,
        seconds=result.total_time,
        winner=result.winner,
        score=result.score,
        memory_bytes=result.memory_bytes,
        phases=dict(result.phases),
        counters=dict(result.counters),
    )


def _dispatch(
    name: str,
    collection: ObjectCollection,
    r: float,
    k: int,
    label_store: Optional[LabelStore],
    backend: str,
    session: Optional[QuerySession] = None,
    kernel: str = "python",
) -> MIOResult:
    if name == "bigrid-session":
        if session is None:
            raise ValueError(
                "bigrid-session requires a QuerySession (reuse it across calls)"
            )
        if session.collection is not collection:
            raise ValueError("the session must wrap the same collection being benched")
        return session.query(r) if k == 1 else session.topk(r, k)
    if name == "nl":
        algorithm = NestedLoopAlgorithm(collection)
        return algorithm.query(r) if k == 1 else algorithm.query_topk(r, k)
    if name == "nl-kdtree":
        return KDTreeNestedLoop(collection).query(r)
    if name == "nl-rtree":
        return RTreeNestedLoop(collection).query(r)
    if name == "sg":
        return SimpleGridAlgorithm(collection).query(r)
    if name == "bigrid":
        engine = MIOEngine(
            collection, backend=backend, label_store=label_store, kernel=kernel
        )
        return engine.query(r) if k == 1 else engine.query_topk(r, k)
    if name == "bigrid-label":
        if label_store is None:
            raise ValueError("bigrid-label requires a label_store with labels present")
        engine = MIOEngine(
            collection, backend=backend, label_store=label_store, kernel=kernel
        )
        result = engine.query(r) if k == 1 else engine.query_topk(r, k)
        if result.algorithm != "bigrid-label":
            raise RuntimeError(
                "no labels were available: run the plain bigrid query with the "
                "same store (and the same ceil(r)) first"
            )
        return result
    if name == "theoretical":
        algorithm = TheoreticalAlgorithm(collection)
        algorithm.preprocess()
        return algorithm.query(r)
    raise ValueError(f"unknown algorithm {name!r} (choose from: {', '.join(ALGORITHMS)})")
