"""Experiment harness shared by the ``benchmarks/`` suite.

* :mod:`repro.bench.harness`   -- run a named algorithm on a dataset and
  collect times, answers, memory, and phase breakdowns
* :mod:`repro.bench.reporting` -- ascii tables/series formatted like the
  paper's figures and tables
"""

from repro.bench.harness import ALGORITHMS, BenchRecord, run_algorithm
from repro.bench.reporting import format_series, format_table

__all__ = ["ALGORITHMS", "BenchRecord", "format_series", "format_table", "run_algorithm"]
