"""MIO queries in high-dimensional spaces (the paper's future work).

The paper's conclusion scopes BIGrid to geo-spatial (2-D/3-D) data and
names "a robust index for high-dimensional spaces" as future work: grid
cell counts explode exponentially with dimension, and the 3^d-cell
neighbourhood of the upper bound becomes useless.

This module is that extension, built on the paper's own *framework* --
filter-and-verification with cheap lower/upper bounds and best-first
verification (Algorithm 2) -- but with dimension-agnostic metric bounds
instead of grids:

* every object is summarized by its centroid ``c_i`` and radius ``rad_i``
  (its bounding sphere), O(m) to compute in any dimension;
* **certainly interacting** (lower bound, the Lemma 1 role):
  ``dist(c_i, c_j) + rad_i + rad_j <= r`` implies every point pair is
  within ``r``;
* **possibly interacting** (upper bound, the Lemma 2 role):
  ``dist(c_i, c_j) - rad_i - rad_j <= r`` is necessary for any point pair
  to be within ``r``; objects whose possible count trails the best
  certain count are pruned (the Theorem 2 role);
* surviving candidates are verified best-first with early termination
  (the Corollary 1 role), using blocked numpy point-pair checks.

The bounds are exact-set bounds, so the answer is exact in any dimension.
Centroid distances for all pairs cost O(n^2 d) -- cheap next to point
verification -- and, unlike grids, never degrade with d.
"""

from __future__ import annotations

import time
from typing import List, Sequence

import numpy as np

from repro.core.geometry import point_sets_interact
from repro.core.query import MIOResult


class HighDimCollection:
    """A collection of point-set objects in arbitrary dimension (d >= 2).

    Deliberately separate from :class:`~repro.core.objects.ObjectCollection`
    (which enforces the paper's 2-D/3-D scope); this is the experimental
    high-dimensional container.
    """

    def __init__(self, point_arrays: Sequence[np.ndarray]) -> None:
        arrays = [np.ascontiguousarray(points, dtype=np.float64) for points in point_arrays]
        if not arrays:
            raise ValueError("a collection must contain at least one object")
        dimension = arrays[0].shape[1] if arrays[0].ndim == 2 else 0
        for points in arrays:
            if points.ndim != 2 or points.shape[1] != dimension or len(points) == 0:
                raise ValueError("objects must be non-empty (m, d) arrays of one dimension")
            if not np.isfinite(points).all():
                raise ValueError("point coordinates must be finite")
        if dimension < 2:
            raise ValueError("dimension must be at least 2")
        self.objects = arrays
        self.dimension = dimension

    @property
    def n(self) -> int:
        return len(self.objects)

    @property
    def total_points(self) -> int:
        return sum(len(points) for points in self.objects)

    def __len__(self) -> int:
        return self.n


class MetricMIOEngine:
    """Exact MIO queries in any dimension via bounding-sphere bounds."""

    def __init__(self, collection: HighDimCollection) -> None:
        self.collection = collection
        # O(nm d) summary: centroid and radius per object.
        centroids = []
        radii = []
        for points in collection.objects:
            centroid = points.mean(axis=0)
            diff = points - centroid
            centroids.append(centroid)
            radii.append(float(np.sqrt(np.max(np.einsum("ij,ij->i", diff, diff)))))
        self._centroids = np.array(centroids)
        self._radii = np.array(radii)

    def query(self, r: float) -> MIOResult:
        """The most interactive object under ``r``, exactly."""
        if r <= 0:
            raise ValueError("the distance threshold r must be positive")
        collection = self.collection
        n = collection.n

        # Bounding phase: all-pairs centroid distances (O(n^2 d), vectorized).
        started = time.perf_counter()
        centroid_distance = _pairwise_distances(self._centroids)
        radius_sum = self._radii[:, None] + self._radii[None, :]
        certain = (centroid_distance + radius_sum <= r)
        possible = (centroid_distance - radius_sum <= r)
        np.fill_diagonal(certain, False)
        np.fill_diagonal(possible, False)
        lower = certain.sum(axis=1)
        upper = possible.sum(axis=1)
        tau_max_low = int(lower.max()) if n else 0
        bounding_time = time.perf_counter() - started

        # Filter: Theorem 2's role.
        started = time.perf_counter()
        candidates = sorted(
            ((int(upper[oid]), oid) for oid in range(n) if upper[oid] >= tau_max_low),
            key=lambda entry: (-entry[0], entry[1]),
        )

        # Best-first verification with early termination (Corollary 1's role).
        best_oid, best_score = -1, -1
        verified = 0
        pairs_checked = 0
        for upper_bound, oid in candidates:
            if upper_bound <= best_score:
                break
            verified += 1
            score = 0
            points = collection.objects[oid]
            for other in range(n):
                if other == oid or not possible[oid, other]:
                    continue
                if certain[oid, other]:
                    score += 1
                    continue
                pairs_checked += 1
                if point_sets_interact(points, collection.objects[other], r):
                    score += 1
            if score > best_score:
                best_oid, best_score = oid, score
        verification_time = time.perf_counter() - started

        if best_oid < 0 and n:
            best_oid, best_score = 0, 0
        return MIOResult(
            algorithm="metric-mio",
            r=r,
            winner=best_oid,
            score=best_score,
            phases={"bounding": bounding_time, "verification": verification_time},
            counters={
                "candidates": len(candidates),
                "verified_objects": verified,
                "pairs_checked": pairs_checked,
                "tau_max_low": tau_max_low,
            },
            memory_bytes=int(self._centroids.nbytes + self._radii.nbytes),
        )

    def brute_force_scores(self, r: float) -> List[int]:
        """O(n^2 m^2) reference scorer for any dimension (the NL analogue)."""
        n = self.collection.n
        tau = [0] * n
        for i in range(n):
            for j in range(i + 1, n):
                if point_sets_interact(
                    self.collection.objects[i], self.collection.objects[j], r
                ):
                    tau[i] += 1
                    tau[j] += 1
        return tau


def _pairwise_distances(points: np.ndarray) -> np.ndarray:
    """Dense Euclidean distance matrix (numerically clamped at zero)."""
    norms = np.einsum("ij,ij->i", points, points)
    squared = norms[:, None] + norms[None, :] - 2.0 * (points @ points.T)
    return np.sqrt(np.maximum(squared, 0.0))


def make_highdim_clusters(
    n: int,
    mean_points: int,
    dimension: int,
    n_clusters: int = 10,
    extent: float = 100.0,
    cluster_radius: float = 3.0,
    seed: int = 0,
) -> HighDimCollection:
    """Clustered synthetic objects in arbitrary dimension (for experiments)."""
    rng = np.random.default_rng(seed)
    centers = rng.uniform(0, extent, size=(n_clusters, dimension))
    arrays = []
    for _ in range(n):
        center = centers[rng.integers(n_clusters)]
        count = int(rng.integers(max(2, mean_points // 2), mean_points * 2))
        arrays.append(center + rng.normal(0, cluster_radius, size=(count, dimension)))
    return HighDimCollection(arrays)
