"""Cross-shard merge: replay the serial best-first loop from shard data.

Merging per-shard top-k heaps by score alone is *not* bit-identical to
the serial engine: the serial best-first loop early-terminates the
moment the next upper bound cannot beat the provisional k-th score, so
among equal-score ties it keeps whichever objects entered the heap
before termination — a function of the global candidate order, not of
ids.  The merge therefore reconstructs that loop exactly:

1. concatenate every shard's *owned* candidates and sort by
   ``(-upper, oid)`` — the serial candidate order (owned upper bounds
   equal global upper bounds, see :mod:`repro.shard.router`);
2. walk them with the same threshold/heap/early-break logic as
   :func:`repro.core.verification.best_first_verification`, looking
   exact scores up in the shards' settled sets instead of re-verifying.

Every score the replay needs is available: a shard's local pruning
threshold is never above the serial one, so its settled set is a
superset of the serial loop's verified set restricted to its owned
objects.  Shards may also settle *extra* candidates (their threshold is
weaker); those sort after every serial candidate and the replay breaks
before needing them — unless a shard timed out mid-verification, in
which case the replay degrades to the anytime contract (exact scores
for a settled prefix, ``exact=False``).
"""

from __future__ import annotations

from dataclasses import dataclass
from heapq import heappush, heappushpop
from typing import Dict, List, Optional, Sequence, Tuple

from repro.shard.executor import ShardOutcome


@dataclass
class MergedAnswer:
    """The global answer assembled from shard outcomes."""

    #: ``(oid, score)`` by ``(-score, oid)`` — serial-identical when exact.
    ranking: List[Tuple[int, int]]
    #: Candidates the replay verified (the serial loop's count).
    verified: int
    early_terminated: bool
    #: True when some shard timed out mid-verification and the replay ran
    #: out of settled scores: the ranking is a sound settled prefix.
    timed_out: bool
    #: Global candidate count (union of owned candidate lists).
    candidates: int
    #: Best Lemma-1 lower bound across shards: ``(value, oid)``.
    best_lb: Tuple[int, int]


def merge_outcomes(outcomes: Sequence[ShardOutcome], k: int) -> MergedAnswer:
    """Replay the serial best-first loop over the shards' candidate data.

    Note the replay needs no deadline handling of its own: if every score
    it asks for is present, the completed walk *is* the serial loop's
    exact run — even when some shard was cut short (its settled prefix
    may still cover everything the replay needed).
    """
    candidates: List[Tuple[int, int]] = []
    scores: Dict[int, int] = {}
    best_lb = (-1, -1)
    for outcome in outcomes:
        candidates.extend(outcome.owned_candidates)
        scores.update(outcome.settled)
        value, oid = outcome.best_lb
        if (value, -oid) > (best_lb[0], -best_lb[1]):
            best_lb = (value, oid)
    candidates.sort(key=lambda entry: (-entry[0], entry[1]))

    best_heap: List[Tuple[int, int]] = []
    verified = 0
    early = False
    timed_out = False
    for upper, oid in candidates:
        threshold = best_heap[0][0] if len(best_heap) >= k else -1
        if upper <= threshold:
            early = True
            break
        score = scores.get(oid)
        if score is None:
            # Only reachable when a shard's verification was cut short by
            # a deadline: surface the settled prefix as an anytime answer.
            timed_out = True
            break
        verified += 1
        entry = (score, -oid)
        if len(best_heap) < k:
            heappush(best_heap, entry)
        elif entry > best_heap[0]:
            heappushpop(best_heap, entry)

    ranking = sorted(
        ((-neg_oid, score) for score, neg_oid in best_heap),
        key=lambda item: (-item[1], item[0]),
    )
    return MergedAnswer(
        ranking=ranking,
        verified=verified,
        early_terminated=early,
        timed_out=timed_out,
        candidates=len(candidates),
        best_lb=best_lb,
    )
