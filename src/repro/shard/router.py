"""Curve-order shard routing with exact cross-shard halos.

The router turns one collection + one query ceiling into a
:class:`ShardPlan`: a partition of the objects into ``shards`` contiguous
ranges of a space-filling curve over their *large-grid* cells, plus, per
shard, the **halo** — the non-owned objects a shard must also index so
that every owned object's local query state equals its global state.

Why the halo is exact (not approximate)
---------------------------------------

All three per-object quantities the phase pipeline computes are local to
a Lemma-2 neighbourhood:

* two points within ``r`` lie in the *same or axis-adjacent* large cells
  (large width = ``ceil(r) >= r``), so every true interactor of an owned
  object has a point in a cell adjacent-or-equal to one of its cells;
* two points sharing a *small* cell (the Lemma-1 lower bound) are within
  ``r``, hence also in adjacent-or-equal large cells;
* the Algorithm-5 upper bound unions exactly the adjacent large cells.

The halo is defined as every non-owned object with at least one point in
a cell adjacent-or-equal to a cell containing an owned object's point.
Building a shard's BIGrid over ``owned + halo`` therefore reproduces the
global lower bound, upper bound, and exact score of every *owned* object
bit-for-bit — the conformance suite pins this.

Halo candidates are found vectorized: all point cells are encoded with
the kernel's mixed-radix ``int64`` cell codes
(:func:`repro.kernels.numpy_backend.encode_keys`), the owned cell set is
dilated by the ``3^d`` neighbour offsets in code space (one add per
offset), and non-owned points are matched with one ``searchsorted``.
Inputs whose cell spread overflows the 62-bit code budget fall back to a
set-of-tuples walk — the same policy, just slower.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.errors import InvalidQueryError
from repro.grid.keys import adjacent_keys, large_cell_width, neighbor_offsets
from repro.kernels.numpy_backend import encode_keys
from repro.shard.curves import CURVES, curve_codes


@dataclass
class ShardPlan:
    """One immutable routing decision for ``(collection, ceil_r, shards)``.

    ``owned[s]`` and ``halo[s]`` are sorted global object-id arrays;
    ownership is a partition (every object in exactly one ``owned``), and
    each ``halo[s]`` is disjoint from ``owned[s]``.  Sorted order matters:
    the executor subsets ``owned + halo`` in this order so local ids are
    monotone in global ids, preserving the engine's tie-break semantics.
    """

    shards: int
    curve: str
    ceil_r: int
    owned: List[np.ndarray]
    halo: List[np.ndarray]
    #: Total points owned per shard (the balance target).
    owned_points: List[int]
    #: Curve bit depth and whether the big-int fallback encoded the codes.
    bits: int = 0
    curve_overflowed: bool = False
    #: Whether the halo walk used the set-of-tuples fallback.
    halo_overflowed: bool = False

    @property
    def halo_objects(self) -> int:
        return int(sum(len(h) for h in self.halo))

    def task_indices(self, shard: int) -> np.ndarray:
        """Global ids for one shard's sub-collection, owned first."""
        return np.concatenate([self.owned[shard], self.halo[shard]])


def plan_shards(
    collection,
    r: float,
    shards: int,
    curve: str = "hilbert",
) -> ShardPlan:
    """Build the :class:`ShardPlan` for one collection and query ceiling.

    Objects are placed on the curve by the large cell of their first
    point, ordered, and cut into contiguous ranges balanced by *point*
    count (points, not objects, drive phase cost).  Empty shards are
    avoided by capping the effective shard count at ``n``.
    """
    if shards < 1:
        raise InvalidQueryError("shards must be >= 1")
    if curve not in CURVES:
        raise InvalidQueryError(f"unknown curve {curve!r} (expected one of {CURVES})")
    n = collection.n
    effective = min(shards, n)
    width = large_cell_width(r)
    ceil_r = int(np.ceil(r))

    # -- curve placement: one representative large cell per object -------
    rep_points = np.stack([obj.points[0] for obj in collection], axis=0)
    rep_keys = np.floor(rep_points / width).astype(np.int64)
    codes = curve_codes(rep_keys, curve)
    order = codes.argsort()

    # -- contiguous cut balanced by point mass ---------------------------
    points_per_object = np.array(
        [collection[int(oid)].points.shape[0] for oid in order], dtype=np.int64
    )
    owned = _balanced_cut(order, points_per_object, effective)

    # -- exact halo: Lemma-2 dilation of each shard's owned cells --------
    halo, halo_overflowed = _compute_halos(collection, width, owned)

    return ShardPlan(
        shards=effective,
        curve=curve,
        ceil_r=ceil_r,
        owned=owned,
        halo=halo,
        owned_points=[
            int(sum(collection[int(oid)].points.shape[0] for oid in part))
            for part in owned
        ],
        bits=codes.bits,
        curve_overflowed=codes.overflowed,
        halo_overflowed=halo_overflowed,
    )


def _balanced_cut(
    order: np.ndarray, points_per_object: np.ndarray, shards: int
) -> List[np.ndarray]:
    """Cut the curve order into ``shards`` contiguous, point-balanced ranges.

    Boundaries are the positions where the running point mass crosses
    each ``total * s / shards`` target, clamped so every range holds at
    least one object.  Each range is then *sorted by global id* —
    membership comes from the curve, intra-shard order must match the
    serial engine's id-based tie-breaks.
    """
    n = len(order)
    prefix = np.cumsum(points_per_object)
    total = int(prefix[-1])
    bounds = [0]
    for s in range(1, shards):
        target = total * s / shards
        cut = int(np.searchsorted(prefix, target, side="left")) + 1
        cut = max(cut, bounds[-1] + 1)  # at least one object per range
        cut = min(cut, n - (shards - s))  # leave room for the rest
        bounds.append(cut)
    bounds.append(n)
    return [np.sort(order[bounds[s] : bounds[s + 1]]) for s in range(shards)]


def _compute_halos(
    collection, width: float, owned: List[np.ndarray]
) -> Tuple[List[np.ndarray], bool]:
    """Per shard, the sorted non-owned ids with a point in the dilated
    owned cell set (dilation = the ``3^d`` adjacent-or-equal offsets)."""
    point_keys, point_oids = _all_point_keys(collection, width)
    dimension = point_keys.shape[1]
    encoded = encode_keys(point_keys)
    shard_of = np.empty(collection.n, dtype=np.int64)
    for s, part in enumerate(owned):
        shard_of[part] = s

    if encoded is None:
        return _halos_by_tuples(collection, point_keys, point_oids, shard_of, owned)

    codes, strides = encoded
    offsets = np.array(
        neighbor_offsets(dimension, include_center=True), dtype=np.int64
    )
    offset_codes = offsets @ strides
    point_shards = shard_of[point_oids]
    halos: List[np.ndarray] = []
    for s, part in enumerate(owned):
        owned_cells = np.unique(codes[point_shards == s])
        dilated = np.unique(
            (owned_cells[:, None] + offset_codes[None, :]).reshape(-1)
        )
        outside = point_shards != s
        hits = np.searchsorted(dilated, codes[outside])
        hits = np.minimum(hits, len(dilated) - 1)
        matched = dilated[hits] == codes[outside]
        halos.append(np.unique(point_oids[outside][matched]))
    return halos, False


def _halos_by_tuples(
    collection, point_keys, point_oids, shard_of, owned
) -> Tuple[List[np.ndarray], bool]:
    """Overflow fallback: the same dilation over python key tuples."""
    keys_list = [tuple(row) for row in point_keys.tolist()]
    per_shard_cells: List[set] = [set() for _ in owned]
    for key, oid in zip(keys_list, point_oids.tolist()):
        per_shard_cells[shard_of[oid]].add(key)
    halos = []
    for s in range(len(owned)):
        dilated = set()
        for cell in per_shard_cells[s]:
            dilated.add(cell)
            dilated.update(adjacent_keys(cell))
        members = {
            oid
            for key, oid in zip(keys_list, point_oids.tolist())
            if shard_of[oid] != s and key in dilated
        }
        halos.append(np.array(sorted(members), dtype=np.int64))
    return halos, True


def _all_point_keys(collection, width: float) -> Tuple[np.ndarray, np.ndarray]:
    """All points' large-cell keys plus a parallel owner-id array."""
    arrays = [obj.points for obj in collection]
    stacked = np.concatenate(arrays, axis=0)
    keys = np.floor(stacked / width).astype(np.int64)
    oids = np.repeat(
        np.arange(collection.n, dtype=np.int64),
        np.array([a.shape[0] for a in arrays], dtype=np.int64),
    )
    return keys, oids


class ShardPlanCache:
    """Per-engine plan cache keyed by ``(ceil_r, shards, curve)``.

    Plans depend only on the collection snapshot and the query ceiling
    (the large width is ``ceil(r)``), so a session reusing one engine
    across a batch pays the routing cost once per ceiling — the shard
    analogue of the large-key cache tier.  Invalidation is by engine
    rebuild: :class:`~repro.session.QuerySession` already rebuilds
    engines when the collection version moves.
    """

    def __init__(self, max_entries: int = 8) -> None:
        self.max_entries = max_entries
        self._plans: Dict[Tuple[int, int, str], ShardPlan] = {}
        self.hits = 0
        self.misses = 0

    def get(self, collection, r: float, shards: int, curve: str) -> ShardPlan:
        key = (int(np.ceil(r)), shards, curve)
        plan = self._plans.get(key)
        if plan is not None:
            self.hits += 1
            return plan
        self.misses += 1
        plan = plan_shards(collection, r, shards, curve)
        if len(self._plans) >= self.max_entries:
            self._plans.pop(next(iter(self._plans)))
        self._plans[key] = plan
        return plan

    def observed_balance(self) -> float:
        """Worst max/mean owned-points ratio across cached plans.

        1.0 means perfectly balanced (or nothing cached yet); larger
        values mean the curve routing skewed load toward some shard.
        The adaptive planner reads this to discount the predicted
        parallel speedup — a skewed plan's makespan follows its most
        loaded shard, not the mean.
        """
        worst = 1.0
        for plan in self._plans.values():
            if not plan.owned_points:
                continue
            mean = sum(plan.owned_points) / len(plan.owned_points)
            if mean > 0:
                worst = max(worst, max(plan.owned_points) / mean)
        return worst
