"""Space-filling-curve sharding: routing, curves, and the process executor.

The subsystem behind the sharded parallel engine (``--parallel-mode
sharded``): :mod:`repro.shard.curves` orders grid cells along a Hilbert
or Z-order curve, :mod:`repro.shard.router` cuts collections into
curve-contiguous shards with exact Lemma-2 halos, and
:mod:`repro.shard.executor` runs the vectorized phase chain per shard in
worker processes over shared-memory coordinates.

Layering: this package sits below :mod:`repro.parallel` (which
orchestrates it through the phase pipeline) and must never import the
session, service, or CLI layers — ``tests/test_layering.py`` enforces
that.
"""

from repro.shard.curves import CURVES, curve_codes
from repro.shard.executor import ShardExecutor, ShardOutcome, run_shard_task
from repro.shard.router import ShardPlan, ShardPlanCache, plan_shards

__all__ = [
    "CURVES",
    "curve_codes",
    "ShardExecutor",
    "ShardOutcome",
    "run_shard_task",
    "ShardPlan",
    "ShardPlanCache",
    "plan_shards",
]
