"""Space-filling-curve codes over integer grid cells.

The shard router (:mod:`repro.shard.router`) orders objects along a
space-filling curve over their large-grid cells and cuts the order into
contiguous ranges — one shard per range.  Curve locality then makes each
shard spatially compact, which keeps the cross-shard halo (the objects a
shard must *see* but does not own) small.

Two curves are provided, both vectorized over ``(n, d)`` coordinate
arrays:

* **Z-order (Morton)**: plain bit interleaving.  Cheap, monotone per
  axis, but curve-adjacent codes can be spatially far apart (the
  "seam" jumps at power-of-two boundaries).
* **Hilbert**: Skilling's transpose algorithm [Skilling 2004,
  AIP Conf. Proc. 707].  Slightly more per-bit work, but consecutive
  codes are *always* grid-adjacent (L1 distance exactly 1), which the
  property suite pins and which is why it is the router default.

Both carry a big-int pure-python fallback for cell spreads whose
interleaved code would overflow 62 bits — mirroring the mixed-radix
``int64`` cell-code overflow fallback in the numpy kernel
(:func:`repro.kernels.numpy_backend.encode_keys`).  The fallback is
bit-identical to the vectorized path wherever both apply; the property
suite enforces that too.

Coordinates handed to the encoders must be non-negative integers;
:func:`curve_codes` is the top-level helper that shifts arbitrary
(possibly negative) cell keys, picks the bit depth, and selects the
vectorized or big-int path.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Union

import numpy as np

from repro.errors import InvalidQueryError

#: Curve names accepted by :func:`curve_codes` and the router.
CURVES = ("hilbert", "zorder")

#: Interleaved codes above this many bits leave the vectorized ``uint64``
#: path (the top bit is reserved so codes stay exactly representable as
#: non-negative ``int64``, matching the kernel's cell-code budget).
MAX_VECTOR_BITS = 62


def axis_bits(extents: Sequence[int]) -> int:
    """Bits per axis needed to index cells in ``[0, extent)`` on every axis.

    At least 1 so degenerate (single-cell) inputs still produce a valid
    0-bit-pattern traversal.
    """
    most = max((int(e) for e in extents), default=1)
    return max(1, (most - 1).bit_length()) if most > 1 else 1


# ----------------------------------------------------------------------
# Z-order (Morton)
# ----------------------------------------------------------------------


def zorder_encode(coords: np.ndarray, bits: int) -> np.ndarray:
    """Morton codes for non-negative integer ``(n, d)`` coordinates.

    Bit ``q`` of axis ``i`` lands at interleaved bit ``q*d + (d-1-i)``,
    i.e. axis 0 is the most significant axis within each bit group.
    Requires ``d * bits <= MAX_VECTOR_BITS``.
    """
    work = _checked_uint64(coords, bits)
    n, d = work.shape
    codes = np.zeros(n, dtype=np.uint64)
    for q in range(bits - 1, -1, -1):
        for i in range(d):
            codes = (codes << np.uint64(1)) | ((work[:, i] >> np.uint64(q)) & np.uint64(1))
    return codes.astype(np.int64)


def zorder_decode(codes: np.ndarray, dimension: int, bits: int) -> np.ndarray:
    """Inverse of :func:`zorder_encode` — ``(n, d)`` coordinates."""
    work = np.asarray(codes, dtype=np.int64).astype(np.uint64)
    n = work.shape[0]
    coords = np.zeros((n, dimension), dtype=np.uint64)
    position = 0
    for q in range(bits - 1, -1, -1):
        for i in range(dimension):
            shift = np.uint64(bits * dimension - 1 - position)
            coords[:, i] = (coords[:, i] << np.uint64(1)) | (
                (work >> shift) & np.uint64(1)
            )
            position += 1
    return coords.astype(np.int64)


def zorder_encode_int(coord: Sequence[int], bits: int) -> int:
    """Big-int Morton code for one coordinate row (no bit-width limit)."""
    code = 0
    for q in range(bits - 1, -1, -1):
        for value in coord:
            code = (code << 1) | ((int(value) >> q) & 1)
    return code


def zorder_decode_int(code: int, dimension: int, bits: int) -> List[int]:
    """Inverse of :func:`zorder_encode_int`."""
    coord = [0] * dimension
    for position in range(bits * dimension):
        axis = position % dimension
        bit = (code >> (bits * dimension - 1 - position)) & 1
        coord[axis] = (coord[axis] << 1) | bit
    return coord


# ----------------------------------------------------------------------
# Hilbert (Skilling's transpose algorithm)
# ----------------------------------------------------------------------


def hilbert_encode(coords: np.ndarray, bits: int) -> np.ndarray:
    """Hilbert indices for non-negative integer ``(n, d)`` coordinates.

    Vectorized Skilling AxesToTranspose: the per-bit conditional swaps
    become boolean-mask selects, then the transpose form is interleaved
    exactly like :func:`zorder_encode`.  Consecutive indices map to
    grid-adjacent cells (L1 distance 1) — the locality property the
    router relies on.  Requires ``d * bits <= MAX_VECTOR_BITS``.
    """
    work = _checked_uint64(coords, bits)
    axes = [work[:, i].copy() for i in range(work.shape[1])]
    _axes_to_transpose(axes, bits, vector=True)
    n, d = work.shape
    codes = np.zeros(n, dtype=np.uint64)
    for q in range(bits - 1, -1, -1):
        for i in range(d):
            codes = (codes << np.uint64(1)) | ((axes[i] >> np.uint64(q)) & np.uint64(1))
    return codes.astype(np.int64)


def hilbert_decode(codes: np.ndarray, dimension: int, bits: int) -> np.ndarray:
    """Inverse of :func:`hilbert_encode` — ``(n, d)`` coordinates."""
    interleaved = zorder_decode(np.asarray(codes, dtype=np.int64), dimension, bits)
    axes = [interleaved[:, i].astype(np.uint64) for i in range(dimension)]
    _transpose_to_axes(axes, bits, vector=True)
    return np.stack(axes, axis=1).astype(np.int64)


def hilbert_encode_int(coord: Sequence[int], bits: int) -> int:
    """Big-int Hilbert index for one coordinate row (no bit-width limit)."""
    axes = [int(value) for value in coord]
    _axes_to_transpose(axes, bits, vector=False)
    return zorder_encode_int(axes, bits)


def hilbert_decode_int(code: int, dimension: int, bits: int) -> List[int]:
    """Inverse of :func:`hilbert_encode_int`."""
    axes = zorder_decode_int(code, dimension, bits)
    _transpose_to_axes(axes, bits, vector=False)
    return [int(value) for value in axes]


def _axes_to_transpose(axes, bits: int, vector: bool) -> None:
    """In-place Skilling forward transform (axes -> transpose form).

    ``axes`` is a list of per-axis values: ``uint64`` arrays on the
    vectorized path, plain ints on the big-int path.  The two branches
    run the *same* algebra so their outputs agree bit-for-bit wherever
    both are representable.
    """
    d = len(axes)
    m = 1 << (bits - 1)
    # Inverse undo excess work
    q = m
    while q > 1:
        p = q - 1
        for i in range(d):
            if vector:
                uq, up = np.uint64(q), np.uint64(p)
                high = (axes[i] & uq) != 0
                toggle = (axes[0] ^ axes[i]) & up
                axes[0] = np.where(high, axes[0] ^ up, axes[0] ^ toggle)
                axes[i] = np.where(high, axes[i], axes[i] ^ toggle)
            else:
                if axes[i] & q:
                    axes[0] ^= p
                else:
                    t = (axes[0] ^ axes[i]) & p
                    axes[0] ^= t
                    axes[i] ^= t
        q >>= 1
    # Gray encode
    for i in range(1, d):
        axes[i] ^= axes[i - 1]
    if vector:
        t = np.zeros_like(axes[0])
    else:
        t = 0
    q = m
    while q > 1:
        if vector:
            mask = (axes[d - 1] & np.uint64(q)) != 0
            t = np.where(mask, t ^ np.uint64(q - 1), t)
        else:
            if axes[d - 1] & q:
                t ^= q - 1
        q >>= 1
    for i in range(d):
        axes[i] ^= t


def _transpose_to_axes(axes, bits: int, vector: bool) -> None:
    """In-place Skilling inverse transform (transpose form -> axes)."""
    d = len(axes)
    m = 1 << (bits - 1)
    if vector:
        t = axes[d - 1] >> np.uint64(1)
    else:
        t = axes[d - 1] >> 1
    for i in range(d - 1, 0, -1):
        axes[i] ^= axes[i - 1]
    axes[0] ^= t
    q = 2
    while q <= m:
        p = q - 1
        for i in range(d - 1, -1, -1):
            if vector:
                uq, up = np.uint64(q), np.uint64(p)
                high = (axes[i] & uq) != 0
                toggle = (axes[0] ^ axes[i]) & up
                axes[0] = np.where(high, axes[0] ^ up, axes[0] ^ toggle)
                axes[i] = np.where(high, axes[i], axes[i] ^ toggle)
            else:
                if axes[i] & q:
                    axes[0] ^= p
                else:
                    t = (axes[0] ^ axes[i]) & p
                    axes[0] ^= t
                    axes[i] ^= t
        q <<= 1


def _checked_uint64(coords: np.ndarray, bits: int) -> np.ndarray:
    array = np.asarray(coords)
    if array.ndim != 2:
        raise InvalidQueryError("curve coordinates must be a 2-D array")
    if bits < 1:
        raise InvalidQueryError("curve bit depth must be >= 1")
    if bits * array.shape[1] > MAX_VECTOR_BITS:
        raise InvalidQueryError(
            f"{array.shape[1]}x{bits}-bit interleave exceeds the "
            f"{MAX_VECTOR_BITS}-bit vectorized budget; use the big-int path"
        )
    if array.size and int(array.min()) < 0:
        raise InvalidQueryError("curve coordinates must be non-negative")
    return array.astype(np.uint64)


# ----------------------------------------------------------------------
# Top-level helper: arbitrary integer cell keys -> sortable curve codes
# ----------------------------------------------------------------------


@dataclass
class CurveCodes:
    """Curve codes for a batch of cell keys plus how they were produced."""

    #: ``int64`` array on the vectorized path; list of python big ints on
    #: the overflow fallback.  Either way, comparable and sortable, and
    #: equal inputs yield equal codes across both paths.
    codes: Union[np.ndarray, List[int]]
    curve: str
    bits: int
    #: Per-axis minimum subtracted before encoding.
    mins: np.ndarray
    #: True when the big-int fallback ran (``d * bits`` over budget).
    overflowed: bool

    def argsort(self) -> np.ndarray:
        """Stable order of the rows by code (ties keep row order)."""
        if isinstance(self.codes, np.ndarray):
            return np.argsort(self.codes, kind="stable")
        return np.array(
            sorted(range(len(self.codes)), key=self.codes.__getitem__),
            dtype=np.int64,
        )


def curve_codes(keys: np.ndarray, curve: str = "hilbert") -> CurveCodes:
    """Curve codes for arbitrary (possibly negative) integer cell keys.

    Shifts keys to a zero origin, picks the per-axis bit depth from the
    spread, and encodes on the vectorized ``uint64`` path when the
    interleaved width fits :data:`MAX_VECTOR_BITS`, else on the big-int
    fallback — the analogue of the kernel's mixed-radix overflow policy.
    """
    if curve not in CURVES:
        raise InvalidQueryError(f"unknown curve {curve!r} (expected one of {CURVES})")
    keys = np.asarray(keys, dtype=np.int64)
    if keys.ndim != 2 or keys.shape[0] == 0:
        raise InvalidQueryError("curve_codes expects a non-empty (n, d) key array")
    mins = keys.min(axis=0)
    shifted = keys - mins
    extents = shifted.max(axis=0) + 1
    bits = axis_bits(extents.tolist())
    dimension = keys.shape[1]
    if bits * dimension <= MAX_VECTOR_BITS:
        encode = hilbert_encode if curve == "hilbert" else zorder_encode
        return CurveCodes(
            codes=encode(shifted, bits),
            curve=curve,
            bits=bits,
            mins=mins,
            overflowed=False,
        )
    encode_int = hilbert_encode_int if curve == "hilbert" else zorder_encode_int
    codes = [encode_int(row, bits) for row in shifted.tolist()]
    return CurveCodes(codes=codes, curve=curve, bits=bits, mins=mins, overflowed=True)
