"""Real shard-parallel execution over shared-memory coordinates.

This is the process layer behind the sharded parallel engine: a small,
persistent pool of ``multiprocessing`` workers, each attached to one
shared-memory block holding the collection's concatenated ``(P, d)``
coordinate matrix.  Workers rebuild zero-copy :class:`ObjectCollection`
views over that block once, then serve shard tasks for the engine's
whole lifetime — per query, only shard id lists and scalar parameters
cross the pipe, never coordinates.

Each task runs the full vectorized phase chain for one shard
(:func:`run_shard_task`): build the shard BIGrid over ``owned + halo``,
lower-bound, prune with the local top-k threshold, and verify the owned
candidates best-first — with a cooperative :class:`Deadline` rebuilt
from the coordinator's remaining budget, so end-to-end timeouts behave
like the serial pipeline's (pre-verification expiry raises
:class:`QueryTimeout`; mid-verification expiry degrades to an anytime
prefix).

Failure semantics mirror the simulated executor's contract: the
coordinator trips the ``shard_task`` fault point before each dispatch, a
dead or failing worker is respawned and its task retried, and exhausted
retries raise :class:`PartitionTaskError` — which the sharded pipeline's
fallback hook turns into a serial re-run, exactly like the legacy
parallel path.  ``repro_shard_tasks_total{outcome}`` counts every task
landing (``ok`` / ``retried`` / ``failed`` / ``timeout``).
"""

from __future__ import annotations

import multiprocessing
import os
import time
from dataclasses import dataclass, field
from multiprocessing import connection as mp_connection
from multiprocessing import shared_memory
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro import faults
from repro.core.objects import ObjectCollection
from repro.core.pipeline import kth_largest
from repro.errors import InjectedFault, PartitionTaskError, QueryTimeout
from repro.kernels import resolve_kernel
from repro.obs import metrics as obs_metrics
from repro.resilience import Deadline, checkpoint

#: Set to ``1`` to force in-process task execution even for multi-worker
#: engines (debugging aid; conformance runs both paths explicitly).
INLINE_ENV = "REPRO_SHARD_INLINE"

#: Seconds a graceful worker shutdown waits before escalating to kill.
JOIN_TIMEOUT = 2.0


def _tasks_metric():
    return obs_metrics.counter(
        "repro_shard_tasks_total",
        "Shard task executions by outcome (ok/retried/failed/timeout)",
    )


# ----------------------------------------------------------------------
# The per-shard phase chain (runs inside workers, and inline)
# ----------------------------------------------------------------------


@dataclass
class ShardOutcome:
    """One shard's query answer, in *global* object ids.

    A shard reports enough to let the coordinator *replay* the serial
    best-first loop exactly: every owned candidate's upper bound (local
    bounds equal global bounds for owned objects), and the exact score of
    every candidate the shard settled.  The shard's locally-settled set
    provably covers everything the serial loop would verify among its
    owned objects (the local pruning threshold is never above the global
    one), so the replay reproduces the serial answer bit-for-bit —
    including the tie selection its early termination induces.
    """

    shard: int
    #: ``(global_oid, exact_score)`` — the shard's local top-k over its
    #: owned objects, sorted by ``(-score, oid)``.
    ranking: List[Tuple[int, int]]
    #: All owned candidates as ``(upper_bound, global_oid)``, descending.
    owned_candidates: List[Tuple[int, int]]
    #: Every locally settled ``(global_oid, exact_score)``.
    settled: List[Tuple[int, int]]
    #: Best Lemma-1 lower bound over owned objects: ``(value, global_oid)``.
    best_lb: Tuple[int, int]
    candidates: int
    verified: int
    early_terminated: bool
    #: Deadline expired mid-verification: ``ranking`` is a settled prefix.
    timed_out: bool
    seconds: float
    phases: Dict[str, float] = field(default_factory=dict)
    memory_bytes: int = 0
    owned_objects: int = 0
    halo_objects: int = 0
    verification_path: str = "reference"
    lower_bound_path: str = "reference"


def run_shard_task(
    collection: ObjectCollection,
    shard: int,
    owned: Sequence[int],
    halo: Sequence[int],
    r: float,
    k: int,
    backend: str,
    kernel: str,
    timeout_ms: Optional[float] = None,
) -> ShardOutcome:
    """Run the four query phases for one shard; exact for owned objects.

    The sub-collection is ``owned + halo`` with both halves sorted by
    global id, so local ids are monotone in global ids and every
    id-based tie-break (candidate order, the best-first heap) matches
    the serial engine's.  Owned objects occupy local ids
    ``0..len(owned)-1``; candidates outside that range are halo-only and
    are dropped before verification (they are owned — and exact — in
    their own shard).
    """
    started = time.perf_counter()
    kernel_backend = resolve_kernel(kernel)
    deadline = Deadline.from_timeout_ms(timeout_ms)
    n_owned = len(owned)
    local_to_global = list(owned) + list(halo)
    local = collection.subset(local_to_global)
    phases: Dict[str, float] = {}

    checkpoint(deadline, "grid_mapping")
    t0 = time.perf_counter()
    bigrid = kernel_backend.build_bigrid(local, r, backend=backend, deadline=deadline)
    phases["grid_mapping"] = time.perf_counter() - t0

    checkpoint(deadline, "lower_bounding")
    t0 = time.perf_counter()
    lower = kernel_backend.lower_bounds(bigrid, deadline=deadline)
    phases["lower_bounding"] = time.perf_counter() - t0
    owned_values = list(lower.values[:n_owned])
    threshold = kth_largest(owned_values, k)

    checkpoint(deadline, "upper_bounding")
    t0 = time.perf_counter()
    upper = kernel_backend.upper_bounds(bigrid, threshold, deadline=deadline)
    phases["upper_bounding"] = time.perf_counter() - t0
    candidates = [entry for entry in upper.candidates if entry[1] < n_owned]

    # No boundary checkpoint before verification: like the serial
    # pipeline, an expiry from here on degrades to an anytime prefix.
    t0 = time.perf_counter()
    verification = kernel_backend.verify_candidates(
        bigrid, candidates, r, k=k, deadline=deadline
    )
    phases["verification"] = time.perf_counter() - t0

    best_local = max(
        range(n_owned), key=lambda oid: (owned_values[oid], -oid)
    )
    return ShardOutcome(
        shard=shard,
        ranking=[
            (int(local_to_global[oid]), int(score))
            for oid, score in verification.ranking
        ],
        owned_candidates=[
            (int(upper), int(local_to_global[oid])) for upper, oid in candidates
        ],
        settled=[
            (int(local_to_global[oid]), int(score))
            for oid, score in (verification.settled or [])
        ],
        best_lb=(int(owned_values[best_local]), int(local_to_global[best_local])),
        candidates=len(candidates),
        verified=verification.verified,
        early_terminated=verification.early_terminated,
        timed_out=verification.timed_out,
        seconds=time.perf_counter() - started,
        phases=phases,
        memory_bytes=bigrid.memory_bytes(),
        owned_objects=n_owned,
        halo_objects=len(halo),
        verification_path=verification.path,
        lower_bound_path=lower.path,
    )


# ----------------------------------------------------------------------
# Worker process
# ----------------------------------------------------------------------


def _attach_collection(shm_name: str, shape, counts) -> Tuple[object, ObjectCollection]:
    """Attach the coordinate block and rebuild zero-copy object views."""
    # Attaching registers the segment with the resource tracker on 3.11
    # (bpo-39959); under fork the tracker process is *shared* with the
    # parent — who owns the segment's lifetime — so a worker-side
    # (un)register corrupts the parent's ledger.  Suppress registration
    # for the attach instead.
    from multiprocessing import resource_tracker

    original_register = resource_tracker.register
    resource_tracker.register = lambda *args, **kwargs: None
    try:
        shm = shared_memory.SharedMemory(name=shm_name)
    finally:
        resource_tracker.register = original_register
    coords = np.ndarray(shape, dtype=np.float64, buffer=shm.buf)
    offsets = np.zeros(len(counts) + 1, dtype=np.int64)
    np.cumsum(counts, out=offsets[1:])
    views = [coords[offsets[i] : offsets[i + 1]] for i in range(len(counts))]
    return shm, ObjectCollection.from_point_arrays(views)


def _worker_main(conn, shm_name: str, shape, counts) -> None:
    """Worker loop: attach once, then serve tagged shard tasks forever."""
    shm, collection = _attach_collection(shm_name, shape, counts)
    try:
        while True:
            try:
                message = conn.recv()
            except (EOFError, OSError):
                break
            if message[0] == "quit":
                break
            _, tag, payload = message
            try:
                outcome = run_shard_task(collection, **payload)
                conn.send(("ok", tag, outcome))
            except QueryTimeout as exc:
                conn.send(("timeout", tag, exc.phase or "shard_task"))
            except BaseException as exc:  # noqa: BLE001 - report, don't die
                conn.send(("error", tag, f"{type(exc).__name__}: {exc}"))
    finally:
        try:
            conn.close()
        finally:
            shm.close()


# ----------------------------------------------------------------------
# Coordinator
# ----------------------------------------------------------------------


class ShardTimeout(Exception):
    """Internal: a worker reported a pre-verification deadline expiry."""

    def __init__(self, phase: str) -> None:
        super().__init__(phase)
        self.phase = phase


class ShardExecutor:
    """A persistent pool of shard workers over one collection snapshot.

    ``workers=0`` (or :data:`INLINE_ENV`) selects inline execution: the
    same task chain and failure semantics without processes — used for
    single-core engines and as a deterministic debugging mode.  The pool
    is lazy: processes and the shared-memory block exist only after the
    first :meth:`run_query`, and :meth:`close` releases both.
    """

    def __init__(
        self,
        collection: ObjectCollection,
        workers: int,
        retries: int = 2,
    ) -> None:
        self.collection = collection
        self.inline = workers <= 1 or os.environ.get(INLINE_ENV) == "1"
        self.workers = max(1, workers)
        self.retries = retries
        self._shm: Optional[shared_memory.SharedMemory] = None
        self._procs: List[Optional[multiprocessing.Process]] = []
        self._conns: List[Optional[mp_connection.Connection]] = []
        self._epoch = 0
        self._started = False
        #: Worker deaths observed and recovered (exposed for tests).
        self.respawns = 0

    # -- pool lifecycle -------------------------------------------------

    def _ensure_started(self) -> None:
        if self._started or self.inline:
            return
        arrays = [obj.points for obj in self.collection]
        counts = [a.shape[0] for a in arrays]
        stacked = np.concatenate(arrays, axis=0)
        self._shm = shared_memory.SharedMemory(create=True, size=stacked.nbytes)
        shared = np.ndarray(stacked.shape, dtype=np.float64, buffer=self._shm.buf)
        shared[:] = stacked
        self._shape = stacked.shape
        self._counts = counts
        self._procs = [None] * self.workers
        self._conns = [None] * self.workers
        for index in range(self.workers):
            self._spawn(index)
        self._started = True

    def _spawn(self, index: int) -> None:
        ctx = multiprocessing.get_context(
            "fork" if "fork" in multiprocessing.get_all_start_methods() else "spawn"
        )
        parent_conn, child_conn = ctx.Pipe(duplex=True)
        proc = ctx.Process(
            target=_worker_main,
            args=(child_conn, self._shm.name, self._shape, self._counts),
            daemon=True,
            name=f"repro-shard-{index}",
        )
        proc.start()
        child_conn.close()
        self._procs[index] = proc
        self._conns[index] = parent_conn

    def close(self) -> None:
        """Stop workers and release the shared-memory block (idempotent)."""
        for conn in self._conns:
            if conn is not None:
                try:
                    conn.send(("quit",))
                except (OSError, BrokenPipeError):
                    pass
        for proc in self._procs:
            if proc is not None:
                proc.join(timeout=JOIN_TIMEOUT)
                if proc.is_alive():  # pragma: no cover - stuck worker
                    proc.kill()
                    proc.join(timeout=JOIN_TIMEOUT)
        for conn in self._conns:
            if conn is not None:
                try:
                    conn.close()
                except OSError:
                    pass
        self._procs = []
        self._conns = []
        if self._shm is not None:
            self._shm.close()
            try:
                self._shm.unlink()
            except FileNotFoundError:  # pragma: no cover
                pass
            self._shm = None
        self._started = False

    def __del__(self) -> None:  # pragma: no cover - GC safety net
        try:
            self.close()
        except Exception:
            pass

    # -- query execution ------------------------------------------------

    def run_query(
        self,
        payloads: List[dict],
        retries: Optional[int] = None,
        deadline: Optional[Deadline] = None,
    ) -> List[ShardOutcome]:
        """Run one query's shard tasks; outcomes ordered by shard index.

        ``payloads`` are :func:`run_shard_task` keyword dicts minus the
        collection.  Retries, fault trips, respawns, and the
        ``repro_shard_tasks_total`` ledger are applied here so the inline
        and process paths share one failure contract.
        """
        budget = self.retries if retries is None else retries
        if self.inline or not payloads:
            return [
                self._run_guarded_inline(payload, budget) for payload in payloads
            ]
        self._ensure_started()
        return self._run_pool(payloads, budget, deadline)

    # The inline path: same trip/retry ledger, no processes.
    def _run_guarded_inline(self, payload: dict, budget: int) -> ShardOutcome:
        metric = _tasks_metric()
        attempts = 0
        while True:
            attempts += 1
            try:
                faults.trip("shard_task", detail=(payload["shard"],))
                outcome = run_shard_task(self.collection, **payload)
                metric.inc(outcome="ok")
                return outcome
            except QueryTimeout:
                metric.inc(outcome="timeout")
                raise
            except Exception as exc:
                if attempts > budget:
                    metric.inc(outcome="failed")
                    raise PartitionTaskError(
                        f"shard task {payload['shard']} failed after "
                        f"{attempts} attempts: {exc}",
                        task_index=payload["shard"],
                        attempts=attempts,
                    ) from exc
                metric.inc(outcome="retried")

    # The pool path.
    def _run_pool(
        self,
        payloads: List[dict],
        budget: int,
        deadline: Optional[Deadline],
    ) -> List[ShardOutcome]:
        metric = _tasks_metric()
        self._epoch += 1
        epoch = self._epoch
        outcomes: List[Optional[ShardOutcome]] = [None] * len(payloads)
        attempts = [0] * len(payloads)
        #: task index -> assigned worker; static round-robin start, tasks
        #: re-enter the queue of the (respawned) worker on failure.
        queues: List[List[int]] = [[] for _ in range(self.workers)]
        for task, payload in enumerate(payloads):
            queues[task % self.workers].append(task)
        inflight: List[Optional[int]] = [None] * self.workers
        remaining = len(payloads)

        def dispatch(worker: int) -> None:
            while queues[worker]:
                task = queues[worker][0]
                attempts[task] += 1
                if attempts[task] > budget + 1:
                    # Guard against a worker dying between spawn and send
                    # in a tight loop: the attempt ledger still rules.
                    queues[worker].pop(0)
                    metric.inc(outcome="failed")
                    raise PartitionTaskError(
                        f"shard task {task} exhausted {attempts[task]} attempts",
                        task_index=task,
                        attempts=attempts[task],
                    )
                try:
                    faults.trip("shard_task", detail=(payloads[task]["shard"],))
                except InjectedFault as exc:
                    queues[worker].pop(0)
                    self._record_failure(
                        task, attempts, budget, queues, worker, metric, exc
                    )
                    continue
                payload = dict(payloads[task])
                if deadline is not None:
                    payload["timeout_ms"] = deadline.remaining_ms()
                queues[worker].pop(0)
                inflight[worker] = task
                try:
                    self._conns[worker].send(("task", (epoch, task), payload))
                except (OSError, BrokenPipeError):
                    self._on_worker_death(worker, inflight, queues, attempts)
                    continue
                return

        for worker in range(self.workers):
            dispatch(worker)

        while remaining:
            checkpoint(deadline, "shard_execute")
            active = {
                self._conns[w]: w
                for w in range(self.workers)
                if inflight[w] is not None
            }
            if not active:
                # Every unfinished task is queued on a worker with nothing
                # in flight -- only possible transiently; redispatch.
                for worker in range(self.workers):
                    if inflight[worker] is None and queues[worker]:
                        dispatch(worker)
                if not any(inflight[w] is not None for w in range(self.workers)):
                    raise PartitionTaskError(
                        "shard executor stalled with tasks outstanding",
                        attempts=max(attempts) if attempts else 1,
                    )
                continue
            ready = mp_connection.wait(list(active), timeout=0.1)
            for conn in ready:
                worker = active[conn]
                try:
                    message = conn.recv()
                except (EOFError, OSError):
                    self._on_worker_death(worker, inflight, queues, attempts)
                    self._record_retry_or_fail(
                        inflight, queues, attempts, budget, worker, metric
                    )
                    dispatch(worker)
                    continue
                kind, (msg_epoch, task), body = message
                if msg_epoch != epoch:
                    continue  # stale answer from an abandoned query
                inflight[worker] = None
                if kind == "ok":
                    outcomes[task] = body
                    metric.inc(outcome="ok")
                elif kind == "timeout":
                    metric.inc(outcome="timeout")
                    raise ShardTimeout(body)
                else:  # "error"
                    self._record_failure(
                        task, attempts, budget, queues, worker, metric,
                        RuntimeError(body),
                    )
                dispatch(worker)
            # A completed task may have freed a worker whose queue holds
            # retried tasks; keep everyone busy.
            for worker in range(self.workers):
                if inflight[worker] is None and queues[worker]:
                    dispatch(worker)
            remaining = sum(1 for outcome in outcomes if outcome is None)

        return outcomes  # type: ignore[return-value]

    def _on_worker_death(self, worker, inflight, queues, attempts) -> None:
        """Respawn a dead worker; its in-flight task goes back on its queue."""
        proc = self._procs[worker]
        if proc is not None:
            proc.join(timeout=JOIN_TIMEOUT)
        try:
            self._conns[worker].close()
        except OSError:
            pass
        self.respawns += 1
        obs_metrics.counter(
            "repro_shard_worker_respawns_total",
            "Shard worker processes respawned after unexpected death",
        ).inc()
        self._spawn(worker)
        task = inflight[worker]
        inflight[worker] = None
        if task is not None:
            queues[worker].insert(0, task)

    def _record_retry_or_fail(
        self, inflight, queues, attempts, budget, worker, metric
    ) -> None:
        """After a death, decide whether the re-queued task may retry."""
        if not queues[worker]:
            return
        task = queues[worker][0]
        if attempts[task] > budget:
            queues[worker].pop(0)
            metric.inc(outcome="failed")
            raise PartitionTaskError(
                f"shard task {task} lost its worker {attempts[task]} time(s)",
                task_index=task,
                attempts=attempts[task],
            )
        metric.inc(outcome="retried")

    def _record_failure(
        self, task, attempts, budget, queues, worker, metric, cause
    ) -> None:
        """A task attempt failed in-band; retry on the same worker or give up."""
        if attempts[task] > budget:
            metric.inc(outcome="failed")
            raise PartitionTaskError(
                f"shard task {task} failed after {attempts[task]} attempts: {cause}",
                task_index=task,
                attempts=attempts[task],
            ) from cause
        metric.inc(outcome="retried")
        queues[worker].append(task)
