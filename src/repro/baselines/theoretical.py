"""The theoretical O(n log n)-query algorithm (Theorem 1).

Pre-processing stores, for every object, the sorted distances of its
closest point pairs to every other object; a query then binary-searches
each array.  Queries are fast and threshold-independent, but the
pre-processing is O(n^2 (m log m + log n)) and the arrays occupy O(n^2)
memory -- exactly the trade-off Section II-B uses to motivate BIGrid (the
paper could not even finish this pre-processing within 8 hours).

``preprocess`` therefore takes a ``budget_pairs`` guard so benchmarks can
demonstrate the blow-up without paying it.
"""

from __future__ import annotations

import time
from typing import List, Optional

import numpy as np

from repro.core.objects import ObjectCollection
from repro.core.query import MIOResult
from repro.spatial.closest_pair import closest_pair_distance_with_tree
from repro.spatial.kdtree import KDTree


class TheoreticalAlgorithm:
    """Closest-pair arrays + binary search (Theorem 1)."""

    def __init__(self, collection: ObjectCollection) -> None:
        self.collection = collection
        #: ``A_i``: sorted closest-pair distances from object i to the others.
        self._arrays: Optional[List[np.ndarray]] = None
        self.preprocess_seconds = 0.0

    # ------------------------------------------------------------------
    # Pre-processing
    # ------------------------------------------------------------------

    def preprocess(self, budget_pairs: Optional[int] = None) -> float:
        """Build all ``A_i`` arrays; returns the elapsed seconds.

        Raises ``RuntimeError`` if the number of object pairs exceeds
        ``budget_pairs`` (the analogue of the paper's 8-hour timeout).
        """
        collection = self.collection
        n = collection.n
        total_pairs = n * (n - 1) // 2
        if budget_pairs is not None and total_pairs > budget_pairs:
            raise RuntimeError(
                f"theoretical pre-processing needs {total_pairs} closest-pair "
                f"computations, over the budget of {budget_pairs}"
            )
        started = time.perf_counter()
        trees = [KDTree(obj.points) for obj in collection]
        closest = np.zeros((n, n), dtype=np.float64)
        for i in range(n):
            points_i = collection[i].points
            for j in range(i + 1, n):
                # Probe the larger object's tree with the smaller's points.
                if len(points_i) <= len(collection[j].points):
                    distance = closest_pair_distance_with_tree(points_i, trees[j])
                else:
                    distance = closest_pair_distance_with_tree(collection[j].points, trees[i])
                closest[i, j] = distance
                closest[j, i] = distance
        self._arrays = []
        for i in range(n):
            row = np.delete(closest[i], i)
            row.sort()
            self._arrays.append(row)
        self.preprocess_seconds = time.perf_counter() - started
        return self.preprocess_seconds

    @property
    def is_preprocessed(self) -> bool:
        return self._arrays is not None

    def memory_bytes(self) -> int:
        """The O(n^2) array footprint."""
        if self._arrays is None:
            return 0
        return sum(array.nbytes for array in self._arrays)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------

    def scores(self, r: float) -> List[int]:
        """``tau(o)`` for every object via one binary search per object."""
        if self._arrays is None:
            raise RuntimeError("call preprocess() before querying")
        if r <= 0:
            raise ValueError("the distance threshold r must be positive")
        return [int(np.searchsorted(array, r, side="right")) for array in self._arrays]

    def query(self, r: float) -> MIOResult:
        started = time.perf_counter()
        tau = self.scores(r)
        elapsed = time.perf_counter() - started
        winner = max(range(len(tau)), key=lambda oid: (tau[oid], -oid))
        return MIOResult(
            algorithm="theoretical",
            r=r,
            winner=winner,
            score=tau[winner],
            phases={"binary_search": elapsed},
            memory_bytes=self.memory_bytes(),
        )
