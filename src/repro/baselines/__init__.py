"""Competitor algorithms the paper evaluates BIGrid against.

* :class:`NestedLoopAlgorithm`   -- NL, Algorithm 1 (no index, early exit)
* :class:`KDTreeNestedLoop`      -- the kd-tree NL variant of footnote 9
* :class:`RTreeNestedLoop`       -- NL behind an STR R-tree MBR filter,
  testing Section II-B's claim that MBR indexing cannot help
* :class:`SimpleGridAlgorithm`   -- SG, the TOUCH-style single-grid
  competitor described in Section V-A
* :class:`TheoreticalAlgorithm`  -- the O(n log n)-query / O(n^2)-space
  algorithm of Theorem 1 (with its prohibitive pre-processing)

Each exposes ``query(r)`` (and ``scores(r)`` where the algorithm naturally
computes every score) returning the same :class:`~repro.core.query.MIOResult`
as the BIGrid engine.
"""

from repro.baselines.nested_loop import NestedLoopAlgorithm
from repro.baselines.nl_kdtree import KDTreeNestedLoop
from repro.baselines.rtree_nl import RTreeNestedLoop
from repro.baselines.simple_grid import SimpleGridAlgorithm
from repro.baselines.theoretical import TheoreticalAlgorithm

__all__ = [
    "KDTreeNestedLoop",
    "NestedLoopAlgorithm",
    "RTreeNestedLoop",
    "SimpleGridAlgorithm",
    "TheoreticalAlgorithm",
]
