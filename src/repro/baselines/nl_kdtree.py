"""The kd-tree nested-loop variant (paper footnote 9).

Each object's points are indexed by a kd-tree once; an object pair is then
tested by probing the larger object's tree with the smaller object's points
and stopping at the first hit, giving O(n^2 m log m) worst case.  The paper
reports that this variant "shows a similar performance to NL and cannot
beat our solutions"; we include it so that claim can be checked.
"""

from __future__ import annotations

import time
from typing import List

from repro.core.objects import ObjectCollection
from repro.core.query import MIOResult
from repro.spatial.kdtree import KDTree


class KDTreeNestedLoop:
    """NL with a per-object kd-tree for the inner containment test."""

    def __init__(self, collection: ObjectCollection) -> None:
        self.collection = collection
        self._trees = [KDTree(obj.points) for obj in collection]

    def scores(self, r: float) -> List[int]:
        """Exact ``tau(o)`` for every object."""
        if r <= 0:
            raise ValueError("the distance threshold r must be positive")
        collection = self.collection
        tau = [0] * collection.n
        for i in range(collection.n):
            points_i = collection[i].points
            for j in range(i + 1, collection.n):
                points_j = collection[j].points
                # Probe the larger set's tree with the smaller set's points.
                if len(points_i) <= len(points_j):
                    probes, tree = points_i, self._trees[j]
                else:
                    probes, tree = points_j, self._trees[i]
                if any(tree.any_within(point, r) for point in probes):
                    tau[i] += 1
                    tau[j] += 1
        return tau

    def query(self, r: float) -> MIOResult:
        started = time.perf_counter()
        tau = self.scores(r)
        elapsed = time.perf_counter() - started
        winner = max(range(len(tau)), key=lambda oid: (tau[oid], -oid))
        return MIOResult(
            algorithm="nl-kdtree",
            r=r,
            winner=winner,
            score=tau[winner],
            phases={"scan": elapsed},
            memory_bytes=sum(
                tree.points.nbytes // 2 for tree in self._trees  # node arrays ~ half the data
            ),
        )
