"""SG: the simple-grid competitor (Section V-A).

SG is the paper's stand-in for state-of-the-art in-memory spatial join
(TOUCH [5]) specialized to the MIO problem: build a uniform grid of width
``r`` online, then compute ``tau(o)`` for *every* object by checking, for
each of its points, the posting lists in the point's cell and the adjacent
cells, with an early exit per already-confirmed partner object.

SG prunes distance computations (only grid-near points are compared) but,
unlike BIGrid, it has no lower/upper bounds, so it must score all n objects
exactly -- and *denser cells for larger r* make it slower as ``r`` grows,
the opposite trend to NL (Fig. 5).
"""

from __future__ import annotations

import time
from typing import Dict, List, Set

import numpy as np

from repro.core.geometry import squared_distances_to
from repro.core.objects import ObjectCollection
from repro.core.query import MIOResult
from repro.grid.keys import WIDTH_GUARD, Key, cell_and_adjacent_keys, compute_keys


class _SGCell:
    """Posting lists (object -> point indices) of one width-r cell."""

    __slots__ = ("postings", "_point_cache")

    def __init__(self) -> None:
        self.postings: Dict[int, List[int]] = {}
        self._point_cache: Dict[int, np.ndarray] = {}

    def posting_points(self, oid: int, points: np.ndarray) -> np.ndarray:
        cached = self._point_cache.get(oid)
        if cached is None:
            cached = points[self.postings[oid]]
            self._point_cache[oid] = cached
        return cached


class SimpleGridAlgorithm:
    """The SG baseline over a static collection."""

    def __init__(self, collection: ObjectCollection) -> None:
        self.collection = collection
        self._cells: Dict[Key, _SGCell] = {}
        self._object_keys: List[List[Key]] = []
        self._width = 0.0

    # ------------------------------------------------------------------
    # Index construction (online, like BIGrid)
    # ------------------------------------------------------------------

    def build(self, r: float) -> float:
        """Build the width-r grid; returns the build time in seconds."""
        if r <= 0:
            raise ValueError("the distance threshold r must be positive")
        started = time.perf_counter()
        self._cells = {}
        self._object_keys = []
        # Same float-boundary guard as the BIGrid widths (see grid.keys).
        self._width = r * (1.0 + WIDTH_GUARD)
        for obj in self.collection:
            keys = compute_keys(obj.points, self._width)
            self._object_keys.append(keys)
            for point_index, key in enumerate(keys):
                cell = self._cells.get(key)
                if cell is None:
                    cell = _SGCell()
                    self._cells[key] = cell
                cell.postings.setdefault(obj.oid, []).append(point_index)
        return time.perf_counter() - started

    # ------------------------------------------------------------------
    # Scoring
    # ------------------------------------------------------------------

    def _score(self, oid: int, r: float) -> int:
        collection = self.collection
        points = collection[oid].points
        r_squared = r * r
        confirmed: Set[int] = set()
        for point_index, key in enumerate(self._object_keys[oid]):
            point = points[point_index]
            for neighbor_key in cell_and_adjacent_keys(key):
                cell = self._cells.get(neighbor_key)
                if cell is None:
                    continue
                for other_oid in cell.postings:
                    if other_oid == oid or other_oid in confirmed:
                        continue
                    other_points = cell.posting_points(other_oid, collection[other_oid].points)
                    if np.min(squared_distances_to(point, other_points)) <= r_squared:
                        confirmed.add(other_oid)
        return len(confirmed)

    def scores(self, r: float) -> List[int]:
        """Exact ``tau(o)`` for every object (builds the grid first)."""
        self.build(r)
        return [self._score(oid, r) for oid in range(self.collection.n)]

    def query(self, r: float) -> MIOResult:
        build_time = self.build(r)
        started = time.perf_counter()
        tau = [self._score(oid, r) for oid in range(self.collection.n)]
        scoring_time = time.perf_counter() - started
        winner = max(range(len(tau)), key=lambda oid: (tau[oid], -oid))
        return MIOResult(
            algorithm="sg",
            r=r,
            winner=winner,
            score=tau[winner],
            phases={"build": build_time, "scoring": scoring_time},
            counters={"cells": len(self._cells)},
            memory_bytes=self.memory_bytes(),
        )

    def memory_bytes(self) -> int:
        """Grid footprint: hash entries plus posting lists."""
        per_entry = 8 * self.collection.dimension + 8
        total = per_entry * len(self._cells)
        for cell in self._cells.values():
            for posting in cell.postings.values():
                total += 16 + 8 * len(posting)
        return total
