"""R-tree MBR-filtered nested loop: testing the Section II-B claim.

The paper rules out MBR-based indexing a priori ("they would make
uselessly large rectangles with large empty spaces").  This baseline makes
the claim falsifiable: object MBRs go into an STR-packed R-tree, each
object queries the tree for partners whose MBR gap is within ``r``, and
only those candidate pairs pay point-level distance work.

On compact objects this prunes nearly everything; on arbors and
trajectory segments the MBRs overlap massively and the filter passes most
pairs through -- which the ``candidate_pairs`` counter quantifies.
"""

from __future__ import annotations

import time
from typing import List

from repro.core.geometry import point_sets_interact
from repro.core.objects import ObjectCollection
from repro.core.query import MIOResult
from repro.spatial.rtree import RTree


class RTreeNestedLoop:
    """NL with an R-tree MBR pre-filter over object bounding boxes."""

    def __init__(self, collection: ObjectCollection, max_entries: int = 8) -> None:
        self.collection = collection
        self._boxes = [obj.bounds() for obj in collection]
        self._tree = RTree(self._boxes, max_entries=max_entries)
        self.candidate_pairs = 0

    def scores(self, r: float) -> List[int]:
        """Exact ``tau(o)`` for every object via MBR-filtered pair checks."""
        if r <= 0:
            raise ValueError("the distance threshold r must be positive")
        collection = self.collection
        tau = [0] * collection.n
        self.candidate_pairs = 0
        for i in range(collection.n):
            lo, hi = self._boxes[i]
            points_i = collection[i].points
            for j in self._tree.query_within(lo, hi, r):
                if j <= i:
                    continue  # each pair once, like Algorithm 1
                self.candidate_pairs += 1
                if point_sets_interact(points_i, collection[j].points, r):
                    tau[i] += 1
                    tau[j] += 1
        return tau

    def query(self, r: float) -> MIOResult:
        started = time.perf_counter()
        tau = self.scores(r)
        elapsed = time.perf_counter() - started
        winner = max(range(len(tau)), key=lambda oid: (tau[oid], -oid))
        total_pairs = self.collection.n * (self.collection.n - 1) // 2
        return MIOResult(
            algorithm="nl-rtree",
            r=r,
            winner=winner,
            score=tau[winner],
            phases={"scan": elapsed},
            counters={
                "candidate_pairs": self.candidate_pairs,
                "total_pairs": total_pairs,
            },
            memory_bytes=self._tree.memory_bytes(),
        )

    def filter_rate(self, r: float) -> float:
        """Fraction of object pairs the MBR filter discards for this ``r``."""
        self.scores(r)
        total_pairs = self.collection.n * (self.collection.n - 1) // 2
        if total_pairs == 0:
            return 0.0
        return 1.0 - self.candidate_pairs / total_pairs
