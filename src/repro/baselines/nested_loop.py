"""NL: the nested-loop baseline (Algorithm 1).

For every object pair the algorithm scans point pairs until it finds one
within ``r`` (then both scores are incremented and the pair is abandoned --
the paper's early ``break``).  No index, no pre-processing; O(n^2 m^2) in
the worst case, and notably *faster for larger r* because interacting pairs
are discovered earlier -- the behaviour Fig. 5 highlights.

The point-pair scan is vectorized in blocks (see
:func:`repro.core.geometry.point_sets_interact`), the honest Python
rendition of the scalar loop: early blocks exiting early preserve the
r-dependence of the work.

An optional axis-aligned bounding-box pre-check per pair is available but
**off by default**: the paper argues MBR-style filtering is ineffective for
these stringy objects, and the flag lets an ablation quantify that.
"""

from __future__ import annotations

import time
from typing import List

from repro.core.geometry import boxes_within, point_sets_interact
from repro.core.objects import ObjectCollection
from repro.core.query import MIOResult


class NestedLoopAlgorithm:
    """Algorithm 1 over a static collection."""

    def __init__(self, collection: ObjectCollection, use_bbox_filter: bool = False) -> None:
        self.collection = collection
        self.use_bbox_filter = use_bbox_filter
        self._bounds = [obj.bounds() for obj in collection] if use_bbox_filter else None

    def scores(self, r: float) -> List[int]:
        """Exact ``tau(o)`` for every object (the full pairwise pass)."""
        if r <= 0:
            raise ValueError("the distance threshold r must be positive")
        collection = self.collection
        tau = [0] * collection.n
        for i in range(collection.n):
            points_i = collection[i].points
            for j in range(i + 1, collection.n):
                if self._bounds is not None:
                    lo_i, hi_i = self._bounds[i]
                    lo_j, hi_j = self._bounds[j]
                    if not boxes_within(lo_i, hi_i, lo_j, hi_j, r):
                        continue
                if point_sets_interact(points_i, collection[j].points, r):
                    tau[i] += 1
                    tau[j] += 1
        return tau

    def query(self, r: float) -> MIOResult:
        """The MIO answer, timing the full scan."""
        started = time.perf_counter()
        tau = self.scores(r)
        elapsed = time.perf_counter() - started
        winner = max(range(len(tau)), key=lambda oid: (tau[oid], -oid))
        return MIOResult(
            algorithm="nl",
            r=r,
            winner=winner,
            score=tau[winner],
            phases={"scan": elapsed},
            counters={"pairs_checked": len(tau) * (len(tau) - 1) // 2},
            memory_bytes=0,
        )

    def query_topk(self, r: float, k: int) -> MIOResult:
        """Top-k by full scoring (NL's cost is independent of k, Fig. 7)."""
        if k < 1:
            raise ValueError("k must be at least 1")
        started = time.perf_counter()
        tau = self.scores(r)
        elapsed = time.perf_counter() - started
        ranking = sorted(
            ((oid, score) for oid, score in enumerate(tau)),
            key=lambda item: (-item[1], item[0]),
        )[:k]
        winner, score = ranking[0]
        return MIOResult(
            algorithm="nl",
            r=r,
            winner=winner,
            score=score,
            topk=ranking,
            phases={"scan": elapsed},
            memory_bytes=0,
        )


def brute_force_scores(collection: ObjectCollection, r: float) -> List[int]:
    """Convenience oracle used across the test-suite and benches."""
    return NestedLoopAlgorithm(collection).scores(r)
