"""Human-readable rendering of traces: span trees and pruning funnels.

``repro explain`` (and ``repro query --trace``) print what the paper's
Table II and the pruning discussion of Section V show for one query: the
per-phase time decomposition as an indented span tree, and the candidate
funnel -- how many objects the filter phases admitted and how many the
best-first verification actually had to settle.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from repro.obs.trace import Span

#: Span attributes too noisy for the tree rendering.
_HIDDEN_ATTRIBUTES = ("error",)


def _format_attributes(span: Span) -> str:
    shown = [
        f"{key}={value}"
        for key, value in sorted(span.attributes.items())
        if key not in _HIDDEN_ATTRIBUTES
    ]
    if "error" in span.attributes:
        shown.append(f"error={span.attributes['error']}")
    return f"  [{', '.join(shown)}]" if shown else ""


def render_span_tree(root: Span, indent: str = "") -> str:
    """An indented ascii tree, one line per span with its duration."""
    lines: List[str] = []

    def visit(span: Span, prefix: str, childprefix: str) -> None:
        lines.append(
            f"{prefix}{span.name:<{max(1, 28 - len(prefix))}} "
            f"{span.duration * 1000.0:>10.3f} ms{_format_attributes(span)}"
        )
        for index, child in enumerate(span.children):
            last = index == len(span.children) - 1
            branch = "`- " if last else "|- "
            extension = "   " if last else "|  "
            visit(child, childprefix + branch, childprefix + extension)

    visit(root, indent, indent)
    return "\n".join(lines)


def render_funnel(stages: Sequence[Tuple[str, int]], width: int = 30) -> str:
    """The pruning funnel: one bar per stage, scaled to the first stage.

    ``stages`` are ``(label, count)`` pairs in pipeline order, e.g.
    ``[("objects", n), ("candidates", c), ("settled", v)]``.
    """
    if not stages:
        return ""
    baseline = max(stages[0][1], 1)
    label_width = max(len(label) for label, _ in stages)
    count_width = max(len(str(count)) for _, count in stages)
    lines = []
    for label, count in stages:
        fraction = count / baseline
        bar = "#" * max(0, round(fraction * width))
        if count > 0 and not bar:
            bar = "#"  # never render a non-empty stage as an empty bar
        lines.append(
            f"  {label:<{label_width}}  {count:>{count_width}}  "
            f"{bar:<{width}} {fraction * 100.0:>5.1f}%"
        )
    return "\n".join(lines)


def render_plan(result) -> str:
    """The planner decision and its predicted-vs-actual phase costs.

    Duck-typed off an ``MIOResult``: reads ``notes["plan"]`` /
    ``notes["planner"]`` / ``notes["plan_reason"]`` and the
    ``extra["predicted:<phase>"]`` entries the planning stage left
    behind, matched against the measured ``result.phases``.  Returns
    ``""`` when the query carried no plan (static runs stay silent) --
    this module deliberately never imports :mod:`repro.planner`.
    """
    notes = getattr(result, "notes", None) or {}
    plan = notes.get("plan")
    if not plan:
        return ""
    lines = [f"  plan     {plan}"]
    planner = notes.get("planner")
    if planner:
        lines.append(f"  planner  {planner}")
    reason = notes.get("plan_reason")
    if reason:
        lines.append(f"  reason   {reason}")
    extra = getattr(result, "extra", None) or {}
    predicted = {
        key[len("predicted:") :]: value
        for key, value in extra.items()
        if key.startswith("predicted:")
    }
    if predicted:
        phases = getattr(result, "phases", None) or {}
        order = [name for name in phases if name in predicted]
        order += [name for name in sorted(predicted) if name not in order]
        width = max(len(name) for name in order)
        lines.append("  predicted vs actual:")
        for name in order:
            actual = phases.get(name)
            actual_text = (
                f"{actual * 1000.0:>10.3f} ms" if actual is not None else f"{'-':>13}"
            )
            lines.append(
                f"    {name:<{width}}  {predicted[name] * 1000.0:>10.3f} ms"
                f"  {actual_text}"
            )
    return "\n".join(lines)


def funnel_stages(result, total_objects: int) -> List[Tuple[str, int]]:
    """Objects -> candidates -> settled, read off an ``MIOResult``.

    Works for both engines: the serial engine reports
    ``candidates_total``/``candidates_settled``, the parallel engine
    ``candidates``/``verified_objects``.
    """
    counters = result.counters
    candidates = counters.get("candidates_total", counters.get("candidates", 0))
    settled = counters.get("candidates_settled", counters.get("verified_objects", 0))
    return [
        ("objects", total_objects),
        ("candidates", candidates),
        ("settled", settled),
    ]
