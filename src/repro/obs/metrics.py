"""Process-wide metrics registry: counters, gauges, log-bucket histograms.

The registry is the one place every subsystem reports operational events
to: the engines (queries, per-phase latencies, pruning funnels), the
three cross-query cache tiers (label store, large-grid keys, lower
bounds), the resilience layer (deadline expirations, degradations, serial
fallbacks), fault injection, and :class:`~repro.dynamic.DynamicMIO`
mutations.  Exporters (:mod:`repro.obs.export`) render a registry in
Prometheus text format or JSON.

Metric names follow the Prometheus conventions (``repro_`` prefix,
``_total`` suffix on counters, base-unit ``_seconds``/``_bytes``) and are
a stable interface: DESIGN.md records the rename policy, and
``docs/observability.md`` carries the catalog.

Instruments are label-aware: one instrument holds a series per label
combination (``repro_cache_requests_total{tier="labels", outcome="hit"}``).
Hot call sites bind a label combination once with :meth:`Counter.labels`
and pay one float add per event afterwards.

Histograms use *fixed log-scale buckets* (default: half-decade steps from
1µs to 10s) so latency distributions from different runs are always
mergeable -- no per-run adaptive bucketing.
"""

from __future__ import annotations

import re
import threading
from bisect import bisect_left
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_LABEL_NAME_RE = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")

#: Half-decade log-scale latency buckets: 1µs .. 10s (upper bounds, seconds).
DEFAULT_SECONDS_BUCKETS: Tuple[float, ...] = tuple(
    round(10.0 ** (exponent / 2.0), 12) for exponent in range(-12, 3)
)

LabelKey = Tuple[Tuple[str, str], ...]


def _label_key(labels: Dict[str, object]) -> LabelKey:
    for name in labels:
        if not _LABEL_NAME_RE.match(name):
            raise ValueError(f"invalid label name {name!r}")
    return tuple(sorted((name, str(value)) for name, value in labels.items()))


class _Instrument:
    """Shared bookkeeping: name, help text, and per-label-set series."""

    kind = "untyped"

    def __init__(self, name: str, help_text: str) -> None:
        if not _NAME_RE.match(name):
            raise ValueError(f"invalid metric name {name!r}")
        self.name = name
        self.help = help_text
        self._series: Dict[LabelKey, object] = {}
        self._lock = threading.Lock()

    def label_sets(self) -> List[LabelKey]:
        return list(self._series)


class Counter(_Instrument):
    """A monotonically increasing count."""

    kind = "counter"

    def inc(self, amount: float = 1.0, **labels: object) -> None:
        if amount < 0:
            raise ValueError("counters only go up")
        key = _label_key(labels)
        with self._lock:
            self._series[key] = self._series.get(key, 0.0) + amount

    def labels(self, **labels: object) -> "_BoundCounter":
        """Bind one label combination for cheap repeated increments."""
        return _BoundCounter(self, _label_key(labels))

    def value(self, **labels: object) -> float:
        return float(self._series.get(_label_key(labels), 0.0))


class _BoundCounter:
    __slots__ = ("_counter", "_key")

    def __init__(self, counter: Counter, key: LabelKey) -> None:
        self._counter = counter
        self._key = key

    def inc(self, amount: float = 1.0) -> None:
        series = self._counter._series
        series[self._key] = series.get(self._key, 0.0) + amount


class Gauge(_Instrument):
    """A value that goes up and down (last write wins)."""

    kind = "gauge"

    def set(self, value: float, **labels: object) -> None:
        self._series[_label_key(labels)] = float(value)

    def inc(self, amount: float = 1.0, **labels: object) -> None:
        key = _label_key(labels)
        with self._lock:
            self._series[key] = self._series.get(key, 0.0) + amount

    def value(self, **labels: object) -> float:
        return float(self._series.get(_label_key(labels), 0.0))


class _HistogramSeries:
    __slots__ = ("bucket_counts", "total", "count")

    def __init__(self, buckets: int) -> None:
        self.bucket_counts = [0] * (buckets + 1)  # trailing slot = +Inf
        self.total = 0.0
        self.count = 0


class Histogram(_Instrument):
    """An observation distribution over fixed, ascending buckets.

    ``buckets`` are upper bounds; an observation lands in the first bucket
    whose bound is ``>= value`` (Prometheus ``le`` semantics), with an
    implicit ``+Inf`` bucket at the end.
    """

    kind = "histogram"

    def __init__(
        self,
        name: str,
        help_text: str,
        buckets: Sequence[float] = DEFAULT_SECONDS_BUCKETS,
    ) -> None:
        super().__init__(name, help_text)
        bounds = [float(bound) for bound in buckets]
        if not bounds:
            raise ValueError("a histogram needs at least one bucket bound")
        if any(b2 <= b1 for b1, b2 in zip(bounds, bounds[1:])):
            raise ValueError("histogram buckets must be strictly ascending")
        self.buckets: Tuple[float, ...] = tuple(bounds)

    def observe(self, value: float, **labels: object) -> None:
        key = _label_key(labels)
        with self._lock:
            series = self._series.get(key)
            if series is None:
                series = self._series[key] = _HistogramSeries(len(self.buckets))
            series.bucket_counts[bisect_left(self.buckets, value)] += 1
            series.total += value
            series.count += 1

    def snapshot(self, **labels: object) -> Dict[str, object]:
        """Cumulative bucket counts plus sum/count for one label set."""
        series = self._series.get(_label_key(labels))
        if series is None:
            return {"buckets": {}, "sum": 0.0, "count": 0}
        cumulative: Dict[str, int] = {}
        running = 0
        for bound, bucket_count in zip(self.buckets, series.bucket_counts):
            running += bucket_count
            cumulative[repr(bound)] = running
        cumulative["+Inf"] = running + series.bucket_counts[-1]
        return {"buckets": cumulative, "sum": series.total, "count": series.count}


class MetricsRegistry:
    """Named instruments, created on first use and shared afterwards."""

    def __init__(self) -> None:
        self._metrics: "Dict[str, _Instrument]" = {}
        self._lock = threading.Lock()

    def _get_or_create(self, cls, name: str, help_text: str, **kwargs) -> _Instrument:
        with self._lock:
            existing = self._metrics.get(name)
            if existing is not None:
                if not isinstance(existing, cls):
                    raise ValueError(
                        f"metric {name!r} already registered as {existing.kind}, "
                        f"not {cls.kind}"
                    )
                return existing
            instrument = cls(name, help_text, **kwargs)
            self._metrics[name] = instrument
            return instrument

    def counter(self, name: str, help_text: str = "") -> Counter:
        return self._get_or_create(Counter, name, help_text)

    def gauge(self, name: str, help_text: str = "") -> Gauge:
        return self._get_or_create(Gauge, name, help_text)

    def histogram(
        self,
        name: str,
        help_text: str = "",
        buckets: Sequence[float] = DEFAULT_SECONDS_BUCKETS,
    ) -> Histogram:
        return self._get_or_create(Histogram, name, help_text, buckets=buckets)

    def collect(self) -> Iterable[_Instrument]:
        """Instruments in registration order (the exporters' input)."""
        return list(self._metrics.values())

    def get(self, name: str) -> Optional[_Instrument]:
        return self._metrics.get(name)

    def snapshot(self, prefix: str = "") -> Dict[str, Dict[str, object]]:
        """A plain-dict view (the JSON exporter and ``batch --stats`` use it)."""
        payload: Dict[str, Dict[str, object]] = {}
        for metric in self.collect():
            if prefix and not metric.name.startswith(prefix):
                continue
            series: Dict[str, object] = {}
            for key in metric.label_sets():
                label_text = ",".join(f'{name}="{value}"' for name, value in key)
                if isinstance(metric, Histogram):
                    series[label_text] = metric.snapshot(**dict(key))
                else:
                    series[label_text] = metric._series[key]
            payload[metric.name] = {
                "type": metric.kind,
                "help": metric.help,
                "series": series,
            }
        return payload

    def reset(self) -> None:
        """Drop every instrument (tests only)."""
        with self._lock:
            self._metrics.clear()


# ----------------------------------------------------------------------
# The process-wide default registry
# ----------------------------------------------------------------------

_REGISTRY = MetricsRegistry()


def get_registry() -> MetricsRegistry:
    """The registry all built-in instrumentation reports to."""
    return _REGISTRY


def set_registry(registry: MetricsRegistry) -> MetricsRegistry:
    """Swap the process registry (tests); returns the previous one."""
    global _REGISTRY
    previous = _REGISTRY
    _REGISTRY = registry
    return previous


def counter(name: str, help_text: str = "") -> Counter:
    """Get-or-create a counter on the process registry."""
    return _REGISTRY.counter(name, help_text)


def gauge(name: str, help_text: str = "") -> Gauge:
    """Get-or-create a gauge on the process registry."""
    return _REGISTRY.gauge(name, help_text)


def histogram(
    name: str, help_text: str = "", buckets: Sequence[float] = DEFAULT_SECONDS_BUCKETS
) -> Histogram:
    """Get-or-create a histogram on the process registry."""
    return _REGISTRY.histogram(name, help_text, buckets=buckets)


def merge_histogram_snapshots(
    snapshots: Sequence[Dict[str, object]]
) -> Dict[str, object]:
    """Merge :meth:`Histogram.snapshot` dicts from separate runs.

    This is the payoff of the fixed log-scale buckets: snapshots taken by
    different processes (or CI runs) share bucket bounds by construction,
    so merging is element-wise addition of the cumulative counts plus the
    sums and counts.  Snapshots with *different* bucket bounds are
    rejected -- adaptive per-run bucketing would make distributions
    incomparable, which is exactly what the fixed-bucket invariant
    forbids.  Empty snapshots (``count == 0`` with no buckets, as
    ``snapshot()`` returns for a never-observed label set) merge as
    identity.
    """
    merged_buckets: Optional[Dict[str, int]] = None
    total = 0.0
    count = 0
    for snap in snapshots:
        buckets = dict(snap.get("buckets") or {})
        if not buckets and not snap.get("count"):
            continue
        if merged_buckets is None:
            merged_buckets = {bound: 0 for bound in buckets}
        elif list(buckets) != list(merged_buckets):
            raise ValueError(
                "cannot merge histogram snapshots with different bucket "
                f"bounds: {list(merged_buckets)} vs {list(buckets)}"
            )
        for bound, cumulative in buckets.items():
            merged_buckets[bound] += cumulative
        total += float(snap.get("sum", 0.0))
        count += int(snap.get("count", 0))
    if merged_buckets is None:
        return {"buckets": {}, "sum": 0.0, "count": 0}
    return {"buckets": merged_buckets, "sum": total, "count": count}
