"""Hierarchical query tracing.

A :class:`Tracer` records a tree of :class:`Span` objects: one span per
pipeline phase (grid mapping, lower-bounding, upper-bounding,
verification, label I/O), nested under one ``query`` span, itself nested
under a ``batch``/``request`` span when a
:class:`~repro.session.QuerySession` runs a workload.  Spans use the
monotonic ``time.perf_counter`` clock, carry free-form attributes, and
know their children, so the per-phase decomposition of Table II is read
directly off the trace -- the engines derive ``MIOResult.phases`` from
the span tree whenever a real tracer is attached.

Tracing is opt-in.  The default is the module-level :data:`NULL_TRACER`,
whose spans are a single shared no-op object: an instrumentation point in
disabled mode costs one attribute check plus an empty context-manager
enter/exit, which keeps the hot paths within noise of the
pre-instrumentation pipeline (the overhead guard in
``benchmarks/test_obs_overhead.py`` enforces this).

Simulated-parallel phases report *makespans*, not wall-clock, so a span's
measured duration can be overridden with :meth:`Span.set_duration`; the
parallel engine uses this to keep the trace consistent with the
``phases`` it reports.  Completed work whose duration is already known
(e.g. a baseline's phase breakdown) is attached with
:meth:`Tracer.record`.
"""

from __future__ import annotations

import time
from typing import Any, Callable, Dict, Iterator, List, Optional

Clock = Callable[[], float]

#: Span names the engines treat as pipeline phases: when a real tracer is
#: attached, ``MIOResult.phases`` is the per-name sum of these spans'
#: durations (see :func:`phase_durations`).
PHASE_SPAN_NAMES = frozenset(
    (
        "grid_mapping",
        "lower_bounding",
        "upper_bounding",
        "verification",
        "label_input",
        "label_output",
        "shard_route",
        "shard_execute",
        "shard_merge",
    )
)


class Span:
    """One timed operation in a trace tree."""

    __slots__ = ("name", "attributes", "children", "_tracer", "_start", "_end", "_override")

    def __init__(self, name: str, tracer: "Tracer", attributes: Optional[Dict[str, Any]] = None) -> None:
        self.name = name
        self.attributes: Dict[str, Any] = dict(attributes) if attributes else {}
        self.children: List["Span"] = []
        self._tracer = tracer
        self._start: Optional[float] = None
        self._end: Optional[float] = None
        self._override: Optional[float] = None

    # -- context-manager protocol --------------------------------------

    def __enter__(self) -> "Span":
        self._tracer._push(self)
        self._start = self._tracer.clock()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self._end = self._tracer.clock()
        self._tracer._pop(self)
        if exc_type is not None:
            self.attributes.setdefault("error", exc_type.__name__)
        return False

    # -- recording ------------------------------------------------------

    def set_attribute(self, key: str, value: Any) -> None:
        self.attributes[key] = value

    def set_attributes(self, **attributes: Any) -> None:
        self.attributes.update(attributes)

    def set_duration(self, seconds: float) -> None:
        """Override the measured duration (simulated-parallel makespans)."""
        self._override = float(seconds)

    def rename(self, name: str) -> None:
        """Reclassify the span (e.g. a missed ``label_input`` lookup)."""
        self.name = name

    # -- reading --------------------------------------------------------

    @property
    def started(self) -> Optional[float]:
        return self._start

    @property
    def duration(self) -> float:
        """Seconds: the override if set, else the measured wall-clock."""
        if self._override is not None:
            return self._override
        if self._start is None or self._end is None:
            return 0.0
        return self._end - self._start

    @property
    def finished(self) -> bool:
        return self._end is not None or self._override is not None

    def walk(self) -> Iterator["Span"]:
        """This span and every descendant, depth-first."""
        yield self
        for child in self.children:
            yield from child.walk()

    def to_dict(self) -> Dict[str, Any]:
        """JSON-friendly nested form (the ``--trace-out`` format)."""
        payload: Dict[str, Any] = {
            "name": self.name,
            "duration_seconds": self.duration,
        }
        if self.attributes:
            payload["attributes"] = dict(self.attributes)
        if self.children:
            payload["children"] = [child.to_dict() for child in self.children]
        return payload

    def __repr__(self) -> str:
        return f"Span({self.name!r}, duration={self.duration:.6f}s, children={len(self.children)})"


class Tracer:
    """Records a span tree; one tracer serves one query or one batch.

    The active-span stack makes nesting automatic: a span entered while
    another is open becomes its child, so the engines, the session, and
    the CLI can all open spans without threading parents around.
    """

    enabled = True

    def __init__(self, clock: Clock = time.perf_counter) -> None:
        self.clock = clock
        self.roots: List[Span] = []
        self._stack: List[Span] = []

    def span(self, name: str, **attributes: Any) -> Span:
        """A new span to use as a context manager (child of the active span)."""
        return Span(name, self, attributes)

    def record(self, name: str, seconds: float, **attributes: Any) -> Span:
        """Attach an already-completed operation of known duration."""
        span = Span(name, self, attributes)
        span.set_duration(seconds)
        self._attach(span)
        return span

    @property
    def current(self) -> Optional[Span]:
        """The innermost open span, if any."""
        return self._stack[-1] if self._stack else None

    @property
    def root(self) -> Optional[Span]:
        """The most recent top-level span (what the CLI renders)."""
        return self.roots[-1] if self.roots else None

    # -- internal -------------------------------------------------------

    def _attach(self, span: Span) -> None:
        if self._stack:
            self._stack[-1].children.append(span)
        else:
            self.roots.append(span)

    def _push(self, span: Span) -> None:
        self._attach(span)
        self._stack.append(span)

    def _pop(self, span: Span) -> None:
        # Tolerate exceptions unwinding several spans at once: pop through.
        while self._stack:
            if self._stack.pop() is span:
                break


class _NullSpan:
    """Shared no-op span: every disabled instrumentation point reuses it."""

    __slots__ = ()
    name = "null"
    attributes: Dict[str, Any] = {}
    children: List[Span] = []
    duration = 0.0
    finished = False

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False

    def set_attribute(self, key: str, value: Any) -> None:
        pass

    def set_attributes(self, **attributes: Any) -> None:
        pass

    def set_duration(self, seconds: float) -> None:
        pass

    def rename(self, name: str) -> None:
        pass

    def to_dict(self) -> Dict[str, Any]:
        return {"name": "null", "duration_seconds": 0.0}


_NULL_SPAN = _NullSpan()


class NullTracer:
    """The disabled tracer: every span is the shared no-op instance."""

    enabled = False
    roots: List[Span] = []
    current = None
    root = None

    def span(self, name: str, **attributes: Any) -> _NullSpan:
        return _NULL_SPAN

    def record(self, name: str, seconds: float, **attributes: Any) -> _NullSpan:
        return _NULL_SPAN


NULL_TRACER = NullTracer()


def ensure_tracer(tracer) -> "Tracer":
    """Map ``None`` to the shared no-op tracer (the one branch per call site)."""
    return tracer if tracer is not None else NULL_TRACER


def phase_durations(root: Span) -> Dict[str, float]:
    """``MIOResult.phases`` as read off a query span's direct children.

    Multiple spans of one phase name (e.g. a phase that runs twice)
    accumulate, mirroring ``PhaseStats.add_time``.
    """
    phases: Dict[str, float] = {}
    for child in root.children:
        if child.name in PHASE_SPAN_NAMES:
            phases[child.name] = phases.get(child.name, 0.0) + child.duration
    return phases
