"""Structured JSON logging with query/batch correlation ids.

One log record per line, each a JSON object with a ``ts`` (unix seconds),
an ``event`` name, and free-form fields.  The session attaches
correlation ids -- a ``batch_id`` shared by every request of one
``query_many`` call and a per-request ``query_id`` -- so a log pipeline
can join per-request records back to their batch, and both ids also
appear as span attributes in the trace for cross-referencing.

Logging is disabled by default (:data:`NULL_LOGGER`): the enabled check
is one attribute read, so instrumented code logs unconditionally via
``get_logger().log(...)`` guarded by ``logger.enabled`` where the field
construction itself would cost anything.

Correlation ids come from a process-wide monotonic counter rather than
UUIDs: deterministic under test, unique within a process, and trivially
sortable by creation order.
"""

from __future__ import annotations

import itertools
import json
import time
from typing import IO, Optional

_ids = itertools.count(1)


def new_id(prefix: str) -> str:
    """A process-unique correlation id, e.g. ``batch-00000003``."""
    return f"{prefix}-{next(_ids):08d}"


class JsonLogger:
    """Writes one JSON object per line to a stream."""

    enabled = True

    def __init__(self, stream: IO[str], clock=time.time) -> None:
        self.stream = stream
        self.clock = clock

    def log(self, event: str, **fields: object) -> None:
        record = {"ts": round(self.clock(), 6), "event": event}
        record.update(fields)
        self.stream.write(json.dumps(record, default=str) + "\n")


class NullLogger:
    """The disabled logger."""

    enabled = False

    def log(self, event: str, **fields: object) -> None:
        pass


NULL_LOGGER = NullLogger()
_active = NULL_LOGGER


def get_logger():
    """The process logger (the null logger unless configured)."""
    return _active


def configure(stream: Optional[IO[str]]) -> None:
    """Install a JSON logger on ``stream`` (or disable with ``None``)."""
    global _active
    _active = JsonLogger(stream) if stream is not None else NULL_LOGGER
