"""Canonical registry feeds for query results and cache tiers.

Every engine reports each finished query through :func:`observe_query`,
and every cross-query cache tier reports lookups/invalidations through
:func:`observe_cache` / :func:`observe_cache_invalidation`, so the metric
*names* live in exactly one module and stay consistent across the serial
engine, the parallel engine, the temporal engine, and the session (see
the catalog in ``docs/observability.md`` and the stability policy in
DESIGN.md).

``result`` is duck-typed (anything with ``algorithm`` / ``phases`` /
``counters`` / ``total_time`` / ``exact`` / ``memory_bytes``) so this
module depends only on :mod:`repro.obs.metrics` and never imports the
core layers it observes.
"""

from __future__ import annotations

from repro.obs import metrics

#: The three cross-query cache tiers (label order = report order).
CACHE_TIERS = ("labels", "grid_keys", "lower_bounds")


def observe_query(result, engine: str) -> None:
    """Fold one finished query into the process registry."""
    metrics.counter(
        "repro_queries_total", "MIO queries answered"
    ).inc(engine=engine, algorithm=result.algorithm)
    metrics.histogram(
        "repro_query_seconds", "End-to-end query latency (sum of phase times)"
    ).observe(result.total_time, engine=engine)
    phase_seconds = metrics.histogram(
        "repro_phase_seconds", "Per-phase latency (Table II decomposition)"
    )
    for phase, seconds in result.phases.items():
        phase_seconds.observe(seconds, engine=engine, phase=phase)
    counters = result.counters
    generated = counters.get("candidates_total", counters.get("candidates"))
    settled = counters.get("candidates_settled", counters.get("verified_objects"))
    if generated is not None:
        metrics.counter(
            "repro_candidates_total",
            "Verification candidates by outcome (generated vs settled)",
        ).inc(generated, outcome="generated")
    if settled is not None:
        metrics.counter(
            "repro_candidates_total",
            "Verification candidates by outcome (generated vs settled)",
        ).inc(settled, outcome="settled")
    notes = getattr(result, "notes", None) or {}
    for op, note in (
        ("verification", "verification_path"),
        ("lower_bounding", "lower_bound_path"),
    ):
        path = notes.get(note)
        if path:
            # Kernel path dispatch (batched vs per-candidate verification,
            # dense vs sparse lower bounding, ...) observable without
            # tracing: which implementation served the traffic.
            metrics.counter(
                "repro_kernel_path_total",
                "Kernel implementation paths taken, by phase op",
            ).inc(op=op, path=path)
    if not result.exact:
        metrics.counter(
            "repro_anytime_results_total",
            "Queries degraded to a verified lower-bound (anytime) answer",
        ).inc()
    if result.memory_bytes:
        metrics.gauge(
            "repro_index_memory_bytes", "Index size of the most recent query"
        ).set(result.memory_bytes, engine=engine)


def register_cache_metrics() -> None:
    """Materialize every tier's hit/miss series at zero.

    Sessions call this on construction so ``batch --stats`` reports all
    three tiers even when a workload never exercises one of them.
    """
    requests = metrics.counter(
        "repro_cache_requests_total", "Cross-query cache lookups by tier and outcome"
    )
    for tier in CACHE_TIERS:
        for outcome in ("hit", "miss"):
            requests.inc(0.0, tier=tier, outcome=outcome)


def observe_cache(tier: str, hit: bool) -> None:
    """One cache lookup on a tier (labels / grid_keys / lower_bounds)."""
    metrics.counter(
        "repro_cache_requests_total", "Cross-query cache lookups by tier and outcome"
    ).inc(tier=tier, outcome="hit" if hit else "miss")


def cache_request_counter(tier: str, hit: bool):
    """A bound counter for hot per-object cache accounting."""
    return metrics.counter(
        "repro_cache_requests_total", "Cross-query cache lookups by tier and outcome"
    ).labels(tier=tier, outcome="hit" if hit else "miss")


def observe_cache_invalidation(tier: str) -> None:
    """A cache tier dropped its entries (mutation or explicit clear)."""
    metrics.counter(
        "repro_cache_invalidations_total", "Cache tier invalidations"
    ).inc(tier=tier)
