"""Observability: query tracing, metrics registry, exporters, logging.

Three cooperating pieces (see ``docs/observability.md``):

* :mod:`repro.obs.trace` -- a hierarchical span tracer the engines, the
  session, and the bench harness thread through query execution; the
  per-phase decomposition of Table II is read directly off the trace.
* :mod:`repro.obs.metrics` -- a process-wide registry of counters,
  gauges, and fixed-log-bucket histograms, fed by the engines, the three
  cross-query cache tiers, the resilience/fault layers, and
  :class:`~repro.dynamic.DynamicMIO`.
* :mod:`repro.obs.export` -- Prometheus text-format and JSON exporters
  (plus a grammar validator used by CI), and JSON trace export.

All of it is opt-in: without a tracer the engines run no-op spans, and
the registry only costs an increment at each event site.
"""

from repro.obs.export import (
    metrics_json,
    prometheus_text,
    trace_json,
    validate_prometheus_text,
)
from repro.obs.explain import funnel_stages, render_funnel, render_span_tree
from repro.obs.logging import JsonLogger, configure, get_logger, new_id
from repro.obs.metrics import (
    DEFAULT_SECONDS_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    get_registry,
    merge_histogram_snapshots,
    set_registry,
)
from repro.obs.telemetry import (
    ProfileSink,
    RateSampler,
    SlowQueryLog,
    Telemetry,
    bind_trace_id,
    configure_telemetry,
    current_trace_id,
    get_telemetry,
    new_trace_id,
    set_telemetry,
)
from repro.obs.trace import (
    NULL_TRACER,
    NullTracer,
    Span,
    Tracer,
    ensure_tracer,
    phase_durations,
)

__all__ = [
    "Counter",
    "DEFAULT_SECONDS_BUCKETS",
    "Gauge",
    "Histogram",
    "JsonLogger",
    "MetricsRegistry",
    "NULL_TRACER",
    "NullTracer",
    "ProfileSink",
    "RateSampler",
    "SlowQueryLog",
    "Span",
    "Telemetry",
    "Tracer",
    "bind_trace_id",
    "configure",
    "configure_telemetry",
    "current_trace_id",
    "ensure_tracer",
    "funnel_stages",
    "get_logger",
    "get_registry",
    "get_telemetry",
    "merge_histogram_snapshots",
    "metrics_json",
    "new_id",
    "new_trace_id",
    "phase_durations",
    "prometheus_text",
    "render_funnel",
    "render_span_tree",
    "set_registry",
    "set_telemetry",
    "trace_json",
    "validate_prometheus_text",
]
