"""Exporters: Prometheus text format, JSON metrics, JSON traces.

:func:`prometheus_text` renders a :class:`~repro.obs.metrics.MetricsRegistry`
in the Prometheus text exposition format (version 0.0.4): ``# HELP`` /
``# TYPE`` headers, escaped label values, histograms as cumulative
``_bucket{le=...}`` series plus ``_sum``/``_count``.
:func:`validate_prometheus_text` is a standalone grammar checker the CI
smoke job (and the exporter tests) run against real output, so a format
regression fails loudly instead of silently breaking a scrape.

:func:`metrics_json` and :func:`trace_json` are the machine-readable
counterparts the CLI writes for ``--metrics-out foo.json`` and
``--trace-out``.
"""

from __future__ import annotations

import json
import re
from typing import Dict, List, Optional, Sequence

from repro.obs.metrics import Histogram, MetricsRegistry, get_registry
from repro.obs.trace import Span

_METRIC_NAME = r"[a-zA-Z_:][a-zA-Z0-9_:]*"
_LABEL_NAME = r"[a-zA-Z_][a-zA-Z0-9_]*"
# One label: name="value" with \\, \" and \n escapes allowed in the value.
_LABEL = rf'{_LABEL_NAME}="(?:[^"\\\n]|\\\\|\\"|\\n)*"'
_SAMPLE_RE = re.compile(
    rf"^({_METRIC_NAME})(\{{{_LABEL}(?:,{_LABEL})*\}})? "
    r"(?:[-+]?(?:\d+(?:\.\d+)?(?:[eE][-+]?\d+)?|\.\d+(?:[eE][-+]?\d+)?)|[-+]?Inf|NaN)$"
)
_HELP_RE = re.compile(rf"^# HELP ({_METRIC_NAME}) .*$")
_TYPE_RE = re.compile(
    rf"^# TYPE ({_METRIC_NAME}) (counter|gauge|histogram|summary|untyped)$"
)


def _escape_label_value(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _escape_help(text: str) -> str:
    return text.replace("\\", "\\\\").replace("\n", "\\n")


def _format_value(value: float) -> str:
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return repr(float(value))


def _format_labels(pairs: Sequence) -> str:
    if not pairs:
        return ""
    body = ",".join(f'{name}="{_escape_label_value(value)}"' for name, value in pairs)
    return "{" + body + "}"


def prometheus_text(registry: Optional[MetricsRegistry] = None) -> str:
    """The registry in Prometheus text exposition format (one scrape body)."""
    registry = registry if registry is not None else get_registry()
    lines: List[str] = []
    for metric in registry.collect():
        help_text = metric.help or metric.name
        lines.append(f"# HELP {metric.name} {_escape_help(help_text)}")
        lines.append(f"# TYPE {metric.name} {metric.kind}")
        if isinstance(metric, Histogram):
            for key in metric.label_sets():
                base = list(key)
                series = metric._series[key]
                running = 0
                for bound, bucket_count in zip(metric.buckets, series.bucket_counts):
                    running += bucket_count
                    label_text = _format_labels(base + [("le", _format_value(bound))])
                    lines.append(f"{metric.name}_bucket{label_text} {running}")
                label_text = _format_labels(base + [("le", "+Inf")])
                lines.append(f"{metric.name}_bucket{label_text} {series.count}")
                lines.append(f"{metric.name}_sum{_format_labels(base)} {_format_value(series.total)}")
                lines.append(f"{metric.name}_count{_format_labels(base)} {series.count}")
        else:
            for key in metric.label_sets():
                value = metric._series[key]
                lines.append(f"{metric.name}{_format_labels(key)} {_format_value(value)}")
    return "\n".join(lines) + "\n" if lines else ""


def validate_prometheus_text(text: str) -> None:
    """Check ``text`` against the Prometheus text-format grammar.

    Raises ``ValueError`` naming the first offending line.  Checks:
    comment lines are well-formed ``HELP``/``TYPE`` headers, at most one
    of each per metric, sample lines parse (name, optional label set,
    float value), samples follow their ``TYPE``, and every histogram
    label set ends with a ``+Inf`` bucket and matching ``_sum``/``_count``.
    """
    helped: set = set()
    typed: Dict[str, str] = {}
    histogram_buckets: Dict[str, List[str]] = {}
    histogram_counts: Dict[str, int] = {}
    for number, line in enumerate(text.splitlines(), start=1):
        if not line:
            continue
        if line.startswith("#"):
            help_match = _HELP_RE.match(line)
            type_match = _TYPE_RE.match(line)
            if help_match:
                name = help_match.group(1)
                if name in helped:
                    raise ValueError(f"line {number}: duplicate HELP for {name}")
                helped.add(name)
            elif type_match:
                name = type_match.group(1)
                if name in typed:
                    raise ValueError(f"line {number}: duplicate TYPE for {name}")
                typed[name] = type_match.group(2)
            else:
                raise ValueError(f"line {number}: malformed comment: {line!r}")
            continue
        match = _SAMPLE_RE.match(line)
        if not match:
            raise ValueError(f"line {number}: malformed sample: {line!r}")
        sample_name = match.group(1)
        base = _base_metric_name(sample_name, typed)
        if base is None:
            raise ValueError(f"line {number}: sample {sample_name!r} has no TYPE header")
        if typed[base] == "histogram":
            if sample_name == f"{base}_bucket":
                labels = match.group(2) or ""
                if 'le="' not in labels:
                    raise ValueError(f"line {number}: histogram bucket without le label")
                histogram_buckets.setdefault(base, []).append(labels)
            elif sample_name in (f"{base}_sum", f"{base}_count"):
                histogram_counts[base] = histogram_counts.get(base, 0) + 1
            else:
                raise ValueError(
                    f"line {number}: {sample_name!r} is not a valid histogram sample"
                )
    for name, buckets in histogram_buckets.items():
        if not any('le="+Inf"' in labels for labels in buckets):
            raise ValueError(f"histogram {name} has no +Inf bucket")
        if histogram_counts.get(name, 0) < 2:
            raise ValueError(f"histogram {name} is missing _sum/_count samples")


def _base_metric_name(sample_name: str, typed: Dict[str, str]) -> Optional[str]:
    if sample_name in typed:
        return sample_name
    for suffix in ("_bucket", "_sum", "_count"):
        if sample_name.endswith(suffix):
            candidate = sample_name[: -len(suffix)]
            if typed.get(candidate) == "histogram":
                return candidate
    return None


def metrics_json(registry: Optional[MetricsRegistry] = None, prefix: str = "") -> str:
    """The registry as an indented JSON document."""
    registry = registry if registry is not None else get_registry()
    return json.dumps(registry.snapshot(prefix=prefix), indent=2, sort_keys=True) + "\n"


def trace_json(roots: Sequence[Span]) -> str:
    """One or more span trees as an indented JSON document."""
    return json.dumps([root.to_dict() for root in roots], indent=2) + "\n"
