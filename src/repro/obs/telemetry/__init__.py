"""Always-on query telemetry: sampled tracing, profiles, slow-query log.

The subpackage layers four pieces on the PR-3 tracer and metrics
registry, wired together by the :class:`~repro.obs.telemetry.hub.Telemetry`
hub that the pipeline, session, CLI, and query service all report to:

* :mod:`.sampler` -- deterministic rate-based head sampling so full span
  tracing stays enabled in production within the overhead budget;
* :mod:`.profile` -- the per-query profile schema, the bounded
  in-process ring, and the rotating JSONL sink;
* :mod:`.slowlog` -- tail capture of slow and degraded queries with real
  or synthesized span trees;
* :mod:`.report` -- offline aggregation (``repro report``) and
  bench-artifact regression floors.

Like the rest of :mod:`repro.obs`, telemetry is freestanding: it never
imports the query machinery it observes (results are duck-typed), so
the layering lint holds and the observer can never recurse into the
observed.
"""

from repro.obs.telemetry.hub import (
    Telemetry,
    bind_trace_id,
    configure_telemetry,
    current_trace_id,
    get_telemetry,
    new_trace_id,
    set_telemetry,
)
from repro.obs.telemetry.profile import ProfileSink, ProfileStore, build_profile
from repro.obs.telemetry.sampler import RateSampler
from repro.obs.telemetry.slowlog import SlowQueryLog, synthesize_span_tree
from repro.obs.telemetry.report import (
    check_bench_artifact,
    check_bench_artifacts,
    compare_to_kernel_artifact,
    load_profiles,
    percentile,
    render_summary,
    summarize,
)

__all__ = [
    "Telemetry",
    "bind_trace_id",
    "configure_telemetry",
    "current_trace_id",
    "get_telemetry",
    "new_trace_id",
    "set_telemetry",
    "ProfileSink",
    "ProfileStore",
    "build_profile",
    "RateSampler",
    "SlowQueryLog",
    "synthesize_span_tree",
    "check_bench_artifact",
    "check_bench_artifacts",
    "compare_to_kernel_artifact",
    "load_profiles",
    "percentile",
    "render_summary",
    "summarize",
]
