"""Probabilistic span sampling for always-on tracing.

Full span tracing is cheap but not free: opening a real
:class:`~repro.obs.trace.Span` per phase costs a handful of attribute
writes and two clock reads, which the disabled-tracer overhead guard
deliberately excludes.  To keep tracing *enabled in production* inside
the same <=5% budget, the telemetry hub traces only a sampled fraction
of queries -- every query still produces a profile (phase timings come
from the ``PhaseStats`` timers that always run), but only sampled
queries carry a full span tree.

:class:`RateSampler` implements *systematic* sampling: an error
accumulator adds ``rate`` per decision and fires whenever it crosses 1,
so a rate of ``0.01`` samples exactly every 100th query -- no RNG, no
burst variance, deterministic under test, and the long-run sampled
fraction is exactly the configured rate.  Head-based sampling cannot
know a query will be slow; the *always-sample-slow* side of the
contract therefore lives in the capture path
(:meth:`~repro.obs.telemetry.hub.Telemetry.observe_result` routes every
slow or degraded query into the slow-query log, synthesizing a span
tree from the phase breakdown when the query ran unsampled).
"""

from __future__ import annotations

import threading


class RateSampler:
    """Deterministic systematic sampler: fire every ``1/rate`` decisions.

    ``rate`` is clamped to ``[0, 1]`` at the type level: 0 never samples
    (one attribute read per decision, no lock), 1 always samples.  The
    accumulator starts full so the *first* query at a nonzero rate is
    sampled -- a service that just turned sampling on sees a trace
    immediately instead of after the first ``1/rate`` queries.
    """

    def __init__(self, rate: float = 0.0) -> None:
        self._lock = threading.Lock()
        self.decisions = 0
        self.sampled = 0
        self.set_rate(rate)

    @property
    def rate(self) -> float:
        return self._rate

    def set_rate(self, rate: float) -> None:
        rate = float(rate)
        if not 0.0 <= rate <= 1.0:
            raise ValueError(f"sample rate must lie in [0, 1], got {rate!r}")
        with self._lock:
            self._rate = rate
            # Start primed: the first decision after (re)configuration fires.
            self._accumulator = 1.0 if rate > 0.0 else 0.0

    def should_sample(self) -> bool:
        """One sampling decision (thread-safe, deterministic)."""
        if self._rate <= 0.0:
            self.decisions += 1  # benign race: the tally is advisory
            return False
        with self._lock:
            self.decisions += 1
            self._accumulator += self._rate
            if self._accumulator >= 1.0:
                self._accumulator -= 1.0
                self.sampled += 1
                return True
            return False

    def snapshot(self) -> dict:
        return {
            "rate": self._rate,
            "decisions": self.decisions,
            "sampled": self.sampled,
        }
