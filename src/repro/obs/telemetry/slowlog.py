"""The slow-query log: full context for the queries that hurt.

Aggregates (histograms, percentile summaries) say *that* a tail exists;
the slow-query log says *which queries* are in it and where their time
went.  Every query whose end-to-end time crosses the latency threshold,
and every query that degraded (an anytime answer, a backend downgrade,
a fallback-path response -- anything carrying a ``degraded_*`` note or
``exact=False``), is captured with its complete profile plus a span
tree:

* a **sampled** query contributes its real span tree (the telemetry
  sampler's head-based decision happened to cover it);
* an **unsampled** slow query cannot be traced retroactively, so the
  log synthesizes a one-level span tree from the phase breakdown the
  ``PhaseStats`` timers always record -- marked
  ``"synthesized": true`` so dashboards can tell measured nesting from
  reconstruction.

This is the "always-sample-slow" half of the sampling contract: the
head sampler keeps steady-state overhead inside the budget, while the
tail capture here guarantees no slow or degraded query ever vanishes
unexplained.  The log is a bounded ring (newest ``capacity`` entries)
served by ``/slowlogz`` on the query service.
"""

from __future__ import annotations

import threading
from collections import deque
from typing import Dict, List, Optional


def synthesize_span_tree(profile: Dict[str, object]) -> Dict[str, object]:
    """A phase-level span tree reconstructed from a profile's timings."""
    phases = profile.get("phases") or {}
    return {
        "name": "query",
        "duration_seconds": profile.get("seconds", 0.0),
        "attributes": {
            "synthesized": True,
            "engine": profile.get("engine", ""),
            "trace_id": profile.get("trace_id", ""),
        },
        "children": [
            {"name": phase, "duration_seconds": seconds}
            for phase, seconds in phases.items()
        ],
    }


class SlowQueryLog:
    """Bounded ring of slow/degraded query captures (thread-safe)."""

    def __init__(self, capacity: int = 64, threshold_ms: float = 250.0) -> None:
        if capacity < 1:
            raise ValueError("slow-query log capacity must be at least 1")
        if threshold_ms < 0:
            raise ValueError("threshold_ms must be >= 0")
        self.capacity = capacity
        self.threshold_ms = float(threshold_ms)
        self._entries: "deque[Dict[str, object]]" = deque(maxlen=capacity)
        self._lock = threading.Lock()
        self.captured = 0

    def classify(self, profile: Dict[str, object]) -> Optional[str]:
        """The capture cause, or None when the query is unremarkable."""
        causes = []
        if float(profile.get("seconds", 0.0)) * 1000.0 >= self.threshold_ms:
            causes.append("slow")
        notes = profile.get("notes") or {}
        if not profile.get("exact", True) or any(
            key.startswith("degraded_") for key in notes
        ):
            causes.append("degraded")
        return "+".join(causes) if causes else None

    def consider(
        self,
        profile: Dict[str, object],
        span_tree: Optional[Dict[str, object]] = None,
    ) -> bool:
        """Capture the query if it is slow or degraded; True if captured."""
        cause = self.classify(profile)
        if cause is None:
            return False
        entry = dict(profile)
        entry["cause"] = cause
        entry["span_tree"] = (
            span_tree if span_tree is not None else synthesize_span_tree(profile)
        )
        with self._lock:
            self._entries.append(entry)
            self.captured += 1
        return True

    def snapshot(self) -> List[Dict[str, object]]:
        """Retained captures, oldest first."""
        with self._lock:
            return list(self._entries)

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()

    def __len__(self) -> int:
        return len(self._entries)
