"""Aggregation and regression detection over telemetry artifacts.

Two consumers share this module:

* ``repro report <profiles.jsonl>`` folds a profile log (the
  :class:`~repro.obs.telemetry.profile.ProfileSink` output) into
  per-engine, per-phase percentile summaries -- the offline view of the
  Table II decomposition plus the pruning funnel and cache hit ratios.
* ``repro report --check-bench`` re-checks the recorded ``BENCH_*.json``
  artifacts against the repo's perf floors with a noise margin,
  exiting nonzero on regression -- the same contract as the
  ``benchmarks/test_kernel_phase_floor.py`` guard, runnable in CI
  without pytest and against freshly regenerated artifacts.

Percentiles use the nearest-rank method (``ceil(q * n)``-th smallest),
so a summary over a given log is exactly reproducible -- no
interpolation, no floating-point order sensitivity.
"""

from __future__ import annotations

import json
import math
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

#: Run-to-run jitter allowance applied to every floor when re-checking
#: artifacts (mirrors benchmarks/test_kernel_phase_floor.py).
DEFAULT_MARGIN = 0.8

#: Floors enforced per artifact schema; see check_* functions below.
KERNEL_PHASE_FLOORS = {"verification": 1.0, "lower_bounding": 1.0}
KERNEL_SAMPLED_E2E_FLOOR = 5.0
BATCH_REUSE_FLOOR = 1.2
#: Overloaded p99 may exceed the deadline (queueing), but not by more
#: than this multiple -- beyond it shedding is no longer bounding work.
SERVICE_P99_DEADLINE_MULTIPLE = 1.5
#: Real shard-parallel speedup floor, enforced only when the recording
#: host had enough cpus for the floor to be physically reachable.
SHARD_SCALING_FLOOR = 2.0
SHARD_SCALING_MIN_CPUS = 4
#: Fallback bound on the adaptive planner's paired ratios when the
#: artifact fails to record its own (mirrors
#: benchmarks/test_planner_overhead.py).
PLANNER_RATIO_BOUND = 1.05

#: Every artifact must stamp how it was produced (see
#: :func:`repro.bench.harness.bench_provenance`) so floors compare like
#: with like -- a parallel speedup recorded on a one-core container is
#: noise, not a regression signal.
PROVENANCE_KEYS = ("cpu_count", "cores", "parallel_mode", "shards")

PERCENTILES = (0.50, 0.90, 0.99)


# ----------------------------------------------------------------------
# Profile-log aggregation
# ----------------------------------------------------------------------


def load_profiles(path: str) -> Tuple[List[Dict[str, object]], int]:
    """Read a JSONL profile log; returns ``(profiles, skipped_lines)``.

    Malformed lines (a crashed writer, a truncated rotation boundary)
    are counted and skipped rather than failing the whole report.
    """
    profiles: List[Dict[str, object]] = []
    skipped = 0
    with open(path, "r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except ValueError:
                skipped += 1
                continue
            if isinstance(record, dict) and "seconds" in record:
                profiles.append(record)
            else:
                skipped += 1
    return profiles, skipped


def percentile(values: Sequence[float], q: float) -> float:
    """Nearest-rank percentile of ``values`` (q in (0, 1])."""
    if not values:
        raise ValueError("percentile of empty sequence")
    ordered = sorted(values)
    rank = max(1, math.ceil(q * len(ordered)))
    return ordered[rank - 1]


def _series_summary(values: Sequence[float]) -> Dict[str, float]:
    return {
        "count": len(values),
        "p50": percentile(values, 0.50),
        "p90": percentile(values, 0.90),
        "p99": percentile(values, 0.99),
        "max": max(values),
        "mean": sum(values) / len(values),
    }


def summarize(profiles: Iterable[Dict[str, object]]) -> Dict[str, object]:
    """Per-engine percentile summary of a profile collection.

    For each engine: end-to-end and per-phase second percentiles, the
    pruning funnel (candidates settled / total), cache hit ratios
    (lower-bound cache, session label cache), kernel path dispatch
    tallies, and degraded/sampled counts.
    """
    by_engine: Dict[str, List[Dict[str, object]]] = {}
    for profile in profiles:
        by_engine.setdefault(str(profile.get("engine", "?")), []).append(profile)

    engines: Dict[str, object] = {}
    for engine, group in sorted(by_engine.items()):
        seconds = [float(p.get("seconds", 0.0)) for p in group]
        phase_values: Dict[str, List[float]] = {}
        paths: Dict[str, Dict[str, int]] = {}
        funnel_total = funnel_settled = 0
        cache_hits = {"lower_cache_hit": 0, "session_label_hit": 0}
        degraded = sampled = 0
        for p in group:
            for phase, value in (p.get("phases") or {}).items():
                phase_values.setdefault(str(phase), []).append(float(value))
            notes = p.get("notes") or {}
            for op in ("verification_path", "lower_bound_path"):
                path = notes.get(op)
                if path is not None:
                    paths.setdefault(op, {})
                    paths[op][str(path)] = paths[op].get(str(path), 0) + 1
            counters = p.get("counters") or {}
            funnel_total += int(counters.get("candidates_total", 0))
            funnel_settled += int(counters.get("candidates_settled", 0))
            for key in cache_hits:
                cache_hits[key] += int(counters.get(key, 0))
            if not p.get("exact", True):
                degraded += 1
            if p.get("sampled"):
                sampled += 1
        engines[engine] = {
            "queries": len(group),
            "degraded": degraded,
            "sampled": sampled,
            "seconds": _series_summary(seconds),
            "phases": {
                phase: _series_summary(values)
                for phase, values in sorted(phase_values.items())
            },
            "funnel": {
                "candidates_total": funnel_total,
                "candidates_settled": funnel_settled,
                "settle_ratio": (
                    round(funnel_settled / funnel_total, 4) if funnel_total else None
                ),
            },
            "cache": {
                "lower_cache_hit_ratio": round(
                    cache_hits["lower_cache_hit"] / len(group), 4
                ),
                "session_label_hit_ratio": round(
                    cache_hits["session_label_hit"] / len(group), 4
                ),
            },
            "kernel_paths": paths,
        }
    return {"profiles": sum(len(g) for g in by_engine.values()), "engines": engines}


def render_summary(summary: Dict[str, object], skipped: int = 0) -> str:
    """Human-readable text for a :func:`summarize` result."""
    lines = [f"profiles: {summary['profiles']}" + (f" (skipped {skipped} malformed lines)" if skipped else "")]
    for engine, stats in summary["engines"].items():
        lines.append(
            f"\nengine {engine}: {stats['queries']} queries, "
            f"{stats['degraded']} degraded, {stats['sampled']} sampled"
        )
        e2e = stats["seconds"]
        lines.append(
            "  end-to-end  "
            f"p50={e2e['p50'] * 1000:.3f}ms p90={e2e['p90'] * 1000:.3f}ms "
            f"p99={e2e['p99'] * 1000:.3f}ms max={e2e['max'] * 1000:.3f}ms"
        )
        for phase, ps in stats["phases"].items():
            lines.append(
                f"  {phase:<16}"
                f"p50={ps['p50'] * 1000:.3f}ms p90={ps['p90'] * 1000:.3f}ms "
                f"p99={ps['p99'] * 1000:.3f}ms"
            )
        funnel = stats["funnel"]
        if funnel["candidates_total"]:
            lines.append(
                f"  funnel: {funnel['candidates_settled']}/"
                f"{funnel['candidates_total']} candidates settled "
                f"(ratio {funnel['settle_ratio']})"
            )
        cache = stats["cache"]
        lines.append(
            f"  cache: lower-bound hit {cache['lower_cache_hit_ratio']}, "
            f"label hit {cache['session_label_hit_ratio']}"
        )
        for op, tally in stats["kernel_paths"].items():
            pairs = ", ".join(f"{path}={count}" for path, count in sorted(tally.items()))
            lines.append(f"  {op}: {pairs}")
    return "\n".join(lines)


# ----------------------------------------------------------------------
# Bench-artifact regression checks
# ----------------------------------------------------------------------


def _check_kernel_speedup(data: Dict[str, object], margin: float) -> List[str]:
    failures = []
    workloads = data.get("workloads") or []
    if not workloads:
        return ["kernel_speedup: artifact records no workloads"]
    for point in workloads:
        for phase, floor in KERNEL_PHASE_FLOORS.items():
            ratio = (point.get("phase_speedups") or {}).get(phase)
            if ratio is None:
                failures.append(
                    f"kernel_speedup[{point.get('workload')}]: missing "
                    f"phase_speedups[{phase}]"
                )
            elif ratio < floor * margin:
                failures.append(
                    f"kernel_speedup[{point.get('workload')}]: {phase} speedup "
                    f"{ratio}x < floor {floor}x (margin {margin})"
                )
        if point.get("speedup", 0.0) < 1.0 * margin:
            failures.append(
                f"kernel_speedup[{point.get('workload')}]: end-to-end speedup "
                f"{point.get('speedup')}x lost to the python reference"
            )
    best = max(point.get("speedup", 0.0) for point in workloads)
    target = float(data.get("target", 3.0))
    if best < target * margin:
        failures.append(
            f"kernel_speedup: best end-to-end speedup {best}x below the "
            f"{target}x headline target (margin {margin})"
        )
    sampled = [p for p in workloads if "s=0.5" in str(p.get("workload", ""))]
    if sampled:
        best_sampled = max(p.get("speedup", 0.0) for p in sampled)
        if best_sampled < KERNEL_SAMPLED_E2E_FLOOR * margin:
            failures.append(
                f"kernel_speedup: best s=0.5 speedup {best_sampled}x below "
                f"{KERNEL_SAMPLED_E2E_FLOOR}x floor (margin {margin})"
            )
    return failures


def _check_batch_reuse(data: Dict[str, object], margin: float) -> List[str]:
    speedup = float(data.get("speedup", 0.0))
    if speedup < BATCH_REUSE_FLOOR * margin:
        return [
            f"batch_reuse: warm-over-cold speedup {speedup}x below "
            f"{BATCH_REUSE_FLOOR}x floor (margin {margin})"
        ]
    return []


def _check_service_throughput(data: Dict[str, object], margin: float) -> List[str]:
    failures = []
    deadline_ms = float(data.get("deadline_ms", 0.0))
    for regime in ("steady", "overload"):
        stats = data.get(regime) or {}
        if not stats:
            failures.append(f"service_throughput: artifact missing {regime} regime")
            continue
        errors = int(stats.get("errors", 0))
        if errors:
            failures.append(
                f"service_throughput[{regime}]: {errors} hard errors (must be 0)"
            )
        if deadline_ms:
            bound = deadline_ms * SERVICE_P99_DEADLINE_MULTIPLE / margin
            p99 = float(stats.get("p99_ms", 0.0))
            if p99 > bound:
                failures.append(
                    f"service_throughput[{regime}]: p99 {p99}ms exceeds "
                    f"{bound:.0f}ms ({SERVICE_P99_DEADLINE_MULTIPLE}x deadline "
                    f"/ margin {margin})"
                )
    return failures


def _check_shard_scaling(data: Dict[str, object], margin: float) -> List[str]:
    failures = []
    if not data.get("identical_answers", False):
        failures.append(
            "shard_scaling: sharded answers diverged from serial "
            "(identical_answers is not true)"
        )
    prov = data.get("provenance") or {}
    if prov.get("parallel_mode") != "sharded":
        failures.append(
            f"shard_scaling: provenance parallel_mode "
            f"{prov.get('parallel_mode')!r} is not 'sharded'"
        )
    try:
        cpu_count = int(prov.get("cpu_count", 0))
        cores = int(prov.get("cores", 0))
    except (TypeError, ValueError):
        cpu_count = cores = 0
    if cores < 1:
        failures.append("shard_scaling: provenance records no worker count")
    floor = float(data.get("floor", SHARD_SCALING_FLOOR))
    speedup = float(data.get("speedup", 0.0))
    if speedup <= 0.0:
        failures.append("shard_scaling: artifact records no speedup")
    elif cpu_count >= SHARD_SCALING_MIN_CPUS and cores >= SHARD_SCALING_MIN_CPUS:
        # The wall-clock floor only binds where the hardware could meet
        # it; a narrow recording host still has to pass the answer-parity
        # checks above.
        if speedup < floor * margin:
            failures.append(
                f"shard_scaling: speedup {speedup}x below {floor}x floor "
                f"with {cores} workers on a {cpu_count}-cpu host "
                f"(margin {margin})"
            )
    return failures


def _check_planner(data: Dict[str, object], margin: float) -> List[str]:
    failures = []
    if not data.get("identical_answers", False):
        failures.append(
            "planner: adaptive answers diverged from the static sweep "
            "(identical_answers is not true)"
        )
    bound = float(data.get("ratio_bound", PLANNER_RATIO_BOUND))
    vs_best = float(data.get("adaptive_vs_best_static", 0.0))
    vs_worst = float(data.get("adaptive_vs_worst_static", 0.0))
    if vs_best <= 0.0:
        failures.append("planner: artifact records no adaptive_vs_best_static")
    elif vs_best > bound / margin:
        failures.append(
            f"planner: adaptive workload ran at {vs_best}x the best static "
            f"configuration, above the {bound}x bound (margin {margin})"
        )
    statics = data.get("static_seconds") or {}
    worst_bound = bound if len(statics) <= 1 else 1.0
    if vs_worst <= 0.0:
        failures.append("planner: artifact records no adaptive_vs_worst_static")
    elif vs_worst > worst_bound / margin:
        failures.append(
            f"planner: adaptive workload ran at {vs_worst}x the WORST static "
            f"configuration, above the {worst_bound}x bound (margin {margin})"
        )
    if not data.get("decisions"):
        failures.append("planner: artifact records no plan decisions")
    return failures


def _provenance_failures(data: Dict[str, object], name: str) -> List[str]:
    prov = data.get("provenance")
    if not isinstance(prov, dict):
        return [
            f"{name}: artifact records no provenance block "
            f"({'/'.join(PROVENANCE_KEYS)}) -- regenerate the bench"
        ]
    return [
        f"{name}: provenance missing {key}"
        for key in PROVENANCE_KEYS
        if key not in prov
    ]


def check_bench_artifact(path: str, margin: float = DEFAULT_MARGIN) -> List[str]:
    """Floor-check one recorded ``BENCH_*.json``; returns failure strings.

    The artifact schema is detected from content: the ``bench`` key
    names kernel-speedup, batch-reuse, and shard-scaling artifacts; the
    service throughput artifact predates the key and is recognized by
    its ``overload`` regime block.  Every schema must also carry the
    shared provenance stamp (:data:`PROVENANCE_KEYS`).
    """
    try:
        with open(path, "r", encoding="utf-8") as handle:
            data = json.load(handle)
    except (OSError, ValueError) as exc:
        return [f"{path}: unreadable artifact ({exc})"]
    bench = data.get("bench")
    if bench == "kernel_speedup":
        failures = _check_kernel_speedup(data, margin)
    elif bench == "batch_reuse":
        failures = _check_batch_reuse(data, margin)
    elif bench == "shard_scaling":
        failures = _check_shard_scaling(data, margin)
    elif bench == "planner":
        failures = _check_planner(data, margin)
    elif "overload" in data:
        bench = "service_throughput"
        failures = _check_service_throughput(data, margin)
    else:
        return [f"{path}: unrecognized artifact schema (bench={bench!r})"]
    failures.extend(_provenance_failures(data, bench))
    return failures


def check_bench_artifacts(
    paths: Sequence[str], margin: float = DEFAULT_MARGIN
) -> List[str]:
    """Floor-check several artifacts; the union of their failures."""
    failures: List[str] = []
    for path in paths:
        failures.extend(check_bench_artifact(path, margin))
    return failures


# ----------------------------------------------------------------------
# Profile-vs-artifact drift (opt-in)
# ----------------------------------------------------------------------


def compare_to_kernel_artifact(
    summary: Dict[str, object],
    artifact_path: str,
    max_slowdown: float = 25.0,
    engine: Optional[str] = None,
) -> List[str]:
    """Flag live per-phase p50s that dwarf the artifact's recorded times.

    Wall-clock comparisons across machines are inherently noisy, so the
    default tolerance is deliberately generous (``max_slowdown`` 25x):
    this catches "verification is suddenly 100x the recorded baseline",
    not single-digit drift -- that is what the paired floors in
    ``--check-bench`` are for.
    """
    try:
        with open(artifact_path, "r", encoding="utf-8") as handle:
            data = json.load(handle)
    except (OSError, ValueError) as exc:
        return [f"{artifact_path}: unreadable artifact ({exc})"]
    workloads = data.get("workloads") or []
    if not workloads:
        return [f"{artifact_path}: no workloads to compare against"]
    # Best (fastest) recorded numpy time per phase across workloads.
    baseline: Dict[str, float] = {}
    for point in workloads:
        for phase, seconds in (point.get("numpy_phases") or {}).items():
            if seconds > 0 and (phase not in baseline or seconds < baseline[phase]):
                baseline[phase] = seconds
    failures = []
    engines = summary.get("engines") or {}
    selected = {engine: engines[engine]} if engine in engines else engines
    for name, stats in selected.items():
        for phase, recorded in baseline.items():
            live = (stats.get("phases") or {}).get(phase)
            if live is None:
                continue
            if live["p50"] > recorded * max_slowdown:
                failures.append(
                    f"{name}/{phase}: live p50 {live['p50'] * 1000:.3f}ms is "
                    f">{max_slowdown:.0f}x the recorded "
                    f"{recorded * 1000:.3f}ms baseline"
                )
    return failures
