"""The telemetry hub: one always-on pipeline from span to sink.

:class:`Telemetry` composes the sampler, the profile ring, the
slow-query log, the sampled-trace ring, and an optional JSONL sink into
the single object the orchestration layer talks to.  The process-wide
instance (:func:`get_telemetry`) is always on at a conservative default
-- profiles ring in memory, sampling off, no sink -- so library users
pay one profile-dict build per query and nothing else; the CLI and the
query service turn the dials (`--sample-rate`, ``--telemetry-out``,
``--slow-ms``) via :func:`configure_telemetry`.

Trace-id propagation uses a :mod:`contextvars` context variable: the
service binds the request's id (its own, or the caller's ``X-Trace-Id``)
around query execution, the session binds each request's ``query_id``,
and :meth:`Telemetry.observe_result` picks the bound id up at the
orchestration choke point -- so one id links the HTTP response
envelope, the structured log line, the profile, the slow-log entry, and
the sampled span tree without any layer passing ids to the next.

Like the tracer and the metrics registry, the hub must never fail a
query: capture paths only append to bounded rings, and the sink
disables itself on I/O errors.
"""

from __future__ import annotations

import contextvars
import threading
import time
from collections import deque
from contextlib import contextmanager
from typing import Dict, Iterator, List, Optional

from repro.obs import metrics as obs_metrics
from repro.obs.logging import new_id
from repro.obs.telemetry.profile import ProfileSink, ProfileStore, build_profile
from repro.obs.telemetry.sampler import RateSampler
from repro.obs.telemetry.slowlog import SlowQueryLog

_TRACE_ID: "contextvars.ContextVar[Optional[str]]" = contextvars.ContextVar(
    "repro_trace_id", default=None
)


def new_trace_id() -> str:
    """A fresh process-unique trace id (``trace-00000042``)."""
    return new_id("trace")


def current_trace_id() -> Optional[str]:
    """The trace id bound to the current context, if any."""
    return _TRACE_ID.get()


@contextmanager
def bind_trace_id(trace_id: str) -> Iterator[str]:
    """Bind ``trace_id`` to the current context for the ``with`` body."""
    token = _TRACE_ID.set(trace_id)
    try:
        yield trace_id
    finally:
        _TRACE_ID.reset(token)


class Telemetry:
    """Sampler + profile ring + slow-query log + trace ring + sink."""

    def __init__(
        self,
        *,
        enabled: bool = True,
        sample_rate: float = 0.0,
        slow_ms: float = 250.0,
        profile_capacity: int = 256,
        slowlog_capacity: int = 64,
        trace_capacity: int = 32,
        sink: Optional[ProfileSink] = None,
        clock=time.time,
    ) -> None:
        self.enabled = enabled
        self.clock = clock
        self.sampler = RateSampler(sample_rate)
        self.profiles = ProfileStore(profile_capacity)
        self.slowlog = SlowQueryLog(slowlog_capacity, slow_ms)
        self.sink = sink
        self._traces: "deque[Dict[str, object]]" = deque(maxlen=trace_capacity)
        self._traces_lock = threading.Lock()

    # ------------------------------------------------------------------
    # Configuration
    # ------------------------------------------------------------------

    def reconfigure(
        self,
        *,
        enabled: Optional[bool] = None,
        sample_rate: Optional[float] = None,
        slow_ms: Optional[float] = None,
        sink: Optional[ProfileSink] = ...,  # type: ignore[assignment]
    ) -> None:
        """Adjust knobs in place (rings and tallies persist).

        ``sink`` uses the ellipsis sentinel so ``sink=None`` explicitly
        detaches the current sink (closing it) while omitting the
        argument leaves it untouched.
        """
        if enabled is not None:
            self.enabled = enabled
        if sample_rate is not None:
            self.sampler.set_rate(sample_rate)
        if slow_ms is not None:
            if slow_ms < 0:
                raise ValueError("slow_ms must be >= 0")
            self.slowlog.threshold_ms = float(slow_ms)
        if sink is not ...:
            if self.sink is not None and self.sink is not sink:
                self.sink.close()
            self.sink = sink

    def should_sample(self) -> bool:
        """One head-sampling decision for an about-to-run query."""
        return self.enabled and self.sampler.should_sample()

    # ------------------------------------------------------------------
    # Capture
    # ------------------------------------------------------------------

    def observe_result(
        self,
        result,
        *,
        engine: str,
        r: float,
        k: int = 1,
        ceil_r: int = 0,
        n: int = 0,
        sampled: bool = False,
        span_root=None,
        trace_id: Optional[str] = None,
    ) -> Optional[Dict[str, object]]:
        """Fold one finished query into the telemetry pipeline.

        ``result`` is duck-typed (``algorithm``/``phases``/``counters``/
        ``notes``/``exact``/``total_time``/``memory_bytes``);
        ``span_root`` is the query's root span when it was traced.
        Returns the recorded profile (None when telemetry is disabled).
        """
        if not self.enabled:
            return None
        if trace_id is None:
            trace_id = current_trace_id() or new_trace_id()
        profile = build_profile(
            result,
            engine=engine,
            trace_id=trace_id,
            ts=self.clock(),
            r=r,
            k=k,
            ceil_r=ceil_r,
            n=n,
            sampled=sampled,
        )
        self.profiles.record(profile)
        obs_metrics.counter(
            "repro_query_profiles_total", "Query profiles captured by the telemetry hub"
        ).inc(engine=engine, sampled=str(sampled).lower())
        if self.sink is not None:
            self.sink.write(profile)
        span_tree = None
        if span_root is not None:
            span_root.set_attribute("trace_id", trace_id)
            span_tree = span_root.to_dict()
            with self._traces_lock:
                self._traces.append(
                    {"trace_id": trace_id, "ts": profile["ts"], "root": span_tree}
                )
        if self.slowlog.consider(profile, span_tree):
            obs_metrics.counter(
                "repro_slow_queries_total",
                "Queries captured by the slow-query log, by cause",
            ).inc(cause=self.slowlog.classify(profile) or "slow")
        return profile

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    def traces_snapshot(self) -> List[Dict[str, object]]:
        """Recent sampled span trees, oldest first (``/tracez``)."""
        with self._traces_lock:
            return list(self._traces)

    def snapshot(self) -> Dict[str, object]:
        """Hub state for ``/statusz`` and ``repro batch --stats``."""
        sink_state: Dict[str, object] = {"attached": self.sink is not None}
        if self.sink is not None:
            sink_state.update(
                path=self.sink.path,
                written=self.sink.written,
                rotations=self.sink.rotations,
                errors=self.sink.errors,
            )
        return {
            "enabled": self.enabled,
            "sampler": self.sampler.snapshot(),
            "profiles": self.profiles.totals(),
            "slowlog": {
                "threshold_ms": self.slowlog.threshold_ms,
                "captured": self.slowlog.captured,
                "retained": len(self.slowlog),
            },
            "traces_retained": len(self._traces),
            "sink": sink_state,
        }


# ----------------------------------------------------------------------
# The process-wide hub
# ----------------------------------------------------------------------

_TELEMETRY = Telemetry()


def get_telemetry() -> Telemetry:
    """The hub every built-in orchestration point reports to."""
    return _TELEMETRY


def set_telemetry(hub: Telemetry) -> Telemetry:
    """Swap the process hub (tests); returns the previous one."""
    global _TELEMETRY
    previous = _TELEMETRY
    _TELEMETRY = hub
    return previous


def configure_telemetry(**kwargs) -> Telemetry:
    """Reconfigure the live process hub in place (see ``reconfigure``)."""
    _TELEMETRY.reconfigure(**kwargs)
    return _TELEMETRY
