"""Per-query profiles: the bounded in-process store and the JSONL sink.

A *profile* is one flat JSON-friendly dict per finished query -- the
telemetry pipeline's unit of record.  The schema (every field is always
present so downstream aggregation never branches on missing keys):

=================  =====================================================
field              meaning
=================  =====================================================
``trace_id``       correlation id (shared with spans, logs, and the
                   service's response envelopes)
``ts``             unix seconds at capture
``engine``         pipeline label (``serial``/``parallel``/``temporal``/
                   ``session``)
``algorithm``      the result's algorithm name (``bigrid``,
                   ``bigrid-label``, ...)
``r`` / ``k``      the query
``ceil_r``         the label-reuse ceiling
``n``              collection size at query time
``seconds``        end-to-end time (sum of phase times)
``exact``          False for anytime/degraded answers
``sampled``        True when the query carried a full span tree
``phases``         per-phase seconds (Table II decomposition)
``counters``       pruning-funnel and cache counts (small ints)
``notes``          degradation + dispatch notes (``verification_path``,
                   ``lower_bound_path``, ``degraded_*``)
``memory_bytes``   index size
``shards``         shard fan-out of a sharded parallel query (0 for
                   serial/simulated execution)
=================  =====================================================

:class:`ProfileStore` keeps the most recent ``capacity`` profiles in a
ring buffer (old entries fall off; totals keep counting), so a running
service can always answer "what did the last N queries look like"
without unbounded memory.  :class:`ProfileSink` appends each profile as
one JSON line to a file and rotates by size, giving ``repro report`` a
durable feed that survives the process.
"""

from __future__ import annotations

import json
import os
import threading
from collections import deque
from typing import Dict, List, Optional


class ProfileStore:
    """Bounded ring buffer of recent query profiles (thread-safe)."""

    def __init__(self, capacity: int = 256) -> None:
        if capacity < 1:
            raise ValueError("profile store capacity must be at least 1")
        self.capacity = capacity
        self._entries: "deque[Dict[str, object]]" = deque(maxlen=capacity)
        self._lock = threading.Lock()
        #: Lifetime tallies (the ring only keeps the newest ``capacity``).
        self.recorded = 0
        self.sampled = 0
        self.degraded = 0

    def record(self, profile: Dict[str, object]) -> None:
        with self._lock:
            self._entries.append(profile)
            self.recorded += 1
            if profile.get("sampled"):
                self.sampled += 1
            if not profile.get("exact", True):
                self.degraded += 1

    def snapshot(self) -> List[Dict[str, object]]:
        """The retained profiles, oldest first (copies the ring)."""
        with self._lock:
            return list(self._entries)

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()

    def __len__(self) -> int:
        return len(self._entries)

    def totals(self) -> Dict[str, int]:
        with self._lock:
            return {
                "recorded": self.recorded,
                "sampled": self.sampled,
                "degraded": self.degraded,
                "retained": len(self._entries),
            }


class ProfileSink:
    """Append-only JSONL profile log with size-based rotation.

    One JSON object per line.  When the current file would exceed
    ``max_bytes`` the sink rotates: ``path`` -> ``path.1`` ->
    ``path.2`` ... up to ``backups`` generations (the oldest is
    dropped), then keeps appending to a fresh ``path``.  Write failures
    disable the sink rather than poisoning the query path -- telemetry
    must never fail a query.
    """

    def __init__(self, path: str, max_bytes: int = 8 * 1024 * 1024, backups: int = 2) -> None:
        if max_bytes < 1:
            raise ValueError("max_bytes must be positive")
        if backups < 0:
            raise ValueError("backups must be >= 0")
        self.path = str(path)
        self.max_bytes = max_bytes
        self.backups = backups
        self._lock = threading.Lock()
        self._handle = None
        self._bytes = 0
        self.written = 0
        self.rotations = 0
        self.errors = 0

    def _open(self) -> None:
        self._handle = open(self.path, "a", encoding="utf-8")
        self._bytes = os.path.getsize(self.path)

    def _rotate_locked(self) -> None:
        if self._handle is not None:
            self._handle.close()
            self._handle = None
        if self.backups == 0:
            os.remove(self.path)
        else:
            oldest = f"{self.path}.{self.backups}"
            if os.path.exists(oldest):
                os.remove(oldest)
            for generation in range(self.backups - 1, 0, -1):
                source = f"{self.path}.{generation}"
                if os.path.exists(source):
                    os.replace(source, f"{self.path}.{generation + 1}")
            os.replace(self.path, f"{self.path}.1")
        self.rotations += 1

    def write(self, profile: Dict[str, object]) -> None:
        line = json.dumps(profile, sort_keys=True, default=str) + "\n"
        encoded = len(line.encode("utf-8"))
        with self._lock:
            try:
                if self._handle is None:
                    self._open()
                if self._bytes and self._bytes + encoded > self.max_bytes:
                    self._rotate_locked()
                    self._open()
                self._handle.write(line)
                self._handle.flush()
                self._bytes += encoded
                self.written += 1
            except OSError:
                # A full disk or revoked path must not fail queries; drop
                # the sink and keep the in-process ring as the record.
                self.errors += 1
                if self._handle is not None:
                    try:
                        self._handle.close()
                    except OSError:
                        pass
                    self._handle = None

    def close(self) -> None:
        with self._lock:
            if self._handle is not None:
                self._handle.close()
                self._handle = None

    def __enter__(self) -> "ProfileSink":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


def build_profile(
    result,
    *,
    engine: str,
    trace_id: str,
    ts: float,
    r: float,
    k: int,
    ceil_r: int,
    n: int,
    sampled: bool,
) -> Dict[str, object]:
    """One profile dict from a duck-typed result (see module schema).

    ``result`` needs ``algorithm`` / ``phases`` / ``counters`` /
    ``notes`` / ``exact`` / ``total_time`` / ``memory_bytes`` -- the
    same duck contract :func:`repro.obs.recorders.observe_query` uses,
    so this module never imports the query machinery it observes.
    """
    return {
        "trace_id": trace_id,
        "ts": round(ts, 6),
        "engine": engine,
        "algorithm": result.algorithm,
        "r": r,
        "k": k,
        "ceil_r": ceil_r,
        "n": n,
        "seconds": result.total_time,
        "exact": bool(result.exact),
        "sampled": bool(sampled),
        "phases": dict(result.phases),
        "counters": dict(result.counters),
        "notes": dict(result.notes),
        "memory_bytes": int(result.memory_bytes or 0),
        "shards": int(result.counters.get("shards", 0)),
    }
