"""Deterministic, seeded fault injection for robustness testing.

Production code calls :func:`trip` at *named injection points* (one per
pipeline phase, one per partition task, one per backend probe).  With no
injector installed — the default — a trip is a no-op costing one global
read, so the harness is safe to leave compiled into the hot paths.

Tests (and the ``REPRO_FAULTS`` environment variable, honored by the CLI
and the CI chaos job) install a :class:`FaultInjector` holding
:class:`FaultSpec` entries.  A spec either raises
:class:`~repro.errors.InjectedFault` or sleeps (latency injection), fires
with a configurable probability from a seeded RNG, and can be limited to a
number of triggers or to one ``detail`` value (e.g. a single task index).
Everything is deterministic under a fixed seed.

``REPRO_FAULTS`` grammar (``;``-separated)::

    seed=42;verification:fail;partition_task:latency:0.5:10

i.e. ``point:kind[:rate[:latency_ms[:match]]]``.  A value containing only
``seeds=...`` (as the CI chaos job sets) configures no specs here; the test
suite reads those seeds itself via :func:`env_seeds`.
"""

from __future__ import annotations

import random
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Sequence

from repro.errors import InjectedFault, InvalidQueryError

#: The named injection points production code trips, in pipeline order.
INJECTION_POINTS = (
    "grid_mapping",
    "lower_bounding",
    "upper_bounding",
    "verification",
    "partition_task",
    "shard_task",
    "backend",
    "io",
)

FAULT_KINDS = ("fail", "latency")


@dataclass
class FaultSpec:
    """One armed fault: where it fires, what it does, and how often."""

    point: str
    kind: str = "fail"
    #: Probability of firing each time the point is tripped.
    rate: float = 1.0
    #: Sleep duration in seconds for ``kind="latency"``.
    latency: float = 0.0
    #: Stop firing after this many triggers (None = unlimited).
    max_triggers: Optional[int] = None
    #: When set, fire only if the trip's ``detail`` equals this value.
    match: Optional[object] = None

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise InvalidQueryError(f"fault kind must be one of {FAULT_KINDS}")
        if not 0.0 <= self.rate <= 1.0:
            raise InvalidQueryError("fault rate must lie in [0, 1]")


class FaultInjector:
    """Evaluates armed :class:`FaultSpec` entries at every tripped point."""

    def __init__(self, specs: Sequence[FaultSpec], seed: int = 0) -> None:
        self.specs: List[FaultSpec] = list(specs)
        self.seed = seed
        self.rng = random.Random(seed)
        #: How often each point actually fired (for assertions in tests).
        self.fired: Dict[str, int] = {}
        self._triggered = [0] * len(self.specs)

    def trip(self, point: str, detail: Optional[object] = None) -> None:
        """Evaluate all specs armed for ``point``; may raise or sleep."""
        for index, spec in enumerate(self.specs):
            if spec.point != point:
                continue
            if spec.match is not None and detail != spec.match:
                continue
            if spec.max_triggers is not None and self._triggered[index] >= spec.max_triggers:
                continue
            if spec.rate < 1.0 and self.rng.random() >= spec.rate:
                continue
            self._triggered[index] += 1
            self.fired[point] = self.fired.get(point, 0) + 1
            from repro.obs import metrics as obs_metrics

            obs_metrics.counter(
                "repro_faults_injected_total", "Injected faults that actually fired"
            ).inc(point=point, kind=spec.kind)
            if spec.kind == "latency":
                time.sleep(spec.latency)
            else:
                suffix = f" (detail={detail!r})" if detail is not None else ""
                raise InjectedFault(f"injected fault at {point}{suffix}", point=point)


#: The process-global injector consulted by :func:`trip` (None = disabled).
_ACTIVE: Optional[FaultInjector] = None


def active() -> Optional[FaultInjector]:
    """The currently installed injector, if any."""
    return _ACTIVE


def install(injector: Optional[FaultInjector]) -> None:
    """Install (or, with None, remove) the process-global injector."""
    global _ACTIVE
    _ACTIVE = injector


@contextmanager
def injected(injector: FaultInjector) -> Iterator[FaultInjector]:
    """Scoped installation: the pattern every test uses."""
    global _ACTIVE
    previous = _ACTIVE
    _ACTIVE = injector
    try:
        yield injector
    finally:
        _ACTIVE = previous


def trip(point: str, detail: Optional[object] = None) -> None:
    """Production-side hook: a no-op unless an injector is installed."""
    if _ACTIVE is not None:
        _ACTIVE.trip(point, detail)


# ----------------------------------------------------------------------
# REPRO_FAULTS environment parsing
# ----------------------------------------------------------------------


def from_env(value: Optional[str]) -> Optional[FaultInjector]:
    """Build an injector from a ``REPRO_FAULTS`` string (None if no specs)."""
    if not value:
        return None
    seed = 0
    specs: List[FaultSpec] = []
    for chunk in value.split(";"):
        chunk = chunk.strip()
        if not chunk:
            continue
        if chunk.startswith("seed="):
            seed = int(chunk[len("seed="):])
            continue
        if chunk.startswith("seeds="):
            continue  # chaos-test seed list; consumed by env_seeds()
        parts = chunk.split(":")
        point = parts[0]
        kind = parts[1] if len(parts) > 1 else "fail"
        rate = float(parts[2]) if len(parts) > 2 else 1.0
        latency = float(parts[3]) / 1000.0 if len(parts) > 3 else 0.0
        match: Optional[object] = None
        if len(parts) > 4:
            match = int(parts[4]) if parts[4].lstrip("-").isdigit() else parts[4]
        specs.append(FaultSpec(point, kind=kind, rate=rate, latency=latency, match=match))
    if not specs:
        return None
    return FaultInjector(specs, seed=seed)


def env_seeds(value: Optional[str]) -> List[int]:
    """Chaos-test seeds from ``REPRO_FAULTS`` (``seeds=a:b`` range or ``seeds=1,2``)."""
    if not value:
        return []
    for chunk in value.split(";"):
        chunk = chunk.strip()
        if not chunk.startswith("seeds="):
            continue
        body = chunk[len("seeds="):]
        if ":" in body:
            low, high = body.split(":")
            return list(range(int(low), int(high)))
        return [int(part) for part in body.split(",") if part]
    return []
