"""The analytical cost model: Eq. (3) extended to whole-plan selection.

The paper uses its cost model once, to balance UPPER-BOUNDING key groups
across cores (Eq. (3): a group's cost is ``3^d`` bitset unions per *new*
large cell, one OR per *reused* cell, plus per-point labeling work —
implemented verbatim in
:func:`repro.parallel.partitioning.upper_bounding_group_cost`).  This
module extends the same functional form to every phase and every knob,
so one model prices an entire :class:`~repro.planner.plan.Plan`:

* each phase's **work units** are estimated from
  :class:`~repro.planner.stats.QueryStatistics` with a Poisson occupancy
  model (cell intensity ``lambda = density * width^d``; the fraction of
  points landing in shared cells is ``lambda / (1 + lambda)``), all
  terms monotone non-decreasing in the collection's point count — more
  points never predict cheaper, which ``tests/test_planner.py`` pins;
* each ``(kernel, phase)`` pair has a **fixed dispatch cost** plus a
  **per-unit cost**: the numpy kernel's fixed costs are higher (array
  setup) and its unit costs far lower (vectorized loops), reproducing
  the measured crossovers — e.g. the 768-shared-row lower-bounding
  dispatch in :mod:`repro.kernels.numpy_backend`;
* the sharded mode divides the parallelizable work by an efficiency-
  discounted worker count, then adds routing, per-task, and merge
  overheads, discounted further by the observed plan-cache balance.

Seeds are analytical; :class:`CostModel` then **calibrates online**:
every finished query's per-phase wall-clock updates the matching
per-unit cost by exponential moving average (:meth:`CostModel.observe`),
so a host where numpy underperforms drifts the model — and the
decisions — toward the reference kernel, deterministically.

This module deliberately re-states Eq. (3) instead of importing
``repro.parallel.partitioning``: the planner sits *below* the engines
(the pipeline imports it), so reaching up into ``repro.parallel`` would
cycle the import graph — the layering lint enforces the boundary.
"""

from __future__ import annotations

import math
import threading
from typing import Dict, Optional, Tuple

from repro.planner.plan import Plan
from repro.planner.stats import QueryStatistics

# ----------------------------------------------------------------------
# Seed coefficients
# ----------------------------------------------------------------------

#: ``(kernel, phase) -> (fixed_seconds, seconds_per_unit)`` seeds.  The
#: absolute values are order-of-magnitude estimates from the recorded
#: ``BENCH_kernel_speedup`` runs; what matters for decisions is the
#: *shape*: python has tiny fixed costs and large unit costs, numpy the
#: reverse, so the model reproduces the measured small/large crossovers
#: and online calibration refines the rest.
SEED_COSTS: Dict[Tuple[str, str], Tuple[float, float]] = {
    ("python", "grid_mapping"): (5e-5, 2.2e-6),
    ("python", "lower_bounding"): (2e-5, 9e-7),
    ("python", "upper_bounding"): (2e-5, 6e-7),
    ("python", "verification"): (3e-5, 1.1e-6),
    ("numpy", "grid_mapping"): (4e-4, 4.5e-7),
    # Lower bounding has two dispatchable paths with their own cost
    # shapes (see LOWER_BOUND_DISPATCH_MIN_ROWS): the sequential path is
    # near-python, the vectorized path pays reduceat setup once.
    ("numpy", "lower_bounding_seq"): (1.5e-5, 8e-7),
    ("numpy", "lower_bounding_vec"): (3.5e-4, 3e-8),
    ("numpy", "upper_bounding"): (2.5e-4, 9e-8),
    ("numpy", "verification"): (3e-4, 2.2e-7),
}

#: Fraction of work the Section III-D labels shave off every phase when
#: labels for the ceiling exist (labeled-useless points never map).
LABEL_DISCOUNT = 0.75

#: Grid-key cache effect on GRID-MAPPING: reading large keys from the
#: ceil(r)-keyed cache skips part of the per-point key computation.
KEY_CACHE_DISCOUNT = 0.8

#: Parallel efficiency per extra worker (coordination, GIL-free but
#: fork/IPC-taxed); the remainder shows up as overhead terms below.
PARALLEL_EFFICIENCY = 0.7

#: Fixed cost per shard task (payload marshalling + result transport).
SHARD_TASK_SECONDS = 1.2e-3

#: Routing cost: fixed + per-point curve coding (paid once per ceiling
#: thanks to the ShardPlanCache, so it is discounted when a cache is
#: expected to be warm — the plan-cache balance statistic only exists
#: for warm caches, so balance > 1 implies warm).
SHARD_ROUTE_SECONDS = 5e-4
SHARD_ROUTE_PER_POINT = 2.5e-7

#: Merge cost per candidate the coordinator's best-first replay touches
#: (workers carry the distance rows; the merge sees one entry per
#: surviving object, so it scales with ``n``, not with verify rows).
SHARD_MERGE_PER_UNIT = 4e-7

#: EWMA step for online unit-cost calibration.
CALIBRATION_ALPHA = 0.3

#: Clamp on a single observation's implied unit cost relative to the
#: current estimate, so one garbage-collected outlier cannot wreck the
#: model (it still drifts there if the signal repeats).
CALIBRATION_CLAMP = 10.0


# ----------------------------------------------------------------------
# Work-unit estimation
# ----------------------------------------------------------------------


def shared_fraction(density: float, width: float, dimension: int) -> float:
    """Expected fraction of points in cells holding other points too.

    Poisson occupancy: with cell intensity ``lambda = density *
    width^d``, a point shares its cell with ``lambda / (1 + lambda)``
    probability (smooth, in [0, 1), monotone in density).
    """
    lam = max(density, 0.0) * max(width, 1e-9) ** max(dimension, 1)
    return lam / (1.0 + lam)


def eq3_group_cost(
    new_cells: float, reused_cells: float, points: float, dimension: int
) -> float:
    """Eq. (3) extended: expected UPPER-BOUNDING units for one query.

    The paper's per-group cost — ``3^d`` unions for every large cell
    whose adjacency union is computed fresh, one OR for every reused
    cell, plus per-point labeling — summed in expectation over the whole
    query instead of per partition group (the partitioner's per-group
    form lives in ``repro.parallel.partitioning``).
    """
    return (3 ** dimension) * max(new_cells, 0.0) + max(reused_cells, 0.0) + max(
        points, 0.0
    )


def estimate_units(stats: QueryStatistics) -> Dict[str, float]:
    """Per-phase work units for one query (monotone in total_points).

    ===============  ===================================================
    phase            unit meaning
    ===============  ===================================================
    grid_mapping     points mapped into the BIGrid
    lower_bounding   shared small-cell rows OR-ed (Algorithm 4)
    upper_bounding   Eq. (3) units (adjacency unions + labeling)
    verification     candidate distance rows scored (Algorithm 6)
    ===============  ===================================================
    """
    dimension = max(stats.dimension, 1)
    mapped = float(stats.total_points)
    if stats.labels_available:
        mapped *= LABEL_DISCOUNT
    # Small cells have width r / sqrt(d); only shared rows cost ORs.
    small_width = stats.r / math.sqrt(dimension)
    small_shared = shared_fraction(stats.density, small_width, dimension)
    lower_rows = mapped * small_shared
    # Large cells have width ceil(r).  A denser grid reuses more
    # adjacency unions (neighbouring cells occupied), so the reused
    # share grows with occupancy and the fresh share shrinks.
    large_shared = shared_fraction(stats.density, float(stats.ceil_r), dimension)
    occupied_cells = mapped * (1.0 - 0.5 * large_shared) / max(
        1.0, stats.mean_points
    ) + stats.n
    upper_units = eq3_group_cost(
        new_cells=occupied_cells * (1.0 - large_shared),
        reused_cells=occupied_cells * large_shared,
        points=mapped,
        dimension=dimension,
    )
    # Denser neighbourhoods leave more candidates above the pruning
    # threshold; each costs distance rows proportional to local mass.
    verify_rows = mapped * large_shared * (1.0 + math.log1p(stats.k))
    return {
        "grid_mapping": mapped,
        "lower_bounding": lower_rows,
        "upper_bounding": upper_units,
        "verification": verify_rows,
    }


#: Counter keys that report each phase's *actual* work, for feedback.
#: Falls back to ``mapped_points`` when a phase-specific counter is
#: absent (e.g. python lower bounding counts OR operations too, but a
#: cache hit records none).
ACTUAL_UNIT_COUNTERS = {
    "grid_mapping": ("mapped_points",),
    "lower_bounding": ("lower_or_operations", "mapped_points"),
    "upper_bounding": ("candidates_total", "mapped_points"),
    "verification": ("distance_rows", "candidates_total"),
}


def actual_units(phase: str, counters: Dict[str, int]) -> float:
    """Observed work units for one finished phase (0 = unusable)."""
    for key in ACTUAL_UNIT_COUNTERS.get(phase, ()):
        value = counters.get(key)
        if value:
            return float(value)
    return 0.0


# ----------------------------------------------------------------------
# The model
# ----------------------------------------------------------------------

#: The row-count threshold the numpy lower-bounding auto-dispatch uses;
#: restated here (the real constant lives in the kernel layer, which the
#: planner must not import) so ``lb_dispatch="auto"`` predictions price
#: the path that will actually run.
LOWER_BOUND_SEQ_ROWS = 768


class CostModel:
    """Per-(kernel, phase) unit costs: analytical seeds + EWMA updates.

    Thread-safe: the service plans queries from worker threads while the
    feedback hook updates coefficients.  ``version`` increments on every
    accepted observation, so decision memos key on it and recompute
    exactly when the model moved.
    """

    def __init__(
        self, seeds: Optional[Dict[Tuple[str, str], Tuple[float, float]]] = None
    ) -> None:
        seeds = dict(SEED_COSTS if seeds is None else seeds)
        self._fixed = {key: float(pair[0]) for key, pair in seeds.items()}
        self._unit = {key: float(pair[1]) for key, pair in seeds.items()}
        self._lock = threading.Lock()
        self.version = 0
        self.observations = 0

    # -- coefficients ---------------------------------------------------

    def unit_cost(self, kernel: str, phase: str) -> float:
        with self._lock:
            return self._unit[(kernel, phase)]

    def fixed_cost(self, kernel: str, phase: str) -> float:
        with self._lock:
            return self._fixed[(kernel, phase)]

    def _phase_seconds(self, kernel: str, phase: str, units: float) -> float:
        key = (kernel, phase)
        return self._fixed[key] + self._unit[key] * max(units, 0.0)

    # -- prediction -----------------------------------------------------

    def lower_bounding_key(self, plan: Plan, rows: float) -> str:
        """Which lower-bounding coefficient row prices this plan."""
        if plan.kernel != "numpy":
            return "lower_bounding"
        dispatch = plan.lb_dispatch
        if dispatch == "auto":
            dispatch = "seq" if rows < LOWER_BOUND_SEQ_ROWS else "vectorized"
        return (
            "lower_bounding_seq" if dispatch == "seq" else "lower_bounding_vec"
        )

    def predict(self, plan: Plan, stats: QueryStatistics) -> Dict[str, float]:
        """Per-phase predicted seconds for one plan, plus ``"total"``.

        Serial plans predict the four pipeline phases directly; sharded
        plans predict the same work divided across efficiency-discounted
        workers and report it under the sharded stage names
        (``shard_route`` / ``shard_execute`` / ``shard_merge``) so
        predicted-vs-actual lines up with the phases the query records.
        """
        units = estimate_units(stats)
        kernel = plan.kernel
        with self._lock:
            phases = {
                "grid_mapping": self._phase_seconds(
                    kernel, "grid_mapping", units["grid_mapping"]
                ),
                "lower_bounding": self._phase_seconds(
                    kernel,
                    self.lower_bounding_key(plan, units["lower_bounding"]),
                    units["lower_bounding"],
                ),
                "upper_bounding": self._phase_seconds(
                    kernel, "upper_bounding", units["upper_bounding"]
                ),
                "verification": self._phase_seconds(
                    kernel, "verification", units["verification"]
                ),
            }
        if plan.grid_keys != "fresh" and stats.key_cache:
            phases["grid_mapping"] *= KEY_CACHE_DISCOUNT
        if plan.lb_dispatch == "auto" and stats.lower_cache:
            # An attached exact-r cache may skip the phase outright; a
            # mild discount keeps the hint without betting on a hit.
            phases["lower_bounding"] *= 0.9
        if plan.mode == "serial":
            prediction = dict(phases)
            prediction["total"] = sum(phases.values())
            return prediction
        # -- sharded: divide the phase work, add coordination ------------
        workers = max(1, min(plan.shards, stats.cores))
        efficiency = 1.0 + (workers - 1) * PARALLEL_EFFICIENCY
        efficiency /= max(stats.plan_cache_balance, 1.0)
        execute = sum(phases.values()) / max(efficiency, 1.0)
        execute += SHARD_TASK_SECONDS * plan.shards
        route = SHARD_ROUTE_SECONDS + SHARD_ROUTE_PER_POINT * stats.total_points
        if stats.plan_cache_balance > 1.0:
            route *= 0.1  # a measured balance implies a warm plan cache
        merge = SHARD_MERGE_PER_UNIT * stats.n + 1e-4
        prediction = {
            "shard_route": route,
            "shard_execute": execute,
            "shard_merge": merge,
        }
        prediction["total"] = route + execute + merge
        return prediction

    # -- feedback -------------------------------------------------------

    def observe(
        self,
        plan: Plan,
        phases: Dict[str, float],
        counters: Dict[str, int],
    ) -> int:
        """Fold one finished query's timings in; returns updates applied.

        Only serial-shaped phase records calibrate (sharded executions
        interleave coordination with compute, so their per-phase seconds
        do not isolate a kernel's unit cost).  Each accepted phase
        updates ``unit_cost[kernel, phase]`` by EWMA of the observed
        seconds-per-unit, clamped against outliers.
        """
        updated = 0
        for phase, seconds in phases.items():
            if phase not in ACTUAL_UNIT_COUNTERS:
                continue
            units = actual_units(phase, counters)
            if units <= 0.0 or seconds <= 0.0:
                continue
            key = (plan.kernel, phase)
            if phase == "lower_bounding" and plan.kernel == "numpy":
                key = (plan.kernel, self.lower_bounding_key(plan, units))
            with self._lock:
                if key not in self._unit:
                    continue
                current = self._unit[key]
                observed = max(seconds - self._fixed[key], 0.0) / units
                observed = min(
                    max(observed, current / CALIBRATION_CLAMP),
                    current * CALIBRATION_CLAMP,
                )
                self._unit[key] = (
                    1.0 - CALIBRATION_ALPHA
                ) * current + CALIBRATION_ALPHA * observed
                self.version += 1
                self.observations += 1
                updated += 1
        return updated
