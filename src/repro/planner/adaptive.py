"""The planners: decision procedure, memoization, and online feedback.

:class:`AdaptivePlanner` is a deterministic function from
(:class:`~repro.planner.stats.QueryStatistics`, calibration state) to a
:class:`~repro.planner.plan.Plan`: it enumerates the candidate plans the
owning engine can execute, prices each with the shared
:class:`~repro.planner.cost.CostModel`, and takes the cheapest — with a
deliberate thumb on the scale for the **baseline** (the engine's static
configuration): a candidate must beat the baseline by more than
``TIE_MARGIN`` to displace it, so on a cold model with nothing measured
the planner reproduces today's static behavior exactly
(``tests/test_planner.py`` pins this).

Decisions are memoized on ``stats.cache_key()`` plus the model version:
a ``ceil(r)``-grouped batch plans once per group, and any accepted
feedback observation (which bumps the version) transparently invalidates
the memo.  Feedback arrives two ways:

* **online** — the phase pipeline calls :meth:`AdaptivePlanner.observe`
  with every finished query's phases and counters;
* **offline** — :meth:`AdaptivePlanner.ingest_profiles` replays the
  telemetry profile stream (PR 8's JSONL schema, the exact dicts
  ``repro report`` reads), recognizing its own decisions via
  ``notes["plan"]`` and falling back to the dispatch notes
  (``lower_bound_path`` / ``verification_path``) to attribute a kernel.

:class:`FixedPlanner` always answers one pinned plan — the parity
suite's vehicle for forcing arbitrary knob assignments through the
production wiring.  ``planner="static"`` resolves to ``None``: no
planner object at all, the engines' historical code path, byte for byte.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Tuple

from repro.errors import InvalidQueryError
from repro.planner.cost import CostModel
from repro.planner.plan import (
    LB_DISPATCH_CHOICES,
    Plan,
    parse_plan,
)
from repro.planner.stats import QueryStatistics

#: Names ``resolve_planner`` accepts (CLI / service / session values).
PLANNER_NAMES = ("static", "adaptive")

#: A candidate must predict more than this fractional improvement over
#: the baseline to displace it (hysteresis: near-ties keep the static
#: configuration, so cold-start behavior is exactly today's).
TIE_MARGIN = 0.1

#: Decision memos retained (decisions are cheap to recompute; the memo
#: exists so per-group batch planning is O(1) per query).
DECISION_MEMO_ENTRIES = 64

#: Shard-count ladder considered per decision (filtered to capacity).
SHARD_LADDER = (2, 4, 8, 16)


@dataclass(frozen=True)
class Decision:
    """One planning outcome: the plan plus its predicted phase costs."""

    plan: Plan
    #: Predicted seconds per phase (plus ``"total"``) for the chosen plan.
    predicted: Dict[str, float] = field(default_factory=dict)
    #: Baseline (static) plan the decision was judged against.
    baseline: Optional[Plan] = None
    #: Predicted total for the baseline (for explain's "why").
    baseline_total: float = 0.0
    #: Short human-readable justification.
    reason: str = ""


class Planner:
    """Planner interface: engines call ``decide`` and ``observe``."""

    name = "abstract"

    def decide(self, stats: QueryStatistics, baseline: Plan) -> Decision:
        raise NotImplementedError

    def observe(
        self,
        plan: Plan,
        phases: Dict[str, float],
        counters: Dict[str, int],
    ) -> None:
        """Fold one finished query back into the model (default: no-op)."""


class FixedPlanner(Planner):
    """Always answers one pinned plan (the parity suite's instrument)."""

    name = "fixed"

    def __init__(self, plan: Plan) -> None:
        self.plan = plan

    def decide(self, stats: QueryStatistics, baseline: Plan) -> Decision:
        return Decision(plan=self.plan, baseline=baseline, reason="fixed plan")


class AdaptivePlanner(Planner):
    """Cost-model-driven per-query plan selection with online feedback."""

    name = "adaptive"

    def __init__(self, cost_model: Optional[CostModel] = None) -> None:
        self.cost_model = cost_model if cost_model is not None else CostModel()
        self._lock = threading.Lock()
        self._memo: Dict[tuple, Decision] = {}
        #: Planning and feedback tallies (surfaced by session stats).
        self.decisions = 0
        self.memo_hits = 0
        self.observed_queries = 0
        self.ingested_profiles = 0

    # ------------------------------------------------------------------
    # Decision
    # ------------------------------------------------------------------

    def candidates(self, stats: QueryStatistics, baseline: Plan) -> List[Plan]:
        """Every plan the owning engine could execute for this query.

        The enumeration is capability-driven: kernels the process cannot
        serve, modes the engine cannot run, and cache policies without a
        cache behind them never appear, so a chosen plan always executes
        as planned (no silent degradation to re-measure).
        """
        kernels = ["python"]
        if stats.numpy_available:
            kernels.append("numpy")
        grid_choices: Tuple[str, ...] = (
            ("auto", "fresh") if stats.key_cache else ("auto",)
        )
        plans = {baseline}
        for kernel in kernels:
            lb_choices = LB_DISPATCH_CHOICES if kernel == "numpy" else ("auto",)
            for lb in lb_choices:
                for grid in grid_choices:
                    plans.add(
                        Plan(
                            kernel=kernel,
                            mode="serial",
                            shards=1,
                            lb_dispatch=lb,
                            grid_keys=grid,
                        )
                    )
            if stats.sharding_available and stats.cores > 1:
                ladder = {s for s in SHARD_LADDER if s <= 2 * stats.cores}
                ladder.add(stats.cores)
                for shards in sorted(ladder):
                    plans.add(Plan(kernel=kernel, mode="sharded", shards=shards))
        return sorted(
            plans,
            key=lambda p: (p.mode, p.kernel, p.shards, p.lb_dispatch, p.grid_keys),
        )

    def decide(self, stats: QueryStatistics, baseline: Plan) -> Decision:
        key = stats.cache_key() + (
            baseline.describe(),
            self.cost_model.version,
        )
        with self._lock:
            memo = self._memo.get(key)
            if memo is not None:
                self.memo_hits += 1
                return memo
        decision = self._decide_uncached(stats, baseline)
        with self._lock:
            if len(self._memo) >= DECISION_MEMO_ENTRIES:
                self._memo.pop(next(iter(self._memo)))
            self._memo[key] = decision
            self.decisions += 1
        return decision

    def _decide_uncached(self, stats: QueryStatistics, baseline: Plan) -> Decision:
        model = self.cost_model
        baseline_prediction = model.predict(baseline, stats)
        baseline_total = baseline_prediction["total"]
        if stats.n <= 0 or stats.total_points <= 0:
            return Decision(
                plan=baseline,
                predicted=baseline_prediction,
                baseline=baseline,
                baseline_total=baseline_total,
                reason="degenerate collection: baseline",
            )
        best_plan = baseline
        best_prediction = baseline_prediction
        best_total = baseline_total
        for plan in self.candidates(stats, baseline):
            if plan == baseline:
                continue
            prediction = model.predict(plan, stats)
            if prediction["total"] < best_total:
                best_plan, best_prediction = plan, prediction
                best_total = prediction["total"]
        if best_plan != baseline and best_total >= baseline_total * (
            1.0 - TIE_MARGIN
        ):
            # Hysteresis: not enough predicted headroom to leave the
            # engine's static configuration.
            best_plan, best_prediction = baseline, baseline_prediction
            best_total = baseline_total
        if best_plan == baseline:
            reason = "baseline within margin"
        else:
            reason = (
                f"predicted {best_total * 1e3:.3f}ms vs baseline "
                f"{baseline_total * 1e3:.3f}ms"
            )
        return Decision(
            plan=best_plan,
            predicted=best_prediction,
            baseline=baseline,
            baseline_total=baseline_total,
            reason=reason,
        )

    # ------------------------------------------------------------------
    # Feedback
    # ------------------------------------------------------------------

    def observe(
        self,
        plan: Plan,
        phases: Dict[str, float],
        counters: Dict[str, int],
    ) -> None:
        """Online feedback from one finished query (the pipeline hook)."""
        if self.cost_model.observe(plan, dict(phases), dict(counters)):
            self.observed_queries += 1

    def ingest_profiles(self, profiles: Iterable[dict]) -> int:
        """Replay telemetry profiles (PR 8 JSONL schema); returns count used.

        Each profile needs ``phases`` + ``counters`` and an attributable
        kernel: ``notes["plan"]`` when the query was planned, otherwise
        the dispatch notes every profile carries.  Degraded (inexact)
        profiles are skipped — their phase times describe truncated work.
        """
        used = 0
        for profile in profiles:
            if not isinstance(profile, dict) or not profile.get("exact", True):
                continue
            phases = profile.get("phases")
            counters = profile.get("counters")
            if not isinstance(phases, dict) or not isinstance(counters, dict):
                continue
            plan = self._attribute_plan(profile)
            if plan is None:
                continue
            if self.cost_model.observe(plan, phases, counters):
                used += 1
        self.ingested_profiles += used
        return used

    @staticmethod
    def _attribute_plan(profile: dict) -> Optional[Plan]:
        notes = profile.get("notes") or {}
        plan = parse_plan(notes.get("plan", ""))
        if plan is not None:
            return plan
        if int(profile.get("shards", 0) or 0) > 0:
            return None  # unplanned sharded run: phases are not serial-shaped
        paths = (
            str(notes.get("lower_bound_path", "")),
            str(notes.get("verification_path", "")),
        )
        if any(path.startswith("numpy") for path in paths):
            return Plan(kernel="numpy")
        if any(paths):
            return Plan(kernel="python")
        return None

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    def counters(self) -> Dict[str, int]:
        with self._lock:
            return {
                "planner_decisions": self.decisions,
                "planner_memo_hits": self.memo_hits,
                "planner_observed_queries": self.observed_queries,
                "planner_ingested_profiles": self.ingested_profiles,
                "planner_model_version": self.cost_model.version,
            }


def resolve_planner(planner) -> Optional[Planner]:
    """Coerce a planner argument (name / instance / None) to a planner.

    ``"static"`` and ``None`` resolve to ``None`` — no planner object,
    the engines' historical code path with zero added work per query.
    """
    if planner is None or isinstance(planner, Planner):
        return planner
    if planner == "static":
        return None
    if planner == "adaptive":
        return AdaptivePlanner()
    raise InvalidQueryError(f"planner must be one of {PLANNER_NAMES}")
