"""Cost-model-driven adaptive query planning (ROADMAP item 3).

The engine stack has many performance knobs — kernel backend, parallel
mode, shard count, lower-bound dispatch, grid-key policy — each covered
by a bit-exact conformance contract, so choosing between them can only
change *speed*, never *answers*.  This package chooses:

* :mod:`repro.planner.plan` — the :class:`Plan` value (the five knobs);
* :mod:`repro.planner.stats` — cheap per-query statistics;
* :mod:`repro.planner.cost` — Eq. (3) extended to whole-plan pricing,
  with online EWMA calibration from observed phase timings;
* :mod:`repro.planner.adaptive` — the decision procedure, decision
  memoization per ``ceil(r)`` group, and the telemetry feedback loops.

Layering: the planner sits *below* the engines — the phase pipeline
imports it — and therefore imports nothing from the query machinery
(``tests/test_layering.py`` pins it to ``repro.errors`` only).  See
``docs/planner.md`` for the statistics → cost model → decision →
feedback walk-through.
"""

from repro.planner.adaptive import (
    PLANNER_NAMES,
    AdaptivePlanner,
    Decision,
    FixedPlanner,
    Planner,
    resolve_planner,
)
from repro.planner.cost import CostModel, estimate_units
from repro.planner.plan import (
    GRID_KEYS_CHOICES,
    LB_DISPATCH_CHOICES,
    PLAN_KERNELS,
    PLAN_MODES,
    Plan,
    parse_plan,
)
from repro.planner.stats import (
    CollectionProfile,
    QueryStatistics,
    capture_statistics,
    collection_profile,
    statistics_from_profile,
)

__all__ = [
    "AdaptivePlanner",
    "CollectionProfile",
    "CostModel",
    "Decision",
    "FixedPlanner",
    "GRID_KEYS_CHOICES",
    "LB_DISPATCH_CHOICES",
    "PLANNER_NAMES",
    "PLAN_KERNELS",
    "PLAN_MODES",
    "Plan",
    "Planner",
    "QueryStatistics",
    "capture_statistics",
    "collection_profile",
    "estimate_units",
    "parse_plan",
    "resolve_planner",
    "statistics_from_profile",
]
