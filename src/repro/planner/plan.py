"""The plan: one query's resolved execution knobs.

A :class:`Plan` is the planner's entire output — five knobs, each of
which is already covered by a bit-exact conformance contract elsewhere
in the codebase, so *any* plan produces the same answer and only the
speed varies:

==============  =====================================================
knob            bit-exactness guarantee
==============  =====================================================
``kernel``      kernel conformance suite (``tests/test_kernel_
                conformance.py``): every backend reproduces the
                reference keys, bounds, candidates, scores, counters
``mode``        shard conformance suite: the sharded merge replays the
                serial best-first loop (``tests/test_shard_
                conformance.py``), simulated mode shares the phase
                functions outright
``shards``      the shard router's exact Lemma-2 halos make the answer
                independent of the shard count
``lb_dispatch`` both lower-bounding paths are pinned bit-identical in
                ``tests/test_lower_bound.py``
``grid_keys``   the :class:`~repro.grid.cache.LargeKeyCache` stores
                exactly the keys grid mapping would recompute
==============  =====================================================

Plans serialize to/from the compact ``describe()`` note string that
rides in ``MIOResult.notes["plan"]`` and the telemetry profile stream,
which is how the adaptive planner recognizes its own decisions when it
re-ingests profiles offline (:meth:`~repro.planner.adaptive.
AdaptivePlanner.ingest_profiles`).
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Optional

from repro.errors import InvalidQueryError

#: Kernel backends a plan may name (mirrors ``repro.kernels.KERNEL_NAMES``
#: minus ``"auto"`` — a plan is always fully resolved).
PLAN_KERNELS = ("python", "numpy")

#: Execution modes a plan may name.  ``"serial"`` is the single-process
#: reference pipeline; ``"sharded"`` fans out over worker processes.
#: (The legacy ``"simulated"`` schedule study is not plannable: it
#: exists to *measure* schedules, not to win wall-clock.)
PLAN_MODES = ("serial", "sharded")

#: LOWER-BOUNDING dispatch: ``"auto"`` keeps the measured row-count
#: switch (``LOWER_BOUND_DISPATCH_MIN_ROWS``), the other two force a
#: side.  Only meaningful on the numpy kernel; the reference kernel has
#: a single path and ignores it.
LB_DISPATCH_CHOICES = ("auto", "seq", "vectorized")

#: Grid-key resolution policy: ``"auto"``/``"cached"`` let GRID-MAPPING
#: read large-cell keys from the session's ceil(r)-keyed
#: :class:`~repro.grid.cache.LargeKeyCache` when one is attached;
#: ``"fresh"`` recomputes them (the vectorized floor can beat the
#: per-object cache walk on large collections under the numpy kernel).
GRID_KEYS_CHOICES = ("auto", "cached", "fresh")


@dataclass(frozen=True)
class Plan:
    """One query's resolved execution knobs (validated, immutable)."""

    kernel: str = "python"
    mode: str = "serial"
    shards: int = 1
    lb_dispatch: str = "auto"
    grid_keys: str = "auto"

    def __post_init__(self) -> None:
        if self.kernel not in PLAN_KERNELS:
            raise InvalidQueryError(f"plan kernel must be one of {PLAN_KERNELS}")
        if self.mode not in PLAN_MODES:
            raise InvalidQueryError(f"plan mode must be one of {PLAN_MODES}")
        if self.shards < 1:
            raise InvalidQueryError("plan shards must be at least 1")
        if self.mode == "serial" and self.shards != 1:
            raise InvalidQueryError("a serial plan carries exactly one shard")
        if self.lb_dispatch not in LB_DISPATCH_CHOICES:
            raise InvalidQueryError(
                f"plan lb_dispatch must be one of {LB_DISPATCH_CHOICES}"
            )
        if self.grid_keys not in GRID_KEYS_CHOICES:
            raise InvalidQueryError(
                f"plan grid_keys must be one of {GRID_KEYS_CHOICES}"
            )

    def describe(self) -> str:
        """The compact note string (``MIOResult.notes["plan"]``)."""
        return (
            f"kernel={self.kernel} mode={self.mode} shards={self.shards} "
            f"lb={self.lb_dispatch} grid={self.grid_keys}"
        )

    def with_kernel(self, kernel: str) -> "Plan":
        return replace(self, kernel=kernel)


#: Field-name mapping between ``describe()`` tokens and Plan fields.
_DESCRIBE_FIELDS = {
    "kernel": "kernel",
    "mode": "mode",
    "shards": "shards",
    "lb": "lb_dispatch",
    "grid": "grid_keys",
}


def parse_plan(note: str) -> Optional[Plan]:
    """Inverse of :meth:`Plan.describe` (None for malformed notes).

    Used when re-ingesting telemetry profiles: a profile whose
    ``notes["plan"]`` fails to parse is simply skipped, never fatal.
    """
    fields = {}
    try:
        for token in str(note).split():
            key, _, value = token.partition("=")
            field = _DESCRIBE_FIELDS.get(key)
            if field is None:
                return None
            fields[field] = int(value) if field == "shards" else value
        if set(fields) != set(_DESCRIBE_FIELDS.values()):
            return None
        return Plan(**fields)
    except (ValueError, InvalidQueryError):
        return None
