"""Cheap per-query statistics: everything the planner may look at.

The planner must cost less than the work it saves, so every statistic
here is either O(1) to read (collection shape, cache presence, engine
capacity) or computed once per collection and memoized
(:func:`collection_profile` walks the bounds a single time and caches
the result on a weak reference, so repeated queries — the only case
where planning pays at all — read it for free).

The module is duck-typed on purpose: a "collection" is anything with
``n`` / ``total_points`` / ``dimension`` and optionally ``bounds()``
returning a ``(lows, highs)`` pair of per-axis sequences.  That keeps
``repro.planner`` importable below every other layer (the layering
lint pins it to ``repro.errors`` only).
"""

from __future__ import annotations

import math
import weakref
from dataclasses import dataclass, replace
from typing import Optional


@dataclass(frozen=True)
class CollectionProfile:
    """Shape-and-density summary of one collection (computed once)."""

    n: int
    total_points: int
    dimension: int
    #: Product of per-axis extents (>= 1e-9; degenerate boxes clamp).
    volume: float
    #: Points per unit volume.
    density: float

    @property
    def mean_points(self) -> float:
        return self.total_points / self.n if self.n else 0.0


#: ``id(collection)`` is unsafe (ids recycle); a weak-keyed map keeps the
#: profile exactly as long as the collection lives.
_PROFILE_CACHE: "weakref.WeakKeyDictionary" = weakref.WeakKeyDictionary()


def collection_profile(collection) -> CollectionProfile:
    """The memoized :class:`CollectionProfile` for one collection."""
    try:
        cached = _PROFILE_CACHE.get(collection)
    except TypeError:  # unhashable/unweakrefable duck — profile uncached
        cached = None
    if cached is not None:
        return cached
    n = int(getattr(collection, "n", 0) or 0)
    total_points = int(getattr(collection, "total_points", 0) or 0)
    dimension = int(getattr(collection, "dimension", 2) or 2)
    volume = 1.0
    bounds = getattr(collection, "bounds", None)
    if callable(bounds) and total_points:
        try:
            lows, highs = bounds()
            for low, high in zip(lows, highs):
                volume *= max(float(high) - float(low), 1e-9)
        except Exception:
            volume = 1.0
    volume = max(volume, 1e-9)
    profile = CollectionProfile(
        n=n,
        total_points=total_points,
        dimension=dimension,
        volume=volume,
        density=total_points / volume,
    )
    try:
        _PROFILE_CACHE[collection] = profile
    except TypeError:
        pass
    return profile


@dataclass(frozen=True)
class QueryStatistics:
    """One query's planning inputs (collection shape + context)."""

    # -- collection shape ------------------------------------------------
    n: int
    total_points: int
    dimension: int
    density: float
    # -- the query -------------------------------------------------------
    r: float
    k: int
    ceil_r: int
    # -- cache / label context ------------------------------------------
    #: Section III-D labels exist for this ceiling (grid mapping skips
    #: labeled-useless points, shrinking every downstream phase).
    labels_available: bool = False
    #: A session :class:`~repro.grid.cache.LargeKeyCache` is attached.
    key_cache: bool = False
    #: A session lower-bound cache is attached (an exact-``r`` repeat
    #: skips LOWER-BOUNDING entirely; the planner treats it as a hint).
    lower_cache: bool = False
    # -- engine capacity -------------------------------------------------
    cores: int = 1
    #: The owning engine can run the sharded pipeline.
    sharding_available: bool = False
    #: The numpy kernel can serve in this process (feature detection +
    #: kill switch, captured by the caller so this module stays
    #: dependency-free).
    numpy_available: bool = False
    #: Observed max/mean shard-load ratio from the shard router's plan
    #: cache (1.0 = balanced or unknown; larger = skewed, discounting
    #: the predicted parallel speedup).
    plan_cache_balance: float = 1.0

    def __post_init__(self) -> None:
        object.__setattr__(self, "ceil_r", int(self.ceil_r))

    @property
    def mean_points(self) -> float:
        return self.total_points / self.n if self.n else 0.0

    def cache_key(self) -> tuple:
        """The decision-memo key: every field a decision depends on.

        Same statistics => same decision (the planner is a deterministic
        function of statistics and calibration state), so batches keyed
        by ``ceil(r)`` plan once per group.
        """
        return (
            self.n,
            self.total_points,
            self.dimension,
            round(self.density, 12),
            self.ceil_r,
            self.k > 1,
            self.labels_available,
            self.key_cache,
            self.lower_cache,
            self.cores,
            self.sharding_available,
            self.numpy_available,
            round(self.plan_cache_balance, 3),
        )

    def scaled(self, factor: float) -> "QueryStatistics":
        """Same workload with ``factor``x the points (density scales too,
        the extent being a property of the space, not the sample) —
        the monotonicity tests' knob."""
        return replace(
            self,
            n=max(1, int(self.n * factor)),
            total_points=max(1, int(self.total_points * factor)),
            density=self.density * factor,
        )


def capture_statistics(
    collection,
    r: float,
    k: int = 1,
    *,
    labels_available: bool = False,
    key_cache: bool = False,
    lower_cache: bool = False,
    cores: int = 1,
    sharding_available: bool = False,
    numpy_available: bool = False,
    plan_cache_balance: float = 1.0,
) -> QueryStatistics:
    """Snapshot one query's :class:`QueryStatistics` (the cheap path)."""
    profile = collection_profile(collection)
    return QueryStatistics(
        n=profile.n,
        total_points=profile.total_points,
        dimension=profile.dimension,
        density=profile.density,
        r=float(r),
        k=int(k),
        ceil_r=math.ceil(r),
        labels_available=bool(labels_available),
        key_cache=bool(key_cache),
        lower_cache=bool(lower_cache),
        cores=max(1, int(cores)),
        sharding_available=bool(sharding_available),
        numpy_available=bool(numpy_available),
        plan_cache_balance=max(1.0, float(plan_cache_balance)),
    )


def statistics_from_profile(profile: dict) -> Optional[QueryStatistics]:
    """Partial statistics from one telemetry profile dict (PR 8 schema).

    Offline re-ingestion only knows what the profile recorded (``n``,
    ``r``, ``k``, ``ceil_r``, counters); shape fields the profile lacks
    fall back to neutral values.  Returns None when the profile is too
    malformed to use.
    """
    try:
        r = float(profile["r"])
        n = int(profile.get("n", 0))
    except (KeyError, TypeError, ValueError):
        return None
    if n <= 0 or not r > 0:
        return None
    counters = profile.get("counters") or {}
    mapped = int(counters.get("mapped_points", 0) or 0)
    return QueryStatistics(
        n=n,
        total_points=max(mapped, n),
        dimension=2,
        density=0.0,
        r=r,
        k=int(profile.get("k", 1) or 1),
        ceil_r=int(profile.get("ceil_r", math.ceil(r)) or math.ceil(r)),
    )
