"""Query result and statistics containers.

Every algorithm in the repository (BIGrid engine, baselines, parallel
engine) reports its answer through :class:`MIOResult` so the benchmark
harness can compare them uniformly.  ``phases`` carries the per-operation
times that Table II of the paper breaks down (grid mapping, lower-bounding,
upper-bounding, verification, label I/O); ``counters`` carries pruning and
work statistics the experiments discuss.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple


@dataclass
class PhaseStats:
    """Mutable accumulator used while a query runs."""

    phases: Dict[str, float] = field(default_factory=dict)
    counters: Dict[str, int] = field(default_factory=dict)

    def add_time(self, phase: str, seconds: float) -> None:
        self.phases[phase] = self.phases.get(phase, 0.0) + seconds

    def add_count(self, counter: str, amount: int = 1) -> None:
        self.counters[counter] = self.counters.get(counter, 0) + amount

    def set_count(self, counter: str, amount: int) -> None:
        self.counters[counter] = amount


@dataclass
class MIOResult:
    """The answer to an MIO query plus run statistics.

    ``winner``/``score`` always describe the single most interactive object
    (Definition 1; ties broken arbitrarily).  For top-k queries ``topk``
    additionally lists ``(oid, score)`` pairs in descending score order, and
    ``winner``/``score`` mirror its first entry.
    """

    algorithm: str
    r: float
    winner: int
    score: int
    topk: Optional[List[Tuple[int, int]]] = None
    phases: Dict[str, float] = field(default_factory=dict)
    counters: Dict[str, int] = field(default_factory=dict)
    memory_bytes: int = 0
    #: Free-form floats (e.g. the parallel engine's per-phase serial times
    #: and core loads) that don't belong in ``phases``/``counters``.
    extra: Dict[str, float] = field(default_factory=dict)
    #: False for an *anytime* answer returned under an expired deadline:
    #: ``score`` is then a verified lower bound on the true optimum (the
    #: best-first loop's intermediate state is correct by Corollary 1) and
    #: ``counters["candidates_settled"]`` says how far verification got.
    exact: bool = True
    #: Degradation notes, e.g. ``notes["degraded_backend"] = "roaring->ewah"``
    #: when the requested bitset backend was unavailable and a fallback ran.
    notes: Dict[str, str] = field(default_factory=dict)

    @property
    def total_time(self) -> float:
        """Sum of all phase times (the run time the figures plot)."""
        return sum(self.phases.values())

    def phase_time(self, phase: str) -> float:
        """Time of one phase, 0.0 if the phase did not run."""
        return self.phases.get(phase, 0.0)

    def __repr__(self) -> str:
        marker = "" if self.exact else ", exact=False"
        return (
            f"MIOResult(algorithm={self.algorithm!r}, r={self.r}, "
            f"winner={self.winner}, score={self.score}, "
            f"time={self.total_time:.4f}s{marker})"
        )
