"""Distance primitives shared by the index, the baselines, and the tests.

All algorithms in the paper reduce to one predicate: do two point sets have
at least one pair within Euclidean distance ``r``?  The helpers here answer
it with vectorized numpy kernels and early exit, which is the Python
equivalent of the paper's scalar inner loops with ``break`` (Algorithm 1,
lines 7-12).
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

#: Rows of the first operand processed per vectorized block.  Small enough to
#: keep early exit effective, large enough to amortize numpy call overhead.
_BLOCK_ROWS = 64


def euclidean(p: np.ndarray, q: np.ndarray) -> float:
    """Euclidean distance between two points."""
    diff = np.asarray(p, dtype=np.float64) - np.asarray(q, dtype=np.float64)
    return float(np.sqrt(np.dot(diff, diff)))


def squared_distances_to(point: np.ndarray, points: np.ndarray) -> np.ndarray:
    """Squared distances from one point to each row of ``points``."""
    diff = points - point
    return np.einsum("ij,ij->i", diff, diff)


def any_within(point: np.ndarray, points: np.ndarray, r: float) -> bool:
    """Whether any row of ``points`` lies within distance ``r`` of ``point``."""
    if len(points) == 0:
        return False
    return bool(np.min(squared_distances_to(point, points)) <= r * r)


def count_within(point: np.ndarray, points: np.ndarray, r: float) -> int:
    """Number of rows of ``points`` within distance ``r`` of ``point``."""
    if len(points) == 0:
        return 0
    return int(np.count_nonzero(squared_distances_to(point, points) <= r * r))


def point_sets_interact(points_a: np.ndarray, points_b: np.ndarray, r: float) -> bool:
    """Whether the two point sets have a pair within distance ``r``.

    This is the interaction predicate of Definition 1.  Distances are
    evaluated block-by-block so a hit in an early block skips the rest,
    mirroring the early ``break`` of the nested-loop algorithm.
    """
    if len(points_a) == 0 or len(points_b) == 0:
        return False
    if len(points_a) > len(points_b):
        points_a, points_b = points_b, points_a
    r_squared = r * r
    b_norms = np.einsum("ij,ij->i", points_b, points_b)
    for start in range(0, len(points_a), _BLOCK_ROWS):
        block = points_a[start:start + _BLOCK_ROWS]
        a_norms = np.einsum("ij,ij->i", block, block)
        # ||a - b||^2 = ||a||^2 + ||b||^2 - 2 a.b, computed for the block.
        squared = a_norms[:, None] + b_norms[None, :] - 2.0 * (block @ points_b.T)
        if np.min(squared) <= r_squared + 1e-12:
            return True
    return False


def min_pair_distance(points_a: np.ndarray, points_b: np.ndarray) -> float:
    """Distance of the closest pair across the two point sets."""
    if len(points_a) == 0 or len(points_b) == 0:
        return float("inf")
    if len(points_a) > len(points_b):
        points_a, points_b = points_b, points_a
    b_norms = np.einsum("ij,ij->i", points_b, points_b)
    best = np.inf
    for start in range(0, len(points_a), _BLOCK_ROWS):
        block = points_a[start:start + _BLOCK_ROWS]
        a_norms = np.einsum("ij,ij->i", block, block)
        squared = a_norms[:, None] + b_norms[None, :] - 2.0 * (block @ points_b.T)
        block_min = float(np.min(squared))
        if block_min < best:
            best = block_min
    return float(np.sqrt(max(best, 0.0)))


def bounding_box(points: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
    """(min corner, max corner) of a point set."""
    if len(points) == 0:
        raise ValueError("cannot bound an empty point set")
    return points.min(axis=0), points.max(axis=0)


def boxes_within(
    lo_a: np.ndarray,
    hi_a: np.ndarray,
    lo_b: np.ndarray,
    hi_b: np.ndarray,
    r: Optional[float] = None,
) -> bool:
    """Whether two axis-aligned boxes are within gap ``r`` (overlap if None)."""
    gap = np.maximum(0.0, np.maximum(lo_a - hi_b, lo_b - hi_a))
    if r is None:
        return bool(np.all(gap <= 0.0))
    return bool(np.dot(gap, gap) <= r * r)
