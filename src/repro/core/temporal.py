"""Temporal MIO queries (Appendix B).

Objects carry a timestamp per point, and two objects interact iff they have
a pair of points with ``dist(p, p') <= r`` **and** ``|t - t'| <= delta``.
Following the appendix, the time domain is decomposed into disjoint
sub-domains of width ``delta`` and a BIGrid is built per sub-domain:

* certain pairs (lower bound) come from points sharing a small cell in the
  *same* sub-domain (same bin implies ``|t - t'| < delta``);
* possible pairs (upper bound / verification) come from the cell and its
  adjacent cells in the *same or adjacent* sub-domains.

We realize this with one grid whose keys are ``(bin, spatial key...)``:
treating the bin as an extra grid axis makes "adjacent sub-domain, adjacent
cell" exactly the standard adjacency of the combined key, so the large-grid
machinery applies unchanged.  ``delta = 0`` is the appendix's special case:
one sub-domain per distinct timestamp (bins are then only an upper-bound
relaxation across ids; verification checks ``|t - t'| <= delta`` exactly,
so the answer stays exact).
"""

from __future__ import annotations

from typing import Dict, List, Set, Tuple

import numpy as np

from repro.bitset.factory import bitset_class
from repro.core.objects import ObjectCollection
from repro.core.pipeline import PhasePipeline, QueryContext, Stage
from repro.core.query import MIOResult
from repro.core.verification import bits_of
from repro.grid.keys import Key, compute_keys, large_cell_width, small_cell_width
from repro.grid.large_grid import LargeGrid
from repro.grid.small_grid import SmallGrid


class _TemporalStage(Stage):
    """Base flags for the temporal stage set.

    The temporal variant predates the fault points and has no deadline
    parameter, so both boundary middlewares stay off; phase timing and
    (when a tracer is ever attached) spans come from the orchestrator.
    """

    trips_fault = False
    checks_deadline = False


class _TemporalGridMapping(_TemporalStage):
    name = "grid_mapping"

    def run(self, ctx: QueryContext, span) -> None:
        index = _TemporalBIGrid.build(ctx.collection, ctx.r, ctx.delta, ctx.backend)
        ctx.index = index
        ctx.stats.set_count("small_cells", len(index.small_grid))
        ctx.stats.set_count("large_cells", len(index.large_grid))
        ctx.stats.set_count("time_bins", index.bin_count)


class _TemporalLowerBounding(_TemporalStage):
    name = "lower_bounding"

    def run(self, ctx: QueryContext, span) -> None:
        ctx.lower_values, ctx.tau_max = ctx.index.lower_bounds()


class _TemporalUpperBounding(_TemporalStage):
    name = "upper_bounding"

    def run(self, ctx: QueryContext, span) -> None:
        ctx.candidates = ctx.index.upper_bound_candidates(ctx.tau_max)
        ctx.stats.set_count("candidates", len(ctx.candidates))


class _TemporalVerification(_TemporalStage):
    name = "verification"

    def run(self, ctx: QueryContext, span) -> None:
        winner, score, verified = ctx.index.verify(ctx.candidates, ctx.r, ctx.delta)
        ctx.winner, ctx.score, ctx.verified = winner, score, verified
        ctx.stats.set_count("verified_objects", verified)


class _TemporalFinalize(_TemporalStage):
    traced = False
    timed = False

    def run(self, ctx: QueryContext, span) -> None:
        ctx.result = MIOResult(
            algorithm="bigrid-temporal",
            r=ctx.r,
            winner=ctx.winner,
            score=ctx.score,
            phases=ctx.stats.phases,
            counters=ctx.stats.counters,
            memory_bytes=ctx.index.memory_bytes(),
        )


_TEMPORAL_PIPELINE = PhasePipeline(
    (
        _TemporalGridMapping(),
        _TemporalLowerBounding(),
        _TemporalUpperBounding(),
        _TemporalVerification(),
        _TemporalFinalize(),
    ),
    engine="temporal",
    root_attributes=lambda ctx: {"r": ctx.r, "delta": ctx.delta},
)


class TemporalMIOEngine:
    """MIO queries with a temporal threshold ``delta`` (Appendix B).

    Runs the shared :class:`~repro.core.pipeline.PhasePipeline` with a
    ``(bin, key)``-indexed stage set: the Appendix B renditions of
    Algorithms 4-6 over one fused grid.
    """

    def __init__(self, collection: ObjectCollection, backend: str = "ewah") -> None:
        if not collection.has_timestamps():
            raise ValueError("temporal MIO queries require per-point timestamps")
        self.collection = collection
        self.backend = backend

    def query(self, r: float, delta: float) -> MIOResult:
        """The most interactive object under both ``r`` and ``delta``."""
        if r <= 0:
            raise ValueError("the distance threshold r must be positive")
        if delta < 0:
            raise ValueError("the temporal threshold delta must be non-negative")
        ctx = QueryContext(
            collection=self.collection, r=r, backend=self.backend, engine=self
        )
        ctx.delta = delta
        return _TEMPORAL_PIPELINE.run(ctx)


class _TemporalBIGrid:
    """Per-sub-domain grids fused into one structure via (bin, key) keys."""

    def __init__(
        self,
        collection: ObjectCollection,
        small_grid: SmallGrid,
        large_grid: LargeGrid,
        key_lists: List[Set[Key]],
        object_groups: List[Dict[Key, List[int]]],
        bin_count: int,
    ) -> None:
        self.collection = collection
        self.small_grid = small_grid
        self.large_grid = large_grid
        self.key_lists = key_lists
        self.object_groups = object_groups
        self.bin_count = bin_count

    @classmethod
    def build(
        cls,
        collection: ObjectCollection,
        r: float,
        delta: float,
        backend: str,
    ) -> "_TemporalBIGrid":
        bitset_cls = bitset_class(backend)
        dimension = collection.dimension
        s_width = small_cell_width(r, dimension)
        l_width = large_cell_width(r)
        # The grids key on (bin, spatial...) tuples; dimension+1 only affects
        # the per-entry memory estimate.
        small_grid = SmallGrid(s_width, dimension + 1, bitset_cls)
        large_grid = LargeGrid(l_width, dimension + 1, bitset_cls)
        key_lists: List[Set[Key]] = [set() for _ in range(collection.n)]
        object_groups: List[Dict[Key, List[int]]] = [{} for _ in range(collection.n)]

        bin_of = _binning(collection, delta)
        bin_count = 0

        for obj in collection:
            oid = obj.oid
            bins = bin_of(obj.timestamps)
            bin_count = max(bin_count, int(max(bins)) + 1 if len(bins) else 0)
            small_keys = compute_keys(obj.points, s_width)
            large_keys = compute_keys(obj.points, l_width)
            groups = object_groups[oid]
            for point_index in range(obj.num_points):
                bin_id = int(bins[point_index])
                small_key = (bin_id,) + small_keys[point_index]
                reached, first_oid = small_grid.add_point(oid, small_key)
                if reached == 2:
                    key_lists[first_oid].add(small_key)
                    key_lists[oid].add(small_key)
                elif reached is not None and reached > 2:
                    key_lists[oid].add(small_key)
                large_key = (bin_id,) + large_keys[point_index]
                large_grid.add_point(oid, large_key, point_index)
                groups.setdefault(large_key, []).append(point_index)

        return cls(collection, small_grid, large_grid, key_lists, object_groups, bin_count)

    # ------------------------------------------------------------------
    # Phases (the Appendix B renditions of Algorithms 4-6)
    # ------------------------------------------------------------------

    def lower_bounds(self) -> Tuple[List[int], int]:
        values: List[int] = []
        tau_max = 0
        for oid in range(self.collection.n):
            union = 0
            for key in self.key_lists[oid]:
                union |= self.small_grid.cells[key].bitset.to_int()
            cardinality = union.bit_count()
            lower = cardinality - 1 if cardinality else 0
            values.append(lower)
            tau_max = max(tau_max, lower)
        return values, tau_max

    def upper_bound_candidates(self, tau_max: int) -> List[Tuple[int, int]]:
        candidates: List[Tuple[int, int]] = []
        for oid in range(self.collection.n):
            union = 0
            for key in self.object_groups[oid]:
                union |= self.large_grid.adjacent_union_int(key)
            cardinality = union.bit_count()
            upper = cardinality - 1 if cardinality else 0
            if upper >= tau_max:
                candidates.append((upper, oid))
        candidates.sort(key=lambda entry: (-entry[0], entry[1]))
        return candidates

    def verify(
        self,
        candidates: List[Tuple[int, int]],
        r: float,
        delta: float,
    ) -> Tuple[int, int, int]:
        collection = self.collection
        large_grid = self.large_grid
        r_squared = r * r
        best_oid = -1
        best_score = -1
        verified = 0

        for upper, oid in candidates:
            if upper <= best_score:
                break
            obj = collection[oid]
            confirmed = 1 << oid
            for key, point_indices in self.object_groups[oid].items():
                for point_index in point_indices:
                    pending = large_grid.adjacent_union_int(key) & ~confirmed
                    if not pending:
                        continue
                    remaining = bits_of(pending)
                    point = obj.points[point_index]
                    timestamp = obj.timestamps[point_index]
                    for cell in large_grid.cells[key].neighbor_cells:
                        for candidate_oid in remaining.intersection(cell.postings):
                            posting = cell.postings[candidate_oid]
                            other = collection[candidate_oid]
                            other_points = other.points[posting]
                            other_times = other.timestamps[posting]
                            diff = other_points - point
                            close = np.einsum("ij,ij->i", diff, diff) <= r_squared
                            concurrent = np.abs(other_times - timestamp) <= delta
                            if np.any(close & concurrent):
                                confirmed |= 1 << candidate_oid
                                remaining.discard(candidate_oid)
                        if not remaining:
                            break
            score = confirmed.bit_count() - 1
            verified += 1
            if score > best_score:
                best_score = score
                best_oid = oid

        if best_oid < 0 and candidates:
            best_oid, best_score = candidates[0][1], 0
        return best_oid, best_score, verified

    def memory_bytes(self) -> int:
        return self.small_grid.memory_bytes() + self.large_grid.memory_bytes()


def _binning(collection: ObjectCollection, delta: float):
    """Return a vectorized timestamps -> bin ids function.

    ``delta > 0``: bin ``floor(t / delta)`` (shifted to start at 0).
    ``delta = 0``: one bin per distinct timestamp across the collection.
    """
    all_times = np.concatenate([obj.timestamps for obj in collection])
    if delta > 0:
        # Guard against int64 overflow for very small deltas (bin ids grow
        # as t / delta): below the safe range, bin in arbitrary-precision
        # Python ints instead of numpy int64.
        magnitude = max(abs(float(all_times.min())), abs(float(all_times.max())))
        if magnitude / delta < 2.0 ** 62:
            origin = int(np.floor(all_times.min() / delta))

            def bin_of(timestamps: np.ndarray) -> np.ndarray:
                return np.floor(timestamps / delta).astype(np.int64) - origin

            return bin_of

        # Extreme deltas (denormals) overflow even float division; exact
        # rational arithmetic keeps the binning correct at any scale.
        from fractions import Fraction

        delta_fraction = Fraction(delta)
        origin_big = (Fraction(float(all_times.min())) / delta_fraction).__floor__()

        def bin_of_bigint(timestamps: np.ndarray) -> list:
            return [
                (Fraction(float(t)) / delta_fraction).__floor__() - origin_big
                for t in timestamps
            ]

        return bin_of_bigint

    distinct = {value: index for index, value in enumerate(sorted(set(all_times.tolist())))}

    def bin_of_exact(timestamps: np.ndarray) -> np.ndarray:
        return np.fromiter(
            (distinct[t] for t in timestamps.tolist()), dtype=np.int64, count=len(timestamps)
        )

    return bin_of_exact
