"""Upper-bounding and pruning (Algorithm 5, Lemma 2, Theorem 2).

Any point within ``r`` of ``p`` lies in ``p``'s large-grid cell or one of
its adjacent cells, so OR-ing the adjacent-union bitsets ``b_adj`` over the
distinct large cells an object touches upper-bounds its score.  Objects
whose upper bound falls below the best lower bound cannot be the answer and
are pruned; survivors form ``O_cand``, sorted by upper bound descending for
the best-first verification.

Adjacent-union bitsets are computed at most once per cell per query (the
global key-set memo of Algorithm 5) and memoized on the cell.

This module also performs Labeling-1 and Labeling-2 (Definition 4) when the
caller passes a :class:`~repro.core.labels.PointLabels` to fill, and honors
previously produced labels via ``upper_masks`` (the WITH-LABEL variant:
only points labeled ``11*`` are processed).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional, Tuple

import numpy as np

from repro.core.labels import PointLabels
from repro.core.query import PhaseStats
from repro.grid.bigrid import BIGrid
from repro.resilience import Deadline, checkpoint

#: ``(upper_bound, oid)`` of a surviving candidate.
Candidate = Tuple[int, int]

MaskProvider = Callable[[int], np.ndarray]


@dataclass
class UpperBoundResult:
    """Sorted candidates plus the raw per-object upper bounds."""

    candidates: List[Candidate]
    values: List[int]


def compute_upper_bounds(
    bigrid: BIGrid,
    tau_max_low: int,
    upper_masks: Optional[MaskProvider] = None,
    labeler: Optional[PointLabels] = None,
    stats: Optional[PhaseStats] = None,
    deadline: Optional[Deadline] = None,
) -> UpperBoundResult:
    """UPPER-BOUNDING(O, r, tau_max_low): bound, prune, sort.

    An expired ``deadline`` raises ``QueryTimeout`` between objects (a
    partial candidate set could silently drop the true answer).
    """
    large_grid = bigrid.large_grid
    values: List[int] = []
    candidates: List[Candidate] = []
    groups_processed = 0
    adj_before = large_grid.adj_computed

    for oid in range(bigrid.collection.n):
        checkpoint(deadline, "upper_bounding")
        # One conversion per object: plain-list indexing beats per-group
        # numpy fancy indexing for the small groups real data produces.
        mask = upper_masks(oid).tolist() if upper_masks is not None else None
        # Accumulate on big ints (C-speed word ops); cells keep the
        # compressed form for storage.
        union = 0
        for key, point_indices in bigrid.object_groups[oid].items():
            if mask is not None and not _group_selected(mask, point_indices):
                continue
            groups_processed += 1
            cell = large_grid.cells[key]
            first_union_for_key = cell.adj_int is None
            adjacent = large_grid.adjacent_union_int(key)
            if labeler is not None and first_union_for_key and adjacent.bit_count() == 1:
                # Labeling-1: the whole neighbourhood holds a single object,
                # so every point mapped into this cell is globally useless.
                for cell_oid, posting in cell.postings.items():
                    labeler.mark_grid_useless(cell_oid, posting)
            merged = union | adjacent
            changed = merged != union
            if labeler is not None:
                # Labeling-2: points whose OR contributed nothing.
                skippable = point_indices if not changed else point_indices[1:]
                if skippable:
                    labeler.mark_upper_skippable(oid, skippable)
            union = merged
        cardinality = union.bit_count()
        upper = cardinality - 1 if cardinality else 0
        values.append(upper)
        if upper >= tau_max_low:
            candidates.append((upper, oid))

    # Best-first order: highest upper bound first, oid as a stable tiebreak.
    candidates.sort(key=lambda entry: (-entry[0], entry[1]))

    if stats is not None:
        stats.set_count("upper_groups_processed", groups_processed)
        stats.set_count("adj_unions_computed", large_grid.adj_computed - adj_before)
        stats.set_count("candidates", len(candidates))
        stats.set_count("pruned_objects", bigrid.collection.n - len(candidates))
    return UpperBoundResult(candidates=candidates, values=values)


def _group_selected(mask: List[bool], point_indices: List[int]) -> bool:
    """Whether any point of the group survives the label filter."""
    return any(mask[index] for index in point_indices)
