"""The phase pipeline: one orchestrator for every MIO query variant.

Algorithm 2's filter-and-verification skeleton

    GRID-MAPPING -> LOWER-BOUNDING -> UPPER-BOUNDING -> VERIFICATION

used to be hand-woven separately by the serial engine, the parallel
engine, the temporal engine, and the progressive iterator, each
re-threading the same cross-cutting concerns (tracing spans, fault trips,
deadline checkpoints, phase timing, metric recording) in slightly
different ways.  This module factors the skeleton out:

* :class:`QueryContext` carries one query's inputs (``r``, ``k``,
  deadline, tracer, caches, backend) and accumulates its intermediate
  state (labels, BIGrid, bounds, candidates, verification, result).
* :class:`Stage` is one pipeline step.  A stage declares *what* it
  computes (:meth:`Stage.run`) plus which middleware applies to it via
  four flags -- ``trips_fault``, ``checks_deadline``, ``traced``,
  ``timed`` -- so boilerplate never appears in stage bodies.
* :class:`PhasePipeline` composes stages and applies the middleware
  uniformly: fault trip, deadline checkpoint, span creation, wall-clock
  timing, root-span bookkeeping, trace-derived ``phases``, metric
  recording, and (for the parallel engine) the serial-fallback handler.

An engine is then just a stage list plus a pipeline configuration: the
parallel engine is the *same* orchestrator with parallel stage
implementations (see :mod:`repro.parallel.stages`), the temporal engine
swaps in ``(bin, key)``-indexed stages, and the progressive iterator runs
the filter prefix of the serial stage list.  Serial fallback is the
pipeline's ``fallback`` hook swapping stage implementations mid-run.
A future sharded or async executor is one more stage-implementation set,
not a sixth copy of the skeleton.

Two middleware orderings exist in the wild and both are preserved
exactly: the serial engine trips faults and checkpoints *before* opening
a phase span (a fault aborts the query before the span exists), while
the parallel engine trips them *inside* the span (the span records the
error and the engine-level fallback handles it).  The
``trip_inside_span`` flag selects the ordering per pipeline.
"""

from __future__ import annotations

import heapq
import math
import time
from typing import Any, Callable, Dict, Iterable, List, Optional, Sequence, Tuple

from repro import faults
from repro.bitset.factory import resolve_backend
from repro.core.labels import PointLabels, labels_match_collection
from repro.core.query import MIOResult, PhaseStats
from repro.grid.bigrid import BIGrid
from repro.kernels import numpy_kernel_available, resolve_kernel
from repro.obs import metrics as obs_metrics
from repro.obs.recorders import observe_query
from repro.obs.telemetry import get_telemetry
from repro.obs.trace import NULL_TRACER, Tracer, phase_durations
from repro.planner import Plan, capture_statistics
from repro.resilience import checkpoint


# ----------------------------------------------------------------------
# Shared helpers (deduped from the serial and parallel engines)
# ----------------------------------------------------------------------


def kth_largest(values: Sequence[int], k: int) -> int:
    """The k-th highest value (0 when fewer than ``k`` values exist).

    The pruning threshold of the top-k variant: lower-bounding keeps the
    k-th best lower bound, so upper-bounding prunes objects that cannot
    reach the provisional top-k.
    """
    if k > len(values):
        return 0
    return heapq.nlargest(k, values)[-1]


def batch_order(r_values: Sequence[float]) -> List[int]:
    """Section III-D's sweep order over a batch of thresholds.

    Indices grouped by ``ceil(r)`` ascending, largest ``r`` first within
    each group, ties keeping submission order (the sort is stable): the
    first -- most general -- query of each group produces the labels and
    every other query in the group runs the WITH-LABEL pipeline.
    """
    return sorted(
        range(len(r_values)),
        key=lambda index: (math.ceil(r_values[index]), -r_values[index]),
    )


def run_grouped_sweep(
    r_values: Sequence[float], run_one: Callable[[int], MIOResult]
) -> List[MIOResult]:
    """Run ``run_one(index)`` in :func:`batch_order`; results in caller order.

    The single ceil(r)-grouped sweep implementation behind both
    :meth:`~repro.core.engine.MIOEngine.query_batch` and
    :meth:`~repro.session.QuerySession.query_many`.
    """
    results: List[Optional[MIOResult]] = [None] * len(r_values)
    for index in batch_order(r_values):
        results[index] = run_one(index)
    return results  # type: ignore[return-value]


def verify_mask_provider(
    labels: Optional[PointLabels], r: float, label_reuse: str
):
    """Labeling-3 mask provider, honoring the reuse policy."""
    if labels is None:
        return None
    if label_reuse == "safe" and labels.r != r:
        # Labeling-1 still filters grid mapping; Labeling-3 is withheld.
        return None
    return labels.verify_mask


# ----------------------------------------------------------------------
# Query context
# ----------------------------------------------------------------------


class QueryContext:
    """One query's inputs and accumulated pipeline state.

    Inputs are fixed at construction (engines re-read their own mutable
    configuration -- e.g. a batch-scoped label store -- per query, so a
    module-level pipeline instance is safe to share).  Intermediates are
    written by stages as the pipeline advances; variant pipelines may
    attach extra attributes (the temporal engine stores ``delta`` and its
    fused index here).
    """

    def __init__(
        self,
        collection,
        r: float,
        k: int = 1,
        want_ranking: bool = False,
        deadline=None,
        tracer=None,
        backend: str = "ewah",
        label_store=None,
        label_reuse: str = "safe",
        key_cache=None,
        lower_cache=None,
        engine=None,
        kernel=None,
        shards=None,
        planner=None,
        plan=None,
    ) -> None:
        self.collection = collection
        self.r = r
        self.k = k
        self.want_ranking = want_ranking
        self.deadline = deadline
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self.backend = backend
        self.resolved_backend = backend
        self.label_store = label_store
        self.label_reuse = label_reuse
        self.key_cache = key_cache
        self.lower_cache = lower_cache
        #: The owning engine (or None): stages read engine configuration
        #: (cores, strategies, executor) and publish inspection state
        #: (``last_bigrid``) through it.
        self.engine = engine
        #: Shard-count override for the sharded parallel stages (None:
        #: the engine's configured shard count).
        self.shards: Optional[int] = shards
        self.ceil_r = math.ceil(r)
        self.stats = PhaseStats()
        self.notes: Dict[str, str] = {}
        #: Resolved compute backend for the hot phase loops; an explicit
        #: ``"numpy"`` request degrades to the reference backend (noted)
        #: when numpy cannot serve, mirroring the bitset chain.
        self.kernel = resolve_kernel(kernel)
        if (
            isinstance(kernel, str)
            and kernel not in ("auto", self.kernel.name)
        ):
            self.notes["degraded_kernel"] = f"{kernel}->{self.kernel.name}"
        self.extra: Dict[str, float] = {}
        #: Optional :class:`~repro.planner.adaptive.Planner`: when set,
        #: the planning stage resolves an execution plan per query (and
        #: the pipeline feeds finished timings back).  ``plan`` pre-pins
        #: a decision made at the engine level (the parallel engine
        #: chooses mode/shards before the pipeline is even selected).
        self.planner = planner
        self.plan: Optional[Plan] = plan
        self.plan_decision = None
        self.plan_stats = None
        # -- intermediates -------------------------------------------------
        self.labels: Optional[PointLabels] = None
        self.labeler: Optional[PointLabels] = None
        self.bigrid: Optional[BIGrid] = None
        self.lower = None
        self.threshold: int = 0
        self.upper = None
        self.verification = None
        self.lower_values: Optional[List[int]] = None
        self.lower_bitsets: Optional[List] = None
        self.candidates: Optional[List[Tuple[int, int]]] = None
        self.ranking: Optional[List[Tuple[int, int]]] = None
        self.verified: int = 0
        self.result: Optional[MIOResult] = None
        # -- sharded-pipeline intermediates (repro.parallel.stages) --------
        self.shard_plan = None
        self.shard_outcomes = None
        self.merged = None


# ----------------------------------------------------------------------
# Stages
# ----------------------------------------------------------------------


class Stage:
    """One pipeline step plus its middleware contract.

    Class attributes declare the defaults; constructor keyword overrides
    re-flag an *instance* (e.g. the progressive iterator reuses the
    serial filter stages with ``trips_fault=False, checks_deadline=False``
    to preserve its fault- and checkpoint-free behavior).

    ``name`` is the phase identity used by every middleware: the fault
    injection point, the deadline checkpoint's phase, the span name, and
    the ``PhaseStats`` timing key.  Anonymous (``name=None``) stages are
    glue and must disable all four flags.
    """

    #: Phase name (fault point / checkpoint phase / span / timing key).
    name: Optional[str] = None
    #: Arm ``faults.trip(name)`` at the stage boundary.
    trips_fault: bool = True
    #: Run ``checkpoint(deadline, name)`` at the stage boundary.
    checks_deadline: bool = True
    #: Open a ``tracer.span(name)`` around the stage.
    traced: bool = True
    #: Wrap the stage in ``time.perf_counter`` and ``stats.add_time(name)``.
    timed: bool = True

    def __init__(self, **overrides: Any) -> None:
        for key, value in overrides.items():
            if not hasattr(type(self), key):
                raise AttributeError(f"{type(self).__name__} has no flag {key!r}")
            setattr(self, key, value)

    def active(self, ctx: QueryContext) -> bool:
        """Whether the stage participates in this query (default: always)."""
        return True

    def span_attributes(self, ctx: QueryContext) -> Dict[str, Any]:
        """Attributes the stage's span opens with."""
        return {}

    def run(self, ctx: QueryContext, span) -> None:
        """Do the stage's work, reading and writing ``ctx``."""
        raise NotImplementedError


class BackendResolutionStage(Stage):
    """Backend degradation chain: an unavailable backend downgrades the
    query instead of failing it, and the downgrade is recorded."""

    trips_fault = False
    checks_deadline = False
    traced = False
    timed = False

    def run(self, ctx: QueryContext, span) -> None:
        _, resolved = resolve_backend(ctx.backend)
        ctx.resolved_backend = resolved
        if resolved != ctx.backend:
            ctx.notes["degraded_backend"] = f"{ctx.backend}->{resolved}"
            ctx.stats.set_count("degraded_backend", 1)
            obs_metrics.counter(
                "repro_backend_degradations_total",
                "Bitset backend downgrades (requested backend unavailable)",
            ).inc(requested=ctx.backend, resolved=resolved)


class PlanningStage(Stage):
    """Resolve this query's execution plan (kernel / dispatch / caches).

    Inert unless the context carries a planner or a pre-pinned plan, so
    static configurations pay nothing.  When the engine already decided
    (the parallel engine picks mode and shard count before selecting a
    pipeline), the stage only *applies* the plan; otherwise it captures
    the cheap statistics and asks the planner, with the engine's static
    configuration as the baseline the decision must beat.

    Applying a plan can only re-select between bit-exact implementations
    (see :mod:`repro.planner.plan`), so this stage changes speed, never
    answers — ``tests/test_planner_parity.py`` holds it to that.
    """

    name = "planning"
    trips_fault = False
    checks_deadline = False

    def active(self, ctx: QueryContext) -> bool:
        return ctx.planner is not None or ctx.plan is not None

    def run(self, ctx: QueryContext, span) -> None:
        if ctx.plan is None:
            stats = capture_statistics(
                ctx.collection,
                ctx.r,
                k=ctx.k,
                labels_available=(
                    ctx.label_store is not None and ctx.label_store.has(ctx.ceil_r)
                ),
                key_cache=ctx.key_cache is not None,
                lower_cache=ctx.lower_cache is not None,
                cores=1,
                sharding_available=False,
                numpy_available=numpy_kernel_available(),
            )
            baseline = Plan(kernel=ctx.kernel.name)
            decision = ctx.planner.decide(stats, baseline)
            ctx.plan = decision.plan
            ctx.plan_stats = stats
            ctx.plan_decision = decision
        plan = ctx.plan
        if plan.kernel != ctx.kernel.name:
            resolved = resolve_kernel(plan.kernel)
            if resolved.name != plan.kernel:
                ctx.notes["degraded_kernel"] = f"{plan.kernel}->{resolved.name}"
            ctx.kernel = resolved
        ctx.notes["plan"] = plan.describe()
        if ctx.planner is not None:
            ctx.notes["planner"] = ctx.planner.name
        decision = ctx.plan_decision
        if decision is not None:
            if decision.reason:
                ctx.notes["plan_reason"] = decision.reason
            # Predicted per-phase costs ride in ``extra`` so ``repro
            # explain`` can render predicted-vs-actual from the result
            # alone (the obs layer never imports the planner).
            for phase, seconds in decision.predicted.items():
                ctx.extra[f"predicted:{phase}"] = seconds
        span.set_attributes(plan=plan.describe(), kernel=ctx.kernel.name)


class LabelInputStage(Stage):
    """Section III-D label lookup (and staleness guard) for ``ceil(r)``.

    A missed lookup reads no labels: its span is renamed ``label_lookup``
    so it stays visible in the trace without counting as a phase
    (``phase_durations`` must mirror the untraced ``PhaseStats``
    semantics), and a fresh labeler is armed so this query produces the
    group's labels.
    """

    name = "label_input"
    trips_fault = False
    checks_deadline = False
    timed = False  # times itself: only a *hit* reads labels (a phase)

    def active(self, ctx: QueryContext) -> bool:
        return ctx.label_store is not None

    def run(self, ctx: QueryContext, span) -> None:
        started = time.perf_counter()
        labels = ctx.label_store.get(ctx.ceil_r)
        if labels is not None and not labels_match_collection(labels, ctx.collection):
            # Stored labels describe a different collection (stale store);
            # ignore them and relabel rather than risk a wrong answer.
            labels = None
        if labels is not None:
            ctx.stats.add_time("label_input", time.perf_counter() - started)
        else:
            span.rename("label_lookup")
        span.set_attributes(cache_hit=labels is not None)
        ctx.labels = labels
        if labels is None:
            ctx.labeler = PointLabels.for_collection(ctx.collection, ctx.r)


class GridMappingStage(Stage):
    """GRID-MAPPING (Algorithm 3), skipping ``label(p) = 0**`` points."""

    name = "grid_mapping"

    def run(self, ctx: QueryContext, span) -> None:
        # The plan's grid-key policy: "fresh" skips the session's
        # ceil(r)-keyed large-key cache and recomputes (the cache stores
        # exactly the keys recomputation yields, so both are bit-exact;
        # the vectorized recompute can win on large collections).
        use_key_cache = ctx.key_cache is not None and (
            ctx.plan is None or ctx.plan.grid_keys != "fresh"
        )
        bigrid = ctx.kernel.build_bigrid(
            ctx.collection,
            ctx.r,
            backend=ctx.resolved_backend,
            point_filter=ctx.labels.grid_mask if ctx.labels is not None else None,
            deadline=ctx.deadline,
            large_keys_provider=(
                ctx.key_cache.provider(ctx.collection, ctx.ceil_r)
                if use_key_cache
                else None
            ),
        )
        ctx.bigrid = bigrid
        if ctx.engine is not None:
            ctx.engine.last_bigrid = bigrid
        ctx.stats.set_count("small_cells", len(bigrid.small_grid))
        ctx.stats.set_count("large_cells", len(bigrid.large_grid))
        ctx.stats.set_count("mapped_points", bigrid.mapped_points)
        span.set_attributes(
            small_cells=len(bigrid.small_grid),
            large_cells=len(bigrid.large_grid),
            mapped_points=bigrid.mapped_points,
        )


class LowerBoundingStage(Stage):
    """LOWER-BOUNDING (Algorithm 4), with the exact-``r`` cache in front.

    The WITH-LABEL variant keeps the union bitsets to seed verification;
    so does any query under a :class:`~repro.core.lower_bound.
    LowerBoundCache`, which makes cached entries serve label-free and
    with-label queries alike.  Also derives the pruning threshold (the
    top-k variant keeps the k-th best lower bound).
    """

    name = "lower_bounding"

    def run(self, ctx: QueryContext, span) -> None:
        lower = (
            ctx.lower_cache.get(ctx.r, ctx.bigrid.small_grid.bitset_cls)
            if ctx.lower_cache is not None
            else None
        )
        if lower is not None:
            ctx.stats.set_count("lower_cache_hit", 1)
            ctx.stats.set_count("tau_max_low", lower.tau_max)
            span.set_attribute("cache_hit", True)
        else:
            lower = ctx.kernel.lower_bounds(
                ctx.bigrid,
                keep_bitsets=ctx.labels is not None or ctx.lower_cache is not None,
                stats=ctx.stats,
                deadline=ctx.deadline,
                dispatch=(
                    ctx.plan.lb_dispatch if ctx.plan is not None else "auto"
                ),
            )
            if ctx.lower_cache is not None:
                ctx.lower_cache.put(ctx.r, lower)
        span.set_attribute("tau_max_low", lower.tau_max)
        ctx.lower = lower
        ctx.notes["lower_bound_path"] = lower.path
        ctx.threshold = (
            lower.tau_max if ctx.k == 1 else kth_largest(lower.values, ctx.k)
        )


class UpperBoundingStage(Stage):
    """UPPER-BOUNDING + pruning (Algorithm 5)."""

    name = "upper_bounding"

    def run(self, ctx: QueryContext, span) -> None:
        upper = ctx.kernel.upper_bounds(
            ctx.bigrid,
            ctx.threshold,
            upper_masks=ctx.labels.upper_mask if ctx.labels is not None else None,
            labeler=ctx.labeler,
            stats=ctx.stats,
            deadline=ctx.deadline,
        )
        ctx.upper = upper
        span.set_attribute("candidates", len(upper.candidates))


class VerificationStage(Stage):
    """VERIFICATION (Algorithm 6 / top-k variant).

    No boundary checkpoint: from here on an expired deadline degrades to
    an anytime answer instead of raising -- every settled candidate's
    score is exact, so the best one is a correct lower bound on the
    optimum (Corollary 1).
    """

    name = "verification"
    checks_deadline = False

    def run(self, ctx: QueryContext, span) -> None:
        lower = ctx.lower
        verification = ctx.kernel.verify_candidates(
            ctx.bigrid,
            ctx.upper.candidates,
            ctx.r,
            k=ctx.k,
            initial_bitsets=(
                (lambda oid: lower.bitsets[oid])
                if lower.bitsets is not None
                else None
            ),
            verify_masks=verify_mask_provider(ctx.labels, ctx.r, ctx.label_reuse),
            labeler=ctx.labeler,
            stats=ctx.stats,
            deadline=ctx.deadline,
        )
        ctx.verification = verification
        ctx.notes["verification_path"] = verification.path
        ctx.stats.set_count("candidates_total", len(ctx.upper.candidates))
        ctx.stats.set_count("candidates_settled", verification.verified)
        span.set_attributes(
            candidates=len(ctx.upper.candidates),
            settled=verification.verified,
            timed_out=verification.timed_out,
            path=verification.path,
        )


class LabelOutputStage(Stage):
    """Persist a completed labeling pass for later same-ceiling queries.

    Skipped after a verification timeout: a partial labeling pass must
    not be persisted -- its marks are individually sound but the store
    would record the pass as complete for this ``ceil(r)``.
    """

    name = "label_output"
    trips_fault = False
    checks_deadline = False

    def active(self, ctx: QueryContext) -> bool:
        return ctx.labeler is not None and not ctx.verification.timed_out

    def run(self, ctx: QueryContext, span) -> None:
        ctx.label_store.put(ctx.ceil_r, ctx.labeler)
        for kind, count in ctx.labeler.count_cleared().items():
            ctx.stats.set_count(f"labeled_{kind}", count)


class SerialFinalizeStage(Stage):
    """Assemble the serial :class:`MIOResult` (exact or anytime)."""

    trips_fault = False
    checks_deadline = False
    traced = False
    timed = False

    def run(self, ctx: QueryContext, span) -> None:
        if ctx.verification.timed_out:
            ctx.result = self._anytime_result(ctx)
            return
        ranking = ctx.verification.ranking
        if not ranking:
            raise AssertionError(
                "verification produced no answer for a non-empty collection"
            )
        winner, score = ranking[0]
        ctx.result = MIOResult(
            algorithm="bigrid-label" if ctx.labels is not None else "bigrid",
            r=ctx.r,
            winner=winner,
            score=score,
            topk=ranking if ctx.want_ranking else None,
            phases=ctx.stats.phases,
            counters=ctx.stats.counters,
            memory_bytes=ctx.bigrid.memory_bytes(),
            notes=ctx.notes,
            extra=ctx.extra,
        )

    @staticmethod
    def _anytime_result(ctx: QueryContext) -> MIOResult:
        """Best verified answer under an expired deadline (``exact=False``).

        Two certified lower bounds are available: the best *exact* score
        among settled candidates, and the best Lemma-1 lower bound over
        all objects.  Both are correct; the larger one wins.  The result's
        score is therefore always ``<= tau(winner) <=`` the true optimum.
        """
        lower = ctx.lower
        ranking = ctx.verification.ranking
        best_lb_oid = max(
            range(ctx.bigrid.collection.n),
            key=lambda oid: (lower.values[oid], -oid),
        )
        best_lb = lower.values[best_lb_oid]
        if ranking and ranking[0][1] >= best_lb:
            winner, score = ranking[0]
        else:
            winner, score = best_lb_oid, best_lb
        notes = dict(ctx.notes)
        notes["anytime"] = "deadline expired during verification"
        notes["degraded_deadline"] = "verification"
        return MIOResult(
            algorithm="bigrid-label" if ctx.labels is not None else "bigrid",
            r=ctx.r,
            winner=winner,
            score=score,
            topk=ranking if ctx.want_ranking and ranking else None,
            phases=ctx.stats.phases,
            counters=ctx.stats.counters,
            memory_bytes=ctx.bigrid.memory_bytes(),
            exact=False,
            notes=notes,
            extra=ctx.extra,
        )


# ----------------------------------------------------------------------
# Orchestrator
# ----------------------------------------------------------------------


class PhasePipeline:
    """Composes stages and applies every cross-cutting middleware.

    Parameters
    ----------
    stages:
        The stage instances, in execution order.
    engine:
        Label for the root span's ``engine`` attribute and the metric
        recorder (``"serial"``, ``"parallel"``, ``"temporal"``, ...).
    root_attributes:
        ``ctx -> dict`` of extra attributes for the root ``query`` span.
    trip_inside_span:
        False (serial ordering): trip/checkpoint run *before* the phase
        span opens.  True (parallel ordering): they run as the first
        thing *inside* the span, so an injected fault is recorded on the
        span before the fallback handles it.
    derive_phases:
        With a real tracer, overwrite ``result.phases`` from the span
        tree after the root closes -- the trace is the source of truth,
        so tree and result can never disagree.  Off for makespan-reporting
        pipelines, whose spans already carry the reported durations.
    makespan_root:
        Override the root span's wall-clock duration with the result's
        ``total_time`` (simulated-parallel trees must sum like the
        simulated phases, not like host wall-clock).
    observe:
        Feed the finished result to the metrics registry
        (:func:`~repro.obs.recorders.observe_query`).
    fallback / fallback_errors:
        Mid-run stage-implementation swap: when a stage raises one of
        ``fallback_errors``, ``fallback(ctx, cause, root_span)`` produces
        the result instead (the parallel engine re-runs the query through
        the serial stage set).  The fallback result is *not* re-observed
        or phase-derived here -- the substitute pipeline already did both.
    """

    def __init__(
        self,
        stages: Iterable[Stage],
        *,
        engine: str,
        root_attributes: Optional[Callable[[QueryContext], Dict[str, Any]]] = None,
        trip_inside_span: bool = False,
        derive_phases: bool = True,
        makespan_root: bool = False,
        observe: bool = True,
        fallback: Optional[Callable[[QueryContext, Exception, Any], MIOResult]] = None,
        fallback_errors: Tuple[type, ...] = (),
    ) -> None:
        self.stages = tuple(stages)
        self.engine = engine
        self.root_attributes = root_attributes
        self.trip_inside_span = trip_inside_span
        self.derive_phases = derive_phases
        self.makespan_root = makespan_root
        self.observe = observe
        self.fallback = fallback
        self.fallback_errors = tuple(fallback_errors)

    def execute(self, ctx: QueryContext) -> QueryContext:
        """Run the stage list under the middleware (no root span).

        The entry point for pipeline *fragments* -- the progressive
        iterator runs the filter prefix this way and takes over after
        bounding.  Full queries go through :meth:`run`.
        """
        tracer = ctx.tracer
        for stage in self.stages:
            if not stage.active(ctx):
                continue
            name = stage.name
            if not self.trip_inside_span:
                if stage.trips_fault:
                    faults.trip(name)
                if stage.checks_deadline:
                    checkpoint(ctx.deadline, name)
            if stage.traced:
                with tracer.span(name, **stage.span_attributes(ctx)) as span:
                    if self.trip_inside_span:
                        if stage.trips_fault:
                            faults.trip(name)
                        if stage.checks_deadline:
                            checkpoint(ctx.deadline, name)
                    self._invoke(stage, ctx, span)
            else:
                self._invoke(stage, ctx, None)
        return ctx

    @staticmethod
    def _invoke(stage: Stage, ctx: QueryContext, span) -> None:
        if stage.timed:
            started = time.perf_counter()
            stage.run(ctx, span)
            ctx.stats.add_time(stage.name, time.perf_counter() - started)
        else:
            stage.run(ctx, span)

    def run(self, ctx: QueryContext) -> MIOResult:
        """One full query: root span, stages, finalization, recording.

        This is also the telemetry hub's single choke point: when the
        caller did not bring its own tracer, the hub's head sampler may
        attach one here (always-on sampled tracing), and every observed
        result is folded into the hub -- profile ring, JSONL sink, and
        slow-query log -- alongside the metrics recorder.
        """
        tracer = ctx.tracer
        telemetry = get_telemetry() if self.observe else None
        if (
            telemetry is not None
            and not tracer.enabled
            and telemetry.should_sample()
        ):
            # Sampled-in: this query carries a full span tree that lands
            # in the hub's trace ring (the caller's NULL tracer is only
            # replaced for this one context, never shared back).
            ctx.tracer = tracer = Tracer()
        attributes = self.root_attributes(ctx) if self.root_attributes else {}
        fell_back = False
        with tracer.span("query", engine=self.engine, **attributes) as root:
            try:
                self.execute(ctx)
                result = ctx.result
            except self.fallback_errors as cause:
                fell_back = True
                result = self.fallback(ctx, cause, root)
            root.set_attributes(
                winner=result.winner, score=result.score, exact=result.exact
            )
            if self.makespan_root:
                # Phase spans carry simulated makespans; override the
                # root's wall-clock too so the tree sums like total_time.
                root.set_duration(result.total_time)
        if not fell_back:
            if self.derive_phases and tracer.enabled:
                # The trace is the source of truth: the reported per-phase
                # times ARE the span durations, so tree and result agree.
                result.phases = phase_durations(root)
            if self.observe:
                observe_query(result, engine=self.engine)
                telemetry.observe_result(
                    result,
                    engine=self.engine,
                    r=ctx.r,
                    k=ctx.k,
                    ceil_r=ctx.ceil_r,
                    n=getattr(ctx.collection, "n", 0),
                    sampled=tracer.enabled,
                    span_root=root if tracer.enabled else None,
                )
            if ctx.planner is not None and ctx.plan is not None:
                # The planner's online feedback loop: fold the finished
                # query's phase timings back into the cost model.  Like
                # telemetry, feedback must never fail a query.
                try:
                    ctx.planner.observe(ctx.plan, result.phases, result.counters)
                except Exception:  # pragma: no cover - defensive
                    pass
        return result


# ----------------------------------------------------------------------
# Canonical pipelines
# ----------------------------------------------------------------------

#: The serial engine's stage set (Algorithm 2 with Section III-D labels).
SERIAL_STAGES: Tuple[Stage, ...] = (
    BackendResolutionStage(),
    PlanningStage(),
    LabelInputStage(),
    GridMappingStage(),
    LowerBoundingStage(),
    UpperBoundingStage(),
    VerificationStage(),
    LabelOutputStage(),
    SerialFinalizeStage(),
)

SERIAL_PIPELINE = PhasePipeline(
    SERIAL_STAGES,
    engine="serial",
    root_attributes=lambda ctx: {"r": ctx.r, "k": ctx.k, "backend": ctx.backend},
)

#: The filter prefix (no verification) with fault trips and boundary
#: checkpoints disabled: the progressive iterator's entry point, which
#: preserves its historical behavior (phase functions honor the deadline
#: internally; no injection points fire).
FILTER_PIPELINE = PhasePipeline(
    (
        BackendResolutionStage(),
        GridMappingStage(trips_fault=False, checks_deadline=False),
        LowerBoundingStage(trips_fault=False, checks_deadline=False),
        UpperBoundingStage(trips_fault=False, checks_deadline=False),
    ),
    engine="progressive",
    derive_phases=False,
    observe=False,
)
