"""The data model: objects as point sets, and collections of objects.

Section II-A of the paper: an object ``o_i`` is a set of two- or
three-dimensional points ``P_i``; a collection ``O`` of ``n`` objects has an
average point count ``m = sum(|P_i|) / n``.  Collections are memory-resident
and static, so both classes are immutable after construction.
"""

from __future__ import annotations

from typing import Iterable, Iterator, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.geometry import bounding_box
from repro.errors import CorruptDataError, InvalidQueryError


class SpatialObject:
    """One object: an id plus its point set (and optional timestamps)."""

    __slots__ = ("oid", "points", "timestamps")

    def __init__(
        self,
        oid: int,
        points: np.ndarray,
        timestamps: Optional[np.ndarray] = None,
    ) -> None:
        points = np.ascontiguousarray(points, dtype=np.float64)
        if points.ndim != 2:
            raise InvalidQueryError(
                f"points must be a (m, d) array, got shape {points.shape}"
            )
        if points.shape[1] not in (2, 3):
            raise InvalidQueryError(
                f"only 2-D and 3-D points are supported, got d={points.shape[1]}"
            )
        if len(points) == 0:
            raise InvalidQueryError(
                f"object {oid}: an object must contain at least one point"
            )
        if not np.isfinite(points).all():
            # Non-finite coordinates hash to garbage grid cells and would
            # silently produce wrong scores; fail loudly at the boundary.
            raise CorruptDataError(
                f"object {oid}: point coordinates must be finite (no NaN/inf)"
            )
        if timestamps is not None:
            timestamps = np.ascontiguousarray(timestamps, dtype=np.float64)
            if timestamps.shape != (len(points),):
                raise InvalidQueryError(f"object {oid}: timestamps must align with points")
            if not np.isfinite(timestamps).all():
                raise CorruptDataError(
                    f"object {oid}: timestamps must be finite (no NaN/inf)"
                )
        self.oid = int(oid)
        self.points = points
        self.timestamps = timestamps

    @property
    def num_points(self) -> int:
        """Number of points ``|P_i|``."""
        return len(self.points)

    @property
    def dimension(self) -> int:
        """Spatial dimensionality (2 or 3)."""
        return self.points.shape[1]

    def bounds(self) -> Tuple[np.ndarray, np.ndarray]:
        """Axis-aligned bounding box of the point set."""
        return bounding_box(self.points)

    def __len__(self) -> int:
        return self.num_points

    def __repr__(self) -> str:
        return f"SpatialObject(oid={self.oid}, points={self.num_points}x{self.dimension})"


class ObjectCollection:
    """An immutable, memory-resident collection ``O`` of spatial objects.

    Object ids are the positions in the collection (``0 .. n-1``), which is
    what the per-cell bitsets index.
    """

    __slots__ = ("objects", "dimension")

    def __init__(self, objects: Sequence[SpatialObject]) -> None:
        objects = list(objects)
        if not objects:
            raise InvalidQueryError("a collection must contain at least one object")
        dimension = objects[0].dimension
        seen_oids = set()
        for position, obj in enumerate(objects):
            if obj.dimension != dimension:
                raise InvalidQueryError("all objects must share one dimensionality")
            if obj.oid in seen_oids:
                # A duplicate id would alias two objects in every per-cell
                # bitset, corrupting all three bound computations.
                raise CorruptDataError(
                    f"duplicate object id {obj.oid} at position {position}"
                )
            seen_oids.add(obj.oid)
            if obj.oid != position:
                raise InvalidQueryError(
                    f"object ids must be contiguous positions; found oid={obj.oid} "
                    f"at position {position} (use from_point_arrays to renumber)"
                )
        self.objects: List[SpatialObject] = objects
        self.dimension = dimension

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------

    @classmethod
    def from_point_arrays(
        cls,
        point_arrays: Iterable[np.ndarray],
        timestamps: Optional[Iterable[np.ndarray]] = None,
    ) -> "ObjectCollection":
        """Build a collection, numbering objects by iteration order."""
        if timestamps is None:
            objects = [SpatialObject(i, pts) for i, pts in enumerate(point_arrays)]
        else:
            objects = [
                SpatialObject(i, pts, ts)
                for i, (pts, ts) in enumerate(zip(point_arrays, timestamps))
            ]
        return cls(objects)

    def subset(self, indices: Sequence[int]) -> "ObjectCollection":
        """A new collection containing the selected objects, renumbered."""
        return ObjectCollection.from_point_arrays(
            (self.objects[i].points for i in indices),
            None
            if any(self.objects[i].timestamps is None for i in indices)
            else (self.objects[i].timestamps for i in indices),
        )

    # ------------------------------------------------------------------
    # Statistics (Table I quantities)
    # ------------------------------------------------------------------

    @property
    def n(self) -> int:
        """Cardinality ``n = |O|``."""
        return len(self.objects)

    @property
    def total_points(self) -> int:
        """``nm``: total number of points across all objects."""
        return sum(obj.num_points for obj in self.objects)

    @property
    def mean_points(self) -> float:
        """Average point count ``m``."""
        return self.total_points / self.n

    def has_timestamps(self) -> bool:
        """Whether every object carries per-point timestamps."""
        return all(obj.timestamps is not None for obj in self.objects)

    def bounds(self) -> Tuple[np.ndarray, np.ndarray]:
        """Bounding box of the whole collection."""
        lows, highs = zip(*(obj.bounds() for obj in self.objects))
        return np.min(np.stack(lows), axis=0), np.max(np.stack(highs), axis=0)

    def memory_bytes(self) -> int:
        """Raw footprint of the stored coordinates (and timestamps)."""
        total = 0
        for obj in self.objects:
            total += obj.points.nbytes
            if obj.timestamps is not None:
                total += obj.timestamps.nbytes
        return total

    # ------------------------------------------------------------------
    # Container protocol
    # ------------------------------------------------------------------

    def __len__(self) -> int:
        return self.n

    def __getitem__(self, oid: int) -> SpatialObject:
        return self.objects[oid]

    def __iter__(self) -> Iterator[SpatialObject]:
        return iter(self.objects)

    def __repr__(self) -> str:
        return (
            f"ObjectCollection(n={self.n}, m={self.mean_points:.1f}, "
            f"nm={self.total_points}, d={self.dimension})"
        )
