"""The MIO query engine: Algorithm 2's filter-and-verification framework.

One :class:`MIOEngine` wraps a static, memory-resident collection.  Each
query builds a BIGrid online for its threshold ``r`` (Section III-A shows
offline building does not pay off), lower-bounds every object, upper-bounds
and prunes, then verifies best-first:

    GRID-MAPPING -> LOWER-BOUNDING -> UPPER-BOUNDING -> VERIFICATION

When the engine owns a :class:`~repro.core.labels.LabelStore`, the first
query for each ``ceil(r)`` additionally produces point labels, and later
queries with the same ceiling run the WITH-LABEL variants of every phase
(Section III-D): labeled-useless points are never mapped, upper-bounding
skips ``label != 11*`` points, and verification seeds its bitset with the
lower-bounding union and skips ``label != 1*1`` points.
"""

from __future__ import annotations

import math
import time
from typing import Dict, List, Optional

from repro import faults
from repro.bitset.factory import resolve_backend
from repro.core.labels import LabelStore, PointLabels, labels_match_collection
from repro.core.lower_bound import LowerBoundCache, LowerBoundResult, compute_lower_bounds
from repro.core.objects import ObjectCollection
from repro.core.query import MIOResult, PhaseStats
from repro.core.upper_bound import compute_upper_bounds
from repro.core.verification import VerificationResult, verify_candidates
from repro.errors import InvalidQueryError
from repro.grid.bigrid import BIGrid
from repro.grid.cache import LargeKeyCache
from repro.obs import metrics as obs_metrics
from repro.obs.recorders import observe_query
from repro.obs.trace import ensure_tracer, phase_durations
from repro.resilience import Deadline, checkpoint


class MIOEngine:
    """Processes MIO (and top-k MIO) queries over one collection.

    Parameters
    ----------
    collection:
        The static object collection ``O``.
    backend:
        Bitset backend name (``"ewah"`` as in the paper, or ``"plain"``).
    label_store:
        Optional store enabling the Section III-D reuse of previous query
        results.  Without one, every query runs the label-free pipeline.
    label_reuse:
        ``"safe"`` (default) applies Labeling-3 only when the stored labels
        were produced by exactly the same ``r``; ``"paper"`` applies it for
        any ``r'`` with the same ceiling, as the paper describes (see
        DESIGN.md for why that can in principle under-count).
    key_cache:
        Optional :class:`~repro.grid.cache.LargeKeyCache` shared by a
        :class:`~repro.session.QuerySession`: large-grid cell keys are
        computed once per ``ceil(r)`` instead of once per query.
    lower_cache:
        Optional :class:`~repro.core.lower_bound.LowerBoundCache`: repeating
        an exact ``r`` skips lower-bounding entirely.  When present, the
        engine always keeps the lower-bound union bitsets and seeds
        verification with them (sound: union members certainly interact),
        so cached entries serve label-free and with-label queries alike.
    tracer:
        Optional :class:`~repro.obs.trace.Tracer`.  When attached, every
        query records a span tree (one ``query`` span with one child per
        phase) and ``MIOResult.phases`` is derived from those spans, so
        the rendered trace and the reported times can never disagree.
        Without one, the engine runs shared no-op spans (one branch per
        instrumentation point) and times phases exactly as before.

    Both caches are positional (keyed by object ids); whoever injects them
    owns invalidation on collection change -- the engine itself never mixes
    collections.
    """

    def __init__(
        self,
        collection: ObjectCollection,
        backend: str = "ewah",
        label_store: Optional[LabelStore] = None,
        label_reuse: str = "safe",
        key_cache: Optional[LargeKeyCache] = None,
        lower_cache: Optional[LowerBoundCache] = None,
        tracer=None,
    ) -> None:
        if label_reuse not in ("safe", "paper"):
            raise InvalidQueryError('label_reuse must be "safe" or "paper"')
        self.collection = collection
        self.backend = backend
        self.label_store = label_store
        self.label_reuse = label_reuse
        self.key_cache = key_cache
        self.lower_cache = lower_cache
        self.tracer = tracer
        #: The BIGrid of the most recent query (exposed for inspection).
        self.last_bigrid: Optional[BIGrid] = None

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------

    def query(
        self,
        r: float,
        timeout_ms: Optional[float] = None,
        deadline: Optional[Deadline] = None,
        tracer=None,
    ) -> MIOResult:
        """Answer an MIO query: the most interactive object under ``r``.

        With a ``timeout_ms`` budget (or an explicit ``deadline``), the
        filter phases raise :class:`~repro.errors.QueryTimeout` on expiry,
        while an expiry during verification returns an anytime result
        (``exact=False``) carrying a verified lower-bound answer.
        """
        return self._run(
            r, k=1, want_ranking=False, deadline=_deadline(timeout_ms, deadline),
            tracer=tracer,
        )

    def query_topk(
        self,
        r: float,
        k: int,
        timeout_ms: Optional[float] = None,
        deadline: Optional[Deadline] = None,
        tracer=None,
    ) -> MIOResult:
        """Answer the top-k variant: the k most interactive objects."""
        if k < 1:
            raise InvalidQueryError("k must be at least 1")
        return self._run(
            r, k=k, want_ranking=True, deadline=_deadline(timeout_ms, deadline),
            tracer=tracer,
        )

    def query_batch(self, r_values) -> List[MIOResult]:
        """Answer a batch of MIO queries, maximizing label reuse.

        This is the workload Section III-D targets -- analysts sweeping
        fine-grained thresholds.  Queries are executed grouped by
        ``ceil(r)``, largest ``r`` first within each group, so the first
        (most general) query of each group produces the labels and every
        other query in the group runs the WITH-LABEL pipeline.  Results
        are returned in the caller's order.  If the engine has no label
        store, one is created for the duration of the batch.
        """
        r_values = list(r_values)
        if not r_values:
            return []
        owned_store = self.label_store is None
        if owned_store:
            self.label_store = LabelStore()
        try:
            order = sorted(
                range(len(r_values)),
                key=lambda index: (math.ceil(r_values[index]), -r_values[index]),
            )
            results: List[Optional[MIOResult]] = [None] * len(r_values)
            for index in order:
                results[index] = self.query(r_values[index])
            return results
        finally:
            if owned_store:
                self.label_store = None

    # ------------------------------------------------------------------
    # Pipeline
    # ------------------------------------------------------------------

    def _run(
        self,
        r: float,
        k: int,
        want_ranking: bool,
        deadline: Optional[Deadline] = None,
        tracer=None,
    ) -> MIOResult:
        if r <= 0:
            raise InvalidQueryError("the distance threshold r must be positive")
        tracer = ensure_tracer(tracer if tracer is not None else self.tracer)
        with tracer.span(
            "query", engine="serial", r=r, k=k, backend=self.backend
        ) as root:
            result = self._run_phases(r, k, want_ranking, deadline, tracer)
            root.set_attributes(
                winner=result.winner, score=result.score, exact=result.exact
            )
        if tracer.enabled:
            # The trace is the source of truth: the reported per-phase
            # times ARE the span durations, so tree and result agree.
            result.phases = phase_durations(root)
        observe_query(result, engine="serial")
        return result

    def _run_phases(
        self,
        r: float,
        k: int,
        want_ranking: bool,
        deadline: Optional[Deadline],
        tracer,
    ) -> MIOResult:
        stats = PhaseStats()
        ceil_r = math.ceil(r)
        notes: Dict[str, str] = {}

        # Backend degradation chain: an unavailable backend downgrades the
        # query instead of failing it, and the downgrade is recorded.
        _, resolved_backend = resolve_backend(self.backend)
        if resolved_backend != self.backend:
            notes["degraded_backend"] = f"{self.backend}->{resolved_backend}"
            stats.set_count("degraded_backend", 1)
            obs_metrics.counter(
                "repro_backend_degradations_total",
                "Bitset backend downgrades (requested backend unavailable)",
            ).inc(requested=self.backend, resolved=resolved_backend)

        if self.label_store is not None:
            with tracer.span("label_input") as span:
                labels = self._load_labels(ceil_r, stats)
                if labels is None:
                    # A missed lookup reads no labels: keep it visible in
                    # the trace, but not as a phase (``phase_durations``
                    # must mirror the untraced PhaseStats semantics).
                    span.rename("label_lookup")
                span.set_attributes(cache_hit=labels is not None)
        else:
            labels = None
        labeling = self.label_store is not None and labels is None
        labeler = PointLabels.for_collection(self.collection, r) if labeling else None

        # GRID-MAPPING (Algorithm 3), skipping label(p) = 0** points.
        faults.trip("grid_mapping")
        checkpoint(deadline, "grid_mapping")
        with tracer.span("grid_mapping") as span:
            started = time.perf_counter()
            bigrid = BIGrid.build(
                self.collection,
                r,
                backend=resolved_backend,
                point_filter=labels.grid_mask if labels is not None else None,
                deadline=deadline,
                large_keys_provider=(
                    self.key_cache.provider(self.collection, ceil_r)
                    if self.key_cache is not None
                    else None
                ),
            )
            stats.add_time("grid_mapping", time.perf_counter() - started)
            stats.set_count("small_cells", len(bigrid.small_grid))
            stats.set_count("large_cells", len(bigrid.large_grid))
            stats.set_count("mapped_points", bigrid.mapped_points)
            span.set_attributes(
                small_cells=len(bigrid.small_grid),
                large_cells=len(bigrid.large_grid),
                mapped_points=bigrid.mapped_points,
            )
        self.last_bigrid = bigrid

        # LOWER-BOUNDING (Algorithm 4).  The WITH-LABEL variant keeps the
        # union bitsets to seed verification.
        faults.trip("lower_bounding")
        checkpoint(deadline, "lower_bounding")
        with tracer.span("lower_bounding") as span:
            started = time.perf_counter()
            lower = (
                self.lower_cache.get(r, bigrid.small_grid.bitset_cls)
                if self.lower_cache is not None
                else None
            )
            if lower is not None:
                stats.set_count("lower_cache_hit", 1)
                stats.set_count("tau_max_low", lower.tau_max)
                span.set_attribute("cache_hit", True)
            else:
                lower = compute_lower_bounds(
                    bigrid,
                    keep_bitsets=labels is not None or self.lower_cache is not None,
                    stats=stats,
                    deadline=deadline,
                )
                if self.lower_cache is not None:
                    self.lower_cache.put(r, lower)
            stats.add_time("lower_bounding", time.perf_counter() - started)
            span.set_attribute("tau_max_low", lower.tau_max)
        threshold = lower.tau_max if k == 1 else _kth_largest(lower.values, k)

        # UPPER-BOUNDING + pruning (Algorithm 5).
        faults.trip("upper_bounding")
        checkpoint(deadline, "upper_bounding")
        with tracer.span("upper_bounding") as span:
            started = time.perf_counter()
            upper = compute_upper_bounds(
                bigrid,
                threshold,
                upper_masks=labels.upper_mask if labels is not None else None,
                labeler=labeler,
                stats=stats,
                deadline=deadline,
            )
            stats.add_time("upper_bounding", time.perf_counter() - started)
            span.set_attribute("candidates", len(upper.candidates))

        # VERIFICATION (Algorithm 6 / top-k variant).  From here on an
        # expired deadline degrades to an anytime answer instead of raising:
        # every settled candidate's score is exact, so the best one is a
        # correct lower bound on the optimum (Corollary 1).
        faults.trip("verification")
        with tracer.span("verification") as span:
            started = time.perf_counter()
            verification = verify_candidates(
                bigrid,
                upper.candidates,
                r,
                k=k,
                initial_bitsets=(
                    (lambda oid: lower.bitsets[oid]) if lower.bitsets is not None else None
                ),
                verify_masks=self._verify_masks(labels, r),
                labeler=labeler,
                stats=stats,
                deadline=deadline,
            )
            stats.add_time("verification", time.perf_counter() - started)
            stats.set_count("candidates_total", len(upper.candidates))
            stats.set_count("candidates_settled", verification.verified)
            span.set_attributes(
                candidates=len(upper.candidates),
                settled=verification.verified,
                timed_out=verification.timed_out,
            )

        if verification.timed_out:
            # A partial labeling pass must not be persisted: its marks are
            # individually sound but the store would record the pass as
            # complete for this ceil(r).
            return self._anytime_result(
                r, lower, verification, stats, bigrid, labels, notes, want_ranking
            )

        if labeler is not None:
            with tracer.span("label_output"):
                started = time.perf_counter()
                self.label_store.put(ceil_r, labeler)
                stats.add_time("label_output", time.perf_counter() - started)
            for kind, count in labeler.count_cleared().items():
                stats.set_count(f"labeled_{kind}", count)

        ranking = verification.ranking
        if not ranking:
            raise AssertionError("verification produced no answer for a non-empty collection")
        winner, score = ranking[0]
        return MIOResult(
            algorithm="bigrid-label" if labels is not None else "bigrid",
            r=r,
            winner=winner,
            score=score,
            topk=ranking if want_ranking else None,
            phases=stats.phases,
            counters=stats.counters,
            memory_bytes=bigrid.memory_bytes(),
            notes=notes,
        )

    def _anytime_result(
        self,
        r: float,
        lower: LowerBoundResult,
        verification: VerificationResult,
        stats: PhaseStats,
        bigrid: BIGrid,
        labels: Optional[PointLabels],
        notes: Dict[str, str],
        want_ranking: bool,
    ) -> MIOResult:
        """Best verified answer under an expired deadline (``exact=False``).

        Two certified lower bounds are available: the best *exact* score
        among settled candidates, and the best Lemma-1 lower bound over all
        objects.  Both are correct; the larger one wins.  The result's score
        is therefore always ``<= tau(winner) <=`` the true optimum.
        """
        ranking = verification.ranking
        best_lb_oid = max(
            range(bigrid.collection.n),
            key=lambda oid: (lower.values[oid], -oid),
        )
        best_lb = lower.values[best_lb_oid]
        if ranking and ranking[0][1] >= best_lb:
            winner, score = ranking[0]
        else:
            winner, score = best_lb_oid, best_lb
        notes = dict(notes)
        notes["anytime"] = "deadline expired during verification"
        return MIOResult(
            algorithm="bigrid-label" if labels is not None else "bigrid",
            r=r,
            winner=winner,
            score=score,
            topk=ranking if want_ranking and ranking else None,
            phases=stats.phases,
            counters=stats.counters,
            memory_bytes=bigrid.memory_bytes(),
            exact=False,
            notes=notes,
        )

    # ------------------------------------------------------------------
    # Label plumbing
    # ------------------------------------------------------------------

    def _load_labels(self, ceil_r: int, stats: PhaseStats) -> Optional[PointLabels]:
        if self.label_store is None:
            return None
        started = time.perf_counter()
        labels = self.label_store.get(ceil_r)
        if labels is not None and not labels_match_collection(labels, self.collection):
            # Stored labels describe a different collection (stale store);
            # ignore them and relabel rather than risk a wrong answer.
            labels = None
        if labels is not None:
            stats.add_time("label_input", time.perf_counter() - started)
        return labels

    def _verify_masks(self, labels: Optional[PointLabels], r: float):
        """Labeling-3 mask provider, honoring the reuse policy."""
        if labels is None:
            return None
        if self.label_reuse == "safe" and labels.r != r:
            # Labeling-1 still filters grid mapping; Labeling-3 is withheld.
            return None
        return labels.verify_mask


def _kth_largest(values: List[int], k: int) -> int:
    """The k-th highest value (0 when fewer than k values exist)."""
    if k > len(values):
        return 0
    return sorted(values, reverse=True)[k - 1]


def _deadline(
    timeout_ms: Optional[float], deadline: Optional[Deadline]
) -> Optional[Deadline]:
    """An explicit deadline wins; otherwise budget ``timeout_ms`` from now."""
    if deadline is not None:
        return deadline
    return Deadline.from_timeout_ms(timeout_ms)
