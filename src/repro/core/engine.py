"""The MIO query engine: Algorithm 2's filter-and-verification framework.

One :class:`MIOEngine` wraps a static, memory-resident collection.  Each
query builds a BIGrid online for its threshold ``r`` (Section III-A shows
offline building does not pay off), lower-bounds every object, upper-bounds
and prunes, then verifies best-first:

    GRID-MAPPING -> LOWER-BOUNDING -> UPPER-BOUNDING -> VERIFICATION

The engine itself is thin: it validates the request, snapshots its
configuration into a :class:`~repro.core.pipeline.QueryContext`, and runs
the shared :data:`~repro.core.pipeline.SERIAL_PIPELINE` -- the one
orchestrator that applies tracing spans, fault trips, deadline
checkpoints, phase timing, and metric recording uniformly across every
engine variant (see :mod:`repro.core.pipeline`).

When the engine owns a :class:`~repro.core.labels.LabelStore`, the first
query for each ``ceil(r)`` additionally produces point labels, and later
queries with the same ceiling run the WITH-LABEL variants of every phase
(Section III-D): labeled-useless points are never mapped, upper-bounding
skips ``label != 11*`` points, and verification seeds its bitset with the
lower-bounding union and skips ``label != 1*1`` points.
"""

from __future__ import annotations

from typing import List, Optional

from repro.core.labels import LabelStore
from repro.core.lower_bound import LowerBoundCache
from repro.core.objects import ObjectCollection
from repro.core.pipeline import SERIAL_PIPELINE, QueryContext, run_grouped_sweep
from repro.core.query import MIOResult
from repro.errors import InvalidQueryError
from repro.grid.bigrid import BIGrid
from repro.grid.cache import LargeKeyCache
from repro.kernels import resolve_kernel
from repro.obs.trace import ensure_tracer
from repro.planner import resolve_planner
from repro.resilience import Deadline


class MIOEngine:
    """Processes MIO (and top-k MIO) queries over one collection.

    Parameters
    ----------
    collection:
        The static object collection ``O``.
    backend:
        Bitset backend name (``"ewah"`` as in the paper, or ``"plain"``).
    label_store:
        Optional store enabling the Section III-D reuse of previous query
        results.  Without one, every query runs the label-free pipeline.
    label_reuse:
        ``"safe"`` (default) applies Labeling-3 only when the stored labels
        were produced by exactly the same ``r``; ``"paper"`` applies it for
        any ``r'`` with the same ceiling, as the paper describes (see
        DESIGN.md for why that can in principle under-count).
    key_cache:
        Optional :class:`~repro.grid.cache.LargeKeyCache` shared by a
        :class:`~repro.session.QuerySession`: large-grid cell keys are
        computed once per ``ceil(r)`` instead of once per query.
    lower_cache:
        Optional :class:`~repro.core.lower_bound.LowerBoundCache`: repeating
        an exact ``r`` skips lower-bounding entirely.  When present, the
        engine always keeps the lower-bound union bitsets and seeds
        verification with them (sound: union members certainly interact),
        so cached entries serve label-free and with-label queries alike.
    tracer:
        Optional :class:`~repro.obs.trace.Tracer`.  When attached, every
        query records a span tree (one ``query`` span with one child per
        phase) and ``MIOResult.phases`` is derived from those spans, so
        the rendered trace and the reported times can never disagree.
        Without one, the engine runs shared no-op spans (one branch per
        instrumentation point) and times phases exactly as before.
    kernel:
        Compute-kernel backend for the hot phase loops: ``"python"``
        (default -- the reference implementation), ``"numpy"`` (vectorized,
        bit-exact with the reference), or ``"auto"`` (numpy when
        available).  See :mod:`repro.kernels`.

    Both caches are positional (keyed by object ids); whoever injects them
    owns invalidation on collection change -- the engine itself never mixes
    collections.
    """

    def __init__(
        self,
        collection: ObjectCollection,
        backend: str = "ewah",
        label_store: Optional[LabelStore] = None,
        label_reuse: str = "safe",
        key_cache: Optional[LargeKeyCache] = None,
        lower_cache: Optional[LowerBoundCache] = None,
        tracer=None,
        kernel: str = "python",
        planner=None,
    ) -> None:
        if label_reuse not in ("safe", "paper"):
            raise InvalidQueryError('label_reuse must be "safe" or "paper"')
        resolve_kernel(kernel)  # validate the name up front
        self.collection = collection
        self.backend = backend
        self.label_store = label_store
        self.label_reuse = label_reuse
        self.key_cache = key_cache
        self.lower_cache = lower_cache
        self.tracer = tracer
        self.kernel = kernel
        #: Optional query planner (``"adaptive"``, ``"static"``/None, or
        #: a :class:`~repro.planner.adaptive.Planner` instance): per
        #: query the planning stage re-selects kernel, lower-bound
        #: dispatch, and grid-key policy from cheap statistics.  The
        #: serial engine never shards, so plan modes stay serial here.
        self.planner = resolve_planner(planner)
        #: The BIGrid of the most recent query (exposed for inspection).
        self.last_bigrid: Optional[BIGrid] = None

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------

    def query(
        self,
        r: float,
        timeout_ms: Optional[float] = None,
        deadline: Optional[Deadline] = None,
        tracer=None,
    ) -> MIOResult:
        """Answer an MIO query: the most interactive object under ``r``.

        With a ``timeout_ms`` budget (or an explicit ``deadline``), the
        filter phases raise :class:`~repro.errors.QueryTimeout` on expiry,
        while an expiry during verification returns an anytime result
        (``exact=False``) carrying a verified lower-bound answer.
        """
        return self._run(
            r, k=1, want_ranking=False, deadline=_deadline(timeout_ms, deadline),
            tracer=tracer,
        )

    def query_topk(
        self,
        r: float,
        k: int,
        timeout_ms: Optional[float] = None,
        deadline: Optional[Deadline] = None,
        tracer=None,
    ) -> MIOResult:
        """Answer the top-k variant: the k most interactive objects."""
        if k < 1:
            raise InvalidQueryError("k must be at least 1")
        return self._run(
            r, k=k, want_ranking=True, deadline=_deadline(timeout_ms, deadline),
            tracer=tracer,
        )

    def query_batch(self, r_values) -> List[MIOResult]:
        """Answer a batch of MIO queries, maximizing label reuse.

        This is the workload Section III-D targets -- analysts sweeping
        fine-grained thresholds.  Queries run in the pipeline's shared
        ceil(r)-grouped sweep order (:func:`~repro.core.pipeline.
        run_grouped_sweep`, the same planner the session's ``query_many``
        uses): grouped by ``ceil(r)``, largest ``r`` first within each
        group, so the first (most general) query of each group produces
        the labels and every other query in the group runs the WITH-LABEL
        pipeline.  Results are returned in the caller's order.  If the
        engine has no label store, one is created for the duration of the
        batch.
        """
        r_values = list(r_values)
        if not r_values:
            return []
        owned_store = self.label_store is None
        if owned_store:
            self.label_store = LabelStore()
        try:
            return run_grouped_sweep(
                r_values, lambda index: self.query(r_values[index])
            )
        finally:
            if owned_store:
                self.label_store = None

    # ------------------------------------------------------------------
    # Pipeline entry
    # ------------------------------------------------------------------

    def _run(
        self,
        r: float,
        k: int,
        want_ranking: bool,
        deadline: Optional[Deadline] = None,
        tracer=None,
    ) -> MIOResult:
        if r <= 0:
            raise InvalidQueryError("the distance threshold r must be positive")
        tracer = ensure_tracer(tracer if tracer is not None else self.tracer)
        ctx = QueryContext(
            collection=self.collection,
            r=r,
            k=k,
            want_ranking=want_ranking,
            deadline=deadline,
            tracer=tracer,
            backend=self.backend,
            label_store=self.label_store,
            label_reuse=self.label_reuse,
            key_cache=self.key_cache,
            lower_cache=self.lower_cache,
            engine=self,
            kernel=self.kernel,
            planner=self.planner,
        )
        return SERIAL_PIPELINE.run(ctx)


def _deadline(
    timeout_ms: Optional[float], deadline: Optional[Deadline]
) -> Optional[Deadline]:
    """An explicit deadline wins; otherwise budget ``timeout_ms`` from now."""
    if deadline is not None:
        return deadline
    return Deadline.from_timeout_ms(timeout_ms)
