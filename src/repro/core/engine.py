"""The MIO query engine: Algorithm 2's filter-and-verification framework.

One :class:`MIOEngine` wraps a static, memory-resident collection.  Each
query builds a BIGrid online for its threshold ``r`` (Section III-A shows
offline building does not pay off), lower-bounds every object, upper-bounds
and prunes, then verifies best-first:

    GRID-MAPPING -> LOWER-BOUNDING -> UPPER-BOUNDING -> VERIFICATION

When the engine owns a :class:`~repro.core.labels.LabelStore`, the first
query for each ``ceil(r)`` additionally produces point labels, and later
queries with the same ceiling run the WITH-LABEL variants of every phase
(Section III-D): labeled-useless points are never mapped, upper-bounding
skips ``label != 11*`` points, and verification seeds its bitset with the
lower-bounding union and skips ``label != 1*1`` points.
"""

from __future__ import annotations

import math
import time
from typing import List, Optional

from repro.core.labels import LabelStore, PointLabels, labels_match_collection
from repro.core.lower_bound import compute_lower_bounds
from repro.core.objects import ObjectCollection
from repro.core.query import MIOResult, PhaseStats
from repro.core.upper_bound import compute_upper_bounds
from repro.core.verification import verify_candidates
from repro.grid.bigrid import BIGrid


class MIOEngine:
    """Processes MIO (and top-k MIO) queries over one collection.

    Parameters
    ----------
    collection:
        The static object collection ``O``.
    backend:
        Bitset backend name (``"ewah"`` as in the paper, or ``"plain"``).
    label_store:
        Optional store enabling the Section III-D reuse of previous query
        results.  Without one, every query runs the label-free pipeline.
    label_reuse:
        ``"safe"`` (default) applies Labeling-3 only when the stored labels
        were produced by exactly the same ``r``; ``"paper"`` applies it for
        any ``r'`` with the same ceiling, as the paper describes (see
        DESIGN.md for why that can in principle under-count).
    """

    def __init__(
        self,
        collection: ObjectCollection,
        backend: str = "ewah",
        label_store: Optional[LabelStore] = None,
        label_reuse: str = "safe",
    ) -> None:
        if label_reuse not in ("safe", "paper"):
            raise ValueError('label_reuse must be "safe" or "paper"')
        self.collection = collection
        self.backend = backend
        self.label_store = label_store
        self.label_reuse = label_reuse
        #: The BIGrid of the most recent query (exposed for inspection).
        self.last_bigrid: Optional[BIGrid] = None

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------

    def query(self, r: float) -> MIOResult:
        """Answer an MIO query: the most interactive object under ``r``."""
        return self._run(r, k=1, want_ranking=False)

    def query_topk(self, r: float, k: int) -> MIOResult:
        """Answer the top-k variant: the k most interactive objects."""
        if k < 1:
            raise ValueError("k must be at least 1")
        return self._run(r, k=k, want_ranking=True)

    def query_batch(self, r_values) -> List[MIOResult]:
        """Answer a batch of MIO queries, maximizing label reuse.

        This is the workload Section III-D targets -- analysts sweeping
        fine-grained thresholds.  Queries are executed grouped by
        ``ceil(r)``, largest ``r`` first within each group, so the first
        (most general) query of each group produces the labels and every
        other query in the group runs the WITH-LABEL pipeline.  Results
        are returned in the caller's order.  If the engine has no label
        store, one is created for the duration of the batch.
        """
        r_values = list(r_values)
        if not r_values:
            return []
        owned_store = self.label_store is None
        if owned_store:
            self.label_store = LabelStore()
        try:
            order = sorted(
                range(len(r_values)),
                key=lambda index: (math.ceil(r_values[index]), -r_values[index]),
            )
            results: List[Optional[MIOResult]] = [None] * len(r_values)
            for index in order:
                results[index] = self.query(r_values[index])
            return results
        finally:
            if owned_store:
                self.label_store = None

    # ------------------------------------------------------------------
    # Pipeline
    # ------------------------------------------------------------------

    def _run(self, r: float, k: int, want_ranking: bool) -> MIOResult:
        if r <= 0:
            raise ValueError("the distance threshold r must be positive")
        stats = PhaseStats()
        ceil_r = math.ceil(r)

        labels = self._load_labels(ceil_r, stats)
        labeling = self.label_store is not None and labels is None
        labeler = PointLabels.for_collection(self.collection, r) if labeling else None

        # GRID-MAPPING (Algorithm 3), skipping label(p) = 0** points.
        started = time.perf_counter()
        bigrid = BIGrid.build(
            self.collection,
            r,
            backend=self.backend,
            point_filter=labels.grid_mask if labels is not None else None,
        )
        stats.add_time("grid_mapping", time.perf_counter() - started)
        stats.set_count("small_cells", len(bigrid.small_grid))
        stats.set_count("large_cells", len(bigrid.large_grid))
        stats.set_count("mapped_points", bigrid.mapped_points)
        self.last_bigrid = bigrid

        # LOWER-BOUNDING (Algorithm 4).  The WITH-LABEL variant keeps the
        # union bitsets to seed verification.
        started = time.perf_counter()
        lower = compute_lower_bounds(bigrid, keep_bitsets=labels is not None, stats=stats)
        stats.add_time("lower_bounding", time.perf_counter() - started)
        threshold = lower.tau_max if k == 1 else _kth_largest(lower.values, k)

        # UPPER-BOUNDING + pruning (Algorithm 5).
        started = time.perf_counter()
        upper = compute_upper_bounds(
            bigrid,
            threshold,
            upper_masks=labels.upper_mask if labels is not None else None,
            labeler=labeler,
            stats=stats,
        )
        stats.add_time("upper_bounding", time.perf_counter() - started)

        # VERIFICATION (Algorithm 6 / top-k variant).
        started = time.perf_counter()
        verification = verify_candidates(
            bigrid,
            upper.candidates,
            r,
            k=k,
            initial_bitsets=(
                (lambda oid: lower.bitsets[oid]) if lower.bitsets is not None else None
            ),
            verify_masks=self._verify_masks(labels, r),
            labeler=labeler,
            stats=stats,
        )
        stats.add_time("verification", time.perf_counter() - started)

        if labeler is not None:
            started = time.perf_counter()
            self.label_store.put(ceil_r, labeler)
            stats.add_time("label_output", time.perf_counter() - started)
            for kind, count in labeler.count_cleared().items():
                stats.set_count(f"labeled_{kind}", count)

        ranking = verification.ranking
        if not ranking:
            raise AssertionError("verification produced no answer for a non-empty collection")
        winner, score = ranking[0]
        return MIOResult(
            algorithm="bigrid-label" if labels is not None else "bigrid",
            r=r,
            winner=winner,
            score=score,
            topk=ranking if want_ranking else None,
            phases=stats.phases,
            counters=stats.counters,
            memory_bytes=bigrid.memory_bytes(),
        )

    # ------------------------------------------------------------------
    # Label plumbing
    # ------------------------------------------------------------------

    def _load_labels(self, ceil_r: int, stats: PhaseStats) -> Optional[PointLabels]:
        if self.label_store is None:
            return None
        started = time.perf_counter()
        labels = self.label_store.get(ceil_r)
        if labels is not None and not labels_match_collection(labels, self.collection):
            # Stored labels describe a different collection (stale store);
            # ignore them and relabel rather than risk a wrong answer.
            labels = None
        if labels is not None:
            stats.add_time("label_input", time.perf_counter() - started)
        return labels

    def _verify_masks(self, labels: Optional[PointLabels], r: float):
        """Labeling-3 mask provider, honoring the reuse policy."""
        if labels is None:
            return None
        if self.label_reuse == "safe" and labels.r != r:
            # Labeling-1 still filters grid mapping; Labeling-3 is withheld.
            return None
        return labels.verify_mask


def _kth_largest(values: List[int], k: int) -> int:
    """The k-th highest value (0 when fewer than k values exist)."""
    if k > len(values):
        return 0
    return sorted(values, reverse=True)[k - 1]
