"""Lower-bounding (Algorithm 4, Lemma 1).

Two points in the same small-grid cell are certainly within ``r`` (the cell
diagonal is ``r``), so OR-ing the bitsets of every small cell in ``o_i.L``
yields a set of objects guaranteed to interact with ``o_i``; its cardinality
minus one (for ``o_i``'s own bit) lower-bounds ``tau(o_i)``.  No distance is
computed.

``o_i.L`` only lists cells shared by at least two objects -- single-object
cells cannot contribute to the bound, and Algorithm 3 never put them in the
key lists -- so objects in sparse space touch no cell at all here.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass
from typing import Dict, List, Optional, Type

from repro.bitset.base import Bitset
from repro.core.query import PhaseStats
from repro.grid.bigrid import BIGrid
from repro.obs.recorders import observe_cache, observe_cache_invalidation
from repro.resilience import Deadline, checkpoint


@dataclass
class LowerBoundResult:
    """Per-object lower bounds and their maximum ``tau_max_low``."""

    values: List[int]
    tau_max: int
    #: The union bitsets ``b(o_i)`` (bit ``i`` included), kept only when the
    #: caller needs them to seed verification in with-label mode.
    bitsets: Optional[List[Optional[Bitset]]]
    #: Which implementation produced the bounds (``reference``, or a
    #: kernel-specific label such as ``numpy-seq`` / ``numpy-reduceat``).
    #: Purely observational -- every path is bit-identical.
    path: str = "reference"


class LowerBoundCache:
    """Per-exact-``r`` cache of complete lower-bounding results.

    The small grid's cell width is a function of the *exact* threshold
    (``r / sqrt(d)``), so unlike labels and large-grid keys this state can
    only be reused when a later query repeats the same ``r`` -- the common
    case in monitoring workloads that poll a fixed threshold.  Reuse is
    sound across label-free and with-label runs of the same collection
    because Labeling-1 points never enter any shared small cell (Lemma 3:
    their large-cell neighborhood holds no other object, hence neither does
    any contained small cell), leaving every key-list union unchanged.

    Bitsets are stored as backend-agnostic big ints and rebuilt with the
    querying backend's class, so a mid-session backend degradation cannot
    poison the cache.  Entries are complete results only: the engine stores
    after ``compute_lower_bounds`` returns, never on a timeout.  An LRU cap
    bounds memory across long threshold sweeps.

    The cache is thread-safe: the concurrent query service shares one
    instance across worker threads.  The LRU order mutates on every
    lookup (``move_to_end``), so reads lock too; the per-object bitset
    rebuild happens outside the lock on an immutable entry tuple.
    """

    __slots__ = ("max_entries", "_entries", "_lock", "hits", "misses")

    def __init__(self, max_entries: int = 8) -> None:
        self.max_entries = max_entries
        #: ``r -> (values, tau_max, bitset_ints)`` in LRU order.
        self._entries: "OrderedDict[float, tuple]" = OrderedDict()
        self._lock = threading.RLock()
        self.hits = 0
        self.misses = 0

    def get(self, r: float, bitset_cls: Type[Bitset]) -> Optional[LowerBoundResult]:
        with self._lock:
            entry = self._entries.get(r)
            if entry is None:
                self.misses += 1
            else:
                self.hits += 1
                self._entries.move_to_end(r)
        if entry is None:
            observe_cache("lower_bounds", hit=False)
            return None
        observe_cache("lower_bounds", hit=True)
        values, tau_max, bitset_ints = entry
        return LowerBoundResult(
            values=list(values),
            tau_max=tau_max,
            bitsets=[
                bitset_cls.from_int(value) if value else None
                for value in bitset_ints
            ],
        )

    def put(self, r: float, result: LowerBoundResult) -> None:
        if result.bitsets is None:
            # Without the union bitsets a cached entry could not seed
            # verification; only complete keep-bitsets results are stored.
            return
        bitset_ints = [
            bitset.to_int() if bitset is not None else 0 for bitset in result.bitsets
        ]
        with self._lock:
            self._entries[r] = (list(result.values), result.tau_max, bitset_ints)
            self._entries.move_to_end(r)
            while len(self._entries) > self.max_entries:
                self._entries.popitem(last=False)

    def __len__(self) -> int:
        return len(self._entries)

    def clear(self) -> None:
        observe_cache_invalidation("lower_bounds")
        with self._lock:
            self._entries.clear()

    def counters(self) -> Dict[str, int]:
        return {"lower_cache_hits": self.hits, "lower_cache_misses": self.misses}


def compute_lower_bounds(
    bigrid: BIGrid,
    keep_bitsets: bool = False,
    stats: Optional[PhaseStats] = None,
    deadline: Optional[Deadline] = None,
) -> LowerBoundResult:
    """LOWER-BOUNDING(O, r): one bitwise-OR pass over the key lists.

    An expired ``deadline`` raises ``QueryTimeout`` between objects (bounds
    for a prefix of the collection prune nothing soundly on their own).
    """
    small_grid = bigrid.small_grid
    bitset_cls = small_grid.bitset_cls
    values: List[int] = []
    bitsets: Optional[List[Optional[Bitset]]] = [] if keep_bitsets else None
    tau_max = 0
    or_operations = 0

    cells = small_grid.cells
    for oid in range(bigrid.collection.n):
        checkpoint(deadline, "lower_bounding")
        keys = bigrid.key_lists[oid]
        # The ORs run on the cells' cached big-int forms (C-speed word ops,
        # the Python analogue of EWAH's word-aligned merge).
        union = 0
        for key in keys:
            union |= cells[key].bitset.to_int()
            or_operations += 1
        cardinality = union.bit_count()
        # The object's own bit is set whenever the union is non-empty.
        lower = cardinality - 1 if cardinality else 0
        values.append(lower)
        if lower > tau_max:
            tau_max = lower
        if bitsets is not None:
            bitsets.append(bitset_cls.from_int(union) if cardinality else None)

    if stats is not None:
        stats.set_count("lower_or_operations", or_operations)
        stats.set_count("tau_max_low", tau_max)
    return LowerBoundResult(values=values, tau_max=tau_max, bitsets=bitsets)
