"""Lower-bounding (Algorithm 4, Lemma 1).

Two points in the same small-grid cell are certainly within ``r`` (the cell
diagonal is ``r``), so OR-ing the bitsets of every small cell in ``o_i.L``
yields a set of objects guaranteed to interact with ``o_i``; its cardinality
minus one (for ``o_i``'s own bit) lower-bounds ``tau(o_i)``.  No distance is
computed.

``o_i.L`` only lists cells shared by at least two objects -- single-object
cells cannot contribute to the bound, and Algorithm 3 never put them in the
key lists -- so objects in sparse space touch no cell at all here.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.bitset.base import Bitset
from repro.core.query import PhaseStats
from repro.grid.bigrid import BIGrid
from repro.resilience import Deadline, checkpoint


@dataclass
class LowerBoundResult:
    """Per-object lower bounds and their maximum ``tau_max_low``."""

    values: List[int]
    tau_max: int
    #: The union bitsets ``b(o_i)`` (bit ``i`` included), kept only when the
    #: caller needs them to seed verification in with-label mode.
    bitsets: Optional[List[Optional[Bitset]]]


def compute_lower_bounds(
    bigrid: BIGrid,
    keep_bitsets: bool = False,
    stats: Optional[PhaseStats] = None,
    deadline: Optional[Deadline] = None,
) -> LowerBoundResult:
    """LOWER-BOUNDING(O, r): one bitwise-OR pass over the key lists.

    An expired ``deadline`` raises ``QueryTimeout`` between objects (bounds
    for a prefix of the collection prune nothing soundly on their own).
    """
    small_grid = bigrid.small_grid
    bitset_cls = small_grid.bitset_cls
    values: List[int] = []
    bitsets: Optional[List[Optional[Bitset]]] = [] if keep_bitsets else None
    tau_max = 0
    or_operations = 0

    cells = small_grid.cells
    for oid in range(bigrid.collection.n):
        checkpoint(deadline, "lower_bounding")
        keys = bigrid.key_lists[oid]
        # The ORs run on the cells' cached big-int forms (C-speed word ops,
        # the Python analogue of EWAH's word-aligned merge).
        union = 0
        for key in keys:
            union |= cells[key].bitset.to_int()
            or_operations += 1
        cardinality = union.bit_count()
        # The object's own bit is set whenever the union is non-empty.
        lower = cardinality - 1 if cardinality else 0
        values.append(lower)
        if lower > tau_max:
            tau_max = lower
        if bitsets is not None:
            bitsets.append(bitset_cls.from_int(union) if cardinality else None)

    if stats is not None:
        stats.set_count("lower_or_operations", or_operations)
        stats.set_count("tau_max_low", tau_max)
    return LowerBoundResult(values=values, tau_max=tau_max, bitsets=bitsets)
