"""Best-first verification with early termination (Algorithm 6, Corollary 1).

Candidates are dequeued in descending upper-bound order.  As soon as the
next candidate's upper bound cannot beat the best exact score found so far,
the best object is provably the answer and the query terminates.

Exact score computation for one candidate ``o_i`` walks its points: for a
point ``p`` in large cell ``c_K``, only objects in ``b_adj(c_K)`` not yet
confirmed can still contribute, and only their posting lists in ``c_K`` and
its adjacent cells need distance checks.  Confirmed objects are accumulated
in a bitset, so repeated near misses cost nothing.

Labeling-3 (Definition 4) is performed here when a labeler is supplied:
points whose remaining-candidate set was already empty are marked skippable
for future queries.  The WITH-LABEL variant seeds ``b(o_i)`` with the
lower-bounding union bitset (objects certainly interacting need no distance
check at all) and skips points labeled ``1*0``.
"""

from __future__ import annotations

from dataclasses import dataclass
from heapq import heappush, heappushpop
from typing import Callable, List, Optional, Tuple

import numpy as np

from repro.bitset.base import Bitset
from repro.core.labels import PointLabels
from repro.core.query import PhaseStats
from repro.core.upper_bound import Candidate
from repro.errors import InvalidQueryError, QueryTimeout
from repro.grid.bigrid import BIGrid
from repro.resilience import Deadline, checkpoint


@dataclass
class VerificationResult:
    """Top-k exact results plus counters."""

    #: ``(oid, score)`` sorted by score descending (ties: smaller oid first).
    ranking: List[Tuple[int, int]]
    verified: int
    early_terminated: bool
    #: True when a deadline expired mid-verification.  The ranking then holds
    #: only the candidates settled so far — still exact scores, so the best
    #: of them is a *verified lower bound* on the optimum (Corollary 1) and
    #: the engine can return it as an anytime answer.
    timed_out: bool = False
    #: Which implementation scored the candidates ("reference",
    #: "numpy-batch", "parallel-chunked").  Informational only — every path
    #: is bit-exact — surfaced through ``repro explain`` notes.
    path: str = "reference"
    #: Every settled ``(oid, exact_score)`` pair in dequeue order (not just
    #: the top-k).  The sharded merge replays the serial best-first loop
    #: from these, reproducing its early-termination tie selection exactly.
    settled: Optional[List[Tuple[int, int]]] = None


MaskProvider = Callable[[int], np.ndarray]
BitsetProvider = Callable[[int], Optional[Bitset]]


class VerifyCounters:
    """Work counters accumulated across all verified candidates."""

    __slots__ = ("distance_rows", "posting_checks", "points_skipped")

    def __init__(self) -> None:
        self.distance_rows = 0
        self.posting_checks = 0
        self.points_skipped = 0


def best_first_verification(
    candidates: List[Candidate],
    k: int,
    exact_score: Callable[[int], int],
    counters: VerifyCounters,
    stats: Optional[PhaseStats] = None,
    deadline: Optional[Deadline] = None,
    path: str = "reference",
) -> VerificationResult:
    """The best-first outer loop of VERIFICATION, scorer-agnostic.

    Kernel backends plug their own ``exact_score`` (reference walk or
    batched block evaluation) under the *same* threshold updates, early
    termination, deadline checks, and heap/ranking semantics, so every
    backend shares one provably identical driver.  ``exact_score`` may
    raise :class:`QueryTimeout`; the in-flight candidate is then dropped
    and the settled prefix is returned with ``timed_out=True``.
    """
    if k < 1:
        raise InvalidQueryError("k must be at least 1")
    #: Min-heap of the k best ``(score, -oid)`` pairs seen so far.
    best_heap: List[Tuple[int, int]] = []
    settled: List[Tuple[int, int]] = []
    verified = 0
    early = False
    timed_out = False

    for upper, oid in candidates:
        threshold = best_heap[0][0] if len(best_heap) >= k else -1
        if upper <= threshold:
            early = True
            break
        if deadline is not None and deadline.expired():
            timed_out = True
            break
        try:
            score = exact_score(oid)
        except QueryTimeout:
            # The in-flight candidate's partial bitset is not an exact score;
            # drop it and surface what is already settled.
            timed_out = True
            break
        verified += 1
        settled.append((oid, score))
        entry = (score, -oid)
        if len(best_heap) < k:
            heappush(best_heap, entry)
        elif entry > best_heap[0]:
            heappushpop(best_heap, entry)

    ranking = sorted(
        ((-neg_oid, score) for score, neg_oid in best_heap),
        key=lambda item: (-item[1], item[0]),
    )
    if stats is not None:
        stats.set_count("verified_objects", verified)
        stats.set_count("distance_rows", counters.distance_rows)
        stats.set_count("posting_checks", counters.posting_checks)
        stats.set_count("verify_points_skipped", counters.points_skipped)
        stats.set_count("early_terminated", int(early))
        stats.set_count("verification_timed_out", int(timed_out))
    return VerificationResult(
        ranking=ranking,
        verified=verified,
        early_terminated=early,
        timed_out=timed_out,
        path=path,
        settled=settled,
    )


def verify_candidates(
    bigrid: BIGrid,
    candidates: List[Candidate],
    r: float,
    k: int = 1,
    initial_bitsets: Optional[BitsetProvider] = None,
    verify_masks: Optional[MaskProvider] = None,
    labeler: Optional[PointLabels] = None,
    stats: Optional[PhaseStats] = None,
    deadline: Optional[Deadline] = None,
    kernel=None,
) -> VerificationResult:
    """VERIFICATION(O_cand, r): exact scores, best-first, early stop.

    ``k=1`` is Algorithm 6; ``k>1`` is the top-k variant of Section III-C:
    the termination threshold becomes the k-th best exact score seen so far.

    Verification is the *anytime* phase: when ``deadline`` expires (checked
    between candidates and inside each candidate's point loop), the loop
    stops, partial work on the in-flight candidate is discarded, and the
    result reports ``timed_out=True`` with the candidates settled so far.

    ``kernel`` (a :class:`repro.kernels.KernelBackend`) supplies the
    distance primitive; None keeps the inline reference check.  Either way
    the answer is identical — kernels may only change *how* the same
    comparisons are evaluated (e.g. early-exit chunking per Corollary 1).
    """
    counters = VerifyCounters()
    return best_first_verification(
        candidates,
        k,
        lambda oid: _exact_score(
            bigrid, oid, r, initial_bitsets, verify_masks, labeler, counters,
            deadline, kernel,
        ),
        counters,
        stats=stats,
        deadline=deadline,
        path="reference",
    )


def _exact_score(
    bigrid: BIGrid,
    oid: int,
    r: float,
    initial_bitsets: Optional[BitsetProvider],
    verify_masks: Optional[MaskProvider],
    labeler: Optional[PointLabels],
    counters: VerifyCounters,
    deadline: Optional[Deadline] = None,
    kernel=None,
) -> int:
    """Compute ``tau(o_i)`` exactly (steps 2-3 of Section III-C)."""
    collection = bigrid.collection
    large_grid = bigrid.large_grid
    points = collection[oid].points
    r_squared = r * r

    # ``confirmed`` is the candidate's b(o_i), held as a big int so the
    # per-point set difference (line 10 of Algorithm 6) is one C-level op.
    confirmed = 0
    if initial_bitsets is not None:
        seed = initial_bitsets(oid)
        if seed is not None:
            confirmed = seed.to_int()
    confirmed |= 1 << oid

    mask = verify_masks(oid).tolist() if verify_masks is not None else None

    for key, point_indices in bigrid.object_groups[oid].items():
        checkpoint(deadline, "verification")
        for point_index in point_indices:
            if mask is not None and not mask[point_index]:
                counters.points_skipped += 1
                continue
            # With labels, upper-bounding may have skipped this cell, so the
            # adjacent union might not exist yet; compute it on demand.
            pending = large_grid.adjacent_union_int(key) & ~confirmed
            if not pending:
                if labeler is not None:
                    labeler.mark_verify_skippable(oid, (point_index,))
                continue
            remaining = bits_of(pending)
            point = points[point_index]
            for cell in large_grid.cells[key].neighbor_cells:
                for candidate_oid in remaining.intersection(cell.postings):
                    counters.posting_checks += 1
                    candidate_points = cell.posting_points(
                        candidate_oid, collection[candidate_oid].points
                    )
                    counters.distance_rows += len(candidate_points)
                    if kernel is not None:
                        hit = kernel.any_within(candidate_points, point, r_squared)
                    else:
                        diff = candidate_points - point
                        hit = bool(
                            np.einsum("ij,ij->i", diff, diff).min() <= r_squared
                        )
                    if hit:
                        confirmed |= 1 << candidate_oid
                        remaining.discard(candidate_oid)
                if not remaining:
                    break

    return confirmed.bit_count() - 1


def bits_of(value: int) -> set:
    """Set-bit positions of a big-int bitset, as a mutable set.

    The engines keep interaction sets as arbitrary-precision ints (bit
    ``i`` set means object ``i``); this is the public bridge from that
    packed form to an iterable, mutable id set.  Verification loops --
    serial, parallel, and temporal alike -- use it to walk the objects
    still pending confirmation, discarding ids as pairs are settled.

    Edge case: the empty bitset ``bits_of(0)`` is the empty set — a fresh,
    mutable ``set()``, never a shared sentinel, so callers may ``add`` /
    ``discard`` on it freely.  ``value`` must be non-negative (a negative
    int is not a bitset; the two's-complement view would be infinite).
    """
    bits = set()
    while value:
        low = value & -value
        bits.add(low.bit_length() - 1)
        value ^= low
    return bits
