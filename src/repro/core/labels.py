"""Point labels (Definition 4) and the persistent label store (Section III-D).

Each point carries three bits, initialized to ``111``:

* bit 2 (``GRID``, "Labeling-1"):  cleared when the point's large-grid cell
  has ``|b_adj| == 1`` -- no other object anywhere near, so the point can be
  skipped even during grid mapping (Lemma 3).
* bit 1 (``UPPER``, "Labeling-2"): cleared when OR-ing the point's
  ``b_adj`` into ``b(o_i)`` during upper-bounding changed nothing.
* bit 0 (``VERIFY``, "Labeling-3"): cleared when, during verification,
  ``b_adj(c_K) - b(o_i)`` was already empty at this point's turn.

Labels produced by a query with threshold ``r`` apply to any future query
``r'`` with ``ceil(r') == ceil(r)`` because the large grid is identical for
all such thresholds.  Our correctness analysis (DESIGN.md §3) shows
Labeling-1/2 reuse is exact for every such ``r'``, and Labeling-3 reuse is
exact when ``r' == r`` but may under-count for ``r' != r``; the store
therefore records the generating ``r`` and the engine's default
``label_reuse="safe"`` mode applies Labeling-3 only on an exact match
(``label_reuse="paper"`` reproduces the paper's behaviour verbatim).

The paper keeps labels in external memory ("labels should be resident in
external memory"); :class:`LabelStore` persists them as one ``.npz`` file
per ``ceil(r)`` and the engine reports the load time as the "Label-Input"
row of Table II.
"""

from __future__ import annotations

import threading
from pathlib import Path
from typing import Dict, Iterable, Optional, Sequence

import numpy as np

from repro.errors import CorruptDataError

from repro.core.objects import ObjectCollection
from repro.obs.recorders import observe_cache, observe_cache_invalidation

#: Bit masks within a label byte.
GRID_BIT = 0b100
UPPER_BIT = 0b010
VERIFY_BIT = 0b001
ALL_BITS = GRID_BIT | UPPER_BIT | VERIFY_BIT


class PointLabels:
    """Per-point three-bit labels for one ``ceil(r)`` bucket."""

    __slots__ = ("r", "arrays")

    def __init__(self, point_counts: Sequence[int], r: float) -> None:
        self.r = float(r)
        self.arrays = [np.full(count, ALL_BITS, dtype=np.uint8) for count in point_counts]

    @classmethod
    def for_collection(cls, collection: ObjectCollection, r: float) -> "PointLabels":
        return cls([obj.num_points for obj in collection], r)

    # ------------------------------------------------------------------
    # Labeling (clearing bits during a labeling run)
    # ------------------------------------------------------------------

    def mark_grid_useless(self, oid: int, point_indices: Iterable[int]) -> None:
        """Labeling-1: ``label(p) = 0**``."""
        self.arrays[oid][list(point_indices)] &= ~GRID_BIT & 0xFF

    def mark_upper_skippable(self, oid: int, point_indices: Iterable[int]) -> None:
        """Labeling-2: ``label(p) = 10*`` (second bit cleared)."""
        self.arrays[oid][list(point_indices)] &= ~UPPER_BIT & 0xFF

    def mark_verify_skippable(self, oid: int, point_indices: Iterable[int]) -> None:
        """Labeling-3: ``label(p) = 1*0`` (third bit cleared)."""
        self.arrays[oid][list(point_indices)] &= ~VERIFY_BIT & 0xFF

    # ------------------------------------------------------------------
    # Masks (which points to process during a with-label run)
    # ------------------------------------------------------------------

    def grid_mask(self, oid: int) -> np.ndarray:
        """Points to map into the BIGrid: first bit set."""
        return (self.arrays[oid] & GRID_BIT) != 0

    def upper_mask(self, oid: int) -> np.ndarray:
        """Points to process in upper-bounding: ``label(p) = 11*``."""
        wanted = GRID_BIT | UPPER_BIT
        return (self.arrays[oid] & wanted) == wanted

    def verify_mask(self, oid: int) -> np.ndarray:
        """Points to process in verification: ``label(p) = 1*1``."""
        wanted = GRID_BIT | VERIFY_BIT
        return (self.arrays[oid] & wanted) == wanted

    # ------------------------------------------------------------------
    # Statistics
    # ------------------------------------------------------------------

    def count_cleared(self) -> Dict[str, int]:
        """How many points each labeling pruned (reported by experiments)."""
        grid = upper = verify = 0
        for labels in self.arrays:
            grid += int(np.count_nonzero((labels & GRID_BIT) == 0))
            upper += int(np.count_nonzero((labels & UPPER_BIT) == 0))
            verify += int(np.count_nonzero((labels & VERIFY_BIT) == 0))
        return {"grid": grid, "upper": upper, "verify": verify}

    def total_points(self) -> int:
        return sum(len(labels) for labels in self.arrays)

    def size_in_bytes(self) -> int:
        """One byte per point: the O(nm) label space cost."""
        return self.total_points()


def labels_match_collection(labels: "PointLabels", collection: ObjectCollection) -> bool:
    """Whether label arrays align with the collection's objects and points.

    Labels are positional, so a store from a different (or mutated)
    collection must never be consumed; both engines check this on load.
    """
    if len(labels.arrays) != collection.n:
        return False
    return all(
        len(array) == obj.num_points
        for array, obj in zip(labels.arrays, collection)
    )


class LabelStore:
    """Persistent label storage keyed by ``ceil(r)``.

    ``directory=None`` keeps labels in memory only, which is convenient for
    tests; with a directory, labels survive process restarts and loading
    them models the O(nm / B) label I/O of the paper.

    The store is thread-safe: the concurrent query service shares one
    instance across worker threads, each query *reading* published
    :class:`PointLabels` (mask lookups) while at most one labeling run
    *publishes* a freshly built object via :meth:`put`.  Published label
    arrays are never mutated in place -- a labeling run writes into its
    own private ``PointLabels`` and publishes it whole -- so readers need
    no lock once :meth:`get` has returned; the store's lock only guards
    the cache dictionary and disk I/O.
    """

    def __init__(self, directory: Optional[Path] = None) -> None:
        self.directory = Path(directory) if directory is not None else None
        if self.directory is not None:
            self.directory.mkdir(parents=True, exist_ok=True)
        self._cache: Dict[int, PointLabels] = {}
        self._lock = threading.RLock()
        #: Lookup accounting for session stats: a hit is a :meth:`get` that
        #: found labels (memory or disk), a miss one that found none.
        self.hits = 0
        self.misses = 0

    def _path(self, ceil_r: int) -> Path:
        assert self.directory is not None
        return self.directory / f"labels_ceil_{ceil_r}.npz"

    def has(self, ceil_r: int) -> bool:
        """Whether labels exist for this ``ceil(r)`` (the O(1) hash check)."""
        with self._lock:
            if ceil_r in self._cache:
                return True
        return self.directory is not None and self._path(ceil_r).exists()

    def get(self, ceil_r: int) -> Optional[PointLabels]:
        """Load labels for ``ceil(r)``, or None if no query produced them yet."""
        with self._lock:
            cached = self._cache.get(ceil_r)
            if cached is not None:
                self.hits += 1
                observe_cache("labels", hit=True)
                return cached
            if self.directory is None:
                self.misses += 1
                observe_cache("labels", hit=False)
                return None
            path = self._path(ceil_r)
            if not path.exists():
                self.misses += 1
                observe_cache("labels", hit=False)
                return None
            try:
                with np.load(path) as archive:
                    count = int(archive["count"])
                    labels = PointLabels.__new__(PointLabels)
                    labels.r = float(archive["r"])
                    labels.arrays = [archive[f"o{i}"] for i in range(count)]
            except Exception as exc:
                raise CorruptDataError(
                    f"{path}: not a valid label archive ({exc})"
                ) from exc
            self._cache[ceil_r] = labels
            self.hits += 1
            observe_cache("labels", hit=True)
            return labels

    def ceilings(self) -> list:
        """Sorted ``ceil(r)`` values with labels available (memory or disk).

        Batch planners use this to decide which ceiling groups still need a
        labeling run; the check itself is the O(1)-per-bucket hash lookup
        the paper assumes for "labels exist?".
        """
        with self._lock:
            available = set(self._cache)
        if self.directory is not None:
            for path in self.directory.glob("labels_ceil_*.npz"):
                try:
                    available.add(int(path.stem.rsplit("_", 1)[1]))
                except ValueError:
                    continue
        return sorted(available)

    def put(self, ceil_r: int, labels: PointLabels) -> None:
        """Persist labels produced by a labeling run (post-processing).

        ``labels`` must not be mutated after publication: concurrent
        readers consume it lock-free (see the class docstring).
        """
        with self._lock:
            self._cache[ceil_r] = labels
            if self.directory is None:
                return
            payload = {f"o{i}": arr for i, arr in enumerate(labels.arrays)}
            payload["r"] = np.float64(labels.r)
            payload["count"] = np.int64(len(labels.arrays))
            np.savez(self._path(ceil_r), **payload)

    def clear(self) -> None:
        """Drop all stored labels (memory and disk)."""
        observe_cache_invalidation("labels")
        with self._lock:
            self._cache.clear()
            if self.directory is not None:
                for path in self.directory.glob("labels_ceil_*.npz"):
                    path.unlink()
