"""Core MIO query processing: the paper's primary contribution.

The submodules follow the paper's structure:

* :mod:`repro.core.objects`      -- objects as point sets (Section II-A)
* :mod:`repro.core.lower_bound`  -- Algorithm 4 (Lemma 1)
* :mod:`repro.core.upper_bound`  -- Algorithm 5 (Lemma 2, Theorem 2)
* :mod:`repro.core.verification` -- Algorithm 6 (Corollary 1)
* :mod:`repro.core.engine`       -- Algorithm 2 framework + top-k variant
* :mod:`repro.core.labels`       -- Definition 4 and Section III-D reuse
* :mod:`repro.core.temporal`     -- Appendix B temporal extension
"""

from repro.core.engine import MIOEngine
from repro.core.labels import LabelStore, PointLabels
from repro.core.objects import ObjectCollection, SpatialObject
from repro.core.query import MIOResult, PhaseStats
from repro.core.temporal import TemporalMIOEngine

__all__ = [
    "LabelStore",
    "MIOEngine",
    "MIOResult",
    "ObjectCollection",
    "PhaseStats",
    "PointLabels",
    "SpatialObject",
    "TemporalMIOEngine",
]
