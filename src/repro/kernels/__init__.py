"""Pluggable compute kernels for the four query phases.

``resolve_kernel`` maps a requested name to a :class:`KernelBackend`
instance; every engine and the CLI funnel through it:

* ``"python"`` — the reference backend, always available.
* ``"numpy"`` — the vectorized backend; requires numpy >= 2.0
  (``np.bitwise_count``).  Degrades to ``python`` when unavailable, the
  same quiet-downgrade policy the bitset registry uses.
* ``"auto"`` — ``numpy`` when available, else ``python``.

Setting ``REPRO_KERNEL_DISABLE_NUMPY=1`` masks the numpy backend even when
numpy is importable — CI uses it to pin the pure-python fallback path, and
it doubles as an operator kill switch.
"""

from __future__ import annotations

import os
from typing import Union

from repro.errors import InvalidQueryError
from repro.kernels.base import KernelBackend
from repro.kernels.python_backend import PYTHON_KERNEL, PythonKernel

__all__ = [
    "DISABLE_ENV",
    "KERNEL_NAMES",
    "KernelBackend",
    "PYTHON_KERNEL",
    "PythonKernel",
    "numpy_kernel_available",
    "resolve_kernel",
]

#: Accepted ``kernel=`` / ``--kernel`` values.
KERNEL_NAMES = ("python", "numpy", "auto")

#: Environment kill switch: set to anything but ""/"0" to mask numpy.
DISABLE_ENV = "REPRO_KERNEL_DISABLE_NUMPY"


def numpy_kernel_available() -> bool:
    """Whether the numpy backend can run here (import + feature detect)."""
    if os.environ.get(DISABLE_ENV, "0") not in ("", "0"):
        return False
    try:
        import numpy as np
    except ImportError:  # pragma: no cover - numpy is a hard dep today
        return False
    return hasattr(np, "bitwise_count")


def resolve_kernel(kernel: Union[str, KernelBackend, None] = "auto") -> KernelBackend:
    """The backend instance for a requested kernel name.

    Accepts an already resolved instance (pass-through, so contexts can be
    re-run), None (the library default: ``python``), or one of
    :data:`KERNEL_NAMES`.  An explicit ``"numpy"`` request degrades to the
    reference backend when numpy cannot serve — same-answer, slower — and
    the caller's context records the degradation in its notes.
    """
    if isinstance(kernel, KernelBackend):
        return kernel
    if kernel is None:
        return PYTHON_KERNEL
    if kernel not in KERNEL_NAMES:
        raise InvalidQueryError(
            f"unknown kernel {kernel!r}; expected one of {', '.join(KERNEL_NAMES)}"
        )
    if kernel == "python":
        return PYTHON_KERNEL
    if not numpy_kernel_available():
        return PYTHON_KERNEL
    from repro.kernels.numpy_backend import NUMPY_KERNEL

    return NUMPY_KERNEL
